//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over ranges / [`Just`] / [`any`] / tuples of those,
//! `prop::collection::vec`, the `proptest!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros, and [`ProptestConfig`].
//!
//! Differences from upstream, deliberate for an offline, deterministic
//! build environment:
//!
//! * **No shrinking.** A failing case panics with the generated values
//!   printed; the generator is fully deterministic (seeded from the test
//!   name), so every failure reproduces exactly on re-run.
//! * **No persistence.** `*.proptest-regressions` files are not read or
//!   written — regressions worth keeping must be pinned as explicit unit
//!   tests (see `tests/proptests.rs` for the convert-domain example).
//! * **Edge-biased generation.** Each strategy mixes uniform samples with
//!   domain edge values (range endpoints, 0, MIN/MAX) at a fixed ratio,
//!   standing in for upstream's bias toward problematic inputs.

use std::ops::Range;

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier and case index.
    pub fn new(test_id: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True roughly once per `n` calls — used for edge-value injection.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. `impl Strategy<Value = T>` is the composition
/// currency, exactly as upstream.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy for heterogeneous composition
    /// (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Blanket impl so `&strategy` composes like upstream.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(#[allow(clippy::type_complexity)] Box<dyn Fn(&mut TestRng) -> T>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`Arbitrary` subset).
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.one_in(8) {
                    // Edge injection: extremes and zero.
                    match rng.below(3) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        _ => 0,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Whole-domain strategy for `T` (the `any::<T>()` entry point).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if rng.one_in(8) {
                    // Edge injection: endpoints.
                    if rng.next_u64() & 1 == 0 {
                        return self.start;
                    }
                    return self.end - 1;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        if rng.one_in(8) {
            // Edge injection: endpoints and zero (when in range).
            return match rng.below(3) {
                0 => self.start,
                1 if self.contains(&0.0) => 0.0,
                _ => {
                    // Largest representable value strictly below `end`.
                    let e = self.end;
                    let below = f32::from_bits(if e > 0.0 {
                        e.to_bits() - 1
                    } else {
                        e.to_bits() + 1
                    });
                    below.max(self.start)
                }
            };
        }
        let v = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
        (v as f32).clamp(
            self.start,
            f32::from_bits(self.end.to_bits().wrapping_sub(1)),
        )
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.min(self.end - self.end.abs() * f64::EPSILON)
    }
}

/// A uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, length_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prop` facade module.
pub mod prop {
    pub use crate::collection;
}

/// Runs one property over `cases` generated inputs.
///
/// Used by the `proptest!` macro expansion; public so the macro can reach
/// it from other crates.
pub fn run_property<F>(test_id: &str, config: &ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::new(test_id, case);
        if let Err((err, values)) = case_fn(&mut rng) {
            panic!(
                "property '{test_id}' failed at case {case}:\n  {}\n  inputs: {values}\n  \
                 (deterministic: re-running reproduces this case)",
                err.message
            );
        }
    }
}

/// Declares property tests. Mirrors upstream's `proptest!` surface for the
/// shapes used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                $crate::run_property(test_id, &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    let values = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let body_result: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    body_result.map_err(|e| (e, values))
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property body (fails the case, does not
/// panic directly, mirroring upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_id() {
        let mut a = crate::TestRng::new("x", 0);
        let mut b = crate::TestRng::new("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::new("y", 0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new("bounds", 1);
        for _ in 0..10_000 {
            let v = Strategy::generate(&(10i32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0e9f32..2.0e9), &mut rng);
            assert!((-2.0e9..2.0e9).contains(&f), "{f}");
            let u = Strategy::generate(&(1usize..40), &mut rng);
            assert!((1..40).contains(&u));
        }
    }

    #[test]
    fn oneof_only_yields_member_values() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new("oneof", 2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..=3).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3], "union not covering");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = prop::collection::vec(0u8..255, 0..100);
        let mut rng = crate::TestRng::new("vec", 3);
        for _ in 0..500 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(a in 0u32..50, b in 0u32..50) {
            prop_assert!(a < 50);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_supports_trailing_comma(
            v in prop::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!(v.len() < 10);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |rng| {
            let v = Strategy::generate(&(0u8..10), rng);
            let values = format!("v = {v:?}");
            let r: TestCaseResult = (move || {
                prop_assert!(v > 100, "forced failure");
                Ok(())
            })();
            r.map_err(|e| (e, values))
        });
    }
}
