//! Cross-ISA identities: where SSE2 and NEON define the same lane
//! semantics, the two simulated surfaces must agree bit-for-bit. These are
//! the equivalences the paper's hand-ported kernels rely on (Section III-A
//! describes porting each SSE2 sequence to an "analogous" NEON sequence).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRIALS: usize = 1000;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xA11CE)
}

#[test]
fn packs_epi32_equals_vqmovn_vcombine() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let lo: [i32; 4] = rng.gen();
        let hi: [i32; 4] = rng.gen();
        let sse = sse_sim::_mm_packs_epi32(
            sse_sim::__m128i::from_i32(lo.into()),
            sse_sim::__m128i::from_i32(hi.into()),
        )
        .as_i16();
        let neon = neon_sim::vcombine_s16(
            neon_sim::vqmovn_s32(lo.into()),
            neon_sim::vqmovn_s32(hi.into()),
        );
        assert_eq!(sse, neon);
    }
}

#[test]
fn packus_epi16_equals_vqmovun_pair() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let lo: [i16; 8] = rng.gen();
        let hi: [i16; 8] = rng.gen();
        let sse = sse_sim::_mm_packus_epi16(
            sse_sim::__m128i::from_i16(lo.into()),
            sse_sim::__m128i::from_i16(hi.into()),
        )
        .as_u8();
        let neon = neon_sim::vcombine_u8(
            neon_sim::vqmovun_s16(lo.into()),
            neon_sim::vqmovun_s16(hi.into()),
        );
        assert_eq!(sse, neon);
    }
}

#[test]
fn cvtps_epi32_equals_vcvtnq_in_range() {
    // The rounding conversions agree wherever the result fits in i32 (the
    // ISAs only diverge in their out-of-range conventions).
    let mut rng = rng();
    for _ in 0..TRIALS {
        let v: [f32; 4] = [
            rng.gen_range(-2e9f32..2e9),
            rng.gen_range(-65536.0f32..65536.0),
            (rng.gen_range(-1000i32..1000) as f32) + 0.5,
            rng.gen_range(-1.0f32..1.0),
        ];
        let sse = sse_sim::_mm_cvtps_epi32(v.into()).as_i32();
        let neon = neon_sim::vcvtnq_s32_f32(v.into());
        assert_eq!(sse, neon, "inputs {v:?}");
    }
}

#[test]
fn cvttps_equals_vcvtq_in_range() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let v: [f32; 4] = [
            rng.gen_range(-2e9f32..2e9),
            rng.gen_range(-65536.0f32..65536.0),
            rng.gen_range(-255.0f32..255.0),
            rng.gen_range(-1.0f32..1.0),
        ];
        let sse = sse_sim::_mm_cvttps_epi32(v.into()).as_i32();
        let neon = neon_sim::vcvtq_s32_f32(v.into());
        assert_eq!(sse, neon, "inputs {v:?}");
    }
}

#[test]
fn saturating_u8_arith_agrees() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        let sse_add = sse_sim::_mm_adds_epu8(
            sse_sim::__m128i::from_u8(a.into()),
            sse_sim::__m128i::from_u8(b.into()),
        )
        .as_u8();
        let neon_add = neon_sim::vqaddq_u8(a.into(), b.into());
        assert_eq!(sse_add, neon_add);

        let sse_sub = sse_sim::_mm_subs_epu8(
            sse_sim::__m128i::from_u8(a.into()),
            sse_sim::__m128i::from_u8(b.into()),
        )
        .as_u8();
        let neon_sub = neon_sim::vqsubq_u8(a.into(), b.into());
        assert_eq!(sse_sub, neon_sub);
    }
}

#[test]
fn unsigned_minmax_avg_agree() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        let ai = sse_sim::__m128i::from_u8(a.into());
        let bi = sse_sim::__m128i::from_u8(b.into());
        assert_eq!(
            sse_sim::_mm_max_epu8(ai, bi).as_u8(),
            neon_sim::vmaxq_u8(a.into(), b.into())
        );
        assert_eq!(
            sse_sim::_mm_min_epu8(ai, bi).as_u8(),
            neon_sim::vminq_u8(a.into(), b.into())
        );
        // pavgb rounds up, exactly vrhadd.
        assert_eq!(
            sse_sim::_mm_avg_epu8(ai, bi).as_u8(),
            neon_sim::vrhaddq_u8(a.into(), b.into())
        );
    }
}

#[test]
fn unsigned_gt_threshold_idiom_agrees() {
    // SSE2 has no unsigned byte compare; the kernel idiom is
    // max(a,t) == a  <=>  a >= t, or the xor-0x80 signed trick. NEON has
    // vcgtq_u8 directly. Both must produce the same mask.
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [u8; 16] = rng.gen();
        let t: u8 = rng.gen();
        // SSE trick: flip sign bits then do signed gt.
        let sign = sse_sim::_mm_set1_epi8(-128);
        let av = sse_sim::_mm_xor_si128(sse_sim::__m128i::from_u8(a.into()), sign);
        let tv = sse_sim::_mm_xor_si128(sse_sim::_mm_set1_epi8(t as i8), sign);
        let sse_mask = sse_sim::_mm_cmpgt_epi8(av, tv).as_u8();
        let neon_mask = neon_sim::vcgtq_u8(a.into(), neon_sim::vdupq_n_u8(t));
        assert_eq!(sse_mask, neon_mask, "a {a:?} t {t}");
    }
}

#[test]
fn select_idioms_agree() {
    // (mask & x) | (!mask & y): SSE and/andnot/or == NEON vbsl.
    let mut rng = rng();
    for _ in 0..TRIALS {
        let mask_bytes: [u8; 16] = rng.gen();
        let x: [u8; 16] = rng.gen();
        let y: [u8; 16] = rng.gen();
        let m = sse_sim::__m128i::from_u8(mask_bytes.into());
        let xi = sse_sim::__m128i::from_u8(x.into());
        let yi = sse_sim::__m128i::from_u8(y.into());
        let sse = sse_sim::_mm_or_si128(
            sse_sim::_mm_and_si128(m, xi),
            sse_sim::_mm_andnot_si128(m, yi),
        )
        .as_u8();
        let neon = neon_sim::vbslq_u8(mask_bytes.into(), x.into(), y.into());
        assert_eq!(sse, neon);
    }
}

#[test]
fn widening_mac_agrees_with_madd_layout() {
    // pmaddwd(a, b) == vmlal of even lanes + vmlal of odd lanes after a
    // de-interleave — verify numerically via a reference dot product.
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [i16; 8] = rng.gen();
        let b: [i16; 8] = rng.gen();
        let sse = sse_sim::_mm_madd_epi16(
            sse_sim::__m128i::from_i16(a.into()),
            sse_sim::__m128i::from_i16(b.into()),
        )
        .as_i32()
        .to_array();
        // NEON route: widen each half, multiply, pairwise add.
        let lo = neon_sim::vmull_s16(
            neon_sim::vget_low_s16(a.into()),
            neon_sim::vget_low_s16(b.into()),
        )
        .to_array();
        let hi = neon_sim::vmull_s16(
            neon_sim::vget_high_s16(a.into()),
            neon_sim::vget_high_s16(b.into()),
        )
        .to_array();
        let neon = [
            lo[0].wrapping_add(lo[1]),
            lo[2].wrapping_add(lo[3]),
            hi[0].wrapping_add(hi[1]),
            hi[2].wrapping_add(hi[3]),
        ];
        assert_eq!(sse, neon);
    }
}

#[test]
fn float_ops_agree_bitwise() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [f32; 4] = [
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
        ];
        let b: [f32; 4] = [
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
            rng.gen_range(-1e6f32..1e6),
        ];
        assert_eq!(
            sse_sim::_mm_add_ps(a.into(), b.into()),
            neon_sim::vaddq_f32(a.into(), b.into())
        );
        assert_eq!(
            sse_sim::_mm_mul_ps(a.into(), b.into()),
            neon_sim::vmulq_f32(a.into(), b.into())
        );
        assert_eq!(
            sse_sim::_mm_sub_ps(a.into(), b.into()),
            neon_sim::vsubq_f32(a.into(), b.into())
        );
        assert_eq!(
            sse_sim::_mm_min_ps(a.into(), b.into()),
            neon_sim::vminq_f32(a.into(), b.into())
        );
        assert_eq!(
            sse_sim::_mm_max_ps(a.into(), b.into()),
            neon_sim::vmaxq_f32(a.into(), b.into())
        );
    }
}

#[test]
fn float_compare_masks_agree() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [f32; 4] = [
            rng.gen_range(-10.0f32..10.0),
            rng.gen_range(-10.0f32..10.0),
            f32::NAN,
            rng.gen_range(-10.0f32..10.0),
        ];
        let b: [f32; 4] = [
            rng.gen_range(-10.0f32..10.0),
            a[1],
            1.0,
            rng.gen_range(-10.0f32..10.0),
        ];
        let sse_gt = sse_sim::_mm_cmpgt_ps(a.into(), b.into());
        let neon_gt = neon_sim::vcgtq_f32(a.into(), b.into());
        assert_eq!(
            neon_sim::vreinterpretq_u32_f32(sse_gt),
            neon_gt,
            "a {a:?} b {b:?}"
        );
        let sse_ge = sse_sim::_mm_cmpge_ps(a.into(), b.into());
        let neon_ge = neon_sim::vcgeq_f32(a.into(), b.into());
        assert_eq!(neon_sim::vreinterpretq_u32_f32(sse_ge), neon_ge);
    }
}

#[test]
fn unpack_equals_zip() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [i16; 8] = rng.gen();
        let b: [i16; 8] = rng.gen();
        let lo = sse_sim::_mm_unpacklo_epi16(
            sse_sim::__m128i::from_i16(a.into()),
            sse_sim::__m128i::from_i16(b.into()),
        )
        .as_i16();
        let hi = sse_sim::_mm_unpackhi_epi16(
            sse_sim::__m128i::from_i16(a.into()),
            sse_sim::__m128i::from_i16(b.into()),
        )
        .as_i16();
        let zip = neon_sim::vzipq_s16(a.into(), b.into());
        assert_eq!(lo, zip.val[0]);
        assert_eq!(hi, zip.val[1]);
    }
}

#[test]
fn paper_convert_loop_bit_exact_across_isas() {
    // The full benchmark-1 inner loop, SSE2 flavour vs NEON flavour, on a
    // shared pseudo-image row: identical i16 output required.
    let mut rng = rng();
    let width = 512;
    let src: Vec<f32> = (0..width)
        .map(|_| rng.gen_range(-40000.0f32..40000.0))
        .collect();
    let mut dst_sse = vec![0i16; width];
    let mut dst_neon = vec![0i16; width];

    // SSE2 path (paper listing).
    let mut x = 0;
    while x + 8 <= width {
        let s0 = sse_sim::_mm_loadu_ps(&src[x..]);
        let i0 = sse_sim::_mm_cvtps_epi32(s0);
        let s1 = sse_sim::_mm_loadu_ps(&src[x + 4..]);
        let i1 = sse_sim::_mm_cvtps_epi32(s1);
        let packed = sse_sim::_mm_packs_epi32(i0, i1);
        sse_sim::_mm_storeu_si128(&mut dst_sse[x..], packed);
        x += 8;
    }

    // NEON path (paper listing, with the rounding cvt for bit-exactness).
    let mut x = 0;
    while x + 8 <= width {
        let s0 = neon_sim::vld1q_f32(&src[x..]);
        let i0 = neon_sim::vcvtnq_s32_f32(s0);
        let n0 = neon_sim::vqmovn_s32(i0);
        let s1 = neon_sim::vld1q_f32(&src[x + 4..]);
        let i1 = neon_sim::vcvtnq_s32_f32(s1);
        let n1 = neon_sim::vqmovn_s32(i1);
        let res = neon_sim::vcombine_s16(n0, n1);
        neon_sim::vst1q_s16(&mut dst_neon[x..], res);
        x += 8;
    }

    assert_eq!(dst_sse, dst_neon);
    // And both match the scalar cvRound + saturate reference.
    for (i, &v) in src.iter().enumerate() {
        let expect = simd_vector::rounding::saturate_f32_to_i16(v);
        assert_eq!(dst_sse[i], expect, "pixel {i} value {v}");
    }
}
