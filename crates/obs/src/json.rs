//! Minimal JSON emission for telemetry snapshots.
//!
//! The workspace's `serde` is an offline no-op shim (derive-only, no
//! runtime), so machine-readable output is hand-assembled here: a small
//! string-escaping writer plus one function shaping a
//! [`Snapshot`](crate::Snapshot) into the documented schema. The schema
//! is part of the telemetry contract (DESIGN.md §9):
//!
//! ```json
//! {
//!   "threads": 3,
//!   "counters": {"pipeline.bands": 42, ...},
//!   "gauges": {"scratch.bytes_high_water": 65536, ...},
//!   "histograms": {
//!     "pipeline.band_ns": {
//!       "count": 42, "sum": 123, "min": 1, "max": 9,
//!       "mean": 2.9, "p50": 3, "p90": 7, "p95": 8, "p99": 9,
//!       "buckets": [{"lo": 2, "hi": 3, "count": 40}, ...]   // non-empty only
//!     }, ...
//!   },
//!   "steals_by_victim": [0, 3, ...],   // trailing zeros trimmed
//!   "spans": [{"name": "...", "count": 1, "total_ns": 5,
//!              "mean_ns": 5.0, "children": [...]}, ...]
//! }
//! ```

use crate::span::SpanNode;
use crate::Snapshot;
use std::fmt::Write as _;

/// Escapes `s` for use inside a JSON string literal (quotes excluded).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; non-finite
/// become `null`, which JSON has no number for).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn spans_to_json(nodes: &[SpanNode], out: &mut String) {
    out.push('[');
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"children\":",
            escape(n.name),
            n.count,
            n.total_ns,
            number(n.mean_ns())
        );
        spans_to_json(&n.children, out);
        out.push('}');
    }
    out.push(']');
}

/// Renders a snapshot as a self-contained JSON document.
pub fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(out, "{{\"threads\":{},\"counters\":{{", snap.threads);
    for (i, c) in crate::Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), snap.counter(*c));
    }
    out.push_str("},\"gauges\":{");
    for (i, g) in crate::Gauge::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", g.name(), snap.gauge(*g));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in crate::HistId::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let d = snap.hist(*h);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            h.name(),
            d.count,
            d.sum,
            d.min,
            d.max,
            number(d.mean()),
            d.percentile(50.0),
            d.percentile(90.0),
            d.percentile(95.0),
            d.percentile(99.0),
        );
        let mut first = true;
        for (b, &n) in d.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (lo, hi) = crate::hist::bucket_bounds(b);
            let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}");
        }
        out.push_str("]}");
    }
    out.push_str("},\"steals_by_victim\":[");
    let last_nonzero = snap
        .steal_victims
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i + 1);
    for (i, n) in snap.steal_victims[..last_nonzero].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{n}");
    }
    out.push_str("],\"spans\":");
    spans_to_json(&snap.spans, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn number_rejects_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    /// A structural well-formedness check without a JSON parser in the
    /// tree: balanced braces/brackets outside strings, balanced quotes.
    pub(crate) fn assert_balanced(json: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!in_string, "unterminated string in {json}");
    }

    #[test]
    fn snapshot_json_is_well_formed_and_complete() {
        let _g = crate::tests::guard();
        crate::set_enabled(true);
        crate::reset();
        crate::add(crate::Counter::PipelineBands, 7);
        crate::record(crate::HistId::PipelineBandNanos, 1500);
        crate::record_steal(1);
        {
            let _root = crate::span("json_root");
            let _child = crate::span("json_child");
        }
        let snap = crate::snapshot();
        let json = snap.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"pipeline.bands\":7"));
        assert!(json.contains("\"pipeline.band_ns\":{\"count\":1"));
        assert!(json.contains("\"json_root\""));
        assert!(json.contains("\"json_child\""));
        assert!(json.contains("\"steals_by_victim\":[0,1]"));
        crate::set_enabled(false);
    }
}
