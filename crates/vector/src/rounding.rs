//! Scalar float→int conversion helpers with per-ISA out-of-range semantics.
//!
//! The two architectures disagree about what happens when a float does not
//! fit in an `i32`:
//!
//! * **SSE** (`cvtps2dq`, `cvttps2dq`, `cvtsd2si`): out-of-range and NaN
//!   inputs produce the "integer indefinite" value `0x8000_0000`
//!   (`i32::MIN`).
//! * **NEON** (`vcvt`, ARMv8 `fcvtns`): out-of-range inputs saturate to
//!   `i32::MAX`/`i32::MIN`; NaN produces 0.
//!
//! The rounding mode also matters: `cvtps2dq` uses the MXCSR default of
//! round-to-nearest-even, while ARMv7 `vcvt.s32.f32` truncates toward zero
//! (ARMv8 adds the rounding variants). OpenCV's `cvRound` is implemented
//! with `_mm_cvtsd_si32` on SSE2 builds, i.e. ties-to-even, which is why the
//! kernels in this reproduction standardise on ties-to-even.

/// Largest `f32` exactly representable below `i32::MAX` boundary checks.
const I32_MAX_F: f32 = 2147483647.0; // rounds to 2^31 in f32
const I32_MIN_F: f32 = -2147483648.0;

/// Round `v` to the nearest integer, ties to even, as an `f32`.
#[inline]
pub fn round_ties_even_f32(v: f32) -> f32 {
    v.round_ties_even()
}

/// `cvRound` semantics used throughout the kernels: nearest, ties to even,
/// saturating to the `i32` range, NaN → 0.
#[inline]
pub fn cv_round(v: f32) -> i32 {
    f32_to_i32_round_saturate(v)
}

/// `cvRound` for `f64` (the paper's listing routes scalars through
/// `_mm_set_sd`/`_mm_cvtsd_si32`, i.e. double precision, ties to even).
#[inline]
pub fn cv_round_f64(v: f64) -> i32 {
    if v.is_nan() {
        return 0;
    }
    let r = v.round_ties_even();
    if r >= i32::MAX as f64 {
        i32::MAX
    } else if r <= i32::MIN as f64 {
        i32::MIN
    } else {
        r as i32
    }
}

/// Truncating conversion with NEON saturation semantics.
#[inline]
pub fn f32_to_i32_truncate_saturate(v: f32) -> i32 {
    if v.is_nan() {
        return 0;
    }
    if v >= I32_MAX_F {
        i32::MAX
    } else if v <= I32_MIN_F {
        i32::MIN
    } else {
        v as i32
    }
}

/// Truncating conversion with SSE "integer indefinite" semantics.
#[inline]
pub fn f32_to_i32_truncate_sse(v: f32) -> i32 {
    if v.is_nan() || !(I32_MIN_F..I32_MAX_F).contains(&v) {
        i32::MIN
    } else {
        v as i32
    }
}

/// Nearest-even conversion with NEON saturation semantics.
#[inline]
pub fn f32_to_i32_round_saturate(v: f32) -> i32 {
    if v.is_nan() {
        return 0;
    }
    let r = v.round_ties_even();
    if r >= I32_MAX_F {
        i32::MAX
    } else if r <= I32_MIN_F {
        i32::MIN
    } else {
        r as i32
    }
}

/// Nearest-even conversion with SSE "integer indefinite" semantics.
#[inline]
pub fn f32_to_i32_round_sse(v: f32) -> i32 {
    if v.is_nan() {
        return i32::MIN;
    }
    let r = v.round_ties_even();
    if (I32_MIN_F..I32_MAX_F).contains(&r) {
        r as i32
    } else {
        i32::MIN
    }
}

/// Saturating cast `i32 -> i16` (the OpenCV `saturate_cast<short>(int)`).
#[inline]
pub fn saturate_i32_to_i16(v: i32) -> i16 {
    v.clamp(i16::MIN as i32, i16::MAX as i32) as i16
}

/// Saturating cast `i32 -> u8` (the OpenCV `saturate_cast<uchar>(int)`).
#[inline]
pub fn saturate_i32_to_u8(v: i32) -> u8 {
    v.clamp(0, u8::MAX as i32) as u8
}

/// Saturating cast `i16 -> u8`.
#[inline]
pub fn saturate_i16_to_u8(v: i16) -> u8 {
    v.clamp(0, u8::MAX as i16) as u8
}

/// Saturating cast `f32 -> i16` via `cvRound` (the benchmark-1 operation).
#[inline]
pub fn saturate_f32_to_i16(v: f32) -> i16 {
    saturate_i32_to_i16(cv_round(v))
}

/// Saturating cast `f32 -> u8` via `cvRound`.
#[inline]
pub fn saturate_f32_to_u8(v: f32) -> u8 {
    saturate_i32_to_u8(cv_round(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ties_to_even() {
        assert_eq!(cv_round(0.5), 0);
        assert_eq!(cv_round(1.5), 2);
        assert_eq!(cv_round(2.5), 2);
        assert_eq!(cv_round(-0.5), 0);
        assert_eq!(cv_round(-1.5), -2);
        assert_eq!(cv_round(-2.5), -2);
    }

    #[test]
    fn nan_conventions_differ() {
        assert_eq!(f32_to_i32_round_saturate(f32::NAN), 0);
        assert_eq!(f32_to_i32_round_sse(f32::NAN), i32::MIN);
        assert_eq!(f32_to_i32_truncate_saturate(f32::NAN), 0);
        assert_eq!(f32_to_i32_truncate_sse(f32::NAN), i32::MIN);
    }

    #[test]
    fn overflow_conventions_differ() {
        assert_eq!(f32_to_i32_round_saturate(1e20), i32::MAX);
        assert_eq!(f32_to_i32_round_saturate(-1e20), i32::MIN);
        assert_eq!(f32_to_i32_round_sse(1e20), i32::MIN);
        assert_eq!(f32_to_i32_round_sse(-1e20), i32::MIN);
        assert_eq!(f32_to_i32_truncate_saturate(f32::INFINITY), i32::MAX);
        assert_eq!(f32_to_i32_truncate_sse(f32::INFINITY), i32::MIN);
        assert_eq!(f32_to_i32_truncate_saturate(f32::NEG_INFINITY), i32::MIN);
    }

    #[test]
    fn in_range_values_agree_across_conventions() {
        for v in [-1000.25f32, -1.75, 0.0, 0.25, 1.0, 12345.5, 2e6] {
            assert_eq!(f32_to_i32_round_saturate(v), f32_to_i32_round_sse(v));
            assert_eq!(f32_to_i32_truncate_saturate(v), f32_to_i32_truncate_sse(v));
        }
    }

    #[test]
    fn saturating_casts() {
        assert_eq!(saturate_i32_to_i16(40000), i16::MAX);
        assert_eq!(saturate_i32_to_i16(-40000), i16::MIN);
        assert_eq!(saturate_i32_to_i16(123), 123);
        assert_eq!(saturate_i32_to_u8(-1), 0);
        assert_eq!(saturate_i32_to_u8(300), 255);
        assert_eq!(saturate_i16_to_u8(-7), 0);
        assert_eq!(saturate_i16_to_u8(270), 255);
        assert_eq!(saturate_f32_to_i16(1e9), i16::MAX);
        assert_eq!(saturate_f32_to_i16(-1e9), i16::MIN);
        assert_eq!(saturate_f32_to_i16(42.4), 42);
        assert_eq!(saturate_f32_to_u8(-3.3), 0);
        assert_eq!(saturate_f32_to_u8(254.5), 254); // ties to even
        assert_eq!(saturate_f32_to_u8(255.5), 255);
    }

    #[test]
    fn cv_round_f64_matches_f32_for_exact_values() {
        for v in [-2.5f32, -0.5, 0.5, 1.5, 1e6] {
            assert_eq!(cv_round(v), cv_round_f64(v as f64));
        }
        assert_eq!(cv_round_f64(f64::NAN), 0);
        assert_eq!(cv_round_f64(1e20), i32::MAX);
        assert_eq!(cv_round_f64(-1e20), i32::MIN);
    }
}
