//! Property-based tests over the core invariants:
//!
//! * Backend equivalence on arbitrary in-domain inputs (and a pinned test
//!   for the out-of-domain SSE/NEON divergence).
//! * Algebraic properties of the kernels (idempotence, monotonicity,
//!   linear-phase symmetry).
//! * Lane-type and intrinsic algebra in `simd-vector` / the ISA sims.

use proptest::prelude::*;
use simd_repro::kernels::prelude::*;
use simd_repro::vector::rounding;

/// Largest `f32` strictly below 2^31 (= 2^31 - 128; 2^31 itself is the
/// first value outside the conversion domain).
const MAX_IN_DOMAIN_F32: f32 = 2_147_483_520.0;

/// The conversion kernel's documented domain: values representable in
/// `i32`, i.e. |v| < 2^31. Beyond that, SSE2's `cvtps2dq` produces the
/// "integer indefinite" value instead of saturating (a quirk OpenCV's
/// SSE2 path shares — see `sse_integer_indefinite_divergence_outside_domain`
/// and the pinned tests in `convert_domain_boundary` below). Engine
/// equivalence is only claimed inside this domain, so the strategy must
/// never emit values at or beyond 2^31: a historical checked-in proptest
/// regression replayed 3361828000.0 (> 2^31) against the equivalence
/// property and permanently failed the seed suite. That case is now a
/// pinned divergence test instead.
fn any_in_domain_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1.0e5f32..1.0e5,
        -40000.0f32..40000.0,
        -MAX_IN_DOMAIN_F32..MAX_IN_DOMAIN_F32,
        Just(0.5f32),
        Just(-0.5f32),
        Just(32767.5f32),
        Just(-32768.5f32),
        Just(MAX_IN_DOMAIN_F32),
        Just(-2_147_483_648.0f32), // -2^31 exactly: still representable in i32
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn convert_rows_agree_across_engines(
        values in prop::collection::vec(any_in_domain_f32(), 0..100)
    ) {
        let mut expect = vec![0i16; values.len()];
        simd_repro::kernels::convert::convert_row_scalar(&values, &mut expect);
        for engine in Engine::ALL {
            let mut out = vec![0i16; values.len()];
            simd_repro::kernels::convert::convert_row(&values, &mut out, engine);
            prop_assert_eq!(&out, &expect, "engine {:?}", engine);
        }
    }

    #[test]
    fn convert_matches_saturating_reference(value in any_in_domain_f32()) {
        let row = [value; 8];
        let mut out = [0i16; 8];
        simd_repro::kernels::convert::convert_row(&row, &mut out, Engine::Native);
        let expect = rounding::saturate_f32_to_i16(value);
        prop_assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn sse_integer_indefinite_divergence_outside_domain(v in 2.2e9f32..3.0e38) {
        // Outside the i32 range the architectures genuinely disagree:
        // NEON saturates, SSE2 returns 0x8000_0000. Faithful reproduction
        // means the HAND SSE kernel inherits OpenCV's quirk.
        let row = [v; 8];
        let mut sse = [0i16; 8];
        simd_repro::kernels::convert::convert_row(&row, &mut sse, Engine::Sse2Sim);
        prop_assert!(sse.iter().all(|&x| x == i16::MIN));
        let mut neon = [0i16; 8];
        simd_repro::kernels::convert::convert_row(&row, &mut neon, Engine::NeonSim);
        prop_assert!(neon.iter().all(|&x| x == i16::MAX));
    }

    #[test]
    fn threshold_rows_agree_and_are_monotonic(
        values in prop::collection::vec(any::<u8>(), 0..80),
        thresh in any::<u8>(),
        maxval in any::<u8>(),
    ) {
        for ty in ThresholdType::ALL {
            let mut expect = vec![0u8; values.len()];
            simd_repro::kernels::threshold::threshold_row_scalar(
                &values, &mut expect, thresh, maxval, ty);
            for engine in Engine::ALL {
                let mut out = vec![0u8; values.len()];
                simd_repro::kernels::threshold::threshold_row(
                    &values, &mut out, thresh, maxval, ty, engine);
                prop_assert_eq!(&out, &expect, "{:?} {:?}", ty, engine);
            }
        }
        // Binary output only contains {0, maxval}.
        let mut bin = vec![0u8; values.len()];
        simd_repro::kernels::threshold::threshold_row(
            &values, &mut bin, thresh, maxval, ThresholdType::Binary, Engine::Native);
        prop_assert!(bin.iter().all(|&v| v == 0 || v == maxval));
    }

    #[test]
    fn binary_threshold_is_idempotent(
        values in prop::collection::vec(any::<u8>(), 1..64),
        thresh in any::<u8>(),
    ) {
        let mut once = vec![0u8; values.len()];
        simd_repro::kernels::threshold::threshold_row(
            &values, &mut once, thresh, 255, ThresholdType::Binary, Engine::Native);
        let mut twice = vec![0u8; values.len()];
        simd_repro::kernels::threshold::threshold_row(
            &once, &mut twice, thresh, 255, ThresholdType::Binary, Engine::Native);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn gaussian_engines_agree_on_random_images(
        seed in any::<u64>(),
        w in 1usize..40,
        h in 1usize..12,
    ) {
        let src = simd_repro::image::synthetic_image(w, h, seed);
        let mut reference = Image::new(w, h);
        gaussian_blur(&src, &mut reference, Engine::Scalar);
        for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
            let mut out = Image::new(w, h);
            gaussian_blur(&src, &mut out, engine);
            prop_assert!(out.pixels_eq(&reference), "{:?} {}x{} seed {}", engine, w, h, seed);
        }
    }

    #[test]
    fn gaussian_preserves_constants_and_bounds(
        value in any::<u8>(), w in 1usize..30, h in 1usize..10
    ) {
        let src = Image::from_fn(w, h, |_, _| value);
        let mut dst = Image::new(w, h);
        gaussian_blur(&src, &mut dst, Engine::Native);
        prop_assert!(dst.all_pixels(|p| p == value));
    }

    #[test]
    fn gaussian_output_within_input_range(
        seed in any::<u64>(), w in 2usize..30, h in 2usize..10
    ) {
        let src = simd_repro::image::synthetic_image(w, h, seed);
        let lo = src.iter_pixels().min().unwrap();
        let hi = src.iter_pixels().max().unwrap();
        let mut dst = Image::new(w, h);
        gaussian_blur(&src, &mut dst, Engine::Native);
        // A normalised non-negative kernel cannot escape the input range
        // (allow 1 count of fixed-point rounding).
        prop_assert!(dst.all_pixels(|p| p >= lo.saturating_sub(1) && p <= hi.saturating_add(1)));
    }

    #[test]
    fn sobel_engines_agree_and_invert(
        seed in any::<u64>(), w in 1usize..40, h in 1usize..12
    ) {
        let src = simd_repro::image::synthetic_image(w, h, seed);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut reference = Image::new(w, h);
            sobel(&src, &mut reference, dir, Engine::Scalar);
            for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                let mut out = Image::new(w, h);
                sobel(&src, &mut out, dir, engine);
                prop_assert!(out.pixels_eq(&reference), "{:?}/{:?}", dir, engine);
            }
        }
        // Mirroring the image horizontally negates gx at mirrored columns.
        let mirrored = Image::from_fn(w, h, |x, y| src.get(w - 1 - x, y));
        let mut gx = Image::new(w, h);
        let mut gx_m = Image::new(w, h);
        sobel(&src, &mut gx, SobelDirection::X, Engine::Native);
        sobel(&mirrored, &mut gx_m, SobelDirection::X, Engine::Native);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(gx.get(x, y), -gx_m.get(w - 1 - x, y));
            }
        }
    }

    #[test]
    fn saturating_casts_clamp(v in any::<i32>()) {
        let s = rounding::saturate_i32_to_i16(v);
        prop_assert_eq!(s as i32, v.clamp(i16::MIN as i32, i16::MAX as i32));
        let u = rounding::saturate_i32_to_u8(v);
        prop_assert_eq!(u as i32, v.clamp(0, 255));
    }

    #[test]
    fn sse_and_neon_packing_identity(lo in any::<[i32; 4]>(), hi in any::<[i32; 4]>()) {
        let sse = simd_repro::sse::_mm_packs_epi32(
            simd_repro::sse::__m128i::from_i32(lo.into()),
            simd_repro::sse::__m128i::from_i32(hi.into()),
        ).as_i16();
        let neon = simd_repro::neon::vcombine_s16(
            simd_repro::neon::vqmovn_s32(lo.into()),
            simd_repro::neon::vqmovn_s32(hi.into()),
        );
        prop_assert_eq!(sse, neon);
    }

    #[test]
    fn bitselect_is_involutive_on_complement(
        mask in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()
    ) {
        use simd_repro::neon::{vbslq_u8, vmvnq_u8};
        let m: simd_repro::vector::U8x16 = mask.into();
        let sel = vbslq_u8(m, a.into(), b.into());
        let sel_inv = vbslq_u8(vmvnq_u8(m), b.into(), a.into());
        prop_assert_eq!(sel, sel_inv);
    }

    #[test]
    fn bmp_gray_roundtrip(seed in any::<u64>(), w in 1usize..50, h in 1usize..20) {
        let img = simd_repro::image::synthetic_image(w, h, seed);
        let bytes = simd_repro::image::bmp::encode_gray(&img);
        match simd_repro::image::bmp::decode(&bytes).unwrap() {
            simd_repro::image::bmp::Decoded::Gray(out) => prop_assert!(out.pixels_eq(&img)),
            _ => prop_assert!(false, "expected gray"),
        }
    }
}

/// Pinned behaviour at and around the 2^31 conversion-domain boundary.
///
/// These replace the old checked-in `proptests.proptest-regressions` entry
/// (shrunk value 3361828000.0): that value is *outside* the documented
/// |v| < 2^31 domain of `convert_f32_to_i16`, where SSE2 and NEON
/// genuinely disagree by design, so replaying it against the
/// all-engines-agree property made the suite permanently red. The
/// divergence itself is real, faithful to the hardware, and pinned here.
mod convert_domain_boundary {
    use simd_repro::kernels::prelude::*;
    use simd_repro::vector::rounding;

    /// Runs one value through a width-8 row on the given engine.
    fn convert8(v: f32, engine: Engine) -> [i16; 8] {
        let row = [v; 8];
        let mut out = [0i16; 8];
        simd_repro::kernels::convert::convert_row(&row, &mut out, engine);
        out
    }

    /// The old regression value: out of domain, engines disagree by design.
    #[test]
    fn historical_regression_value_diverges_by_design() {
        let v = 3_361_828_000.0f32;
        assert!(v >= 2_147_483_648.0, "value must lie outside the domain");
        // SSE2 `cvtps2dq` yields the integer indefinite 0x8000_0000, which
        // `packs` then saturates to i16::MIN.
        assert_eq!(convert8(v, Engine::Sse2Sim), [i16::MIN; 8]);
        // NEON `vcvtq` saturates to i32::MAX, then `vqmovn` to i16::MAX.
        assert_eq!(convert8(v, Engine::NeonSim), [i16::MAX; 8]);
    }

    /// 2^31 - 128: the largest f32 below 2^31. In domain — every engine
    /// must agree with the scalar saturating reference.
    #[test]
    fn last_value_below_2_pow_31_is_in_domain() {
        let v = 2_147_483_520.0f32;
        let expect = rounding::saturate_f32_to_i16(v);
        assert_eq!(expect, i16::MAX);
        for engine in Engine::ALL {
            assert_eq!(convert8(v, engine), [expect; 8], "{engine:?}");
        }
    }

    /// 2^31 exactly: the first value outside the domain. SSE2 flips to the
    /// integer indefinite; NEON saturates.
    #[test]
    fn first_value_at_2_pow_31_diverges() {
        let v = 2_147_483_648.0f32;
        assert_eq!(convert8(v, Engine::Sse2Sim), [i16::MIN; 8]);
        assert_eq!(convert8(v, Engine::NeonSim), [i16::MAX; 8]);
    }

    /// -2^31 exactly: representable in i32, so still in domain; all
    /// engines agree on i16::MIN.
    #[test]
    fn negative_2_pow_31_is_in_domain() {
        let v = -2_147_483_648.0f32;
        for engine in Engine::ALL {
            assert_eq!(convert8(v, engine), [i16::MIN; 8], "{engine:?}");
        }
    }

    /// Below -2^31 the paths differ mechanically (indefinite vs saturate)
    /// but land on the same i16: both i16::MIN. Pinned so a refactor that
    /// breaks one path shows up even though the other masks it above.
    #[test]
    fn below_negative_2_pow_31_engines_coincide() {
        let v = -3_361_828_000.0f32;
        assert_eq!(convert8(v, Engine::Sse2Sim), [i16::MIN; 8]);
        assert_eq!(convert8(v, Engine::NeonSim), [i16::MIN; 8]);
    }
}
