//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`,
//! `gen`, `gen_range`, `gen_bool`, `fill` — over a SplitMix64 core. The
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine here: every consumer treats the generator as an arbitrary
//! deterministic source (synthetic images are compared engine-vs-engine,
//! never against golden pixel values), and determinism per seed is
//! preserved across runs and platforms.

use std::ops::Range;

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from the full domain of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types with a uniform range sampler (`rand::distributions::uniform::SampleUniform` subset).
pub trait SampleUniform: Sized {
    /// Samples uniformly from the half-open range `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
///
/// The single blanket impl over `Range<T>` (rather than one impl per
/// element type) matters for inference: it lets the element type of an
/// unsuffixed float literal range be fixed by how the sampled value is
/// used, exactly as upstream.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_range(self.start, self.end, rng)
    }
}

/// The user-facing generator interface (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, like `rand` 0.8).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Fills a byte buffer with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, 24 bits of precision (as upstream).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, 53 bits of precision (as upstream).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| T::sample(rng))
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as i128 - start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        start + f32::sample(rng) * (end - start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
}

/// Named RNG types (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64 (Steele, Lea & Flood 2014).
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs for why
    /// that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(6..12);
            assert!((6..12).contains(&v));
            let f: f32 = rng.gen_range(-40.0f32..40.0);
            assert!((-40.0..40.0).contains(&f));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn arrays_sample_elementwise() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: [i32; 4] = rng.gen();
        let b: [i32; 4] = rng.gen();
        assert_ne!(a, b);
    }
}
