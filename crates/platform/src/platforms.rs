//! The ten evaluation platforms of Table I.
//!
//! Table I columns (name, codename, launch, threads/cores/GHz, caches,
//! memory, SIMD extensions) are transcribed from the paper. The remaining
//! microarchitectural parameters (`simd_op_cycles`, `libcall_cycles`,
//! `stream_gbps`, …) are the model's calibration: chosen from the public
//! microarchitecture record (in-order vs OoO, NEON datapath width, memory
//! technology class) and tuned so the predicted HAND:AUTO ratios land in
//! the bands the paper reports. They are data, not code — an alternative
//! calibration is a one-struct edit.

use crate::spec::{Isa, Microarch, PlatformSpec};

/// All ten platforms in the paper's column order (Intel first).
pub fn all_platforms() -> Vec<PlatformSpec> {
    vec![
        atom_d510(),
        core2_q9400(),
        core_i7_2820qm(),
        core_i5_3360m(),
        ti_dm3730(),
        exynos_3110(),
        omap_4460(),
        exynos_4412(),
        odroid_x(),
        tegra_t30(),
    ]
}

/// Looks a platform up by its short label or full name (case-insensitive).
pub fn platform_by_name(name: &str) -> Option<PlatformSpec> {
    let needle = name.to_ascii_lowercase();
    all_platforms()
        .into_iter()
        .find(|p| p.short.to_ascii_lowercase() == needle || p.name.to_ascii_lowercase() == needle)
}

/// Intel Atom D510 "Pineview" — the in-order embedded x86 part. Dual-issue
/// in-order pipeline; its SSE unit splits 128-bit ops.
pub fn atom_d510() -> PlatformSpec {
    PlatformSpec {
        name: "Intel Atom D510",
        short: "Atom-D510",
        codename: "Pineview",
        launched: "Q1 10",
        isa: Isa::Sse2,
        ghz: 1.66,
        threads: 4,
        cores: 2,
        uarch: Microarch::InOrder,
        simd_op_cycles: 1.8,
        libcall_cycles: 30.0,
        branch_cycles: 2.0,
        load_use_stall: 1.0,
        l1d_kb: 24,
        l2_kb: 1024,
        l3_kb: 0,
        memory: "4GB DDR2",
        simd_ext: "SSE2/SSE3",
        stream_gbps: 3.0,
        tdp_watts: 13.0,
        auto_quality: 1.0,
    }
}

/// Intel Core 2 Quad Q9400 "Yorkfield" — the desktop representative.
pub fn core2_q9400() -> PlatformSpec {
    PlatformSpec {
        name: "Intel Core 2 Quad Q9400",
        short: "Core2-Q9400",
        codename: "Yorkfield",
        launched: "Q3 08",
        isa: Isa::Sse2,
        ghz: 2.66,
        threads: 4,
        cores: 4,
        uarch: Microarch::OutOfOrder { ilp: 2.8 },
        simd_op_cycles: 1.0,
        libcall_cycles: 25.0,
        branch_cycles: 0.5,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 3072,
        l3_kb: 0,
        memory: "8GB DDR3",
        simd_ext: "SSE*",
        stream_gbps: 4.5,
        tdp_watts: 95.0,
        // The Q9400 shows the smallest Intel convert speed-up in the paper
        // (1.34x): its gcc output schedules unusually well. Residual factor.
        auto_quality: 0.8,
    }
}

/// Intel Core i7-2820QM "Sandy Bridge" — laptop, out-of-order, AVX-capable
/// (the paper compiles for SSE2 on all Intel parts).
pub fn core_i7_2820qm() -> PlatformSpec {
    PlatformSpec {
        name: "Intel Core i7 2820QM",
        short: "i7-2820QM",
        codename: "Sandy Bridge",
        launched: "Q1 11",
        isa: Isa::Sse2,
        ghz: 2.3,
        threads: 8,
        cores: 4,
        uarch: Microarch::OutOfOrder { ilp: 3.2 },
        simd_op_cycles: 1.0,
        libcall_cycles: 20.0,
        branch_cycles: 0.5,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 256,
        l3_kb: 8192,
        memory: "8GB DDR3",
        simd_ext: "SSE*/AVX",
        stream_gbps: 14.0,
        tdp_watts: 45.0,
        auto_quality: 1.0,
    }
}

/// Intel Core i5-3360M "Ivy Bridge" — the fastest clock in the study.
pub fn core_i5_3360m() -> PlatformSpec {
    PlatformSpec {
        name: "Intel Core i5 3360M",
        short: "i5-3360M",
        codename: "Ivy Bridge",
        launched: "Q2 12",
        isa: Isa::Sse2,
        ghz: 2.8,
        threads: 4,
        cores: 2,
        uarch: Microarch::OutOfOrder { ilp: 3.4 },
        simd_op_cycles: 1.0,
        libcall_cycles: 18.0,
        branch_cycles: 0.5,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 256,
        l3_kb: 3072,
        memory: "16GB DDR3",
        simd_ext: "SSE*/AVX",
        stream_gbps: 16.0,
        tdp_watts: 35.0,
        auto_quality: 1.0,
    }
}

/// TI DM3730 "DaVinci" — Cortex-A8 at 0.8 GHz (Angstrom Linux board).
pub fn ti_dm3730() -> PlatformSpec {
    PlatformSpec {
        name: "TI DM 3730",
        short: "DM3730",
        codename: "DaVinci",
        launched: "Q2 10",
        isa: Isa::Neon,
        ghz: 0.8,
        threads: 1,
        cores: 1,
        uarch: Microarch::InOrder,
        simd_op_cycles: 2.0, // A8 NEON datapath is 64-bit wide
        libcall_cycles: 78.0,
        branch_cycles: 2.0,
        load_use_stall: 1.0,
        l1d_kb: 32,
        l2_kb: 256,
        l3_kb: 0,
        memory: "512MB DDR",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 0.55,
        tdp_watts: 1.5,
        auto_quality: 1.0,
    }
}

/// Samsung Exynos 3110 — Cortex-A8 at 1 GHz (Nexus S smart-phone). The
/// largest convert speed-up in the study (13×): an in-order core paying a
/// per-pixel `lrint` library call in the AUTO build.
pub fn exynos_3110() -> PlatformSpec {
    PlatformSpec {
        name: "Samsung Exynos 3110",
        short: "Exynos-3110",
        codename: "Exynos 3 Single",
        launched: "Q1 11",
        isa: Isa::Neon,
        ghz: 1.0,
        threads: 1,
        cores: 1,
        uarch: Microarch::InOrder,
        simd_op_cycles: 2.0,
        libcall_cycles: 78.0,
        branch_cycles: 2.0,
        load_use_stall: 1.0,
        l1d_kb: 32,
        l2_kb: 512,
        l3_kb: 0,
        memory: "512MB LPDDR",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 0.9,
        tdp_watts: 1.2,
        auto_quality: 1.0,
    }
}

/// TI OMAP 4460 — dual Cortex-A9 at 1.2 GHz (Galaxy Nexus smart-phone).
pub fn omap_4460() -> PlatformSpec {
    PlatformSpec {
        name: "TI OMAP 4460",
        short: "OMAP4460",
        codename: "Omap",
        launched: "Q1 11",
        isa: Isa::Neon,
        ghz: 1.2,
        threads: 2,
        cores: 2,
        uarch: Microarch::OutOfOrder { ilp: 1.8 },
        simd_op_cycles: 2.0,
        libcall_cycles: 45.0,
        branch_cycles: 0.8,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 1024,
        l3_kb: 0,
        memory: "1GB LPDDR2",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 1.3,
        tdp_watts: 1.9,
        auto_quality: 1.0,
    }
}

/// Samsung Exynos 4412 — quad Cortex-A9 at 1.4 GHz (Galaxy S3), the
/// fastest ARM platform in the study.
pub fn exynos_4412() -> PlatformSpec {
    PlatformSpec {
        name: "Samsung Exynos 4412",
        short: "Exynos-4412",
        codename: "Exynos 4 Quad",
        launched: "Q1 12",
        isa: Isa::Neon,
        ghz: 1.4,
        threads: 4,
        cores: 4,
        uarch: Microarch::OutOfOrder { ilp: 1.8 },
        simd_op_cycles: 2.0,
        libcall_cycles: 45.0,
        branch_cycles: 0.8,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 1024,
        l3_kb: 0,
        memory: "1GB LPDDR2",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 1.5,
        tdp_watts: 2.2,
        auto_quality: 1.0,
    }
}

/// ODROID-X — the same Exynos 4412 silicon under-clocked to 1.3 GHz for a
/// direct comparison against the Tegra T30 (the paper's configuration).
pub fn odroid_x() -> PlatformSpec {
    PlatformSpec {
        name: "Odroid-X Exynos 4412",
        short: "ODROID-X",
        codename: "ODROID-X",
        launched: "Q2 12",
        isa: Isa::Neon,
        ghz: 1.3,
        threads: 4,
        cores: 4,
        uarch: Microarch::OutOfOrder { ilp: 1.8 },
        simd_op_cycles: 2.0,
        libcall_cycles: 45.0,
        branch_cycles: 0.8,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 1024,
        l3_kb: 0,
        memory: "1GB LPDDR2",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 1.5,
        tdp_watts: 2.5,
        auto_quality: 1.0,
    }
}

/// NVIDIA Tegra T30 (CARMA kit) — quad Cortex-A9 at 1.3 GHz. The paper's
/// HAND outlier: despite the same core and clock as the ODROID-X (and
/// nominally faster DDR3L), its NEON results trail badly — "raising
/// questions about what bottlenecks are preventing NEON from performing as
/// well". The model encodes that observation as a slower effective NEON
/// issue rate and a weaker sustainable streaming path.
pub fn tegra_t30() -> PlatformSpec {
    PlatformSpec {
        name: "NVIDIA Tegra T30",
        short: "Tegra-T30",
        codename: "Tegra 3, Kal-El",
        launched: "Q1 11",
        isa: Isa::Neon,
        ghz: 1.3,
        threads: 4,
        cores: 4,
        uarch: Microarch::OutOfOrder { ilp: 1.8 },
        simd_op_cycles: 3.2,
        libcall_cycles: 45.0,
        branch_cycles: 0.8,
        load_use_stall: 0.0,
        l1d_kb: 32,
        l2_kb: 1024,
        l3_kb: 0,
        memory: "2GB DDR3L",
        simd_ext: "VFPv3/NEON",
        stream_gbps: 0.65,
        tdp_watts: 3.0,
        auto_quality: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_platforms_four_intel_six_arm() {
        let all = all_platforms();
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|p| p.isa == Isa::Sse2).count(), 4);
        assert_eq!(all.iter().filter(|p| p.isa == Isa::Neon).count(), 6);
    }

    #[test]
    fn lookup_by_short_and_full_name() {
        assert!(platform_by_name("Atom-D510").is_some());
        assert!(platform_by_name("intel atom d510").is_some());
        assert!(platform_by_name("Tegra-T30").is_some());
        assert!(platform_by_name("no-such-chip").is_none());
    }

    #[test]
    fn table1_transcription_spot_checks() {
        let atom = atom_d510();
        assert_eq!(atom.l1d_kb, 24); // the unusual Pineview 24KB D-cache
        assert_eq!(atom.l2_kb, 1024);
        assert!((atom.ghz - 1.66).abs() < 1e-9);
        assert!(atom.uarch.is_in_order());

        let i7 = core_i7_2820qm();
        assert_eq!(i7.l3_kb, 8192);
        assert_eq!(i7.threads, 8);
        assert!(!i7.uarch.is_in_order());

        let ex = exynos_4412();
        assert!((ex.ghz - 1.4).abs() < 1e-9);
        assert_eq!(ex.cores, 4);

        let odroid = odroid_x();
        assert!((odroid.ghz - 1.3).abs() < 1e-9); // underclocked per paper

        let tegra = tegra_t30();
        assert!((tegra.ghz - 1.3).abs() < 1e-9);
        assert!(tegra.simd_op_cycles > odroid.simd_op_cycles);
    }

    #[test]
    fn in_order_parts_are_atom_and_a8() {
        for p in all_platforms() {
            let expect_in_order = matches!(p.short, "Atom-D510" | "DM3730" | "Exynos-3110");
            assert_eq!(p.uarch.is_in_order(), expect_in_order, "{}", p.name);
        }
    }

    #[test]
    fn clock_ordering_matches_table1() {
        let clocks: Vec<(String, f64)> = all_platforms()
            .iter()
            .map(|p| (p.short.to_string(), p.ghz))
            .collect();
        let get = |s: &str| clocks.iter().find(|(n, _)| n == s).unwrap().1;
        assert!(get("i5-3360M") > get("Core2-Q9400"));
        assert!(get("Core2-Q9400") > get("i7-2820QM"));
        assert!(get("Exynos-4412") > get("ODROID-X"));
        assert_eq!(get("ODROID-X"), get("Tegra-T30"));
        assert!(get("DM3730") < get("Exynos-3110"));
    }
}
