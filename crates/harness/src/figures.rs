//! Figure 2–6 series: HAND:AUTO speed-up per platform per image size, with
//! an ASCII bar rendering mirroring the paper's grouped bar charts.

use pixelimage::Resolution;
use platform_model::{all_platforms, speedup, Kernel};
use std::fmt::Write as _;

/// One platform's speed-up series across the four image sizes.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Platform short name.
    pub platform: String,
    /// `(resolution label, speed-up)` for each image size, smallest first.
    pub points: Vec<(String, f64)>,
}

/// A full figure: one series per platform.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure caption (matching the paper's numbering).
    pub title: String,
    /// Per-platform series.
    pub series: Vec<FigureSeries>,
}

impl Figure {
    /// Largest speed-up in the figure.
    pub fn max_speedup(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, v)| v))
            .fold(0.0, f64::max)
    }

    /// Smallest speed-up in the figure.
    pub fn min_speedup(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, v)| v))
            .fold(f64::INFINITY, f64::min)
    }

    /// CSV form: platform, one column per size.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("platform");
        for (label, _) in &self.series[0].points {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&s.platform);
            for (_, v) in &s.points {
                write!(out, ",{v:.2}").unwrap();
            }
            out.push('\n');
        }
        out
    }
}

/// The paper's figure number for each kernel's speed-up chart.
pub fn figure_number(kernel: Kernel) -> u32 {
    match kernel {
        Kernel::Convert => 2,
        Kernel::Threshold => 3,
        Kernel::Gaussian => 4,
        Kernel::Sobel => 5,
        Kernel::Edge => 6,
    }
}

/// Builds one figure (simulated-platform mode).
pub fn figure(kernel: Kernel) -> Figure {
    let series = all_platforms()
        .iter()
        .map(|p| FigureSeries {
            platform: p.short.to_string(),
            points: Resolution::ALL
                .iter()
                .map(|&res| (res.label().to_string(), speedup(p, kernel, res)))
                .collect(),
        })
        .collect();
    Figure {
        title: format!(
            "Figure {}: {} relative speed-up factor",
            figure_number(kernel),
            kernel.label()
        ),
        series,
    }
}

/// Renders a figure as grouped ASCII bars (one row per platform/size).
pub fn render_figure(fig: &Figure) -> String {
    let max = fig.max_speedup().max(1.0);
    let bar_width = 48usize;
    let mut out = String::new();
    writeln!(out, "{}", fig.title).unwrap();
    for series in &fig.series {
        writeln!(out, "  {}", series.platform).unwrap();
        for (label, value) in &series.points {
            let filled = ((value / max) * bar_width as f64).round() as usize;
            writeln!(
                out,
                "    {:>9} |{}{}| {:.2}x",
                label,
                "#".repeat(filled.min(bar_width)),
                " ".repeat(bar_width - filled.min(bar_width)),
                value
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_numbers_match_paper() {
        assert_eq!(figure_number(Kernel::Convert), 2);
        assert_eq!(figure_number(Kernel::Threshold), 3);
        assert_eq!(figure_number(Kernel::Gaussian), 4);
        assert_eq!(figure_number(Kernel::Sobel), 5);
        assert_eq!(figure_number(Kernel::Edge), 6);
    }

    #[test]
    fn figure2_shape_matches_paper_bands() {
        let fig = figure(Kernel::Convert);
        assert_eq!(fig.series.len(), 10);
        assert_eq!(fig.series[0].points.len(), 4);
        // ARM max around 13x, overall min above 1.
        assert!(fig.max_speedup() > 10.0 && fig.max_speedup() < 16.0);
        assert!(fig.min_speedup() >= 1.0);
    }

    #[test]
    fn figures_3_to_6_have_smaller_ceilings_than_figure2() {
        let convert_max = figure(Kernel::Convert).max_speedup();
        for kernel in [
            Kernel::Threshold,
            Kernel::Gaussian,
            Kernel::Sobel,
            Kernel::Edge,
        ] {
            let fig = figure(kernel);
            assert!(
                fig.max_speedup() < convert_max,
                "{kernel:?} max {} should be below convert max {convert_max}",
                fig.max_speedup()
            );
            // Paper: "the maximum speed-up observed in Figures 3-6 is about
            // 5.5 across all platforms".
            assert!(fig.max_speedup() < 6.5, "{kernel:?}");
        }
    }

    #[test]
    fn speedups_are_size_stable_within_platform() {
        // Paper: "Within a given processor type the results are remarkably
        // similar for all image sizes."
        let fig = figure(Kernel::Convert);
        for series in &fig.series {
            let values: Vec<f64> = series.points.iter().map(|&(_, v)| v).collect();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(0.0, f64::max);
            assert!(
                max / min < 1.5,
                "{}: speed-up varies too much across sizes ({min}..{max})",
                series.platform
            );
        }
    }

    #[test]
    fn csv_and_ascii_render() {
        let fig = figure(Kernel::Threshold);
        let csv = fig.to_csv();
        assert!(csv.starts_with("platform,640x480,"));
        assert_eq!(csv.lines().count(), 11);
        let text = render_figure(&fig);
        assert!(text.contains("Figure 3"));
        assert!(text.contains("Tegra-T30"));
        assert!(text.contains('#'));
    }
}
