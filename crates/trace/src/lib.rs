//! Micro-op counting and instruction-mix analysis.
//!
//! The paper's Section V compares the *instruction streams* that the two code
//! generation strategies (hand-written intrinsics vs. gcc auto-vectorization)
//! produce for the same kernel: the intrinsic NEON loop retires 14 operations
//! per 8 output pixels, while the "auto-vectorized" loop degenerates into a
//! mostly scalar per-pixel sequence that includes a `lrint` library call.
//!
//! This crate is the substrate that makes the same analysis possible in the
//! reproduction:
//!
//! * [`OpClass`] classifies micro-ops the way the paper's disassembly does
//!   (SIMD vs. scalar, load/store vs. ALU vs. convert, branches, libcalls).
//! * Thread-local [counters](count) are incremented by every simulated
//!   intrinsic in the `sse-sim` and `neon-sim` crates, so running a HAND
//!   kernel under a [`TraceGuard`] yields its *measured* instruction mix.
//! * [`OpMix`] aggregates counts and computes per-pixel figures; the
//!   [`analysis`] module renders the Section V style report.
//!
//! Counting is off by default and costs one thread-local boolean test per
//! intrinsic call when disabled.

#![warn(missing_docs)]

pub mod analysis;
pub mod mix;

use std::cell::{Cell, RefCell};

pub use mix::OpMix;

/// Classification of a single micro-operation, mirroring the categories used
/// in the paper's assembly analysis (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// SIMD vector load (`vld1q`, `movups`, ...).
    SimdLoad,
    /// SIMD vector store (`vst1q`, `movups` to memory, ...).
    SimdStore,
    /// SIMD arithmetic/logical/compare/select/shuffle operation.
    SimdAlu,
    /// SIMD data-type conversion (`vcvt`, `cvtps2dq`) or narrowing/widening
    /// (`vqmovn`, `packssdw`).
    SimdConvert,
    /// Scalar load from memory.
    ScalarLoad,
    /// Scalar store to memory.
    ScalarStore,
    /// Scalar integer/float ALU operation.
    ScalarAlu,
    /// Scalar data-type conversion (e.g. `vcvt.f64.f32` in the gcc listing).
    ScalarConvert,
    /// Conditional or unconditional branch.
    Branch,
    /// Call into a support library (the `bl lrint` of the gcc ARM listing).
    LibCall,
    /// Address arithmetic / loop-control overhead (`add r3, #16`, `cmp`, ...).
    AddrArith,
}

impl OpClass {
    /// All classes, in display order.
    pub const ALL: [OpClass; 11] = [
        OpClass::SimdLoad,
        OpClass::SimdStore,
        OpClass::SimdAlu,
        OpClass::SimdConvert,
        OpClass::ScalarLoad,
        OpClass::ScalarStore,
        OpClass::ScalarAlu,
        OpClass::ScalarConvert,
        OpClass::Branch,
        OpClass::LibCall,
        OpClass::AddrArith,
    ];

    /// Index into a fixed-size counter array.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic used in reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpClass::SimdLoad => "simd.ld",
            OpClass::SimdStore => "simd.st",
            OpClass::SimdAlu => "simd.alu",
            OpClass::SimdConvert => "simd.cvt",
            OpClass::ScalarLoad => "scal.ld",
            OpClass::ScalarStore => "scal.st",
            OpClass::ScalarAlu => "scal.alu",
            OpClass::ScalarConvert => "scal.cvt",
            OpClass::Branch => "branch",
            OpClass::LibCall => "libcall",
            OpClass::AddrArith => "addr",
        }
    }

    /// True for the four SIMD classes.
    pub const fn is_simd(self) -> bool {
        matches!(
            self,
            OpClass::SimdLoad | OpClass::SimdStore | OpClass::SimdAlu | OpClass::SimdConvert
        )
    }

    /// True for classes that touch memory.
    pub const fn is_memory(self) -> bool {
        matches!(
            self,
            OpClass::SimdLoad | OpClass::SimdStore | OpClass::ScalarLoad | OpClass::ScalarStore
        )
    }
}

/// Number of distinct [`OpClass`] values.
pub const NUM_OP_CLASSES: usize = 11;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNTS: RefCell<[u64; NUM_OP_CLASSES]> = const { RefCell::new([0; NUM_OP_CLASSES]) };
}

/// Returns whether op counting is currently enabled on this thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Enables or disables op counting on this thread.
///
/// Prefer [`TraceGuard`] which restores the previous state on drop.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Records one micro-op of the given class (no-op unless counting is enabled).
///
/// This is called by every simulated intrinsic in `sse-sim` / `neon-sim` and
/// may also be called by instrumented scalar code.
#[inline]
pub fn count(class: OpClass) {
    if enabled() {
        COUNTS.with(|c| c.borrow_mut()[class.index()] += 1);
    }
}

/// Records `n` micro-ops of the given class at once.
#[inline]
pub fn count_n(class: OpClass, n: u64) {
    if enabled() {
        COUNTS.with(|c| c.borrow_mut()[class.index()] += n);
    }
}

/// Resets all counters on this thread to zero.
pub fn reset() {
    COUNTS.with(|c| *c.borrow_mut() = [0; NUM_OP_CLASSES]);
}

/// Returns the current counter values without resetting them.
pub fn snapshot() -> OpMix {
    COUNTS.with(|c| OpMix::from_counts(*c.borrow()))
}

/// Returns the current counter values and resets them to zero.
pub fn take() -> OpMix {
    COUNTS.with(|c| {
        let mut guard = c.borrow_mut();
        let mix = OpMix::from_counts(*guard);
        *guard = [0; NUM_OP_CLASSES];
        mix
    })
}

/// RAII guard that enables op counting for its lifetime, restoring the prior
/// enabled state (and leaving the counters untouched) on drop.
///
/// ```
/// use op_trace::{OpClass, TraceGuard};
/// op_trace::reset();
/// {
///     let _g = TraceGuard::new();
///     op_trace::count(OpClass::SimdAlu);
/// }
/// // Counting is disabled again here.
/// op_trace::count(OpClass::SimdAlu);
/// assert_eq!(op_trace::take().get(OpClass::SimdAlu), 1);
/// ```
pub struct TraceGuard {
    previous: bool,
}

impl TraceGuard {
    /// Enables counting and remembers the previous state.
    pub fn new() -> Self {
        let previous = enabled();
        set_enabled(true);
        TraceGuard { previous }
    }
}

impl Default for TraceGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        set_enabled(self.previous);
    }
}

/// Runs `f` with counting enabled (counters reset first) and returns both the
/// function result and the recorded mix.
pub fn trace<R>(f: impl FnOnce() -> R) -> (R, OpMix) {
    reset();
    let result = {
        let _guard = TraceGuard::new();
        f()
    };
    (result, take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_disabled_by_default() {
        reset();
        count(OpClass::SimdAlu);
        assert_eq!(take().total(), 0);
    }

    #[test]
    fn guard_enables_and_restores() {
        reset();
        assert!(!enabled());
        {
            let _g = TraceGuard::new();
            assert!(enabled());
            count(OpClass::SimdLoad);
            count(OpClass::SimdLoad);
            count(OpClass::Branch);
        }
        assert!(!enabled());
        let mix = take();
        assert_eq!(mix.get(OpClass::SimdLoad), 2);
        assert_eq!(mix.get(OpClass::Branch), 1);
        assert_eq!(mix.total(), 3);
    }

    #[test]
    fn nested_guards_restore_outer_state() {
        reset();
        let _outer = TraceGuard::new();
        {
            let _inner = TraceGuard::new();
            assert!(enabled());
        }
        // Inner drop must not disable the outer guard's tracing.
        assert!(enabled());
        drop(_outer);
        assert!(!enabled());
    }

    #[test]
    fn trace_helper_returns_result_and_mix() {
        let (value, mix) = trace(|| {
            count_n(OpClass::ScalarAlu, 5);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(mix.get(OpClass::ScalarAlu), 5);
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn memory_and_simd_predicates() {
        assert!(OpClass::SimdLoad.is_simd());
        assert!(OpClass::SimdLoad.is_memory());
        assert!(OpClass::SimdAlu.is_simd());
        assert!(!OpClass::SimdAlu.is_memory());
        assert!(!OpClass::ScalarAlu.is_simd());
        assert!(OpClass::ScalarStore.is_memory());
        assert!(!OpClass::Branch.is_memory());
    }
}
