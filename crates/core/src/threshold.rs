//! Benchmark 2 — binary image thresholding (paper Section III-A.2,
//! Algorithm 1), plus the other four OpenCV threshold types.

use crate::dispatch::Engine;
use crate::error::{validate_pair, KernelResult};
use pixelimage::Image;

/// The five OpenCV threshold types. The paper's benchmark uses
/// [`ThresholdType::Binary`]; `Trunc` is the variant its Algorithm 1
/// pseudocode sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdType {
    /// `dst = src > thresh ? maxval : 0`
    Binary,
    /// `dst = src > thresh ? 0 : maxval`
    BinaryInv,
    /// `dst = src > thresh ? thresh : src`
    Trunc,
    /// `dst = src > thresh ? src : 0`
    ToZero,
    /// `dst = src > thresh ? 0 : src`
    ToZeroInv,
}

impl ThresholdType {
    /// All five types.
    pub const ALL: [ThresholdType; 5] = [
        ThresholdType::Binary,
        ThresholdType::BinaryInv,
        ThresholdType::Trunc,
        ThresholdType::ToZero,
        ThresholdType::ToZeroInv,
    ];

    /// The scalar definition (used as the reference for every backend).
    #[inline]
    pub fn apply(self, src: u8, thresh: u8, maxval: u8) -> u8 {
        match self {
            ThresholdType::Binary => {
                if src > thresh {
                    maxval
                } else {
                    0
                }
            }
            ThresholdType::BinaryInv => {
                if src > thresh {
                    0
                } else {
                    maxval
                }
            }
            ThresholdType::Trunc => {
                if src > thresh {
                    thresh
                } else {
                    src
                }
            }
            ThresholdType::ToZero => {
                if src > thresh {
                    src
                } else {
                    0
                }
            }
            ThresholdType::ToZeroInv => {
                if src > thresh {
                    0
                } else {
                    src
                }
            }
        }
    }
}

/// Thresholds a `u8` image with the chosen engine.
pub fn threshold_u8(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
    engine: Engine,
) {
    if let Err(e) = try_threshold_u8(src, dst, thresh, maxval, ty, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`threshold_u8`]: validates geometry instead of
/// asserting.
pub fn try_threshold_u8(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
    engine: Engine,
) -> KernelResult {
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    for y in 0..src.height() {
        threshold_row(src.row(y), dst.row_mut(y), thresh, maxval, ty, engine);
    }
    Ok(())
}

/// Thresholds one row with the chosen engine.
#[inline]
pub fn threshold_row(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
    engine: Engine,
) {
    match engine {
        Engine::Scalar => threshold_row_scalar(src, dst, thresh, maxval, ty),
        Engine::Autovec => threshold_row_autovec(src, dst, thresh, maxval, ty),
        Engine::Sse2Sim => threshold_row_sse2_sim(src, dst, thresh, maxval, ty),
        Engine::NeonSim => threshold_row_neon_sim(src, dst, thresh, maxval, ty),
        Engine::Native => threshold_row_native(src, dst, thresh, maxval, ty),
    }
}

/// Per-pixel branchy loop — the OpenCV generic fallback.
pub fn threshold_row_scalar(src: &[u8], dst: &mut [u8], thresh: u8, maxval: u8, ty: ThresholdType) {
    assert_eq!(src.len(), dst.len());
    for x in 0..src.len() {
        dst[x] = ty.apply(src[x], thresh, maxval);
    }
}

/// Branch-free formulation the auto-vectorizer can turn into compares and
/// selects.
pub fn threshold_row_autovec(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    assert_eq!(src.len(), dst.len());
    match ty {
        ThresholdType::Binary => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = if s > thresh { maxval } else { 0 };
            }
        }
        ThresholdType::BinaryInv => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = if s > thresh { 0 } else { maxval };
            }
        }
        ThresholdType::Trunc => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = s.min(thresh);
            }
        }
        ThresholdType::ToZero => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = if s > thresh { s } else { 0 };
            }
        }
        ThresholdType::ToZeroInv => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = if s > thresh { 0 } else { s };
            }
        }
    }
}

/// The OpenCV SSE2 threshold loop: unsigned compare via the sign-flip trick,
/// then mask arithmetic.
pub fn threshold_row_sse2_sim(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    use sse_sim::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let sign = _mm_set1_epi8(-128i8);
    let thresh_s = _mm_xor_si128(_mm_set1_epi8(thresh as i8), sign);
    let maxval_v = _mm_set1_epi8(maxval as i8);
    let thresh_v = _mm_set1_epi8(thresh as i8);
    let mut x = 0;
    while x + 16 <= width {
        let v = _mm_loadu_si128(&src[x..]);
        let v_s = _mm_xor_si128(v, sign);
        let gt = _mm_cmpgt_epi8(v_s, thresh_s); // mask: src > thresh
        let out = match ty {
            ThresholdType::Binary => _mm_and_si128(gt, maxval_v),
            ThresholdType::BinaryInv => _mm_andnot_si128(gt, maxval_v),
            ThresholdType::Trunc => _mm_min_epu8(v, thresh_v),
            ThresholdType::ToZero => _mm_and_si128(gt, v),
            ThresholdType::ToZeroInv => _mm_andnot_si128(gt, v),
        };
        _mm_storeu_si128(&mut dst[x..], out);
        x += 16;
    }
    threshold_row_scalar(&src[x..], &mut dst[x..], thresh, maxval, ty);
}

/// The NEON threshold loop: direct unsigned compare plus bitwise select.
pub fn threshold_row_neon_sim(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    use neon_sim::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let thresh_v = vdupq_n_u8(thresh);
    let maxval_v = vdupq_n_u8(maxval);
    let zero = vdupq_n_u8(0);
    let mut x = 0;
    while x + 16 <= width {
        let v = vld1q_u8(&src[x..]);
        let gt = vcgtq_u8(v, thresh_v);
        let out = match ty {
            ThresholdType::Binary => vbslq_u8(gt, maxval_v, zero),
            ThresholdType::BinaryInv => vbslq_u8(gt, zero, maxval_v),
            ThresholdType::Trunc => vminq_u8(v, thresh_v),
            ThresholdType::ToZero => vbslq_u8(gt, v, zero),
            ThresholdType::ToZeroInv => vbslq_u8(gt, zero, v),
        };
        vst1q_u8(&mut dst[x..], out);
        x += 16;
    }
    threshold_row_scalar(&src[x..], &mut dst[x..], thresh, maxval, ty);
}

/// The hand-tuned loop on the host's real SIMD unit.
pub fn threshold_row_native(src: &[u8], dst: &mut [u8], thresh: u8, maxval: u8, ty: ThresholdType) {
    #[cfg(target_arch = "x86_64")]
    {
        threshold_row_native_sse2(src, dst, thresh, maxval, ty);
    }
    #[cfg(target_arch = "aarch64")]
    {
        threshold_row_native_neon(src, dst, thresh, maxval, ty);
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        threshold_row_autovec(src, dst, thresh, maxval, ty);
    }
}

#[cfg(target_arch = "x86_64")]
fn threshold_row_native_sse2(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    use std::arch::x86_64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY: loads read src[x..x+16], stores write dst[x..x+16]; the loop
    // bound keeps both in range. SSE2 is baseline on x86_64.
    unsafe {
        let sign = _mm_set1_epi8(-128i8);
        let thresh_s = _mm_xor_si128(_mm_set1_epi8(thresh as i8), sign);
        let maxval_v = _mm_set1_epi8(maxval as i8);
        let thresh_v = _mm_set1_epi8(thresh as i8);
        while x + 16 <= width {
            let v = _mm_loadu_si128(src.as_ptr().add(x) as *const __m128i);
            let v_s = _mm_xor_si128(v, sign);
            let gt = _mm_cmpgt_epi8(v_s, thresh_s);
            let out = match ty {
                ThresholdType::Binary => _mm_and_si128(gt, maxval_v),
                ThresholdType::BinaryInv => _mm_andnot_si128(gt, maxval_v),
                ThresholdType::Trunc => _mm_min_epu8(v, thresh_v),
                ThresholdType::ToZero => _mm_and_si128(gt, v),
                ThresholdType::ToZeroInv => _mm_andnot_si128(gt, v),
            };
            _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, out);
            x += 16;
        }
    }
    threshold_row_scalar(&src[x..], &mut dst[x..], thresh, maxval, ty);
}

#[cfg(target_arch = "aarch64")]
fn threshold_row_native_neon(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    use std::arch::aarch64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY: bounds maintained as in the SSE2 variant.
    unsafe {
        let thresh_v = vdupq_n_u8(thresh);
        let maxval_v = vdupq_n_u8(maxval);
        let zero = vdupq_n_u8(0);
        while x + 16 <= width {
            let v = vld1q_u8(src.as_ptr().add(x));
            let gt = vcgtq_u8(v, thresh_v);
            let out = match ty {
                ThresholdType::Binary => vbslq_u8(gt, maxval_v, zero),
                ThresholdType::BinaryInv => vbslq_u8(gt, zero, maxval_v),
                ThresholdType::Trunc => vminq_u8(v, thresh_v),
                ThresholdType::ToZero => vbslq_u8(gt, v, zero),
                ThresholdType::ToZeroInv => vbslq_u8(gt, zero, v),
            };
            vst1q_u8(dst.as_mut_ptr().add(x), out);
            x += 16;
        }
    }
    threshold_row_scalar(&src[x..], &mut dst[x..], thresh, maxval, ty);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn scalar_definitions() {
        assert_eq!(ThresholdType::Binary.apply(129, 128, 255), 255);
        assert_eq!(ThresholdType::Binary.apply(128, 128, 255), 0);
        assert_eq!(ThresholdType::BinaryInv.apply(129, 128, 200), 0);
        assert_eq!(ThresholdType::BinaryInv.apply(100, 128, 200), 200);
        assert_eq!(ThresholdType::Trunc.apply(200, 128, 255), 128);
        assert_eq!(ThresholdType::Trunc.apply(100, 128, 255), 100);
        assert_eq!(ThresholdType::ToZero.apply(200, 128, 255), 200);
        assert_eq!(ThresholdType::ToZero.apply(100, 128, 255), 0);
        assert_eq!(ThresholdType::ToZeroInv.apply(200, 128, 255), 0);
        assert_eq!(ThresholdType::ToZeroInv.apply(100, 128, 255), 100);
    }

    #[test]
    fn all_engines_all_types_match_scalar() {
        let img = synthetic_image(97, 41, 13);
        for ty in ThresholdType::ALL {
            for thresh in [0u8, 1, 127, 128, 254, 255] {
                let mut reference = Image::new(img.width(), img.height());
                threshold_u8(&img, &mut reference, thresh, 255, ty, Engine::Scalar);
                for engine in [
                    Engine::Autovec,
                    Engine::Sse2Sim,
                    Engine::NeonSim,
                    Engine::Native,
                ] {
                    let mut out = Image::new(img.width(), img.height());
                    threshold_u8(&img, &mut out, thresh, 255, ty, engine);
                    assert!(
                        out.pixels_eq(&reference),
                        "{ty:?} thresh {thresh} engine {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_byte_value_every_engine() {
        // Exhaustive over src values for a fixed threshold.
        let src: Vec<u8> = (0..=255).collect();
        for ty in ThresholdType::ALL {
            let mut expect = vec![0u8; 256];
            threshold_row_scalar(&src, &mut expect, 128, 200, ty);
            for engine in Engine::ALL {
                let mut out = vec![0u8; 256];
                threshold_row(&src, &mut out, 128, 200, ty, engine);
                assert_eq!(out, expect, "{ty:?} {engine:?}");
            }
        }
    }

    #[test]
    fn non_multiple_of_16_tail() {
        for len in [0usize, 1, 15, 16, 17, 31, 33] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let mut expect = vec![0u8; len];
            threshold_row_scalar(&src, &mut expect, 100, 255, ThresholdType::Binary);
            for engine in Engine::ALL {
                let mut out = vec![0u8; len];
                threshold_row(&src, &mut out, 100, 255, ThresholdType::Binary, engine);
                assert_eq!(out, expect, "{engine:?} len {len}");
            }
        }
    }

    #[test]
    fn binary_threshold_is_idempotent() {
        // thresholding an already-binary image with the same parameters is a
        // fixed point.
        let img = synthetic_image(64, 64, 3);
        let mut once = Image::new(64, 64);
        threshold_u8(
            &img,
            &mut once,
            128,
            255,
            ThresholdType::Binary,
            Engine::Native,
        );
        let mut twice = Image::new(64, 64);
        threshold_u8(
            &once,
            &mut twice,
            128,
            255,
            ThresholdType::Binary,
            Engine::Native,
        );
        assert!(once.pixels_eq(&twice));
    }

    #[test]
    fn binary_and_inverse_partition() {
        let img = synthetic_image(64, 64, 4);
        let mut b = Image::new(64, 64);
        let mut binv = Image::new(64, 64);
        threshold_u8(
            &img,
            &mut b,
            128,
            255,
            ThresholdType::Binary,
            Engine::Native,
        );
        threshold_u8(
            &img,
            &mut binv,
            128,
            255,
            ThresholdType::BinaryInv,
            Engine::Native,
        );
        for y in 0..64 {
            for (pb, pi) in b.row(y).iter().zip(binv.row(y).iter()) {
                assert_eq!(pb.wrapping_add(*pi), 255);
            }
        }
    }
}
