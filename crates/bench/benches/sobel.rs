//! Figure 5 — Sobel filter, AUTO vs HAND per size.

use bench::{bench_image, bench_resolutions, TIMED_ENGINES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::Image;
use simdbench_core::sobel::{sobel, SobelDirection};

fn bench_sobel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sobel_filter");
    group.sample_size(15);
    for res in bench_resolutions() {
        let src = bench_image(res);
        let mut dst = Image::<i16>::new(src.width(), src.height());
        group.throughput(Throughput::Elements(res.pixels() as u64));
        for engine in TIMED_ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), res.label()),
                &engine,
                |b, &engine| b.iter(|| sobel(&src, &mut dst, SobelDirection::X, engine)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sobel);
criterion_main!(benches);
