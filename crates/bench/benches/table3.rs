//! Table III — all four image-processing benchmarks at 8 Mpx, AUTO vs HAND.

use bench::bench_image;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::{Image, Resolution};
use simdbench_core::edge::edge_detect;
use simdbench_core::gaussian::gaussian_blur;
use simdbench_core::sobel::{sobel, SobelDirection};
use simdbench_core::threshold::{threshold_u8, ThresholdType};
use simdbench_core::Engine;

fn bench_table3(c: &mut Criterion) {
    let res = Resolution::Mp8;
    let src = bench_image(res);
    let (w, h) = res.dims();
    let mut group = c.benchmark_group("table3_8mpx");
    group.sample_size(10);
    group.throughput(Throughput::Elements(res.pixels() as u64));
    // The paper's AUTO (compiler) vs HAND (intrinsics) pair.
    for engine in [Engine::Autovec, Engine::Native] {
        let strategy = if engine == Engine::Native {
            "HAND"
        } else {
            "AUTO"
        };
        let mut dst_u8 = Image::<u8>::new(w, h);
        let mut dst_i16 = Image::<i16>::new(w, h);
        group.bench_function(BenchmarkId::new("BinThr", strategy), |b| {
            b.iter(|| threshold_u8(&src, &mut dst_u8, 128, 255, ThresholdType::Binary, engine))
        });
        group.bench_function(BenchmarkId::new("GauBlu", strategy), |b| {
            b.iter(|| gaussian_blur(&src, &mut dst_u8, engine))
        });
        group.bench_function(BenchmarkId::new("SobFil", strategy), |b| {
            b.iter(|| sobel(&src, &mut dst_i16, SobelDirection::X, engine))
        });
        group.bench_function(BenchmarkId::new("EdgDet", strategy), |b| {
            b.iter(|| edge_detect(&src, &mut dst_u8, 96, engine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
