//! Allocator-level proof of the fused pipeline's zero-allocation contract:
//! once a [`Scratch`] arena is warm, a sequential `fused_*_with` call
//! performs **no** heap allocations at all — counted by a wrapping global
//! allocator, not inferred from the arena's own ledger.
//!
//! Only the sequential entry points are measured here: the parallel
//! drivers hand rows to rayon, whose pool machinery may allocate outside
//! our control (the arena-ledger test in `pipeline::tests` covers the
//! parallel path's buffer discipline instead).
//!
//! The whole file is a single `#[test]` because the counter is global and
//! the libtest harness runs sibling tests on other threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns how many allocations
/// (including reallocations) it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warm_sequential_fused_calls_do_not_allocate() {
    use pixelimage::{synthetic_image, Image};
    use simdbench_core::dispatch::Engine;
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{
        fused_edge_detect_with, fused_gaussian_blur_with, fused_sobel_with,
    };
    use simdbench_core::scratch::Scratch;
    use simdbench_core::sobel::SobelDirection;

    let (w, h) = (257, 53); // odd width: scalar tails + SIMD interior
    let src = synthetic_image(w, h, 163);
    let kernel = paper_gaussian_kernel();
    let mut dst_u8 = Image::new(w, h);
    let mut dst_i16 = Image::new(w, h);
    let mut scratch = Scratch::new();

    for engine in Engine::ALL {
        // Cold pass: allowed to allocate (fills the arena).
        fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, engine, &mut scratch);
        fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, engine, &mut scratch);
        fused_sobel_with(&src, &mut dst_i16, SobelDirection::Y, engine, &mut scratch);
        fused_edge_detect_with(&src, &mut dst_u8, 96, engine, &mut scratch);

        // Warm pass: zero allocations, enforced at the allocator.
        let n = count_allocs(|| {
            fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, engine, &mut scratch);
            fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, engine, &mut scratch);
            fused_sobel_with(&src, &mut dst_i16, SobelDirection::Y, engine, &mut scratch);
            fused_edge_detect_with(&src, &mut dst_u8, 96, engine, &mut scratch);
        });
        assert_eq!(n, 0, "warm fused calls allocated {n} times ({engine:?})");
    }
}
