//! Telemetry cost smoke test: with the global enable flag off, every
//! `obs` entry point in the fused pipeline must reduce to one relaxed
//! atomic load and a branch. This test guards against regressions that
//! make the disabled path allocate, lock, or time.
//!
//! It is a *smoke* test, not a benchmark: CI machines are noisy, so the
//! threshold is deliberately generous (2x). The honest measurement
//! lives in EXPERIMENTS.md and uses the full paper protocol.

use pixelimage::{synthetic_suite, Image, Resolution};
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::pipeline::fused_gaussian_blur_with;
use simdbench_core::prelude::*;
use simdbench_core::scratch::Scratch;
use std::time::Instant;

fn time_passes(src: &Image<u8>, passes: usize) -> f64 {
    let mut dst = Image::<u8>::new(src.width(), src.height());
    let mut scratch = Scratch::new();
    let gk = paper_gaussian_kernel();
    // Warm up: populate the scratch arena and caches.
    for _ in 0..2 {
        fused_gaussian_blur_with(src, &mut dst, &gk, Engine::Native, &mut scratch);
    }
    let start = Instant::now();
    for _ in 0..passes {
        fused_gaussian_blur_with(src, &mut dst, &gk, Engine::Native, &mut scratch);
    }
    start.elapsed().as_secs_f64()
}

#[test]
fn disabled_telemetry_is_cheap_on_the_fused_pipeline() {
    let src = synthetic_suite(Resolution::Vga, 1).remove(0);
    const PASSES: usize = 30;

    obs::set_enabled(false);
    // Interleave the two arms so machine-load drift hits both equally,
    // and keep the best-of-three minimum per arm (noise only adds time).
    let mut off = f64::MAX;
    let mut on = f64::MAX;
    for _ in 0..3 {
        obs::set_enabled(false);
        off = off.min(time_passes(&src, PASSES));
        obs::set_enabled(true);
        on = on.min(time_passes(&src, PASSES));
    }
    obs::set_enabled(false);
    obs::reset();

    // Both directions, each with a huge margin (the real ratio is
    // within noise of 1.0): enabled telemetry must not blow up the
    // fused pipeline, and the disabled path must not secretly do the
    // work anyway.
    assert!(
        on < off * 3.0 + 1e-3,
        "enabled {on:.6}s vs disabled {off:.6}s — telemetry overhead is not a branch"
    );
    assert!(
        off < on * 3.0 + 1e-3,
        "disabled {off:.6}s vs enabled {on:.6}s — disabled path is doing work"
    );
}
