//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset this workspace uses — `Vec::into_par_iter()` /
//! `Range::into_par_iter()` with `.enumerate()` and `.for_each()`, plus
//! `ThreadPoolBuilder`/`ThreadPool::install` and `current_num_threads` —
//! over `std::thread::scope`. Work is split into one contiguous chunk per
//! worker (band decomposition), not work-stealing; for the row/band
//! parallel image kernels in this workspace the chunks are uniform, so
//! static splitting matches rayon's behaviour closely enough for both
//! correctness (bit-exactness is index-based, not schedule-based) and the
//! parallel-scaling experiment.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (host) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = host parallelism, as rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible here; `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// Error type mirroring rayon's (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured degree of parallelism. Unlike rayon there are no persistent
/// workers; `install` scopes the configured width over the closure, and the
/// scoped threads are spawned per parallel call.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel iterators.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(Some(self.threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// The parallel-iterator operations this workspace uses.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Consumes the iterator, applying `f` to every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;

    /// Pairs every element with its index (indices are assigned in the
    /// original order, independent of the execution schedule).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    /// Runs `f(index, item)` over all items with static chunking.
    fn drive<F>(self, f: F)
    where
        F: Fn(usize, T) + Send + Sync,
    {
        let mut items = self.items;
        let threads = current_num_threads().max(1);
        if threads == 1 || items.len() <= 1 {
            for (i, item) in items.into_iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = items.len().div_ceil(threads);
        // Peel chunks off the front, remembering each chunk's base index.
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
        let mut base = 0;
        while !items.is_empty() {
            let take = chunk.min(items.len());
            let rest = items.split_off(take);
            chunks.push((base, items));
            base += take;
            items = rest;
        }
        let f = &f;
        std::thread::scope(|s| {
            for (start, chunk_items) in chunks {
                s.spawn(move || {
                    for (offset, item) in chunk_items.into_iter().enumerate() {
                        f(start + offset, item);
                    }
                });
            }
        });
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        self.drive(move |_, item| f(item));
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        VecParIter {
            items: self.range.collect::<Vec<_>>(),
        }
        .drive(move |_, v| f(v));
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// Index-pairing adapter returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<T: Send> ParallelIterator for Enumerate<VecParIter<T>> {
    type Item = (usize, T);

    fn for_each<F>(self, f: F)
    where
        F: Fn((usize, T)) + Send + Sync,
    {
        self.inner.drive(move |i, item| f((i, item)));
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        items.into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn enumerate_indices_match_original_order() {
        let items: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let sum = AtomicUsize::new(0);
        items
            .clone()
            .into_par_iter()
            .enumerate()
            .for_each(|(i, v)| {
                assert_eq!(v, items[i]);
                sum.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn mutable_slices_are_written_in_parallel() {
        let mut data = [0u8; 64];
        let rows: Vec<&mut [u8]> = data.chunks_mut(8).collect();
        rows.into_par_iter().enumerate().for_each(|(i, row)| {
            for b in row.iter_mut() {
                *b = i as u8;
            }
        });
        for (i, chunk) in data.chunks(8).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 2);
        });
        let pool1 = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool1.install(|| {
            // Single-threaded path runs inline.
            let items: Vec<usize> = (0..10).collect();
            let tid = std::thread::current().id();
            items.into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
    }

    #[test]
    fn range_par_iter_covers_range() {
        let hits = AtomicUsize::new(0);
        (5..105usize).into_par_iter().for_each(|v| {
            assert!((5..105).contains(&v));
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }
}
