//! Command-line reproduction driver.
//!
//! ```text
//! repro table1                 # Table I (platform inventory)
//! repro table2                 # Table II (convert, simulated platforms)
//! repro table3                 # Table III (benchmarks 2-5 at 8 Mpx)
//! repro figure2 .. figure6     # speed-up figures (simulated platforms)
//! repro asm-analysis           # Section V instruction-stream comparison
//! repro energy                 # A4 energy-efficiency extension
//! repro host [--quick] [--full] [--csv FILE]  # AUTO vs HAND on THIS machine
//! repro fused [--quick] [--full] [--csv FILE] # fused vs two-pass pipeline
//! repro parallel [--quick] [--full] [--csv FILE] # pool vs per-call-spawn dispatch
//! repro csv [dir]              # write every table/figure as CSV files
//! repro all                    # everything except host mode
//! ```

use pixelimage::Resolution;
use platform_model::{all_platforms, Isa, Kernel};
use repro_harness::figures::{figure, render_figure};
use repro_harness::tables::{render_table, table1, table2, table3};
use repro_harness::timing::{host_auto_engine, host_hand_engine, measure, HostConfig, WorkSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    match command {
        "table1" => print!("{}", render_table(&table1())),
        "table2" => print!("{}", render_table(&table2())),
        "table3" => print!("{}", render_table(&table3())),
        "figure2" => print!("{}", render_figure(&figure(Kernel::Convert))),
        "figure3" => print!("{}", render_figure(&figure(Kernel::Threshold))),
        "figure4" => print!("{}", render_figure(&figure(Kernel::Gaussian))),
        "figure5" => print!("{}", render_figure(&figure(Kernel::Sobel))),
        "figure6" => print!("{}", render_figure(&figure(Kernel::Edge))),
        "asm-analysis" => asm_analysis(),
        "energy" => energy(),
        "host" => host_mode(&args[1..]),
        "fused" => fused_mode(&args[1..]),
        "parallel" => parallel_mode(&args[1..]),
        "csv" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "results".into());
            if let Err(e) = write_csvs(&dir) {
                eprintln!("csv export failed: {e}");
                std::process::exit(1);
            }
        }
        "all" => {
            print!("{}", render_table(&table1()));
            println!();
            print!("{}", render_table(&table2()));
            println!();
            print!("{}", render_table(&table3()));
            for kernel in Kernel::ALL {
                println!();
                print!("{}", render_figure(&figure(kernel)));
            }
            println!();
            asm_analysis();
            println!();
            energy();
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "usage: repro [table1|table2|table3|figure2..figure6|asm-analysis|energy|host|fused|parallel|all]"
            );
            std::process::exit(2);
        }
    }
}

/// Writes every table and figure as CSV into `dir`.
fn write_csvs(dir: &str) -> std::io::Result<()> {
    use repro_harness::figures::figure_number;
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("table1.csv"), table1().to_csv())?;
    std::fs::write(dir.join("table2.csv"), table2().to_csv())?;
    std::fs::write(dir.join("table3.csv"), table3().to_csv())?;
    for kernel in Kernel::ALL {
        let fig = figure(kernel);
        let name = format!("figure{}.csv", figure_number(kernel));
        std::fs::write(dir.join(name), fig.to_csv())?;
    }
    println!("wrote table1-3.csv and figure2-6.csv to {}", dir.display());
    Ok(())
}

/// Section V: instruction-stream comparison of HAND vs AUTO per kernel.
fn asm_analysis() {
    use op_trace::analysis::{StreamComparison, StreamProfile};
    use op_trace::OpMix;
    use platform_model::workload::{auto_mix, hand_mix};

    println!("Section V analysis: instruction streams per output pixel");
    println!("(HAND measured through the simulated intrinsic surfaces;");
    println!(" AUTO modelled from the paper's gcc 4.6 disassembly)\n");
    for isa in [Isa::Neon, Isa::Sse2] {
        println!("--- {} ---", isa.label());
        for kernel in Kernel::ALL {
            let hand = hand_mix(kernel, isa);
            let auto = auto_mix(kernel, isa);
            // Render per 1000 pixels so integer op counts read naturally.
            let to_opmix = |m: &platform_model::workload::PixelMix| {
                let mut mix = OpMix::new();
                for class in op_trace::OpClass::ALL {
                    mix.set(class, (m.get(class) * 1000.0).round() as u64);
                }
                mix
            };
            let cmp = StreamComparison::new(
                format!("{} [{}]", kernel.label(), isa.label()),
                StreamProfile::new("HAND (intrinsics)", to_opmix(&hand), 1000),
                StreamProfile::new("AUTO (gcc 4.6)", to_opmix(&auto), 1000),
            );
            print!("{}", cmp.report());
        }
    }
}

/// A4: energy-efficiency extension.
fn energy() {
    use platform_model::energy::{classify, joules_per_frame, megapixels_per_joule};
    use platform_model::Strategy;

    println!("Energy extension (A4): 8 Mpx Gaussian blur, per-frame energy");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>14}  tier",
        "platform", "watts", "J/frame(A)", "J/frame(H)", "Mpx/J (HAND)"
    );
    for p in all_platforms() {
        let auto = joules_per_frame(&p, Kernel::Gaussian, Strategy::Auto, Resolution::Mp8);
        let hand = joules_per_frame(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Mp8);
        let eff = megapixels_per_joule(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Mp8);
        println!(
            "{:<14} {:>6.1} {:>12.4} {:>12.4} {:>14.2}  {:?}",
            p.short,
            p.tdp_watts,
            auto,
            hand,
            eff,
            classify(&p)
        );
    }
}

/// Fused mode: band-tiled fused pipeline vs the two-pass kernels on this
/// machine, native engine, paper protocol — the A4 locality experiment.
fn fused_mode(args: &[String]) {
    use repro_harness::timing::measure_fused;

    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };
    const STENCILS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Sobel, Kernel::Edge];

    println!("Fused mode: band-tiled fused pipeline vs two-pass (native engine)");
    println!(
        "protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>9}",
        "kernel", "image", "2-pass (s)", "fused (s)", "speed-up"
    );
    let mut csv = String::from("kernel,image,two_pass_seconds,fused_seconds,speedup\n");
    let engine = host_hand_engine();
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in STENCILS {
            let two_pass = measure(kernel, engine, &work, &config);
            let fused = measure_fused(kernel, engine, &work, &config);
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                two_pass.seconds,
                fused.seconds,
                two_pass.seconds / fused.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                two_pass.seconds,
                fused.seconds,
                two_pass.seconds / fused.seconds
            ));
        }
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}

/// Parallel mode: dispatch overhead of the persistent work-stealing pool
/// vs the per-call-spawn baseline, under the paper's timing protocol.
/// The pool is installed at width 4 so the real scheduler runs even on
/// single-core hosts (ISSUE 2: dispatch overhead dominated exactly where
/// the paper's low-powered-platform story lives).
fn parallel_mode(args: &[String]) {
    use repro_harness::timing::{measure_fused, measure_parallel, ParallelMode};

    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };
    const STENCILS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Sobel, Kernel::Edge];
    const WIDTH: usize = 4;

    println!("Parallel mode: persistent pool vs per-call thread spawning (native engine)");
    println!(
        "pool width {WIDTH}; protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "image", "seq (s)", "spawn (s)", "pool (s)", "pool gain"
    );
    let mut csv = String::from("kernel,image,seq_seconds,spawn_seconds,pool_seconds,pool_gain\n");
    let engine = host_hand_engine();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(WIDTH)
        .build()
        .expect("pool build");
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in STENCILS {
            let seq = measure_fused(kernel, engine, &work, &config);
            let (spawn, pooled) = pool.install(|| {
                (
                    measure_parallel(kernel, engine, ParallelMode::SpawnPerCall, &work, &config),
                    measure_parallel(kernel, engine, ParallelMode::Pool, &work, &config),
                )
            });
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                seq.seconds,
                spawn.seconds,
                pooled.seconds,
                spawn.seconds / pooled.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                seq.seconds,
                spawn.seconds,
                pooled.seconds,
                spawn.seconds / pooled.seconds
            ));
        }
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}

/// Host mode: real measurements on this machine.
fn host_mode(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };

    println!("Host mode: AUTO (compiler-vectorized Rust) vs HAND (native intrinsics)");
    println!(
        "protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>9}",
        "kernel", "image", "AUTO (s)", "HAND (s)", "speed-up"
    );
    let mut csv = String::from("kernel,image,auto_seconds,hand_seconds,speedup\n");
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in Kernel::ALL {
            let auto = measure(kernel, host_auto_engine(), &work, &config);
            let hand = measure(kernel, host_hand_engine(), &work, &config);
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                auto.seconds,
                hand.seconds,
                auto.seconds / hand.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                auto.seconds,
                hand.seconds,
                auto.seconds / hand.seconds
            ));
        }
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}
