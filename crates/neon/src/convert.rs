//! Conversion intrinsics (category *f*).

use crate::types::*;
use op_trace::{count, OpClass};

/// `vcvt.s32.f32 q` — float to signed word, **truncating toward zero**
/// (the only rounding ARMv7 NEON offers; saturates out-of-range, NaN → 0).
///
/// This is the conversion the paper's NEON listing uses. Note it rounds
/// differently from scalar `cvRound`; see the crate docs and
/// [`vcvtnq_s32_f32`].
#[inline]
pub fn vcvtq_s32_f32(a: float32x4_t) -> int32x4_t {
    count(OpClass::SimdConvert);
    a.to_i32_truncate()
}

/// ARMv8 `fcvtns` — float to signed word, rounding to nearest, ties to
/// even, saturating. Matches `_mm_cvtps_epi32` for all in-range inputs.
#[inline]
pub fn vcvtnq_s32_f32(a: float32x4_t) -> int32x4_t {
    count(OpClass::SimdConvert);
    a.to_i32_round()
}

/// `vcvt.f32.s32 q` — signed word to float.
#[inline]
pub fn vcvtq_f32_s32(a: int32x4_t) -> float32x4_t {
    count(OpClass::SimdConvert);
    a.to_f32()
}

/// `vcvt.f32.u32 q` — unsigned word to float.
#[inline]
pub fn vcvtq_f32_u32(a: uint32x4_t) -> float32x4_t {
    count(OpClass::SimdConvert);
    a.to_f32()
}

/// `vcvt.u32.f32 q` — float to unsigned word, truncating, saturating at 0
/// and `u32::MAX`; NaN → 0.
#[inline]
pub fn vcvtq_u32_f32(a: float32x4_t) -> uint32x4_t {
    count(OpClass::SimdConvert);
    a.map(|v| if v.is_nan() { 0.0 } else { v })
        .to_array()
        .map(|v| {
            if v <= 0.0 {
                0u32
            } else if v >= u32::MAX as f32 {
                u32::MAX
            } else {
                v as u32
            }
        })
        .into()
}

/// `vcvt.f32.s32 q, #n` — fixed-point word to float with `n` fractional
/// bits.
#[inline]
pub fn vcvtq_n_f32_s32(a: int32x4_t, n: u32) -> float32x4_t {
    count(OpClass::SimdConvert);
    let scale = 1.0 / (1u64 << n) as f32;
    a.to_f32().mul(float32x4_t::splat(scale))
}

/// `vcvt.s32.f32 q, #n` — float to fixed-point word with `n` fractional
/// bits (truncating).
#[inline]
pub fn vcvtq_n_s32_f32(a: float32x4_t, n: u32) -> int32x4_t {
    count(OpClass::SimdConvert);
    let scale = (1u64 << n) as f32;
    a.mul(float32x4_t::splat(scale)).to_i32_truncate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn vcvt_truncates_toward_zero() {
        let v = float32x4_t::new([1.9, -1.9, 0.5, -0.5]);
        assert_eq!(vcvtq_s32_f32(v).to_array(), [1, -1, 0, 0]);
    }

    #[test]
    fn vcvtn_rounds_ties_to_even() {
        let v = float32x4_t::new([0.5, 1.5, 2.5, -2.5]);
        assert_eq!(vcvtnq_s32_f32(v).to_array(), [0, 2, 2, -2]);
    }

    #[test]
    fn neon_saturates_where_sse_goes_indefinite() {
        let v = float32x4_t::new([3e9, -3e9, f32::NAN, 7.0]);
        assert_eq!(vcvtq_s32_f32(v).to_array(), [i32::MAX, i32::MIN, 0, 7]);
        assert_eq!(vcvtnq_s32_f32(v).to_array(), [i32::MAX, i32::MIN, 0, 7]);
    }

    #[test]
    fn unsigned_conversion_clamps_at_zero() {
        let v = float32x4_t::new([-5.0, 0.9, 255.9, 5e9]);
        assert_eq!(vcvtq_u32_f32(v).to_array(), [0, 0, 255, u32::MAX]);
        assert_eq!(vcvtq_u32_f32(vdupq_n_f32(f32::NAN)).lane(0), 0);
    }

    #[test]
    fn int_to_float() {
        assert_eq!(vcvtq_f32_s32(vdupq_n_s32(-42)).to_array(), [-42.0; 4]);
        assert_eq!(vcvtq_f32_u32(vdupq_n_u32(42)).to_array(), [42.0; 4]);
    }

    #[test]
    fn fixed_point_conversions() {
        // 1.5 in Q8 fixed point = 384.
        let fx = vcvtq_n_s32_f32(vdupq_n_f32(1.5), 8);
        assert_eq!(fx.to_array(), [384; 4]);
        let back = vcvtq_n_f32_s32(fx, 8);
        assert_eq!(back.to_array(), [1.5; 4]);
    }

    #[test]
    fn conversions_count_as_simd_convert() {
        let (_, mix) = op_trace::trace(|| {
            let v = vdupq_n_f32(1.0);
            let _ = vcvtq_s32_f32(v);
            let _ = vcvtnq_s32_f32(v);
        });
        assert_eq!(mix.get(op_trace::OpClass::SimdConvert), 2);
    }
}
