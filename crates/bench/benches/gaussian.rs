//! Figure 4 — Gaussian blur (sigma = 1), AUTO vs HAND per size.

use bench::{bench_image, bench_resolutions, TIMED_ENGINES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::Image;
use simdbench_core::gaussian::gaussian_blur;

fn bench_gaussian(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_blur");
    group.sample_size(15);
    for res in bench_resolutions() {
        let src = bench_image(res);
        let mut dst = Image::<u8>::new(src.width(), src.height());
        group.throughput(Throughput::Elements(res.pixels() as u64));
        for engine in TIMED_ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), res.label()),
                &engine,
                |b, &engine| b.iter(|| gaussian_blur(&src, &mut dst, engine)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gaussian);
criterion_main!(benches);
