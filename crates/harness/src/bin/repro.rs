//! Command-line reproduction driver.
//!
//! ```text
//! repro table1                 # Table I (platform inventory)
//! repro table2                 # Table II (convert, simulated platforms)
//! repro table3                 # Table III (benchmarks 2-5 at 8 Mpx)
//! repro figure2 .. figure6     # speed-up figures (simulated platforms)
//! repro asm-analysis           # Section V instruction-stream comparison
//! repro energy                 # A4 energy-efficiency extension
//! repro host [--quick] [--full] [--csv FILE]  # AUTO vs HAND on THIS machine
//! repro fused [--quick] [--full] [--csv FILE] # fused vs two-pass pipeline
//! repro parallel [--quick] [--full] [--csv FILE] # pool vs per-call-spawn dispatch
//! repro stats [--full] [--json FILE] # instrumented exercise -> telemetry report
//! repro chaos [--seed N] [--quick]   # fault-injection matrix over the fused pipeline
//! repro stream [--quick] [--frames N] [--rate FPS] [--json FILE]
//!                              # streaming engine: throughput-latency report
//! repro csv [dir]              # write every table/figure as CSV files
//! repro all                    # everything except host mode
//! ```
//!
//! `host`, `fused`, `parallel` and `stream` also accept `--telemetry`:
//! the run executes with the `obs` layer enabled and finishes with the
//! span-tree / counter / histogram report plus a machine-readable JSON
//! dump. Telemetry output is namespaced per subcommand
//! (`results/telemetry_<cmd>.json`) so runs don't clobber each other;
//! override with `--json FILE` (`--telemetry-json FILE` for `stream`,
//! whose `--json` names the throughput report).

use pixelimage::Resolution;
use platform_model::{all_platforms, Isa, Kernel};
use repro_harness::figures::{figure, render_figure};
use repro_harness::tables::{render_table, table1, table2, table3};
use repro_harness::timing::{host_auto_engine, host_hand_engine, measure, HostConfig, WorkSet};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    match command {
        "table1" => print!("{}", render_table(&table1())),
        "table2" => print!("{}", render_table(&table2())),
        "table3" => print!("{}", render_table(&table3())),
        "figure2" => print!("{}", render_figure(&figure(Kernel::Convert))),
        "figure3" => print!("{}", render_figure(&figure(Kernel::Threshold))),
        "figure4" => print!("{}", render_figure(&figure(Kernel::Gaussian))),
        "figure5" => print!("{}", render_figure(&figure(Kernel::Sobel))),
        "figure6" => print!("{}", render_figure(&figure(Kernel::Edge))),
        "asm-analysis" => asm_analysis(),
        "energy" => energy(),
        "host" => host_mode(&args[1..]),
        "fused" => fused_mode(&args[1..]),
        "parallel" => parallel_mode(&args[1..]),
        "stats" => stats_mode(&args[1..]),
        "chaos" => chaos_mode(&args[1..]),
        "stream" => stream_mode(&args[1..]),
        "csv" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| "results".into());
            if let Err(e) = write_csvs(&dir) {
                eprintln!("csv export failed: {e}");
                std::process::exit(1);
            }
        }
        "all" => {
            print!("{}", render_table(&table1()));
            println!();
            print!("{}", render_table(&table2()));
            println!();
            print!("{}", render_table(&table3()));
            for kernel in Kernel::ALL {
                println!();
                print!("{}", render_figure(&figure(kernel)));
            }
            println!();
            asm_analysis();
            println!();
            energy();
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "usage: repro [table1|table2|table3|figure2..figure6|asm-analysis|energy|host|fused|parallel|stats|chaos|stream|all]"
            );
            std::process::exit(2);
        }
    }
}

/// Writes every table and figure as CSV into `dir`.
fn write_csvs(dir: &str) -> std::io::Result<()> {
    use repro_harness::figures::figure_number;
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("table1.csv"), table1().to_csv())?;
    std::fs::write(dir.join("table2.csv"), table2().to_csv())?;
    std::fs::write(dir.join("table3.csv"), table3().to_csv())?;
    for kernel in Kernel::ALL {
        let fig = figure(kernel);
        let name = format!("figure{}.csv", figure_number(kernel));
        std::fs::write(dir.join(name), fig.to_csv())?;
    }
    println!("wrote table1-3.csv and figure2-6.csv to {}", dir.display());
    Ok(())
}

/// Returns the value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses the shared `--telemetry` flag; when present, enables the `obs`
/// layer and clears any state left from process start-up so the report
/// covers exactly this run.
fn telemetry_requested(args: &[String]) -> bool {
    let on = args.iter().any(|a| a == "--telemetry");
    if on {
        obs::set_enabled(true);
        obs::reset();
    }
    on
}

/// Snapshots telemetry, prints the human-readable report, and writes the
/// machine-readable JSON to `path` (creating parent directories).
fn telemetry_report(path: &str) {
    let snap = obs::snapshot();
    println!();
    print!("{}", snap.render());
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Stats mode: run a short instrumented exercise of all three telemetry
/// layers — the fused band pipeline (serial), the work-stealing pool
/// (banded parallel), and the harness timing protocol — then print the
/// full report and write the JSON dump.
fn stats_mode(args: &[String]) {
    use repro_harness::timing::{measure_fused, measure_parallel, ParallelMode};

    let full = args.iter().any(|a| a == "--full");
    let json_path =
        flag_value(args, "--json").unwrap_or_else(|| "results/telemetry_stats.json".into());
    let res = if full {
        Resolution::Mp8
    } else {
        Resolution::Vga
    };
    let config = HostConfig::quick();
    obs::set_enabled(true);
    obs::reset();

    println!(
        "Stats mode: instrumented fused + pooled passes at {}",
        res.label()
    );
    println!(
        "protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    let work = WorkSet::new(res, config.images);
    let engine = host_hand_engine();
    const STENCILS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Sobel, Kernel::Edge];
    for kernel in STENCILS {
        let m = measure_fused(kernel, engine, &work, &config);
        println!(
            "fused  {:<10} mean {:.6}s over {} passes",
            kernel.table3_label(),
            m.seconds,
            m.runs
        );
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");
    for kernel in STENCILS {
        let m =
            pool.install(|| measure_parallel(kernel, engine, ParallelMode::Pool, &work, &config));
        println!(
            "pooled {:<10} mean {:.6}s over {} passes",
            kernel.table3_label(),
            m.seconds,
            m.runs
        );
    }
    telemetry_report(&json_path);
}

/// Chaos mode: drives the fused pipeline (sequential and banded-parallel)
/// through a deterministic injected-fault matrix — forced errors at the
/// entry points, band panics, pool-task panics, worker deaths and task
/// stalls — and verifies the fault-tolerance contract at every cell:
///
/// * a `try_*` call either succeeds **bit-exactly** or returns
///   `KernelError::FaultInjected`; it never unwinds and never returns a
///   different error,
/// * no scratch workspace stays outstanding after a faulted run (caller
///   arena and every pool worker's thread-local arena),
/// * the worker pool ends at its full complement (deaths respawned),
/// * the circuit breaker demonstrably degrades to a correct serial run
///   and closes again after a successful half-open probe.
///
/// Exits non-zero if any invariant is violated. The whole matrix replays
/// bit-identically for a given `--seed`.
fn chaos_mode(args: &[String]) {
    use pixelimage::Image;
    use simdbench_core::error::KernelError;
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{
        try_fused_gaussian_blur_with, try_par_fused_edge_detect_with, BandPlan,
    };
    use simdbench_core::scratch::{self, Scratch};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let quick = args.iter().any(|a| a == "--quick");
    let (w, h) = if quick {
        (160, 120)
    } else {
        Resolution::Vga.dims()
    };
    let runs_per_cell = if quick { 6 } else { 12 };

    struct Cell {
        failpoint: &'static str,
        action: faultline::Action,
        rate: f64,
        /// Job watchdog armed while this cell runs.
        watchdog_ms: Option<u64>,
    }
    let mut cells = Vec::new();
    for &rate in &[0.25, 1.0] {
        cells.push(Cell {
            failpoint: "fused.entry",
            action: faultline::Action::Error,
            rate,
            watchdog_ms: None,
        });
        cells.push(Cell {
            failpoint: "par_fused.entry",
            action: faultline::Action::Error,
            rate,
            watchdog_ms: None,
        });
        cells.push(Cell {
            failpoint: "pipeline.band",
            action: faultline::Action::Panic,
            rate,
            watchdog_ms: None,
        });
        cells.push(Cell {
            failpoint: "pool.task",
            action: faultline::Action::Panic,
            rate,
            watchdog_ms: None,
        });
        cells.push(Cell {
            failpoint: "pool.worker",
            action: faultline::Action::Panic,
            rate,
            watchdog_ms: None,
        });
        cells.push(Cell {
            failpoint: "pool.task",
            action: faultline::Action::Delay(25),
            rate,
            watchdog_ms: Some(10),
        });
    }

    println!("Chaos mode: injected-fault matrix over the fused pipeline");
    println!(
        "image {w}x{h}, {} runs per arm per cell, base seed {seed}\n",
        runs_per_cell
    );

    faultline::disarm_all();
    rayon::reset_circuit_breaker();
    rayon::set_job_watchdog(None);
    obs::set_enabled(true);
    obs::reset();

    let engine = host_hand_engine();
    let kernel = paper_gaussian_kernel();
    let src = pixelimage::synthetic_image(w, h, seed);
    // Small bands so the parallel arm schedules many tasks through the
    // real pool (a cache-sized plan would fit the whole test frame in
    // one band and bypass the scheduler entirely).
    let plan = BandPlan { band_rows: 8 };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");
    // Injected panics are expected by the thousand; silence the default
    // hook's backtrace spam for the duration (restored before exit).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Disarmed references for the bit-exactness checks, plus the healthy
    // worker complement.
    let mut gauss_ref = Image::<u8>::new(w, h);
    simdbench_core::gaussian::gaussian_blur_kernel(&src, &mut gauss_ref, &kernel, engine);
    let mut edge_ref = Image::<u8>::new(w, h);
    simdbench_core::edge::edge_detect(&src, &mut edge_ref, 96, engine);
    let mut par_dst = Image::<u8>::new(w, h);
    pool.install(|| {
        try_par_fused_edge_detect_with(&src, &mut par_dst, 96, engine, &plan)
            .expect("disarmed warm-up run");
    });
    let complement = rayon::pool_live_workers();

    let mut violations: Vec<String> = Vec::new();
    println!(
        "{:<16} {:<9} {:>5}  {:>6} {:>9}  {:>6} {:>9}",
        "failpoint", "action", "rate", "seq-ok", "seq-fault", "par-ok", "par-fault"
    );

    for (index, cell) in cells.iter().enumerate() {
        let label = format!("{} {:?} rate {}", cell.failpoint, cell.action, cell.rate);
        faultline::disarm_all();
        rayon::reset_circuit_breaker();
        rayon::set_job_watchdog(cell.watchdog_ms.map(Duration::from_millis));
        faultline::arm(cell.failpoint, cell.action, cell.rate, seed + index as u64);

        let mut scratch = Scratch::new();
        let (mut seq_ok, mut seq_fault) = (0u32, 0u32);
        let (mut par_ok, mut par_fault) = (0u32, 0u32);
        for _ in 0..runs_per_cell {
            // Sequential arm: fused Gaussian with a caller-owned arena.
            let mut dst = Image::<u8>::new(w, h);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                try_fused_gaussian_blur_with(&src, &mut dst, &kernel, engine, &mut scratch)
            }));
            match outcome {
                Ok(Ok(())) => {
                    seq_ok += 1;
                    if !dst.pixels_eq(&gauss_ref) {
                        violations.push(format!("{label}: seq Ok run not bit-exact"));
                    }
                }
                Ok(Err(KernelError::FaultInjected { .. })) => seq_fault += 1,
                Ok(Err(other)) => {
                    violations.push(format!("{label}: seq unexpected error {other:?}"))
                }
                Err(_) => violations.push(format!("{label}: seq try_* unwound")),
            }
            if scratch.outstanding_bytes() != 0 {
                violations.push(format!(
                    "{label}: {} scratch bytes outstanding after seq run",
                    scratch.outstanding_bytes()
                ));
            }

            // Parallel arm: banded fused edge over the worker pool.
            let mut dst = Image::<u8>::new(w, h);
            let outcome = pool.install(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    try_par_fused_edge_detect_with(&src, &mut dst, 96, engine, &plan)
                }))
            });
            match outcome {
                Ok(Ok(())) => {
                    par_ok += 1;
                    if !dst.pixels_eq(&edge_ref) {
                        violations.push(format!("{label}: par Ok run not bit-exact"));
                    }
                }
                Ok(Err(KernelError::FaultInjected { .. })) => par_fault += 1,
                Ok(Err(other)) => {
                    violations.push(format!("{label}: par unexpected error {other:?}"))
                }
                Err(_) => violations.push(format!("{label}: par try_* unwound")),
            }
        }
        faultline::disarm_all();
        rayon::set_job_watchdog(None);
        println!(
            "{:<16} {:<9} {:>5}  {:>6} {:>9}  {:>6} {:>9}",
            cell.failpoint,
            format!("{:?}", cell.action),
            cell.rate,
            seq_ok,
            seq_fault,
            par_ok,
            par_fault
        );
    }

    // Invariant: the pool returns to its full worker complement once the
    // injected deaths stop (respawns are asynchronous; give them time).
    let deadline = Instant::now() + Duration::from_secs(10);
    while rayon::pool_live_workers() < complement && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let live = rayon::pool_live_workers();
    if live < complement {
        violations.push(format!(
            "pool complement not restored: {live}/{complement} workers live"
        ));
    }

    // Invariant: no pool worker's thread-local arena holds an
    // un-returned workspace after the whole matrix.
    let leaked = AtomicUsize::new(0);
    pool.install(|| {
        rayon::broadcast(|_| {
            leaked.fetch_add(scratch::worker_arena_outstanding_bytes(), Ordering::Relaxed);
        });
    });
    if leaked.load(Ordering::Relaxed) != 0 {
        violations.push(format!(
            "{} scratch bytes outstanding across worker arenas",
            leaked.load(Ordering::Relaxed)
        ));
    }

    // Circuit-breaker demonstration: open it with injected task panics,
    // prove a degraded serial run completes bit-exactly, then close it
    // through the half-open probe.
    rayon::reset_circuit_breaker();
    faultline::arm(
        "pool.task",
        faultline::Action::Panic,
        1.0,
        seed ^ 0x0B1E_A4E5,
    );
    let mut breaker_attempts = 0;
    while !rayon::circuit_breaker_open() && breaker_attempts < 8 {
        let mut dst = Image::<u8>::new(w, h);
        let _ = pool.install(|| {
            catch_unwind(AssertUnwindSafe(|| {
                try_par_fused_edge_detect_with(&src, &mut dst, 96, engine, &plan)
            }))
        });
        breaker_attempts += 1;
    }
    faultline::disarm_all();
    if !rayon::circuit_breaker_open() {
        violations.push("circuit breaker failed to open under repeated job panics".into());
    }
    let degraded_before = obs::snapshot().counter(obs::Counter::PoolDegradedRuns);
    let mut dst = Image::<u8>::new(w, h);
    let degraded_result =
        pool.install(|| try_par_fused_edge_detect_with(&src, &mut dst, 96, engine, &plan));
    let degraded_after = obs::snapshot().counter(obs::Counter::PoolDegradedRuns);
    if degraded_result != Ok(()) || !dst.pixels_eq(&edge_ref) {
        violations.push("degraded serial run failed or was not bit-exact".into());
    }
    if degraded_after == degraded_before {
        violations.push("open breaker did not route through the degraded serial path".into());
    }
    let mut close_attempts = 0;
    while rayon::circuit_breaker_open() && close_attempts < 32 {
        let mut dst = Image::<u8>::new(w, h);
        let _ = pool.install(|| try_par_fused_edge_detect_with(&src, &mut dst, 96, engine, &plan));
        close_attempts += 1;
    }
    if rayon::circuit_breaker_open() {
        violations.push("breaker failed to close after fault source removed".into());
    }
    rayon::reset_circuit_breaker();
    std::panic::set_hook(prev_hook);

    let snap = obs::snapshot();
    println!("\nrecovery counters:");
    println!(
        "  pool.respawns       {}",
        snap.counter(obs::Counter::PoolRespawns)
    );
    println!(
        "  pool.watchdog_trips {}",
        snap.counter(obs::Counter::PoolWatchdogTrips)
    );
    println!(
        "  pool.degraded_runs  {}",
        snap.counter(obs::Counter::PoolDegradedRuns)
    );
    println!(
        "  workers live        {}/{} (complement restored)",
        rayon::pool_live_workers(),
        complement
    );
    println!("  breaker             open -> degraded serial (bit-exact) -> closed");

    if violations.is_empty() {
        println!("\nchaos matrix clean: every run completed or errored cleanly, no leaks");
    } else {
        println!("\n{} INVARIANT VIOLATIONS:", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}

/// Stream mode: drives N synthetic frames through the multi-frame
/// streaming engine (DESIGN.md §11) at a configurable offered rate and
/// reports throughput, latency distribution, and shed/reject counts.
///
/// `--rate FPS` runs open-loop: frames are offered on schedule and a
/// saturated queue rejects them (the backpressure the report counts).
/// `--rate 0` (default) runs closed-loop: submission retries until
/// admitted, measuring the engine's capacity.
///
/// `--quick` is the CI smoke: small frames at a gentle rate, asserting
/// zero shed, zero failures, bit-exact output against the serial fused
/// kernel, and a flat slot-arena ledger across the steady state (the
/// zero-allocation proof). Exits non-zero on any violation.
fn stream_mode(args: &[String]) {
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{try_fused_edge_detect_with, try_fused_gaussian_blur_with};
    use simdbench_core::scratch::Scratch;
    use simdbench_core::stream::{
        frame_checksum, summarize, FrameStatus, StreamConfig, StreamEngine, StreamError,
        StreamKernel,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let quick = args.iter().any(|a| a == "--quick");
    let telemetry = telemetry_requested(args);
    let telemetry_path = flag_value(args, "--telemetry-json")
        .unwrap_or_else(|| "results/telemetry_stream.json".into());
    let json_path = flag_value(args, "--json").unwrap_or_else(|| "results/stream.json".into());

    let (width, height, res_label) = if quick {
        (160, 120, "160x120".to_string())
    } else {
        let res = flag_value(args, "--image")
            .and_then(|want| Resolution::ALL.into_iter().find(|r| r.label() == want))
            .unwrap_or(Resolution::Vga);
        let (w, h) = res.dims();
        (w, h, res.label().to_string())
    };
    let frames: u64 = flag_value(args, "--frames")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 48 } else { 240 });
    let rate: f64 = flag_value(args, "--rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 120.0 } else { 0.0 });
    let slo_ms: Option<u64> = flag_value(args, "--slo-ms").and_then(|s| s.parse().ok());
    let kernel = match flag_value(args, "--kernel").as_deref() {
        Some("edge") => StreamKernel::Edge,
        _ => StreamKernel::Gaussian,
    };

    let mut config = StreamConfig::new(width, height);
    config.kernel = kernel;
    config.engine = host_hand_engine();
    if let Some(n) = flag_value(args, "--slots").and_then(|s| s.parse().ok()) {
        config.slots = n;
    }
    if let Some(n) = flag_value(args, "--queue").and_then(|s| s.parse().ok()) {
        config.queue_cap = n;
    }
    // Quick keeps a generous SLO armed so the shed path is live (and
    // provably silent at this rate); full runs shed only on request.
    config.slo = slo_ms
        .or(if quick { Some(1000) } else { None })
        .map(Duration::from_millis);

    println!("Stream mode: multi-frame engine over the fused pipeline");
    println!(
        "frame {res_label}, {} frames, offered rate {}, {} slots, queue cap {}, kernel {:?}\n",
        frames,
        if rate > 0.0 {
            format!("{rate} fps (open loop)")
        } else {
            "max (closed loop)".into()
        },
        config.slots,
        config.queue_cap,
        config.kernel,
    );

    let src = Arc::new(pixelimage::synthetic_image(width, height, 7));
    // Serial reference checksum for the bit-exactness check.
    let want = {
        let mut reference = pixelimage::Image::new(width, height);
        let mut scratch = Scratch::new();
        match config.kernel {
            StreamKernel::Gaussian => try_fused_gaussian_blur_with(
                &src,
                &mut reference,
                &paper_gaussian_kernel(),
                config.engine,
                &mut scratch,
            ),
            StreamKernel::Edge => try_fused_edge_detect_with(
                &src,
                &mut reference,
                config.thresh,
                config.engine,
                &mut scratch,
            ),
        }
        .expect("serial reference run");
        frame_checksum(&reference)
    };

    let slo_for_json = config.slo;
    let (slots, queue_cap) = (config.slots.max(1), config.queue_cap.max(1));
    let engine = match StreamEngine::new(config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stream config rejected: {e}");
            std::process::exit(1);
        }
    };

    // Warm-up: one closed-loop pass per slot settles every arena, then
    // the ledger must stay flat for the measured run.
    for id in 0..4u64 {
        while let Err(StreamError::Saturated { .. }) = engine.submit(id, Arc::clone(&src)) {
            engine.wait_idle();
        }
    }
    engine.wait_idle();
    let warm_allocs = engine.slot_fresh_allocs();

    let start = Instant::now();
    let mut rejected = 0u64;
    for i in 0..frames {
        if rate > 0.0 {
            let target = start + Duration::from_secs_f64(i as f64 / rate);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        loop {
            match engine.submit(100 + i, Arc::clone(&src)) {
                Ok(()) => break,
                Err(StreamError::Saturated { .. }) if rate > 0.0 => {
                    // Open loop: the offered frame is lost to
                    // backpressure; that IS the measurement.
                    rejected += 1;
                    break;
                }
                Err(StreamError::Saturated { .. }) => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => {
                    eprintln!("frame {i} rejected: {e}");
                    rejected += 1;
                    break;
                }
            }
        }
    }
    engine.wait_idle();
    let wall = start.elapsed();
    let end_allocs = engine.slot_fresh_allocs();
    let outstanding = engine.outstanding_scratch_bytes();
    let outcomes = engine.finish();

    // Warm-up outcomes (ids < 100) are excluded from the report.
    let measured: Vec<_> = outcomes.into_iter().filter(|o| o.id >= 100).collect();
    let summary = summarize(&measured);
    let mismatched = measured
        .iter()
        .filter(|o| matches!(o.status, FrameStatus::Completed { checksum } if checksum != want))
        .count();
    let mut latencies: Vec<f64> = measured
        .iter()
        .filter(|o| matches!(o.status, FrameStatus::Completed { .. }))
        .map(|o| o.latency.as_secs_f64())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let throughput = summary.completed as f64 / wall.as_secs_f64();

    println!("offered     {frames}");
    println!("rejected    {rejected}  (queue backpressure)");
    println!("shed        {}  (SLO expired in queue)", summary.shed);
    println!("failed      {}", summary.failed);
    println!(
        "completed   {}  ({mismatched} checksum mismatches)",
        summary.completed
    );
    println!(
        "degraded    {}  (breaker-open serial frames)",
        summary.degraded
    );
    println!("wall        {:.3}s", wall.as_secs_f64());
    println!("throughput  {throughput:.1} frames/s");
    println!(
        "latency     mean {:.6}s  p50 {:.6}s  p95 {:.6}s  max {:.6}s",
        mean,
        pct(0.50),
        pct(0.95),
        pct(1.0)
    );
    println!("slot arenas fresh allocs {warm_allocs} -> {end_allocs}, {outstanding} B outstanding");

    let report = StreamReport {
        width,
        height,
        res_label: res_label.clone(),
        frames,
        rate,
        slots,
        queue_cap,
        slo_ms: slo_for_json.map(|d| d.as_millis() as u64),
        kernel: match kernel {
            StreamKernel::Gaussian => "gaussian",
            StreamKernel::Edge => "edge",
        },
        rejected,
        shed: summary.shed,
        failed: summary.failed,
        completed: summary.completed,
        degraded: summary.degraded,
        mean_s: mean,
        p50_s: pct(0.50),
        p95_s: pct(0.95),
        max_s: pct(1.0),
        throughput_fps: throughput,
        wall_s: wall.as_secs_f64(),
        warm_allocs,
        end_allocs,
        outstanding,
        mismatched,
    };
    if let Err(e) = write_stream_json(&json_path, &report) {
        eprintln!("cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {json_path}");

    if telemetry {
        telemetry_report(&telemetry_path);
    }

    if quick {
        let mut violations = Vec::new();
        if summary.shed != 0 {
            violations.push(format!("{} frames shed at smoke rate", summary.shed));
        }
        if summary.failed != 0 {
            violations.push(format!("{} frames failed", summary.failed));
        }
        if rejected != 0 {
            violations.push(format!("{rejected} frames rejected at smoke rate"));
        }
        if summary.completed as u64 != frames {
            violations.push(format!(
                "{} of {frames} frames completed",
                summary.completed
            ));
        }
        if mismatched != 0 {
            violations.push(format!("{mismatched} frames not bit-exact vs serial"));
        }
        if end_allocs != warm_allocs {
            violations.push(format!(
                "slot arenas grew at steady state: {warm_allocs} -> {end_allocs} fresh allocs"
            ));
        }
        if outstanding != 0 {
            violations.push(format!("{outstanding} scratch bytes outstanding"));
        }
        if violations.is_empty() {
            println!("stream smoke clean: zero shed, zero alloc growth, bit-exact");
        } else {
            println!("\n{} STREAM SMOKE VIOLATIONS:", violations.len());
            for v in &violations {
                println!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}

/// Section V: instruction-stream comparison of HAND vs AUTO per kernel.
fn asm_analysis() {
    use op_trace::analysis::{StreamComparison, StreamProfile};
    use op_trace::OpMix;
    use platform_model::workload::{auto_mix, hand_mix};

    println!("Section V analysis: instruction streams per output pixel");
    println!("(HAND measured through the simulated intrinsic surfaces;");
    println!(" AUTO modelled from the paper's gcc 4.6 disassembly)\n");
    for isa in [Isa::Neon, Isa::Sse2] {
        println!("--- {} ---", isa.label());
        for kernel in Kernel::ALL {
            let hand = hand_mix(kernel, isa);
            let auto = auto_mix(kernel, isa);
            // Render per 1000 pixels so integer op counts read naturally.
            let to_opmix = |m: &platform_model::workload::PixelMix| {
                let mut mix = OpMix::new();
                for class in op_trace::OpClass::ALL {
                    mix.set(class, (m.get(class) * 1000.0).round() as u64);
                }
                mix
            };
            let cmp = StreamComparison::new(
                format!("{} [{}]", kernel.label(), isa.label()),
                StreamProfile::new("HAND (intrinsics)", to_opmix(&hand), 1000),
                StreamProfile::new("AUTO (gcc 4.6)", to_opmix(&auto), 1000),
            );
            print!("{}", cmp.report());
        }
    }
}

/// A4: energy-efficiency extension.
fn energy() {
    use platform_model::energy::{classify, joules_per_frame, megapixels_per_joule};
    use platform_model::Strategy;

    println!("Energy extension (A4): 8 Mpx Gaussian blur, per-frame energy");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>14}  tier",
        "platform", "watts", "J/frame(A)", "J/frame(H)", "Mpx/J (HAND)"
    );
    for p in all_platforms() {
        let auto = joules_per_frame(&p, Kernel::Gaussian, Strategy::Auto, Resolution::Mp8);
        let hand = joules_per_frame(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Mp8);
        let eff = megapixels_per_joule(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Mp8);
        println!(
            "{:<14} {:>6.1} {:>12.4} {:>12.4} {:>14.2}  {:?}",
            p.short,
            p.tdp_watts,
            auto,
            hand,
            eff,
            classify(&p)
        );
    }
}

/// Fused mode: band-tiled fused pipeline vs the two-pass kernels on this
/// machine, native engine, paper protocol — the A4 locality experiment.
fn fused_mode(args: &[String]) {
    use repro_harness::timing::measure_fused;

    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = flag_value(args, "--csv");
    let telemetry = telemetry_requested(args);
    let telemetry_path =
        flag_value(args, "--json").unwrap_or_else(|| "results/telemetry_fused.json".into());
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };
    const STENCILS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Sobel, Kernel::Edge];

    println!("Fused mode: band-tiled fused pipeline vs two-pass (native engine)");
    println!(
        "protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>9}",
        "kernel", "image", "2-pass (s)", "fused (s)", "speed-up"
    );
    let mut csv = String::from("kernel,image,two_pass_seconds,fused_seconds,speedup\n");
    let engine = host_hand_engine();
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in STENCILS {
            let two_pass = measure(kernel, engine, &work, &config);
            let fused = measure_fused(kernel, engine, &work, &config);
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                two_pass.seconds,
                fused.seconds,
                two_pass.seconds / fused.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                two_pass.seconds,
                fused.seconds,
                two_pass.seconds / fused.seconds
            ));
        }
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
    if telemetry {
        telemetry_report(&telemetry_path);
    }
}

/// Parallel mode: dispatch overhead of the persistent work-stealing pool
/// vs the per-call-spawn baseline, under the paper's timing protocol.
/// The pool is installed at width 4 so the real scheduler runs even on
/// single-core hosts (ISSUE 2: dispatch overhead dominated exactly where
/// the paper's low-powered-platform story lives).
fn parallel_mode(args: &[String]) {
    use repro_harness::timing::{measure_fused, measure_parallel, ParallelMode};

    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = flag_value(args, "--csv");
    let telemetry = telemetry_requested(args);
    let telemetry_path =
        flag_value(args, "--json").unwrap_or_else(|| "results/telemetry_parallel.json".into());
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };
    const STENCILS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Sobel, Kernel::Edge];
    const WIDTH: usize = 4;

    println!("Parallel mode: persistent pool vs per-call thread spawning (native engine)");
    println!(
        "pool width {WIDTH}; protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "image", "seq (s)", "spawn (s)", "pool (s)", "pool gain"
    );
    let mut csv = String::from("kernel,image,seq_seconds,spawn_seconds,pool_seconds,pool_gain\n");
    let engine = host_hand_engine();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(WIDTH)
        .build()
        .expect("pool build");
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in STENCILS {
            let seq = measure_fused(kernel, engine, &work, &config);
            let spawn = pool.install(|| {
                measure_parallel(kernel, engine, ParallelMode::SpawnPerCall, &work, &config)
            });
            // Snapshot/reset lifecycle (DESIGN.md §9): the spawn-baseline
            // arm runs its bands outside the pool, so its counters and
            // span trees must not bleed into the pool arm's telemetry.
            obs::reset();
            let pooled = pool
                .install(|| measure_parallel(kernel, engine, ParallelMode::Pool, &work, &config));
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                seq.seconds,
                spawn.seconds,
                pooled.seconds,
                spawn.seconds / pooled.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                seq.seconds,
                spawn.seconds,
                pooled.seconds,
                spawn.seconds / pooled.seconds
            ));
        }
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
    if telemetry {
        // reset() runs between arms, so the report covers the pool arm
        // of the final measured point — clean pool counters, no
        // spawn-baseline bleed.
        println!("\n(telemetry covers the final pool arm; obs::reset() isolates arms)");
        telemetry_report(&telemetry_path);
    }
}

/// Host mode: real measurements on this machine.
fn host_mode(args: &[String]) {
    use repro_harness::timing::HostMeasurement;

    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let csv_path = flag_value(args, "--csv");
    let telemetry = telemetry_requested(args);
    let telemetry_path =
        flag_value(args, "--json").unwrap_or_else(|| "results/telemetry_host.json".into());
    let bench_path =
        flag_value(args, "--bench-json").unwrap_or_else(|| "results/bench_host.json".into());
    let config = if quick {
        HostConfig::quick()
    } else {
        HostConfig::default()
    };
    let resolutions: &[Resolution] = if full {
        &Resolution::ALL
    } else if quick {
        &[Resolution::Vga]
    } else {
        &[Resolution::Vga, Resolution::Mp1]
    };

    println!("Host mode: AUTO (compiler-vectorized Rust) vs HAND (native intrinsics)");
    println!(
        "protocol: {} images x {} cycles per point\n",
        config.images, config.cycles
    );
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>9}",
        "kernel", "image", "AUTO (s)", "HAND (s)", "speed-up"
    );
    let mut csv = String::from("kernel,image,auto_seconds,hand_seconds,speedup\n");
    let mut rows: Vec<HostMeasurement> = Vec::new();
    for &res in resolutions {
        let work = WorkSet::new(res, config.images);
        for kernel in Kernel::ALL {
            let auto = measure(kernel, host_auto_engine(), &work, &config);
            let hand = measure(kernel, host_hand_engine(), &work, &config);
            println!(
                "{:<10} {:>11} {:>12.6} {:>12.6} {:>8.2}x",
                kernel.table3_label(),
                res.label(),
                auto.seconds,
                hand.seconds,
                auto.seconds / hand.seconds
            );
            csv.push_str(&format!(
                "{},{},{:.6},{:.6},{:.3}\n",
                kernel.table3_label(),
                res.label(),
                auto.seconds,
                hand.seconds,
                auto.seconds / hand.seconds
            ));
            rows.push(auto);
            rows.push(hand);
        }
    }

    println!("\nper-pass distribution (seconds):");
    println!(
        "{:<10} {:>11} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "kernel", "image", "engine", "min", "median", "p95", "max", "stddev"
    );
    for m in &rows {
        let s = m.stats();
        println!(
            "{:<10} {:>11} {:>8} {:>11.6} {:>11.6} {:>11.6} {:>11.6} {:>11.6}",
            m.kernel.table3_label(),
            m.resolution.label(),
            m.engine.label(),
            s.min,
            s.median,
            s.p95,
            s.max,
            s.stddev
        );
    }

    if let Err(e) = write_bench_json(&bench_path, &config, &rows) {
        eprintln!("cannot write {bench_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {bench_path}");

    if let Some(path) = csv_path {
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if telemetry {
        telemetry_report(&telemetry_path);
    }
}

/// Everything the stream-mode JSON report records: configuration,
/// counts, latency distribution, throughput, and the slot-arena ledger
/// evidence for the zero-allocation claim.
struct StreamReport {
    width: usize,
    height: usize,
    res_label: String,
    frames: u64,
    rate: f64,
    slots: usize,
    queue_cap: usize,
    slo_ms: Option<u64>,
    kernel: &'static str,
    rejected: u64,
    shed: usize,
    failed: usize,
    completed: usize,
    degraded: usize,
    mean_s: f64,
    p50_s: f64,
    p95_s: f64,
    max_s: f64,
    throughput_fps: f64,
    wall_s: f64,
    warm_allocs: usize,
    end_allocs: usize,
    outstanding: usize,
    mismatched: usize,
}

/// Writes the machine-readable stream-mode dump consumed by the
/// EXPERIMENTS.md A14 throughput-vs-offered-rate analysis.
fn write_stream_json(path: &str, r: &StreamReport) -> std::io::Result<()> {
    use obs::json::number;

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"image\": \"{}\", \"width\": {}, \"height\": {}, \"frames\": {}, \
         \"offered_rate_fps\": {}, \"slots\": {}, \"queue_cap\": {}, \"slo_ms\": {}, \
         \"kernel\": \"{}\"}},\n",
        r.res_label,
        r.width,
        r.height,
        r.frames,
        number(r.rate),
        r.slots,
        r.queue_cap,
        r.slo_ms.map_or("null".into(), |v| v.to_string()),
        r.kernel,
    ));
    out.push_str(&format!(
        "  \"counts\": {{\"offered\": {}, \"rejected\": {}, \"shed\": {}, \"failed\": {}, \
         \"completed\": {}, \"degraded\": {}, \"checksum_mismatches\": {}}},\n",
        r.frames, r.rejected, r.shed, r.failed, r.completed, r.degraded, r.mismatched,
    ));
    out.push_str(&format!(
        "  \"latency_s\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}},\n",
        number(r.mean_s),
        number(r.p50_s),
        number(r.p95_s),
        number(r.max_s),
    ));
    out.push_str(&format!(
        "  \"throughput_fps\": {},\n  \"wall_s\": {},\n",
        number(r.throughput_fps),
        number(r.wall_s),
    ));
    out.push_str(&format!(
        "  \"steady_state\": {{\"warm_fresh_allocs\": {}, \"end_fresh_allocs\": {}, \
         \"outstanding_bytes\": {}}}\n}}\n",
        r.warm_allocs, r.end_allocs, r.outstanding,
    ));
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

/// Writes the machine-readable host benchmark dump: one record per
/// (kernel, engine, resolution) point with the full distribution summary,
/// consumed by `scripts_merge_bench.py` to populate the BENCH trajectory.
fn write_bench_json(
    path: &str,
    config: &HostConfig,
    rows: &[repro_harness::timing::HostMeasurement],
) -> std::io::Result<()> {
    use obs::json::number;

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"protocol\": {{\"images\": {}, \"cycles\": {}, \"warmup\": {}}},\n",
        config.images, config.cycles, config.warmup
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let s = m.stats();
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"engine\": \"{}\", \"image\": \"{}\", \"runs\": {}, \
             \"mean_s\": {}, \"min_s\": {}, \"median_s\": {}, \"p95_s\": {}, \"max_s\": {}, \
             \"stddev_s\": {}}}{}\n",
            m.kernel.table3_label(),
            m.engine.label(),
            m.resolution.label(),
            m.runs,
            number(m.seconds),
            number(s.min),
            number(s.median),
            number(s.p95),
            number(s.max),
            number(s.stddev),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}
