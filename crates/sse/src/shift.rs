//! Bit-shift intrinsics (category *g*) and whole-register byte shifts.

use crate::types::__m128i;
use op_trace::{count, OpClass};

/// `psllw` — logical left shift of each 16-bit lane by an immediate.
#[inline]
pub fn _mm_slli_epi16<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i16(a.as_i16().shl(IMM8 as u32))
}

/// `pslld` — logical left shift of each 32-bit lane.
#[inline]
pub fn _mm_slli_epi32<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(a.as_i32().shl(IMM8 as u32))
}

/// `psllq` — logical left shift of each 64-bit lane.
#[inline]
pub fn _mm_slli_epi64<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i64(a.as_i64().shl(IMM8 as u32))
}

/// `psrlw` — logical right shift of each 16-bit lane.
#[inline]
pub fn _mm_srli_epi16<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_u16(a.as_u16().shr_logical(IMM8 as u32))
}

/// `psrld` — logical right shift of each 32-bit lane.
#[inline]
pub fn _mm_srli_epi32<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_u32(a.as_u32().shr_logical(IMM8 as u32))
}

/// `psrlq` — logical right shift of each 64-bit lane.
#[inline]
pub fn _mm_srli_epi64<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_u64(a.as_u64().shr_logical(IMM8 as u32))
}

/// `psraw` — arithmetic right shift of each 16-bit lane.
#[inline]
pub fn _mm_srai_epi16<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i16(a.as_i16().shr_arithmetic(IMM8 as u32))
}

/// `psrad` — arithmetic right shift of each 32-bit lane.
#[inline]
pub fn _mm_srai_epi32<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(a.as_i32().shr_arithmetic(IMM8 as u32))
}

/// `pslldq` — shifts the whole register left by `IMM8` *bytes*, filling with
/// zeros.
#[inline]
pub fn _mm_slli_si128<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let shift = (IMM8.clamp(0, 16)) as usize;
    let src = a.as_u8().to_array();
    let mut out = [0u8; 16];
    out[shift..].copy_from_slice(&src[..16 - shift]);
    __m128i::from_u8(out.into())
}

/// `psrldq` — shifts the whole register right by `IMM8` *bytes*, filling
/// with zeros.
#[inline]
pub fn _mm_srli_si128<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let shift = (IMM8.clamp(0, 16)) as usize;
    let src = a.as_u8().to_array();
    let mut out = [0u8; 16];
    out[..16 - shift].copy_from_slice(&src[shift..]);
    __m128i::from_u8(out.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn lane_shifts() {
        let v = _mm_set1_epi16(-16);
        assert_eq!(_mm_srai_epi16::<2>(v).as_i16().lane(0), -4);
        assert_eq!(
            _mm_srli_epi16::<2>(v).as_u16().lane(0),
            ((-16i16 as u16) >> 2)
        );
        assert_eq!(_mm_slli_epi16::<2>(v).as_i16().lane(0), -64);
        let d = _mm_set1_epi32(1);
        assert_eq!(_mm_slli_epi32::<8>(d).as_i32().lane(0), 256);
        assert_eq!(_mm_srli_epi32::<1>(d).as_i32().lane(0), 0);
        assert_eq!(
            _mm_srai_epi32::<4>(_mm_set1_epi32(-256)).as_i32().lane(0),
            -16
        );
    }

    #[test]
    fn epi64_shifts() {
        let v = _mm_loadu_si128(&[1i64, -1]);
        assert_eq!(_mm_slli_epi64::<32>(v).as_i64().lane(0), 1i64 << 32);
        assert_eq!(
            _mm_srli_epi64::<63>(v).as_u64().lane(1),
            1 // -1 >> 63 logical
        );
    }

    #[test]
    fn byte_shifts() {
        let v = _mm_loadu_si128(&(0u8..16).collect::<Vec<_>>());
        let l = _mm_slli_si128::<4>(v).as_u8().to_array();
        assert_eq!(&l[..4], &[0, 0, 0, 0]);
        assert_eq!(&l[4..8], &[0, 1, 2, 3]);
        let r = _mm_srli_si128::<4>(v).as_u8().to_array();
        assert_eq!(&r[..4], &[4, 5, 6, 7]);
        assert_eq!(&r[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn oversized_shift_zeroes() {
        let v = _mm_set1_epi16(0x7FFF);
        assert_eq!(_mm_slli_epi16::<16>(v).as_i16().lane(0), 0);
        assert_eq!(_mm_srli_epi16::<16>(v).as_u16().lane(0), 0);
        // Arithmetic shifts clamp at bits-1 (sign fill).
        assert_eq!(
            _mm_srai_epi16::<20>(_mm_set1_epi16(-2)).as_i16().lane(0),
            -1
        );
    }
}
