//! Whole-image element-type conversions (the OpenCV `Mat::convertTo`
//! equivalents the harness uses to prepare kernel inputs).

use crate::image::Image;

/// `u8` image to `f32` image, optionally scaled and offset:
/// `dst = src * alpha + beta`.
pub fn u8_to_f32(src: &Image<u8>, alpha: f32, beta: f32) -> Image<f32> {
    let mut dst = Image::new(src.width(), src.height());
    for y in 0..src.height() {
        let s = src.row(y);
        let d = dst.row_mut(y);
        for (dv, &sv) in d.iter_mut().zip(s.iter()) {
            *dv = sv as f32 * alpha + beta;
        }
    }
    dst
}

/// `f32` image to `u8` with saturating `cvRound` semantics.
pub fn f32_to_u8(src: &Image<f32>) -> Image<u8> {
    src.map(simd_vector::rounding::saturate_f32_to_u8)
}

/// `i16` image to `u8` with saturation (the Sobel-output display path).
pub fn i16_to_u8(src: &Image<i16>) -> Image<u8> {
    src.map(simd_vector::rounding::saturate_i16_to_u8)
}

/// `u8` image widened to `i16` (exact).
pub fn u8_to_i16(src: &Image<u8>) -> Image<i16> {
    src.map(|v| v as i16)
}

/// `f32` image to `i16` with saturating `cvRound` semantics — the scalar
/// reference for benchmark 1, applied image-wide.
pub fn f32_to_i16(src: &Image<f32>) -> Image<i16> {
    src.map(simd_vector::rounding::saturate_f32_to_i16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_f32_roundtrip_is_exact() {
        let img = Image::from_fn(9, 5, |x, y| (x * 13 + y * 29) as u8);
        let f = u8_to_f32(&img, 1.0, 0.0);
        let back = f32_to_u8(&f);
        assert!(back.pixels_eq(&img));
    }

    #[test]
    fn scale_and_offset() {
        let img = Image::from_fn(4, 1, |x, _| (x * 10) as u8);
        let f = u8_to_f32(&img, 2.0, 1.0);
        assert_eq!(f.row(0), &[1.0, 21.0, 41.0, 61.0]);
    }

    #[test]
    fn f32_to_u8_saturates() {
        let f = Image::<f32>::from_fn(3, 1, |x, _| match x {
            0 => -10.0,
            1 => 300.0,
            _ => 127.4,
        });
        let q = f32_to_u8(&f);
        assert_eq!(q.row(0), &[0, 255, 127]);
    }

    #[test]
    fn i16_paths() {
        let img = Image::from_fn(3, 1, |x, _| (x as u8) * 100);
        let wide = u8_to_i16(&img);
        assert_eq!(wide.row(0), &[0, 100, 200]);
        let i16img = Image::<i16>::from_fn(4, 1, |x, _| match x {
            0 => -5,
            1 => 0,
            2 => 255,
            _ => 300,
        });
        assert_eq!(i16_to_u8(&i16img).row(0), &[0, 0, 255, 255]);
    }

    #[test]
    fn f32_to_i16_uses_cv_round() {
        let f = Image::<f32>::from_fn(4, 1, |x, _| match x {
            0 => 0.5,  // ties to even -> 0
            1 => 1.5,  // -> 2
            2 => 4e4,  // saturates
            _ => -4e4, // saturates
        });
        assert_eq!(f32_to_i16(&f).row(0), &[0, 2, i16::MAX, i16::MIN]);
    }
}
