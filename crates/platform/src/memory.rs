//! DRAM streaming model.
//!
//! The benchmarked kernels stream megapixel images that dwarf every cache
//! in Table I, so the memory system contribution is modelled as sustained
//! streaming: `bytes / stream_gbps`, with the platform's effective
//! single-thread copy bandwidth (not the bus peak).

use crate::spec::PlatformSpec;

/// DRAM cycles per output pixel given bytes moved per pixel.
pub fn dram_cycles_per_pixel(bytes_per_pixel: f64, p: &PlatformSpec) -> f64 {
    bytes_per_pixel * p.dram_cycles_per_byte()
}

/// Seconds to stream `bytes` on this platform.
pub fn stream_seconds(bytes: f64, p: &PlatformSpec) -> f64 {
    bytes / (p.stream_gbps * 1e9)
}

/// Arithmetic intensity (ops per DRAM byte) — the roofline classifier for
/// the discussion tables.
pub fn arithmetic_intensity(ops_per_pixel: f64, bytes_per_pixel: f64) -> f64 {
    if bytes_per_pixel == 0.0 {
        f64::INFINITY
    } else {
        ops_per_pixel / bytes_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{core_i5_3360m, exynos_3110};

    #[test]
    fn dram_cycles_scale_with_clock_over_bandwidth() {
        let p = exynos_3110(); // 1.0 GHz, 0.9 GB/s
        let cpp = dram_cycles_per_pixel(6.0, &p);
        assert!((cpp - 6.0 * (1.0 / 0.9)).abs() < 1e-9);
    }

    #[test]
    fn laptops_stream_much_faster_than_phones() {
        let i5 = core_i5_3360m();
        let phone = exynos_3110();
        let bytes = 23.0e6; // one 8 Mpx frame's worth
        assert!(stream_seconds(bytes, &i5) * 10.0 < stream_seconds(bytes, &phone));
    }

    #[test]
    fn intensity() {
        assert_eq!(arithmetic_intensity(6.0, 2.0), 3.0);
        assert_eq!(arithmetic_intensity(6.0, 0.0), f64::INFINITY);
    }
}
