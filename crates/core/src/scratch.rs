//! Reusable scratch buffers for the fused band pipeline.
//!
//! The two-pass kernels allocate full-image intermediates on every call
//! (`Image<u16>` for the Gaussian, one or two `Image<i16>` for
//! Sobel/edge). The fused pipeline in [`crate::pipeline`] replaces those
//! with a handful of row-sized ring buffers per band, and this module
//! provides the arena they come from: a [`Scratch`] owns a pool of
//! [`BandWorkspace`]s that are checked out before a (possibly parallel)
//! band loop and returned afterwards, so steady-state processing performs
//! **zero** heap allocations — a property the arena itself can attest via
//! [`Scratch::fresh_allocs`], which counts every buffer the pool had to
//! grow. Tests assert the counter stays flat on warm runs.

use simd_vector::align::AlignedBuf;

/// Largest kernel length (taps) the fused pipeline supports without
/// falling back to the two-pass implementation; also bounds the stack
/// arrays used for tap pointers and splatted weights, keeping per-row
/// state off the heap.
pub const MAX_TAPS: usize = 31;

/// Per-band working memory for any of the fused kernels.
///
/// One workspace serves every fused kernel shape:
///
/// * Gaussian: `ring_u16` holds the `k = 2r+1` most recent horizontal-pass
///   rows.
/// * Sobel: the first 3 rows of `ring_a` hold the `[-1,0,1]` or `[1,2,1]`
///   horizontal results.
/// * Edge: `ring_a` (h-diff) and `ring_b` (h-smooth) both cycle 3 rows;
///   `row_gx`/`row_gy`/`row_u8` hold the per-row gradient and magnitude.
///
/// Buffers are allocated at least as large as requested and sliced to the
/// image width at the point of use, so a workspace warmed on one image is
/// reused as-is for any image of equal or smaller width.
#[derive(Debug)]
pub struct BandWorkspace {
    /// Gaussian horizontal-pass ring (`k` rows).
    pub ring_u16: Vec<AlignedBuf<u16>>,
    /// Sobel/edge first horizontal ring (3 rows).
    pub ring_a: Vec<AlignedBuf<i16>>,
    /// Edge second horizontal ring (3 rows).
    pub ring_b: Vec<AlignedBuf<i16>>,
    /// Per-row gx gradient.
    pub row_gx: AlignedBuf<i16>,
    /// Per-row gy gradient.
    pub row_gy: AlignedBuf<i16>,
    /// Per-row u8 temporary (gradient magnitude).
    pub row_u8: AlignedBuf<u8>,
}

impl Default for BandWorkspace {
    /// An empty workspace; zero-length `AlignedBuf`s allocate nothing.
    fn default() -> Self {
        BandWorkspace {
            ring_u16: Vec::new(),
            ring_a: Vec::new(),
            ring_b: Vec::new(),
            row_gx: AlignedBuf::zeroed(0),
            row_gy: AlignedBuf::zeroed(0),
            row_u8: AlignedBuf::zeroed(0),
        }
    }
}

/// Buffer-shape requirements for one checkout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceSpec {
    /// Row length every buffer must support (image width).
    pub width: usize,
    /// Rows needed in `ring_u16` (0 when the kernel does not use it).
    pub u16_rows: usize,
    /// Rows needed in `ring_a`.
    pub a_rows: usize,
    /// Rows needed in `ring_b`.
    pub b_rows: usize,
    /// Whether the per-row gx/gy/u8 buffers are needed.
    pub row_temps: bool,
}

impl WorkspaceSpec {
    /// Upper bound on the bytes a cold arena allocates to satisfy this
    /// spec (every ring row and temp at exactly `width`). Used by the
    /// arena cap check in [`Scratch::try_checkout`].
    pub fn bytes(&self) -> usize {
        self.width * 2 * (self.u16_rows + self.a_rows + self.b_rows)
            + if self.row_temps { self.width * 5 } else { 0 }
    }

    /// Spec for a fused Gaussian with a `k`-tap kernel.
    pub fn gaussian(width: usize, k: usize) -> Self {
        WorkspaceSpec {
            width,
            u16_rows: k,
            a_rows: 0,
            b_rows: 0,
            row_temps: false,
        }
    }

    /// Spec for a fused Sobel pass.
    pub fn sobel(width: usize) -> Self {
        WorkspaceSpec {
            width,
            u16_rows: 0,
            a_rows: 3,
            b_rows: 0,
            row_temps: false,
        }
    }

    /// Spec for the fused edge-detection chain.
    pub fn edge(width: usize) -> Self {
        WorkspaceSpec {
            width,
            u16_rows: 0,
            a_rows: 3,
            b_rows: 3,
            row_temps: true,
        }
    }
}

/// A pool of [`BandWorkspace`]s with an allocation ledger.
///
/// `Scratch` is cheap to construct (allocates nothing until first use) and
/// intended to be long-lived: the harness and benches create one per
/// kernel loop and feed it to every `fused_*_with` call. The
/// [`fresh_allocs`](Scratch::fresh_allocs) counter increments once per
/// buffer the pool had to allocate or grow, so
///
/// ```text
/// let before = scratch.fresh_allocs();
/// fused_edge_detect_with(..., &mut scratch);   // second run, same size
/// assert_eq!(scratch.fresh_allocs(), before);  // fully warm: no allocs
/// ```
///
/// is the arena-level statement of the pipeline's zero-allocation
/// contract.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<BandWorkspace>,
    fresh_allocs: usize,
    live_bytes: usize,
    outstanding: usize,
    outstanding_bytes: usize,
    cap_bytes: Option<usize>,
}

impl Scratch {
    /// Creates an empty arena. Nothing is allocated until a checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena that refuses (via [`Scratch::try_checkout`]) to
    /// grow beyond `cap` bytes.
    pub fn with_cap_bytes(cap: usize) -> Self {
        Scratch {
            cap_bytes: Some(cap),
            ..Self::default()
        }
    }

    /// Sets or clears the arena's byte cap. Only the fallible checkout
    /// path enforces it; [`Scratch::checkout`] stays infallible.
    pub fn set_cap_bytes(&mut self, cap: Option<usize>) {
        self.cap_bytes = cap;
    }

    /// Number of buffer allocations (or growths) performed so far.
    pub fn fresh_allocs(&self) -> usize {
        self.fresh_allocs
    }

    /// Total bytes currently held by this arena's buffers (checked-out
    /// workspaces included — give-backs don't change the total).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Number of workspaces currently checked out and not yet returned.
    /// Zero between operations — a nonzero value at rest means a panic
    /// path leaked a workspace (the invariant chaos runs assert).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Bytes held by checked-out-but-unreturned workspaces. The
    /// "leaked scratch bytes" figure: zero between operations.
    pub fn outstanding_bytes(&self) -> usize {
        self.outstanding_bytes
    }

    /// Number of workspaces currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Checks out a workspace satisfying `spec`, reusing pooled buffers
    /// where they are already large enough and growing them (counted)
    /// where they are not.
    ///
    /// The pool is shape-aware: a pooled workspace that already satisfies
    /// `spec` is preferred over the most recently returned one, so a
    /// single arena serving differently-shaped kernels (gaussian rings vs
    /// edge rings) stays allocation-free once each shape has been seen.
    pub fn checkout(&mut self, spec: WorkspaceSpec) -> BandWorkspace {
        let ready = self.pool.iter().position(|ws| Self::satisfies(ws, &spec));
        let mut ws = match ready {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        let (allocs_before, bytes_before) = (self.fresh_allocs, self.live_bytes);
        let ledger = &mut (&mut self.fresh_allocs, &mut self.live_bytes);
        Self::ensure_ring(ledger, &mut ws.ring_u16, spec.u16_rows, spec.width);
        Self::ensure_ring(ledger, &mut ws.ring_a, spec.a_rows, spec.width);
        Self::ensure_ring(ledger, &mut ws.ring_b, spec.b_rows, spec.width);
        if spec.row_temps {
            Self::ensure_buf(ledger, &mut ws.row_gx, spec.width);
            Self::ensure_buf(ledger, &mut ws.row_gy, spec.width);
            Self::ensure_buf(ledger, &mut ws.row_u8, spec.width);
        }
        if self.fresh_allocs > allocs_before {
            obs::add(
                obs::Counter::ScratchBuffersGrown,
                (self.fresh_allocs - allocs_before) as u64,
            );
            obs::add(
                obs::Counter::ScratchBytesAllocated,
                (self.live_bytes - bytes_before) as u64,
            );
        }
        obs::gauge_max(obs::Gauge::ScratchBytesHighWater, self.live_bytes as u64);
        self.outstanding += 1;
        self.outstanding_bytes += Self::workspace_bytes(&ws);
        ws
    }

    /// Fallible checkout: refuses with
    /// [`KernelError::ArenaExhausted`](crate::error::KernelError) when the
    /// arena has a byte cap and satisfying `spec` could grow it past the
    /// cap. The growth estimate is an upper bound ([`WorkspaceSpec::bytes`]
    /// when no pooled workspace already satisfies the spec), so a rejected
    /// checkout never allocates anything.
    pub fn try_checkout(
        &mut self,
        spec: WorkspaceSpec,
    ) -> Result<BandWorkspace, crate::error::KernelError> {
        if let Some(cap) = self.cap_bytes {
            let warm = self.pool.iter().any(|ws| Self::satisfies(ws, &spec));
            let projected = self.live_bytes + if warm { 0 } else { spec.bytes() };
            if projected > cap {
                return Err(crate::error::KernelError::ArenaExhausted {
                    requested: projected,
                    cap,
                });
            }
        }
        Ok(self.checkout(spec))
    }

    /// Checkout whose give-back is a drop guard: the workspace returns to
    /// the arena when the [`CheckedOut`] handle drops, **including during
    /// unwinding**, so a panic inside a band loop cannot leak the buffers.
    pub fn checkout_guarded(&mut self, spec: WorkspaceSpec) -> CheckedOut<'_> {
        let ws = self.checkout(spec);
        CheckedOut {
            arena: self,
            ws: Some(ws),
        }
    }

    /// [`Scratch::checkout_guarded`] through the fallible (capped) path.
    pub fn try_checkout_guarded(
        &mut self,
        spec: WorkspaceSpec,
    ) -> Result<CheckedOut<'_>, crate::error::KernelError> {
        let ws = self.try_checkout(spec)?;
        Ok(CheckedOut {
            arena: self,
            ws: Some(ws),
        })
    }

    /// Pre-warms the arena for `spec`: checks a workspace out and
    /// straight back in, so the next checkout of the same shape is
    /// allocation-free. The stream engine warms each slot arena at
    /// construction time, making even the *first* frame through a slot
    /// part of the zero-allocation steady state.
    pub fn warm(&mut self, spec: WorkspaceSpec) {
        let ws = self.checkout(spec);
        self.give_back(ws);
    }

    /// Returns a workspace to the pool for later reuse.
    pub fn give_back(&mut self, ws: BandWorkspace) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.outstanding_bytes = self
            .outstanding_bytes
            .saturating_sub(Self::workspace_bytes(&ws));
        self.pool.push(ws);
    }

    /// Bytes currently held by `ws`'s buffers.
    fn workspace_bytes(ws: &BandWorkspace) -> usize {
        let ring_i16 = |ring: &[AlignedBuf<i16>]| ring.iter().map(|b| b.len() * 2).sum::<usize>();
        ws.ring_u16.iter().map(|b| b.len() * 2).sum::<usize>()
            + ring_i16(&ws.ring_a)
            + ring_i16(&ws.ring_b)
            + ws.row_gx.len() * 2
            + ws.row_gy.len() * 2
            + ws.row_u8.len()
    }

    /// True when `ws` can serve `spec` without any buffer growth.
    fn satisfies(ws: &BandWorkspace, spec: &WorkspaceSpec) -> bool {
        let ring_ok = |ring: &[AlignedBuf<i16>], rows: usize| {
            ring.len() >= rows && ring.iter().take(rows).all(|b| b.len() >= spec.width)
        };
        ws.ring_u16.len() >= spec.u16_rows
            && ws
                .ring_u16
                .iter()
                .take(spec.u16_rows)
                .all(|b| b.len() >= spec.width)
            && ring_ok(&ws.ring_a, spec.a_rows)
            && ring_ok(&ws.ring_b, spec.b_rows)
            && (!spec.row_temps
                || (ws.row_gx.len() >= spec.width
                    && ws.row_gy.len() >= spec.width
                    && ws.row_u8.len() >= spec.width))
    }

    fn ensure_ring<T: simd_vector::align::Pod>(
        ledger: &mut (&mut usize, &mut usize),
        ring: &mut Vec<AlignedBuf<T>>,
        rows: usize,
        width: usize,
    ) {
        for buf in ring.iter_mut().take(rows) {
            Self::ensure_buf(ledger, buf, width);
        }
        while ring.len() < rows {
            *ledger.0 += 1;
            *ledger.1 += width * std::mem::size_of::<T>();
            ring.push(AlignedBuf::zeroed(width));
        }
    }

    fn ensure_buf<T: simd_vector::align::Pod>(
        ledger: &mut (&mut usize, &mut usize),
        buf: &mut AlignedBuf<T>,
        width: usize,
    ) {
        if buf.len() < width {
            *ledger.0 += 1;
            *ledger.1 += (width - buf.len()) * std::mem::size_of::<T>();
            *buf = AlignedBuf::zeroed(width);
        }
    }
}

/// A checked-out workspace that returns itself to its arena on drop —
/// the unwind-safe counterpart of the `checkout`/`give_back` pair. The
/// sequential fused entry points hold their workspace through one of
/// these so an injected (or real) panic mid-band still restores the
/// arena's ledgers.
pub struct CheckedOut<'a> {
    arena: &'a mut Scratch,
    ws: Option<BandWorkspace>,
}

impl CheckedOut<'_> {
    /// The borrowed workspace (present until drop).
    pub fn ws(&mut self) -> &mut BandWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for CheckedOut<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.arena.give_back(ws);
        }
    }
}

thread_local! {
    /// Per-thread arena used by the parallel band drivers. Pool worker
    /// threads are persistent, so each worker's arena warms once and then
    /// serves every subsequent band it processes without touching the
    /// allocator; the main thread's arena plays the same role for the
    /// inline (width-1 / nested) path.
    static WORKER_SCRATCH: std::cell::RefCell<Scratch> =
        std::cell::RefCell::new(Scratch::new());
}

/// Runs `f` with a workspace checked out from the calling thread's
/// persistent arena.
///
/// This is how the zero-allocation ledger extends to the parallel path:
/// band tasks are scheduled dynamically (a worker may run any band, for
/// any kernel shape), so workspaces cannot be pre-bound to bands; instead
/// each worker owns an arena for the life of the thread. The workspace is
/// returned to the arena **even if `f` panics** — a drop guard performs
/// the give-back during unwinding, so injected band faults neither leak
/// buffers nor force the next checkout to reallocate.
pub fn with_worker_workspace<R>(spec: WorkspaceSpec, f: impl FnOnce(&mut BandWorkspace) -> R) -> R {
    struct ReturnOnDrop {
        ws: Option<BandWorkspace>,
    }
    impl Drop for ReturnOnDrop {
        fn drop(&mut self) {
            if let Some(ws) = self.ws.take() {
                // try_with/try_borrow_mut: during thread teardown or a
                // panic re-entering the arena the give-back is impossible;
                // the workspace is then simply freed (never double-held).
                let _ = WORKER_SCRATCH.try_with(|cell| {
                    if let Ok(mut arena) = cell.try_borrow_mut() {
                        arena.give_back(ws);
                    }
                });
            }
        }
    }
    let ws = WORKER_SCRATCH.with(|cell| cell.borrow_mut().checkout(spec));
    let mut guard = ReturnOnDrop { ws: Some(ws) };
    f(guard.ws.as_mut().expect("workspace present until drop"))
}

/// Number of buffer allocations the calling thread's worker arena has
/// performed (its [`Scratch::fresh_allocs`] ledger).
pub fn worker_arena_fresh_allocs() -> usize {
    WORKER_SCRATCH.with(|cell| cell.borrow().fresh_allocs())
}

/// Bytes currently held by the calling thread's worker arena (its
/// [`Scratch::live_bytes`] ledger).
pub fn worker_arena_live_bytes() -> usize {
    WORKER_SCRATCH.with(|cell| cell.borrow().live_bytes())
}

/// Workspaces checked out of the calling thread's worker arena and not
/// yet returned ([`Scratch::outstanding`]). Zero between operations.
pub fn worker_arena_outstanding() -> usize {
    WORKER_SCRATCH.with(|cell| cell.borrow().outstanding())
}

/// Bytes leaked from the calling thread's worker arena if nonzero at
/// rest ([`Scratch::outstanding_bytes`]).
pub fn worker_arena_outstanding_bytes() -> usize {
    WORKER_SCRATCH.with(|cell| cell.borrow().outstanding_bytes())
}

/// Pre-warms the worker arenas of **every live pool worker** (and the
/// calling thread) for the given workspace shapes, so a subsequent
/// parallel band loop at the current thread width performs no worker-side
/// allocations even on its first call. Used by benchmarks and the
/// allocator-level zero-alloc tests to make warmth deterministic — with
/// dynamic scheduling there is otherwise no guarantee which worker first
/// sees which kernel shape.
pub fn warm_worker_arenas(specs: &[WorkspaceSpec]) {
    rayon::broadcast(|_| {
        for &spec in specs {
            with_worker_workspace(spec, |_| ());
        }
    });
    for &spec in specs {
        with_worker_workspace(spec, |_| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_workspace_is_warm_after_first_use() {
        let spec = WorkspaceSpec::edge(320);
        with_worker_workspace(spec, |ws| {
            assert!(ws.ring_a.len() >= 3 && ws.row_u8.len() >= 320);
        });
        let warm = worker_arena_fresh_allocs();
        for _ in 0..3 {
            with_worker_workspace(spec, |_| ());
        }
        assert_eq!(worker_arena_fresh_allocs(), warm);
    }

    #[test]
    fn cold_checkout_allocates_warm_checkout_does_not() {
        let mut scratch = Scratch::new();
        let spec = WorkspaceSpec::edge(640);
        let ws = scratch.checkout(spec);
        let cold = scratch.fresh_allocs();
        assert!(cold >= 9, "edge spec needs 3+3 ring rows and 3 row temps");
        scratch.give_back(ws);

        let ws = scratch.checkout(spec);
        assert_eq!(scratch.fresh_allocs(), cold, "warm checkout allocated");
        assert!(ws.ring_a.len() >= 3 && ws.ring_b.len() >= 3);
        assert!(ws.row_gx.len() >= 640 && ws.row_u8.len() >= 640);
        scratch.give_back(ws);
    }

    #[test]
    fn smaller_requests_reuse_larger_buffers() {
        let mut scratch = Scratch::new();
        let ws = scratch.checkout(WorkspaceSpec::gaussian(1000, 7));
        let cold = scratch.fresh_allocs();
        scratch.give_back(ws);
        let ws = scratch.checkout(WorkspaceSpec::gaussian(500, 7));
        assert_eq!(scratch.fresh_allocs(), cold);
        scratch.give_back(ws);
    }

    #[test]
    fn wider_requests_grow_and_are_counted() {
        let mut scratch = Scratch::new();
        let ws = scratch.checkout(WorkspaceSpec::sobel(100));
        let cold = scratch.fresh_allocs();
        scratch.give_back(ws);
        let ws = scratch.checkout(WorkspaceSpec::sobel(200));
        assert!(scratch.fresh_allocs() > cold, "growth must be visible");
        scratch.give_back(ws);
    }

    #[test]
    fn live_bytes_tracks_buffer_growth_exactly() {
        let mut scratch = Scratch::new();
        assert_eq!(scratch.live_bytes(), 0);
        // Sobel spec: 3 i16 ring rows of `width` elements.
        let ws = scratch.checkout(WorkspaceSpec::sobel(100));
        assert_eq!(scratch.live_bytes(), 3 * 100 * 2);
        scratch.give_back(ws);
        // Warm checkout: no change.
        let ws = scratch.checkout(WorkspaceSpec::sobel(100));
        assert_eq!(scratch.live_bytes(), 3 * 100 * 2);
        scratch.give_back(ws);
        // Growth counts only the delta per buffer.
        let ws = scratch.checkout(WorkspaceSpec::sobel(150));
        assert_eq!(scratch.live_bytes(), 3 * 150 * 2);
        scratch.give_back(ws);
    }

    #[test]
    fn outstanding_ledger_tracks_checkout_and_return() {
        let mut scratch = Scratch::new();
        assert_eq!(scratch.outstanding(), 0);
        assert_eq!(scratch.outstanding_bytes(), 0);
        let ws = scratch.checkout(WorkspaceSpec::sobel(100));
        assert_eq!(scratch.outstanding(), 1);
        assert_eq!(scratch.outstanding_bytes(), 3 * 100 * 2);
        scratch.give_back(ws);
        assert_eq!(scratch.outstanding(), 0);
        assert_eq!(scratch.outstanding_bytes(), 0);
    }

    #[test]
    fn guarded_checkout_returns_workspace_on_unwind() {
        let mut scratch = Scratch::new();
        let spec = WorkspaceSpec::edge(256);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut co = scratch.checkout_guarded(spec);
            assert!(co.ws().ring_a.len() >= 3);
            panic!("band body died");
        }));
        assert!(err.is_err());
        assert_eq!(scratch.outstanding(), 0, "guard must give back on unwind");
        assert_eq!(scratch.outstanding_bytes(), 0);
        // And the pooled workspace is reusable without fresh allocations.
        let warm = scratch.fresh_allocs();
        let co = scratch.checkout_guarded(spec);
        drop(co);
        assert_eq!(scratch.fresh_allocs(), warm);
    }

    #[test]
    fn worker_workspace_survives_panicking_closure() {
        let spec = WorkspaceSpec::sobel(128);
        // Warm first so the ledger comparison is exact.
        with_worker_workspace(spec, |_| ());
        let warm = worker_arena_fresh_allocs();
        let err = std::panic::catch_unwind(|| {
            with_worker_workspace(spec, |_| panic!("injected band fault"));
        });
        assert!(err.is_err());
        assert_eq!(worker_arena_outstanding(), 0, "panic leaked a workspace");
        assert_eq!(worker_arena_outstanding_bytes(), 0);
        with_worker_workspace(spec, |_| ());
        assert_eq!(
            worker_arena_fresh_allocs(),
            warm,
            "post-panic checkout had to reallocate"
        );
    }

    #[test]
    fn capped_arena_rejects_oversized_checkouts_without_allocating() {
        let spec = WorkspaceSpec::sobel(1000); // needs 6000 B
        let mut scratch = Scratch::with_cap_bytes(spec.bytes() - 1);
        match scratch.try_checkout(spec) {
            Err(crate::error::KernelError::ArenaExhausted { requested, cap }) => {
                assert_eq!(requested, spec.bytes());
                assert_eq!(cap, spec.bytes() - 1);
            }
            other => panic!("expected ArenaExhausted, got {other:?}"),
        }
        assert_eq!(scratch.live_bytes(), 0, "rejected checkout allocated");
        assert_eq!(scratch.fresh_allocs(), 0);
        // Raising the cap makes the same checkout succeed, and a warm
        // re-checkout passes the cap check via the pooled workspace.
        scratch.set_cap_bytes(Some(spec.bytes()));
        let ws = scratch.try_checkout(spec).expect("fits exactly");
        scratch.give_back(ws);
        let ws = scratch.try_checkout(spec).expect("warm re-checkout");
        scratch.give_back(ws);
    }

    #[test]
    fn multiple_checkouts_pool_independently() {
        let mut scratch = Scratch::new();
        let a = scratch.checkout(WorkspaceSpec::sobel(64));
        let b = scratch.checkout(WorkspaceSpec::sobel(64));
        scratch.give_back(a);
        scratch.give_back(b);
        assert_eq!(scratch.pooled(), 2);
        let cold = scratch.fresh_allocs();
        let a = scratch.checkout(WorkspaceSpec::sobel(64));
        let b = scratch.checkout(WorkspaceSpec::sobel(64));
        assert_eq!(scratch.fresh_allocs(), cold);
        scratch.give_back(a);
        scratch.give_back(b);
    }
}
