//! # simd-repro
//!
//! A full reproduction of *"Use of SIMD Vector Operations to Accelerate
//! Application Code Performance on Low-Powered ARM and Intel Platforms"*
//! (Mitra, Johnston, Rendell, McCreath, Zhou — IPPS/IPDPSW 2013) as a Rust
//! workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`vector`] | `simd-vector` | Portable 128/64-bit lane types |
//! | [`sse`] | `sse-sim` | The Intel SSE2 intrinsic surface |
//! | [`neon`] | `neon-sim` | The ARMv7 NEON intrinsic surface |
//! | [`image`] | `pixelimage` | Image container, BMP codec, synthetic photos |
//! | [`kernels`] | `simdbench-core` | The five benchmark kernels × five backends |
//! | [`platform`] | `platform-model` | The ten simulated Table I platforms |
//! | [`harness`] | `repro-harness` | Paper methodology, tables, figures |
//! | [`trace`] | `op-trace` | Micro-op counting (Section V analysis) |
//!
//! ## Quickstart
//!
//! ```
//! use simd_repro::kernels::prelude::*;
//!
//! // A synthetic 0.3 Mpx "photograph".
//! let photo = simd_repro::image::synthetic_image(640, 480, 42);
//!
//! // Blur it with the hand-tuned intrinsics on this host's SIMD unit.
//! let mut blurred = Image::new(640, 480);
//! gaussian_blur(&photo, &mut blurred, Engine::Native);
//!
//! // Every backend produces bit-identical output.
//! let mut reference = Image::new(640, 480);
//! gaussian_blur(&photo, &mut reference, Engine::Scalar);
//! assert!(blurred.pixels_eq(&reference));
//! ```

pub use neon_sim as neon;
pub use op_trace as trace;
pub use pixelimage as image;
pub use platform_model as platform;
pub use repro_harness as harness;
pub use simd_vector as vector;
pub use simdbench_core as kernels;
pub use sse_sim as sse;

/// Short description used by the examples' banners.
pub const ABOUT: &str = "Reproduction of the IPPS 2013 NEON-vs-SSE2 SIMD intrinsics study";
