//! Benchmark 5 — edge detection (paper Section III-A.5): a 2-D Sobel
//! gradient followed by binary thresholding, "pixels with low gradient
//! intensity are removed".
//!
//! The gradient magnitude uses the standard L1 approximation
//! `|gx| + |gy|` saturated to `u8`, as OpenCV's fast path does.

use crate::dispatch::Engine;
use crate::error::{validate_pair, KernelResult};
use crate::sobel::SobelDirection;
use crate::threshold::{threshold_row, ThresholdType};
use pixelimage::Image;

/// Runs the full edge-detection pipeline: Sobel X + Sobel Y → L1 magnitude
/// → binary threshold at `thresh`.
pub fn edge_detect(src: &Image<u8>, dst: &mut Image<u8>, thresh: u8, engine: Engine) {
    if let Err(e) = try_edge_detect(src, dst, thresh, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`edge_detect`]: validates geometry instead of
/// asserting.
pub fn try_edge_detect(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
) -> KernelResult {
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    let mut gx = Image::<i16>::new(src.width(), src.height());
    let mut gy = Image::<i16>::new(src.width(), src.height());
    // Fallible sub-passes so an injected fault inside Sobel propagates as
    // an error instead of re-panicking through the shim.
    crate::sobel::try_sobel(src, &mut gx, SobelDirection::X, engine)?;
    crate::sobel::try_sobel(src, &mut gy, SobelDirection::Y, engine)?;
    let mut mag_row = vec![0u8; src.width()];
    for y in 0..src.height() {
        magnitude_row(gx.row(y), gy.row(y), &mut mag_row, engine);
        threshold_row(
            &mag_row,
            dst.row_mut(y),
            thresh,
            255,
            ThresholdType::Binary,
            engine,
        );
    }
    Ok(())
}

/// Computes the saturated L1 gradient magnitude of one row.
///
/// Inputs must be greater than `i16::MIN` (Sobel outputs are bounded by
/// ±1020): the SIMD backends compute `|v|` with wrapping semantics, which
/// differs from the scalar reference only at `i16::MIN`.
pub fn magnitude_row(gx: &[i16], gy: &[i16], dst: &mut [u8], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => magnitude_row_scalar(gx, gy, dst),
        Engine::Sse2Sim => magnitude_row_sse2_sim(gx, gy, dst),
        Engine::NeonSim => magnitude_row_neon_sim(gx, gy, dst),
        Engine::Native => magnitude_row_native(gx, gy, dst),
    }
}

/// Reference magnitude: `min(255, |gx| + |gy|)`.
pub fn magnitude_row_scalar(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    assert_eq!(gx.len(), dst.len());
    assert_eq!(gy.len(), dst.len());
    for x in 0..dst.len() {
        let mag = gx[x].unsigned_abs() as u32 + gy[x].unsigned_abs() as u32;
        dst[x] = mag.min(255) as u8;
    }
}

/// SSE2 magnitude: abs via `max(v, -v)` (SSE2 lacks `pabsw`), saturating
/// add, unsigned pack.
pub fn magnitude_row_sse2_sim(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    use sse_sim::*;
    assert_eq!(gx.len(), dst.len());
    assert_eq!(gy.len(), dst.len());
    let w = dst.len();
    let zero = _mm_setzero_si128();
    let mut x = 0;
    while x + 8 <= w {
        let vx = _mm_loadu_si128(&gx[x..]);
        let vy = _mm_loadu_si128(&gy[x..]);
        let ax = _mm_max_epi16(vx, _mm_sub_epi16(zero, vx));
        let ay = _mm_max_epi16(vy, _mm_sub_epi16(zero, vy));
        let sum = _mm_adds_epi16(ax, ay);
        let packed = _mm_packus_epi16(sum, sum);
        _mm_storel_epi64(&mut dst[x..], packed);
        x += 8;
    }
    magnitude_row_scalar(&gx[x..], &gy[x..], &mut dst[x..]);
}

/// NEON magnitude: `vabs`, saturating add, `vqmovun` narrow.
pub fn magnitude_row_neon_sim(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    use neon_sim::*;
    assert_eq!(gx.len(), dst.len());
    assert_eq!(gy.len(), dst.len());
    let w = dst.len();
    let mut x = 0;
    while x + 8 <= w {
        let vx = vabsq_s16(vld1q_s16(&gx[x..]));
        let vy = vabsq_s16(vld1q_s16(&gy[x..]));
        let sum = vqaddq_s16(vx, vy);
        vst1_u8(&mut dst[x..], vqmovun_s16(sum));
        x += 8;
    }
    magnitude_row_scalar(&gx[x..], &gy[x..], &mut dst[x..]);
}

/// Magnitude on the host's real SIMD unit.
pub fn magnitude_row_native(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(gx.len(), dst.len());
        assert_eq!(gy.len(), dst.len());
        let w = dst.len();
        let mut x = 0;
        // SAFETY: loads read gx[x..x+8]/gy[x..x+8]; the 64-bit store writes
        // dst[x..x+8]; x + 8 <= w throughout, all slices have length w.
        unsafe {
            let zero = _mm_setzero_si128();
            while x + 8 <= w {
                let vx = _mm_loadu_si128(gx.as_ptr().add(x) as *const __m128i);
                let vy = _mm_loadu_si128(gy.as_ptr().add(x) as *const __m128i);
                let ax = _mm_max_epi16(vx, _mm_sub_epi16(zero, vx));
                let ay = _mm_max_epi16(vy, _mm_sub_epi16(zero, vy));
                let sum = _mm_adds_epi16(ax, ay);
                let packed = _mm_packus_epi16(sum, sum);
                _mm_storel_epi64(dst.as_mut_ptr().add(x) as *mut __m128i, packed);
                x += 8;
            }
        }
        magnitude_row_scalar(&gx[x..], &gy[x..], &mut dst[x..]);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        magnitude_row_scalar(gx, gy, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn magnitude_engines_agree_on_extremes() {
        // i16::MIN is outside the documented domain (wrapping |v|).
        let gx: Vec<i16> = vec![0, 100, -100, 300, -300, i16::MAX, -32767, 1, -1, 255];
        let gy: Vec<i16> = vec![0, -50, 50, 300, -300, i16::MAX, -32767, 0, 0, 1];
        let mut expect = vec![0u8; gx.len()];
        magnitude_row_scalar(&gx, &gy, &mut expect);
        for engine in Engine::ALL {
            let mut out = vec![0u8; gx.len()];
            magnitude_row(&gx, &gy, &mut out, engine);
            assert_eq!(out, expect, "{engine:?}");
        }
    }

    #[test]
    fn magnitude_saturates_at_255() {
        // Sobel outputs are bounded by ±1020, so |gx|+|gy| <= 2040; check
        // saturation in that realistic range.
        let gx = vec![1020i16; 8];
        let gy = vec![1020i16; 8];
        for engine in Engine::ALL {
            let mut out = vec![0u8; 8];
            magnitude_row(&gx, &gy, &mut out, engine);
            assert_eq!(out, vec![255u8; 8], "{engine:?}");
        }
    }

    #[test]
    fn all_engines_full_pipeline_agree() {
        let src = synthetic_image(73, 41, 29);
        let mut reference = Image::new(73, 41);
        edge_detect(&src, &mut reference, 96, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(73, 41);
            edge_detect(&src, &mut out, 96, engine);
            assert!(out.pixels_eq(&reference), "{engine:?}");
        }
    }

    #[test]
    fn output_is_binary() {
        let src = synthetic_image(64, 48, 31);
        let mut out = Image::new(64, 48);
        edge_detect(&src, &mut out, 96, Engine::Native);
        assert!(out.all_pixels(|p| p == 0 || p == 255));
    }

    #[test]
    fn step_edge_is_found() {
        let src = Image::from_fn(32, 32, |x, _| if x < 16 { 10u8 } else { 240 });
        let mut out = Image::new(32, 32);
        edge_detect(&src, &mut out, 96, Engine::Native);
        // The seam columns light up; far columns stay dark.
        assert_eq!(out.get(15, 16), 255);
        assert_eq!(out.get(16, 16), 255);
        assert_eq!(out.get(3, 16), 0);
        assert_eq!(out.get(28, 16), 0);
    }

    #[test]
    fn flat_image_has_no_edges() {
        let src = Image::from_fn(24, 24, |_, _| 180u8);
        let mut out = Image::new(24, 24);
        edge_detect(&src, &mut out, 10, Engine::Native);
        assert!(out.all_pixels(|p| p == 0));
    }

    #[test]
    fn higher_threshold_finds_fewer_edges() {
        let src = synthetic_image(96, 64, 37);
        let count_edges = |thresh: u8| -> usize {
            let mut out = Image::new(96, 64);
            edge_detect(&src, &mut out, thresh, Engine::Native);
            out.iter_pixels().filter(|&p| p == 255).count()
        };
        let low = count_edges(32);
        let high = count_edges(200);
        assert!(low > high, "low {low} high {high}");
        assert!(low > 0);
    }
}
