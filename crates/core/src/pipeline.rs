//! Band-tiled fused execution pipeline (experiment A4).
//!
//! The two-pass kernels materialise full-image intermediates: the Gaussian
//! writes an `Image<u16>` the size of the input before the vertical pass
//! reads it back, Sobel an `Image<i16>`, and `edge_detect` two of them. At
//! the paper's 5 Mpx and 8 Mpx resolutions those intermediates are 10–32 MB
//! — far beyond any L2 — so every pixel of the horizontal pass is evicted
//! to DRAM and re-fetched by the vertical pass.
//!
//! This module fuses the passes: the image is processed in horizontal
//! *bands*, and inside a band the horizontal pass runs lazily, exactly one
//! row ahead of the vertical pass, into a ring of `k` row buffers
//! (`k` = kernel taps). The intermediate working set shrinks from
//! `O(width × height)` to `O(width × k)` — a few dozen KB that stays cache
//! resident — while every row is still produced by the *same* per-row
//! engine primitives as the two-pass code, so outputs are bit-identical
//! for every [`Engine`] (the correctness contract, enforced by tests).
//!
//! Band geometry comes from a [`BandPlan`]: bands are sized from real
//! cache capacities so a band's source and destination rows fit L2 while
//! the ring fits L1 where the width allows. `platform-model` derives plans
//! from its per-platform cache descriptions; [`BandPlan::for_width`] uses
//! conservative defaults.
//!
//! Buffers come from a [`Scratch`] arena. The sequential entry points use
//! a caller-owned arena; the parallel drivers hand bands to the
//! persistent worker pool (`shim-rayon`), where each worker owns a
//! thread-local arena ([`crate::scratch::with_worker_workspace`]) that
//! lives as long as the worker thread. Either way, steady-state calls
//! perform zero heap allocations inside the band loops (see
//! `tests/fused_zero_alloc.rs` for the allocator-level proof of both
//! paths).
//!
//! For dispatch-overhead measurements the `par_fused_*_spawn_baseline`
//! drivers reproduce the pre-pool scheduling — scoped OS threads spawned
//! and joined on every call, with per-call workspace allocation. They
//! exist only so `bench dispatch_overhead` and `repro parallel` can put a
//! number on what the persistent pool saves.

use crate::dispatch::Engine;
use crate::edge::magnitude_row;
use crate::error::{validate_pair, KernelError, KernelResult};
use crate::gaussian::{horizontal_row, vertical_row};
use crate::kernelgen::{paper_gaussian_kernel, FixedKernel};
use crate::scratch::{with_worker_workspace, BandWorkspace, Scratch, WorkspaceSpec, MAX_TAPS};
use crate::sobel::{h_diff_row, h_smooth_row, v_diff_row, v_smooth_row, SobelDirection};
use crate::threshold::{threshold_row, ThresholdType};
use pixelimage::Image;
use rayon::prelude::*;

// ---------------------------------------------------------------------------
// Band planning
// ---------------------------------------------------------------------------

/// How to slice an image into horizontal bands for fused processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandPlan {
    /// Rows per band (the last band may be shorter).
    pub band_rows: usize,
}

impl BandPlan {
    /// Default L1 data-cache capacity assumed by [`BandPlan::for_width`]:
    /// 32 KiB, the paper's Cortex-A9 and Atom parts alike.
    pub const DEFAULT_L1D_BYTES: usize = 32 * 1024;

    /// Default per-core L2 capacity assumed by [`BandPlan::for_width`]:
    /// 256 KiB (Atom D2700 per-core; Cortex-A9 parts share 512 KiB–1 MiB
    /// across two cores, the same order of magnitude).
    pub const DEFAULT_L2_BYTES: usize = 256 * 1024;

    /// Derives a plan from explicit cache capacities (bytes).
    ///
    /// The band is sized so its u8 source rows plus u8/i16 destination
    /// rows — the streams the fused loop actually touches repeatedly —
    /// occupy at most half of L2, leaving the other half for the ring
    /// buffers, the kernel's code, and prefetch slack:
    ///
    /// ```text
    /// band_rows ≈ (l2 / 2) / (width × 3 bytes-per-pixel)
    /// ```
    ///
    /// (3 ≈ 1 byte source + 2 bytes of worst-case destination, the i16
    /// Sobel output.) The result is clamped to `[8, 512]` rows: fewer than
    /// 8 rows per band makes halo recomputation (up to `2r` extra
    /// horizontal rows per band) a measurable fraction of the work, and
    /// beyond 512 rows more bands stop improving locality but reduce
    /// parallel balance. L1 does not bound the band height — the ring
    /// working set is `k` rows regardless of band size; it bounds the
    /// *width* at which the ring stays L1-resident, which the planner
    /// reports via [`BandPlan::ring_fits_l1`].
    pub fn for_cache(width: usize, l1d_bytes: usize, l2_bytes: usize) -> BandPlan {
        let _ = l1d_bytes; // see ring_fits_l1: L1 constrains width, not rows
        let bytes_per_row = width.max(1) * 3;
        let rows = (l2_bytes / 2) / bytes_per_row;
        BandPlan {
            band_rows: rows.clamp(8, 512),
        }
    }

    /// Plan from the default cache capacities.
    pub fn for_width(width: usize) -> BandPlan {
        Self::for_cache(width, Self::DEFAULT_L1D_BYTES, Self::DEFAULT_L2_BYTES)
    }

    /// Whether a `k`-tap u16 ring for rows of `width` pixels fits in an L1
    /// of `l1d_bytes` (informational; the pipeline works either way, the
    /// ring then lives in L2).
    pub fn ring_fits_l1(width: usize, k: usize, l1d_bytes: usize) -> bool {
        width * 2 * k <= l1d_bytes
    }

    /// Number of bands this plan produces for an image of `height` rows.
    pub fn num_bands(&self, height: usize) -> usize {
        height.div_ceil(self.band_rows.max(1))
    }

    /// Iterator over `(start_row, end_row)` half-open band ranges.
    pub fn bands(&self, height: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let rows = self.band_rows.max(1);
        (0..self.num_bands(height)).map(move |b| {
            let start = b * rows;
            (start, (start + rows).min(height))
        })
    }
}

#[inline]
fn clamp_row(y: isize, height: usize) -> usize {
    y.clamp(0, height as isize - 1) as usize
}

/// Runs a band loop, converting a faultline-injected panic into
/// [`KernelError::FaultInjected`] so the `try_*` entry points complete or
/// error cleanly under chaos; genuine panics propagate unchanged. Scratch
/// give-back is already handled by the drop guards, so nothing leaks on
/// either path.
fn catching_injected(f: impl FnOnce()) -> KernelResult {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(()) => Ok(()),
        Err(payload) => match faultline::injected_failpoint(payload.as_ref()) {
            Some(name) => Err(KernelError::FaultInjected {
                failpoint: name.to_string(),
            }),
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// Telemetry bookkeeping shared by the three band bodies: one band
/// processed, `halo` horizontal rows recomputed (rows below `y0` that the
/// previous band's ring already produced), and the band's wall time into
/// the latency histogram. Costs four flag branches when telemetry is off.
struct BandTelemetry {
    timer: Option<std::time::Instant>,
    halo: usize,
}

impl BandTelemetry {
    #[inline]
    fn start(y0: usize, first_h_row: usize) -> Self {
        BandTelemetry {
            timer: obs::start_timer(),
            halo: y0 - first_h_row,
        }
    }
}

impl Drop for BandTelemetry {
    fn drop(&mut self) {
        obs::add(obs::Counter::PipelineBands, 1);
        obs::add(obs::Counter::PipelineHaloRows, self.halo as u64);
        obs::stop_timer(obs::HistId::PipelineBandNanos, self.timer);
    }
}

// ---------------------------------------------------------------------------
// Fused Gaussian
// ---------------------------------------------------------------------------

/// Fused Gaussian blur, paper configuration (σ = 1, 7 taps).
pub fn fused_gaussian_blur(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    let mut scratch = Scratch::new();
    fused_gaussian_blur_with(src, dst, &paper_gaussian_kernel(), engine, &mut scratch);
}

/// Fused Gaussian blur with an explicit kernel and caller-owned scratch.
///
/// Bit-identical to [`crate::gaussian::gaussian_blur_kernel`] for every
/// engine. Kernels longer than [`MAX_TAPS`] taps fall back to the
/// two-pass implementation (they exceed the fixed-size ring/tap arrays).
pub fn fused_gaussian_blur_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
    scratch: &mut Scratch,
) {
    if let Err(e) = try_fused_gaussian_blur_with(src, dst, kernel, engine, scratch) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`fused_gaussian_blur_with`]: validates geometry and
/// kernel normalisation instead of asserting, surfaces arena exhaustion
/// from a capped [`Scratch`], and converts faultline-injected band panics
/// into [`KernelError::FaultInjected`] (with the workspace returned to
/// the arena either way).
pub fn try_fused_gaussian_blur_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
    scratch: &mut Scratch,
) -> KernelResult {
    let _span = obs::span("fused.gaussian");
    validate_pair(src, dst)?;
    if kernel.sum() != 256 {
        return Err(KernelError::BadKernel { sum: kernel.sum() });
    }
    if let Some(fault) = faultline::inject("fused.entry") {
        return Err(fault.into());
    }
    if kernel.len() > MAX_TAPS {
        return crate::gaussian::try_gaussian_blur_kernel(src, dst, kernel, engine);
    }
    let (width, height, stride) = (src.width(), src.height(), dst.stride());
    let mut co = scratch.try_checkout_guarded(WorkspaceSpec::gaussian(width, kernel.len()))?;
    let dst_band = &mut dst.as_mut_slice()[..(height - 1) * stride + width];
    let ws = co.ws();
    catching_injected(move || gaussian_band(src, dst_band, stride, 0, height, kernel, engine, ws))
}

/// Runs the fused Gaussian over dst rows `[y0, y1)`.
///
/// `dst_band` is the destination slice whose row `i` (of the *band*)
/// starts at `i * dst_stride`; `width` pixels per row are written.
#[allow(clippy::too_many_arguments)]
fn gaussian_band(
    src: &Image<u8>,
    dst_band: &mut [u8],
    dst_stride: usize,
    y0: usize,
    y1: usize,
    kernel: &FixedKernel,
    engine: Engine,
    ws: &mut BandWorkspace,
) {
    faultline::fire("pipeline.band");
    let width = src.width();
    let height = src.height();
    let k = kernel.len();
    let r = kernel.radius;
    // Next source row to run the horizontal pass on. The ring holds the
    // horizontal results of source rows [next - k, next), keyed by
    // `row % k`; at output row y the taps span [y - r, y + r] (clamped),
    // exactly the k most recent rows.
    let mut next = (y0 as isize - r as isize).max(0) as usize;
    let _telemetry = BandTelemetry::start(y0, next);
    for y in y0..y1 {
        let need = (y + r).min(height - 1);
        while next <= need {
            let slot = &mut ws.ring_u16[next % k];
            horizontal_row(
                src.row(next),
                &mut slot.as_mut_slice()[..width],
                kernel,
                engine,
            );
            next += 1;
        }
        let empty: &[u16] = &[];
        let mut taps: [&[u16]; MAX_TAPS] = [empty; MAX_TAPS];
        for (ki, tap) in taps.iter_mut().enumerate().take(k) {
            let yy = clamp_row(y as isize + ki as isize - r as isize, height);
            *tap = &ws.ring_u16[yy % k].as_slice()[..width];
        }
        let row0 = (y - y0) * dst_stride;
        vertical_row(
            &taps[..k],
            &mut dst_band[row0..row0 + width],
            kernel,
            engine,
        );
    }
}

// ---------------------------------------------------------------------------
// Fused Sobel
// ---------------------------------------------------------------------------

/// Fused Sobel gradient. Bit-identical to [`crate::sobel::sobel`].
pub fn fused_sobel(src: &Image<u8>, dst: &mut Image<i16>, dir: SobelDirection, engine: Engine) {
    let mut scratch = Scratch::new();
    fused_sobel_with(src, dst, dir, engine, &mut scratch);
}

/// Fused Sobel gradient with caller-owned scratch.
pub fn fused_sobel_with(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
    scratch: &mut Scratch,
) {
    if let Err(e) = try_fused_sobel_with(src, dst, dir, engine, scratch) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`fused_sobel_with`] (see
/// [`try_fused_gaussian_blur_with`] for the error contract).
pub fn try_fused_sobel_with(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
    scratch: &mut Scratch,
) -> KernelResult {
    let _span = obs::span("fused.sobel");
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("fused.entry") {
        return Err(fault.into());
    }
    let (width, height, stride) = (src.width(), src.height(), dst.stride());
    let mut co = scratch.try_checkout_guarded(WorkspaceSpec::sobel(width))?;
    let dst_band = &mut dst.as_mut_slice()[..(height - 1) * stride + width];
    let ws = co.ws();
    catching_injected(move || sobel_band(src, dst_band, stride, 0, height, dir, engine, ws))
}

/// Runs the fused Sobel over dst rows `[y0, y1)` (band-relative slice, as
/// in [`gaussian_band`]).
#[allow(clippy::too_many_arguments)]
fn sobel_band(
    src: &Image<u8>,
    dst_band: &mut [i16],
    dst_stride: usize,
    y0: usize,
    y1: usize,
    dir: SobelDirection,
    engine: Engine,
    ws: &mut BandWorkspace,
) {
    faultline::fire("pipeline.band");
    let width = src.width();
    let height = src.height();
    let mut next = (y0 as isize - 1).max(0) as usize;
    let _telemetry = BandTelemetry::start(y0, next);
    for y in y0..y1 {
        let need = (y + 1).min(height - 1);
        while next <= need {
            let slot = &mut ws.ring_a[next % 3];
            let mid = &mut slot.as_mut_slice()[..width];
            match dir {
                SobelDirection::X => h_diff_row(src.row(next), mid, engine),
                SobelDirection::Y => h_smooth_row(src.row(next), mid, engine),
            }
            next += 1;
        }
        let above = &ws.ring_a[clamp_row(y as isize - 1, height) % 3].as_slice()[..width];
        let here = &ws.ring_a[y % 3].as_slice()[..width];
        let below = &ws.ring_a[clamp_row(y as isize + 1, height) % 3].as_slice()[..width];
        let row0 = (y - y0) * dst_stride;
        let drow = &mut dst_band[row0..row0 + width];
        match dir {
            SobelDirection::X => v_smooth_row(above, here, below, drow, engine),
            SobelDirection::Y => v_diff_row(above, below, drow, engine),
        }
    }
}

// ---------------------------------------------------------------------------
// Fused edge detection
// ---------------------------------------------------------------------------

/// Fused edge detection (Sobel X + Sobel Y → L1 magnitude → binary
/// threshold). Bit-identical to [`crate::edge::edge_detect`] while never
/// materialising the two gradient images.
pub fn fused_edge_detect(src: &Image<u8>, dst: &mut Image<u8>, thresh: u8, engine: Engine) {
    let mut scratch = Scratch::new();
    fused_edge_detect_with(src, dst, thresh, engine, &mut scratch);
}

/// Fused edge detection with caller-owned scratch.
pub fn fused_edge_detect_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
    scratch: &mut Scratch,
) {
    if let Err(e) = try_fused_edge_detect_with(src, dst, thresh, engine, scratch) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`fused_edge_detect_with`] (see
/// [`try_fused_gaussian_blur_with`] for the error contract).
pub fn try_fused_edge_detect_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
    scratch: &mut Scratch,
) -> KernelResult {
    let _span = obs::span("fused.edge");
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("fused.entry") {
        return Err(fault.into());
    }
    let (width, height, stride) = (src.width(), src.height(), dst.stride());
    let mut co = scratch.try_checkout_guarded(WorkspaceSpec::edge(width))?;
    let dst_band = &mut dst.as_mut_slice()[..(height - 1) * stride + width];
    let ws = co.ws();
    catching_injected(move || edge_band(src, dst_band, stride, 0, height, thresh, engine, ws))
}

/// Runs the fused edge chain over dst rows `[y0, y1)`.
///
/// Both horizontal passes (difference for gx, smoothing for gy) advance in
/// lockstep through their own 3-row rings; gx/gy/magnitude exist only as
/// single rows.
#[allow(clippy::too_many_arguments)]
fn edge_band(
    src: &Image<u8>,
    dst_band: &mut [u8],
    dst_stride: usize,
    y0: usize,
    y1: usize,
    thresh: u8,
    engine: Engine,
    ws: &mut BandWorkspace,
) {
    faultline::fire("pipeline.band");
    let width = src.width();
    let height = src.height();
    let mut next = (y0 as isize - 1).max(0) as usize;
    let _telemetry = BandTelemetry::start(y0, next);
    for y in y0..y1 {
        let need = (y + 1).min(height - 1);
        while next <= need {
            let srow = src.row(next);
            h_diff_row(
                srow,
                &mut ws.ring_a[next % 3].as_mut_slice()[..width],
                engine,
            );
            h_smooth_row(
                srow,
                &mut ws.ring_b[next % 3].as_mut_slice()[..width],
                engine,
            );
            next += 1;
        }
        let ym = clamp_row(y as isize - 1, height) % 3;
        let yp = clamp_row(y as isize + 1, height) % 3;
        // gx = vertical [1,2,1] over the h-diff ring.
        v_smooth_row(
            &ws.ring_a[ym].as_slice()[..width],
            &ws.ring_a[y % 3].as_slice()[..width],
            &ws.ring_a[yp].as_slice()[..width],
            &mut ws.row_gx.as_mut_slice()[..width],
            engine,
        );
        // gy = vertical [-1,0,1] over the h-smooth ring.
        v_diff_row(
            &ws.ring_b[ym].as_slice()[..width],
            &ws.ring_b[yp].as_slice()[..width],
            &mut ws.row_gy.as_mut_slice()[..width],
            engine,
        );
        magnitude_row(
            &ws.row_gx.as_slice()[..width],
            &ws.row_gy.as_slice()[..width],
            &mut ws.row_u8.as_mut_slice()[..width],
            engine,
        );
        let row0 = (y - y0) * dst_stride;
        threshold_row(
            &ws.row_u8.as_slice()[..width],
            &mut dst_band[row0..row0 + width],
            thresh,
            255,
            ThresholdType::Binary,
            engine,
        );
    }
}

// ---------------------------------------------------------------------------
// Parallel band drivers
// ---------------------------------------------------------------------------

/// One parallel work item: a band's row range and its destination slice.
struct BandItem<'a, T> {
    y0: usize,
    y1: usize,
    dst: &'a mut [T],
}

/// Splits `dst` into per-band mutable slices according to `plan`.
///
/// Band `b` covers dst rows `[b*rows, min((b+1)*rows, height))`; its slice
/// starts at the first row and is trimmed so the final row ends at
/// `width` (the trailing padding of the last row is never written).
fn band_items<'a, T: simd_vector::align::Pod>(
    dst: &'a mut Image<T>,
    plan: &BandPlan,
) -> Vec<BandItem<'a, T>> {
    let width = dst.width();
    let height = dst.height();
    let stride = dst.stride();
    let rows = plan.band_rows.max(1);
    let mut items = Vec::with_capacity(plan.num_bands(height));
    let mut rest = &mut dst.as_mut_slice()[..];
    let mut y = 0usize;
    while y < height {
        let y1 = (y + rows).min(height);
        let band_rows = y1 - y;
        let full = band_rows * stride;
        let (chunk, tail) = if full <= rest.len() {
            rest.split_at_mut(full)
        } else {
            // Last band: the backing buffer ends at the last row's width
            // boundary only if the image is unpadded; take what remains.
            rest.split_at_mut(rest.len())
        };
        let used = (band_rows - 1) * stride + width;
        items.push(BandItem {
            y0: y,
            y1,
            dst: &mut chunk[..used],
        });
        rest = tail;
        y = y1;
    }
    items
}

/// Runs the bands on the persistent worker pool. Bands are scheduled
/// dynamically (chunked, stealable tasks), so any worker may process any
/// band; each takes its workspace from its own thread-local arena, which
/// is warm after the worker's first band of this shape — steady-state
/// parallel calls perform no worker-side heap allocations.
fn run_bands<T, F>(items: Vec<BandItem<'_, T>>, spec: WorkspaceSpec, work: F)
where
    T: simd_vector::align::Pod + Send,
    F: Fn(&BandItem<'_, T>, &mut [T], &mut BandWorkspace) + Send + Sync,
{
    let work_ref = &work;
    items.into_par_iter().for_each(move |mut item| {
        let _span = obs::span("pool.band");
        with_worker_workspace(spec, |ws| {
            let dst = std::mem::take(&mut item.dst);
            work_ref(&item, dst, ws);
        });
    });
}

/// The pre-pool parallel driver, kept only as the dispatch-overhead
/// baseline: spawns fresh scoped OS threads on **every call** (one per
/// static chunk of bands) and allocates fresh workspaces per call —
/// exactly the costs the persistent pool amortises away. Not used by any
/// production path.
fn run_bands_spawn<T, F>(items: Vec<BandItem<'_, T>>, spec: WorkspaceSpec, work: F)
where
    T: simd_vector::align::Pod + Send,
    F: Fn(&BandItem<'_, T>, &mut [T], &mut BandWorkspace) + Send + Sync,
{
    let threads = rayon::current_num_threads().max(1);
    let work_ref = &work;
    let run_batch = |batch: Vec<BandItem<'_, T>>| {
        let mut scratch = Scratch::new();
        let mut ws = scratch.checkout(spec);
        for mut item in batch {
            let dst = std::mem::take(&mut item.dst);
            work_ref(&item, dst, &mut ws);
        }
        scratch.give_back(ws);
    };
    if threads == 1 || items.len() <= 1 {
        run_batch(items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let mut items = items;
    let run_batch = &run_batch;
    std::thread::scope(|s| {
        while !items.is_empty() {
            let take = chunk.min(items.len());
            let batch: Vec<BandItem<'_, T>> = items.drain(..take).collect();
            s.spawn(move || run_batch(batch));
        }
    });
}

/// Band-parallel fused Gaussian blur (paper kernel, default plan).
pub fn par_fused_gaussian_blur(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    let plan = BandPlan::for_width(src.width());
    par_fused_gaussian_blur_with(src, dst, &paper_gaussian_kernel(), engine, &plan);
}

/// Band-parallel fused Gaussian blur with explicit kernel and plan, run
/// on the persistent worker pool. Bit-identical to the sequential kernels
/// for every engine. Workspaces come from the workers' thread-local
/// arenas; there is no caller-owned scratch on the parallel path.
pub fn par_fused_gaussian_blur_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
    plan: &BandPlan,
) {
    if let Err(e) = try_par_fused_gaussian_blur_with(src, dst, kernel, engine, plan) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`par_fused_gaussian_blur_with`]: validates instead
/// of asserting, and surfaces faultline-injected worker panics (re-raised
/// by the pool at the submitting thread) as
/// [`KernelError::FaultInjected`].
pub fn try_par_fused_gaussian_blur_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
    plan: &BandPlan,
) -> KernelResult {
    let _span = obs::span("par_fused.gaussian");
    validate_pair(src, dst)?;
    if kernel.sum() != 256 {
        return Err(KernelError::BadKernel { sum: kernel.sum() });
    }
    if let Some(fault) = faultline::inject("par_fused.entry") {
        return Err(fault.into());
    }
    if kernel.len() > MAX_TAPS {
        return crate::gaussian::try_gaussian_blur_kernel(src, dst, kernel, engine);
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::gaussian(src.width(), kernel.len());
    catching_injected(|| {
        run_bands(items, spec, |item, dst_band, ws| {
            gaussian_band(src, dst_band, stride, item.y0, item.y1, kernel, engine, ws);
        });
    })
}

/// [`par_fused_gaussian_blur_with`] scheduled by per-call thread spawning
/// (the dispatch-overhead baseline; see [`run_bands_spawn`]).
pub fn par_fused_gaussian_blur_spawn_baseline(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
    plan: &BandPlan,
) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    assert_eq!(kernel.sum(), 256, "kernel must be Q8-normalised");
    if kernel.len() > MAX_TAPS {
        crate::gaussian::gaussian_blur_kernel(src, dst, kernel, engine);
        return;
    }
    if src.height() == 0 {
        return;
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::gaussian(src.width(), kernel.len());
    run_bands_spawn(items, spec, |item, dst_band, ws| {
        gaussian_band(src, dst_band, stride, item.y0, item.y1, kernel, engine, ws);
    });
}

/// Band-parallel fused Sobel (default plan).
pub fn par_fused_sobel(src: &Image<u8>, dst: &mut Image<i16>, dir: SobelDirection, engine: Engine) {
    let plan = BandPlan::for_width(src.width());
    par_fused_sobel_with(src, dst, dir, engine, &plan);
}

/// Band-parallel fused Sobel with explicit plan, run on the persistent
/// worker pool.
pub fn par_fused_sobel_with(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
    plan: &BandPlan,
) {
    if let Err(e) = try_par_fused_sobel_with(src, dst, dir, engine, plan) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`par_fused_sobel_with`] (see
/// [`try_par_fused_gaussian_blur_with`] for the error contract).
pub fn try_par_fused_sobel_with(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
    plan: &BandPlan,
) -> KernelResult {
    let _span = obs::span("par_fused.sobel");
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("par_fused.entry") {
        return Err(fault.into());
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::sobel(src.width());
    catching_injected(|| {
        run_bands(items, spec, |item, dst_band, ws| {
            sobel_band(src, dst_band, stride, item.y0, item.y1, dir, engine, ws);
        });
    })
}

/// [`par_fused_sobel_with`] scheduled by per-call thread spawning (the
/// dispatch-overhead baseline).
pub fn par_fused_sobel_spawn_baseline(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
    plan: &BandPlan,
) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    if src.height() == 0 {
        return;
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::sobel(src.width());
    run_bands_spawn(items, spec, |item, dst_band, ws| {
        sobel_band(src, dst_band, stride, item.y0, item.y1, dir, engine, ws);
    });
}

/// Band-parallel fused edge detection (default plan).
pub fn par_fused_edge_detect(src: &Image<u8>, dst: &mut Image<u8>, thresh: u8, engine: Engine) {
    let plan = BandPlan::for_width(src.width());
    par_fused_edge_detect_with(src, dst, thresh, engine, &plan);
}

/// Band-parallel fused edge detection with explicit plan, run on the
/// persistent worker pool.
pub fn par_fused_edge_detect_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
    plan: &BandPlan,
) {
    if let Err(e) = try_par_fused_edge_detect_with(src, dst, thresh, engine, plan) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`par_fused_edge_detect_with`] (see
/// [`try_par_fused_gaussian_blur_with`] for the error contract).
pub fn try_par_fused_edge_detect_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
    plan: &BandPlan,
) -> KernelResult {
    let _span = obs::span("par_fused.edge");
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("par_fused.entry") {
        return Err(fault.into());
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::edge(src.width());
    catching_injected(|| {
        run_bands(items, spec, |item, dst_band, ws| {
            edge_band(src, dst_band, stride, item.y0, item.y1, thresh, engine, ws);
        });
    })
}

/// [`par_fused_edge_detect_with`] scheduled by per-call thread spawning
/// (the dispatch-overhead baseline).
pub fn par_fused_edge_detect_spawn_baseline(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    engine: Engine,
    plan: &BandPlan,
) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    if src.height() == 0 {
        return;
    }
    let stride = dst.stride();
    let items = band_items(dst, plan);
    let spec = WorkspaceSpec::edge(src.width());
    run_bands_spawn(items, spec, |item, dst_band, ws| {
        edge_band(src, dst_band, stride, item.y0, item.y1, thresh, engine, ws);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::edge_detect;
    use crate::gaussian::gaussian_blur;
    use crate::sobel::sobel;
    use pixelimage::synthetic_image;

    #[test]
    fn band_plan_scales_with_width_and_cache() {
        // Wider rows -> fewer rows per band.
        let narrow = BandPlan::for_width(640);
        let wide = BandPlan::for_width(3264);
        assert!(narrow.band_rows >= wide.band_rows);
        // Bigger L2 -> taller bands.
        let small = BandPlan::for_cache(1280, 32 * 1024, 128 * 1024);
        let big = BandPlan::for_cache(1280, 32 * 1024, 2 * 1024 * 1024);
        assert!(big.band_rows >= small.band_rows);
        // Clamps hold at the extremes.
        assert_eq!(BandPlan::for_cache(1 << 24, 32 * 1024, 1024).band_rows, 8);
        assert_eq!(BandPlan::for_cache(1, 32 * 1024, 1 << 30).band_rows, 512);
    }

    #[test]
    fn band_ranges_cover_image_exactly() {
        for height in [1usize, 7, 8, 9, 100, 511, 512, 513] {
            let plan = BandPlan { band_rows: 64 };
            let mut covered = 0;
            let mut prev_end = 0;
            for (y0, y1) in plan.bands(height) {
                assert_eq!(y0, prev_end);
                assert!(y1 > y0 && y1 <= height);
                covered += y1 - y0;
                prev_end = y1;
            }
            assert_eq!(covered, height);
            assert_eq!(plan.num_bands(height), height.div_ceil(64));
        }
    }

    #[test]
    fn fused_gaussian_matches_two_pass_all_engines() {
        let src = synthetic_image(83, 37, 101);
        for engine in Engine::ALL {
            let mut two_pass = Image::new(83, 37);
            gaussian_blur(&src, &mut two_pass, engine);
            let mut fused = Image::new(83, 37);
            fused_gaussian_blur(&src, &mut fused, engine);
            assert!(fused.pixels_eq(&two_pass), "{engine:?}");
        }
    }

    #[test]
    fn fused_sobel_matches_two_pass_all_engines() {
        let src = synthetic_image(85, 33, 103);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            for engine in Engine::ALL {
                let mut two_pass = Image::new(85, 33);
                sobel(&src, &mut two_pass, dir, engine);
                let mut fused = Image::new(85, 33);
                fused_sobel(&src, &mut fused, dir, engine);
                assert!(fused.pixels_eq(&two_pass), "{dir:?} {engine:?}");
            }
        }
    }

    #[test]
    fn fused_edge_matches_two_pass_all_engines() {
        let src = synthetic_image(73, 41, 107);
        for engine in Engine::ALL {
            let mut two_pass = Image::new(73, 41);
            edge_detect(&src, &mut two_pass, 96, engine);
            let mut fused = Image::new(73, 41);
            fused_edge_detect(&src, &mut fused, 96, engine);
            assert!(fused.pixels_eq(&two_pass), "{engine:?}");
        }
    }

    #[test]
    fn par_fused_matches_sequential_with_tiny_bands() {
        // band_rows = 3 forces many bands and much halo recomputation;
        // results must not change.
        let src = synthetic_image(61, 47, 109);
        let plan = BandPlan { band_rows: 3 };

        let mut expect_u8 = Image::new(61, 47);
        gaussian_blur(&src, &mut expect_u8, Engine::Native);
        let mut got = Image::new(61, 47);
        par_fused_gaussian_blur_with(
            &src,
            &mut got,
            &paper_gaussian_kernel(),
            Engine::Native,
            &plan,
        );
        assert!(got.pixels_eq(&expect_u8), "gaussian");

        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut expect_i16 = Image::new(61, 47);
            sobel(&src, &mut expect_i16, dir, Engine::Native);
            let mut got = Image::new(61, 47);
            par_fused_sobel_with(&src, &mut got, dir, Engine::Native, &plan);
            assert!(got.pixels_eq(&expect_i16), "sobel {dir:?}");
        }

        edge_detect(&src, &mut expect_u8, 96, Engine::Native);
        par_fused_edge_detect_with(&src, &mut got, 96, Engine::Native, &plan);
        assert!(got.pixels_eq(&expect_u8), "edge");
    }

    #[test]
    fn spawn_baselines_match_pool_scheduling() {
        // Same band maths under both schedulers — outputs must be
        // bit-identical regardless of which threads ran the bands.
        let src = synthetic_image(97, 53, 131);
        let plan = BandPlan { band_rows: 5 };

        let mut pool_u8 = Image::new(97, 53);
        par_fused_gaussian_blur_with(
            &src,
            &mut pool_u8,
            &paper_gaussian_kernel(),
            Engine::Native,
            &plan,
        );
        let mut spawn_u8 = Image::new(97, 53);
        par_fused_gaussian_blur_spawn_baseline(
            &src,
            &mut spawn_u8,
            &paper_gaussian_kernel(),
            Engine::Native,
            &plan,
        );
        assert!(spawn_u8.pixels_eq(&pool_u8), "gaussian");

        let mut pool_i16 = Image::new(97, 53);
        par_fused_sobel_with(
            &src,
            &mut pool_i16,
            SobelDirection::X,
            Engine::Native,
            &plan,
        );
        let mut spawn_i16 = Image::new(97, 53);
        par_fused_sobel_spawn_baseline(
            &src,
            &mut spawn_i16,
            SobelDirection::X,
            Engine::Native,
            &plan,
        );
        assert!(spawn_i16.pixels_eq(&pool_i16), "sobel");

        par_fused_edge_detect_with(&src, &mut pool_u8, 96, Engine::Native, &plan);
        par_fused_edge_detect_spawn_baseline(&src, &mut spawn_u8, 96, Engine::Native, &plan);
        assert!(spawn_u8.pixels_eq(&pool_u8), "edge");
    }

    #[test]
    fn warm_scratch_performs_no_allocations() {
        let src = synthetic_image(320, 200, 113);
        let mut dst = Image::new(320, 200);
        let mut scratch = Scratch::new();
        let plan = BandPlan { band_rows: 50 };

        // Cold runs populate the arenas: the caller arena for the
        // sequential path, the worker thread-local arenas for the
        // parallel path (inline on this thread at width 1).
        par_fused_edge_detect_with(&src, &mut dst, 96, Engine::Native, &plan);
        fused_gaussian_blur_with(
            &src,
            &mut dst,
            &paper_gaussian_kernel(),
            Engine::Native,
            &mut scratch,
        );
        let warm = scratch.fresh_allocs();
        let warm_worker = crate::scratch::worker_arena_fresh_allocs();

        // Warm runs must not touch the allocator through either arena.
        for _ in 0..3 {
            par_fused_edge_detect_with(&src, &mut dst, 96, Engine::Native, &plan);
            fused_gaussian_blur_with(
                &src,
                &mut dst,
                &paper_gaussian_kernel(),
                Engine::Native,
                &mut scratch,
            );
        }
        assert_eq!(scratch.fresh_allocs(), warm, "warm run allocated buffers");
        assert_eq!(
            crate::scratch::worker_arena_fresh_allocs(),
            warm_worker,
            "warm parallel run grew the worker arena"
        );
    }

    #[test]
    fn oversized_kernel_falls_back_to_two_pass() {
        // 33 taps > MAX_TAPS: must still produce two-pass results.
        let src = synthetic_image(60, 40, 127);
        let kernel = crate::kernelgen::gaussian_kernel_q8(5.0, 33);
        let mut expect = Image::new(60, 40);
        crate::gaussian::gaussian_blur_kernel(&src, &mut expect, &kernel, Engine::Native);
        let mut scratch = Scratch::new();
        let mut got = Image::new(60, 40);
        fused_gaussian_blur_with(&src, &mut got, &kernel, Engine::Native, &mut scratch);
        assert!(got.pixels_eq(&expect));
        let plan = BandPlan::for_width(60);
        par_fused_gaussian_blur_with(&src, &mut got, &kernel, Engine::Native, &plan);
        assert!(got.pixels_eq(&expect));
        par_fused_gaussian_blur_spawn_baseline(&src, &mut got, &kernel, Engine::Native, &plan);
        assert!(got.pixels_eq(&expect));
    }
}
