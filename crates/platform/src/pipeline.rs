//! Pipeline cost model: instruction mix → compute cycles per pixel.
//!
//! The model is deliberately coarse — a handful of per-class issue costs —
//! because the paper's phenomena live at that granularity:
//!
//! * In-order cores (Atom, Cortex-A8) issue roughly one useful scalar op
//!   per cycle, pay load-use stalls they cannot schedule around, and
//!   serialise around library calls. That is why they show the largest
//!   HAND speed-ups.
//! * Out-of-order cores overlap independent scalar work (`ilp` sustained
//!   IPC) and fold most address arithmetic into free slots.
//! * SIMD ops are charged by the vector unit's issue rate
//!   (`simd_op_cycles`): 1 op/cycle on full-width Intel units, every other
//!   cycle on the 64-bit Cortex-A8/A9 NEON datapath, and slower still on
//!   the Tegra T30 (the paper's measured outlier).

use crate::spec::{Microarch, PlatformSpec};
use crate::workload::PixelMix;
use op_trace::OpClass;

/// Fraction of address-arithmetic ops an out-of-order core retires in
/// otherwise-idle issue slots.
const OOO_ADDR_DISCOUNT: f64 = 0.3;

/// Pipeline inefficiency factor for in-order issue (dependency bubbles the
/// coarse model does not track individually).
const IN_ORDER_BUBBLE_FACTOR: f64 = 1.1;

/// Compute cycles per output pixel for a mix on a platform (memory system
/// excluded — see [`crate::memory`]).
pub fn compute_cycles_per_pixel(mix: &PixelMix, p: &PlatformSpec) -> f64 {
    let simd = mix.simd_total() * p.simd_op_cycles;
    let scalar = mix.scalar_total() / p.uarch.scalar_ipc();
    let branch = mix.get(OpClass::Branch) * p.branch_cycles;
    let libcall = mix.get(OpClass::LibCall) * p.libcall_cycles;
    match p.uarch {
        Microarch::InOrder => {
            let addr = mix.get(OpClass::AddrArith);
            // Load-use delays bite on scalar pointer-chasing code; the SIMD
            // streaming loads pipeline behind the wide loads/prefetchers.
            let scalar_mem = mix.get(OpClass::ScalarLoad) + mix.get(OpClass::ScalarStore);
            let stalls = scalar_mem * p.load_use_stall;
            (simd + scalar + addr + branch + stalls) * IN_ORDER_BUBBLE_FACTOR + libcall
        }
        Microarch::OutOfOrder { ilp } => {
            let addr = mix.get(OpClass::AddrArith) * OOO_ADDR_DISCOUNT / ilp;
            simd + scalar + addr + branch + libcall
        }
    }
}

/// Which resource dominates a kernel's runtime on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The core's issue/execute rate limits throughput.
    Compute,
    /// DRAM streaming bandwidth limits throughput.
    Memory,
}

/// Combines compute and DRAM cycle costs into total cycles per pixel.
///
/// Out-of-order cores overlap computation with outstanding misses, so total
/// ≈ max(compute, memory) with a small interference term. In-order cores
/// expose most of the memory time: total ≈ compute + 80 % of memory.
pub fn total_cycles_per_pixel(compute_cpp: f64, dram_cpp: f64, p: &PlatformSpec) -> (f64, Bound) {
    let total = match p.uarch {
        Microarch::InOrder => compute_cpp + 0.6 * dram_cpp,
        Microarch::OutOfOrder { .. } => {
            compute_cpp.max(dram_cpp) + 0.15 * compute_cpp.min(dram_cpp)
        }
    };
    let bound = if compute_cpp >= dram_cpp {
        Bound::Compute
    } else {
        Bound::Memory
    };
    (total, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::{atom_d510, core_i7_2820qm, exynos_3110, exynos_4412};
    use op_trace::OpClass::*;

    #[test]
    fn libcalls_dominate_in_order_scalar_loops() {
        let p = exynos_3110();
        let with_call = PixelMix::from_pairs(&[(ScalarAlu, 5.0), (LibCall, 1.0)]);
        let without = PixelMix::from_pairs(&[(ScalarAlu, 5.0)]);
        let a = compute_cycles_per_pixel(&with_call, &p);
        let b = compute_cycles_per_pixel(&without, &p);
        assert!(a > b + 0.9 * p.libcall_cycles);
    }

    #[test]
    fn ooo_overlaps_scalar_work() {
        let mix = PixelMix::from_pairs(&[(ScalarAlu, 10.0), (AddrArith, 4.0)]);
        let in_order = compute_cycles_per_pixel(&mix, &atom_d510());
        let ooo = compute_cycles_per_pixel(&mix, &core_i7_2820qm());
        assert!(
            in_order > 2.0 * ooo,
            "in-order {in_order:.2} vs OoO {ooo:.2}"
        );
    }

    #[test]
    fn arm_simd_costs_twice_intel() {
        let mix = PixelMix::from_pairs(&[(SimdAlu, 4.0)]);
        let intel = compute_cycles_per_pixel(&mix, &core_i7_2820qm());
        let arm = compute_cycles_per_pixel(&mix, &exynos_4412());
        assert!((intel - 4.0).abs() < 1e-9);
        assert!((arm - 8.0).abs() < 1e-9);
    }

    #[test]
    fn in_order_pays_load_use_stalls() {
        let p = atom_d510();
        let mix = PixelMix::from_pairs(&[(ScalarLoad, 2.0), (ScalarAlu, 1.0)]);
        let cycles = compute_cycles_per_pixel(&mix, &p);
        // 3 scalar ops + 2 loads * 1.5 stall, times bubble factor.
        let expect = (3.0 + 2.0 * p.load_use_stall) * IN_ORDER_BUBBLE_FACTOR;
        assert!((cycles - expect).abs() < 1e-9, "{cycles} vs {expect}");
    }

    #[test]
    fn total_combines_by_uarch() {
        let in_order = atom_d510();
        let ooo = core_i7_2820qm();
        let (t_in, _) = total_cycles_per_pixel(4.0, 3.0, &in_order);
        assert!((t_in - (4.0 + 1.8)).abs() < 1e-9);
        let (t_ooo, bound) = total_cycles_per_pixel(4.0, 3.0, &ooo);
        assert!((t_ooo - (4.0 + 0.45)).abs() < 1e-9);
        assert_eq!(bound, Bound::Compute);
        let (_, bound2) = total_cycles_per_pixel(1.0, 3.0, &ooo);
        assert_eq!(bound2, Bound::Memory);
    }
}
