//! Arithmetic intrinsics (category *b*): plain, saturating, halving,
//! widening and multiply-accumulate forms.

use crate::types::*;
use op_trace::{count, OpClass};

macro_rules! neon_binop {
    ($(#[$meta:meta])* $name:ident, $t:ty, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: $t, b: $t) -> $t {
            count(OpClass::SimdAlu);
            a.$method(b)
        }
    };
}

// --- float ---------------------------------------------------------------

neon_binop!(
    /// `vadd.f32 q` — lane-wise float addition.
    vaddq_f32, float32x4_t, add
);
neon_binop!(
    /// `vsub.f32 q` — lane-wise float subtraction.
    vsubq_f32, float32x4_t, sub
);
neon_binop!(
    /// `vmul.f32 q` — lane-wise float multiplication.
    vmulq_f32, float32x4_t, mul
);
neon_binop!(
    /// `vmin.f32 q` — lane-wise float minimum.
    vminq_f32, float32x4_t, min
);
neon_binop!(
    /// `vmax.f32 q` — lane-wise float maximum.
    vmaxq_f32, float32x4_t, max
);
neon_binop!(
    /// `vadd.f32 d` — D-register float addition.
    vadd_f32, float32x2_t, add
);
neon_binop!(
    /// `vmul.f32 d` — D-register float multiplication.
    vmul_f32, float32x2_t, mul
);

/// `vmla.f32 q` — multiply-accumulate: `acc + a*b` (unfused on VFPv3/NEON).
#[inline]
pub fn vmlaq_f32(acc: float32x4_t, a: float32x4_t, b: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    acc.mul_add(a, b)
}

/// `vmls.f32 q` — multiply-subtract: `acc - a*b`.
#[inline]
pub fn vmlsq_f32(acc: float32x4_t, a: float32x4_t, b: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    acc.sub(a.mul(b))
}

/// `vmla.f32 q` with a scalar second factor (`vmlaq_n_f32`) — the
/// convolution workhorse.
#[inline]
pub fn vmlaq_n_f32(acc: float32x4_t, a: float32x4_t, b: f32) -> float32x4_t {
    count(OpClass::SimdAlu);
    acc.mul_add(a, float32x4_t::splat(b))
}

/// `vmul.f32 q` with a scalar factor (`vmulq_n_f32`).
#[inline]
pub fn vmulq_n_f32(a: float32x4_t, b: f32) -> float32x4_t {
    count(OpClass::SimdAlu);
    a.mul(float32x4_t::splat(b))
}

/// `vabs.f32 q` — lane-wise float absolute value.
#[inline]
pub fn vabsq_f32(a: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    a.abs()
}

/// `vneg.f32 q` — lane-wise float negation.
#[inline]
pub fn vnegq_f32(a: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    a.neg()
}

/// `vrecpe.f32 q` — reciprocal estimate (exact in the sim).
#[inline]
pub fn vrecpeq_f32(a: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    a.recip_estimate()
}

/// `vrecps.f32 q` — Newton-Raphson reciprocal step: `2 - a*b`.
#[inline]
pub fn vrecpsq_f32(a: float32x4_t, b: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    float32x4_t::splat(2.0).sub(a.mul(b))
}

/// `vrsqrte.f32 q` — reciprocal square-root estimate (exact in the sim).
#[inline]
pub fn vrsqrteq_f32(a: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    a.rsqrt_estimate()
}

// --- integer: plain wrapping ---------------------------------------------

neon_binop!(
    /// `vadd.i8 q` — wrapping byte addition.
    vaddq_u8, uint8x16_t, wrapping_add
);
neon_binop!(
    /// `vsub.i8 q` — wrapping byte subtraction.
    vsubq_u8, uint8x16_t, wrapping_sub
);
neon_binop!(
    /// `vadd.i16 q` — wrapping halfword addition (signed view).
    vaddq_s16, int16x8_t, wrapping_add
);
neon_binop!(
    /// `vsub.i16 q` — wrapping halfword subtraction (signed view).
    vsubq_s16, int16x8_t, wrapping_sub
);
neon_binop!(
    /// `vadd.i16 q` — unsigned halfword addition.
    vaddq_u16, uint16x8_t, wrapping_add
);
neon_binop!(
    /// `vsub.i16 q` — unsigned halfword subtraction.
    vsubq_u16, uint16x8_t, wrapping_sub
);
neon_binop!(
    /// `vadd.i32 q` — wrapping word addition.
    vaddq_s32, int32x4_t, wrapping_add
);
neon_binop!(
    /// `vsub.i32 q` — wrapping word subtraction.
    vsubq_s32, int32x4_t, wrapping_sub
);
neon_binop!(
    /// `vmul.i16 q` — low half of halfword products.
    vmulq_s16, int16x8_t, wrapping_mul
);
neon_binop!(
    /// `vmul.i32 q` — low half of word products.
    vmulq_s32, int32x4_t, wrapping_mul
);

// --- integer: saturating --------------------------------------------------

neon_binop!(
    /// `vqadd.u8 q` — saturating unsigned byte addition.
    vqaddq_u8, uint8x16_t, saturating_add
);
neon_binop!(
    /// `vqsub.u8 q` — saturating unsigned byte subtraction.
    vqsubq_u8, uint8x16_t, saturating_sub
);
neon_binop!(
    /// `vqadd.s16 q` — saturating signed halfword addition.
    vqaddq_s16, int16x8_t, saturating_add
);
neon_binop!(
    /// `vqsub.s16 q` — saturating signed halfword subtraction.
    vqsubq_s16, int16x8_t, saturating_sub
);

// --- integer: min/max/abs-diff/halving -------------------------------------

neon_binop!(
    /// `vmin.u8 q` — unsigned byte minimum.
    vminq_u8, uint8x16_t, min
);
neon_binop!(
    /// `vmax.u8 q` — unsigned byte maximum.
    vmaxq_u8, uint8x16_t, max
);
neon_binop!(
    /// `vmin.s16 q` — signed halfword minimum.
    vminq_s16, int16x8_t, min
);
neon_binop!(
    /// `vmax.s16 q` — signed halfword maximum.
    vmaxq_s16, int16x8_t, max
);
neon_binop!(
    /// `vabd.u8 q` — unsigned byte absolute difference.
    vabdq_u8, uint8x16_t, abs_diff
);
neon_binop!(
    /// `vhadd.u8 q` — halving add, truncating.
    vhaddq_u8, uint8x16_t, halving_add
);
neon_binop!(
    /// `vrhadd.u8 q` — halving add, rounding.
    vrhaddq_u8, uint8x16_t, avg_round
);

/// `vabs.s16 q` — wrapping absolute value (`|i16::MIN| == i16::MIN`).
#[inline]
pub fn vabsq_s16(a: int16x8_t) -> int16x8_t {
    count(OpClass::SimdAlu);
    a.abs()
}

/// `vqabs.s16 q` — saturating absolute value.
#[inline]
pub fn vqabsq_s16(a: int16x8_t) -> int16x8_t {
    count(OpClass::SimdAlu);
    a.saturating_abs()
}

/// `vneg.s16 q` — wrapping negation.
#[inline]
pub fn vnegq_s16(a: int16x8_t) -> int16x8_t {
    count(OpClass::SimdAlu);
    a.neg()
}

// --- widening arithmetic ----------------------------------------------------

/// `vaddl.u8` — widening byte addition: `u8 + u8 -> u16` per lane.
#[inline]
pub fn vaddl_u8(a: uint8x8_t, b: uint8x8_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    a.widen_u16().wrapping_add(b.widen_u16())
}

/// `vmull.u8` — widening byte multiplication: `u8 * u8 -> u16` per lane.
#[inline]
pub fn vmull_u8(a: uint8x8_t, b: uint8x8_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    a.widen_u16().wrapping_mul(b.widen_u16())
}

/// `vmull.s16` — widening halfword multiplication: `i16 * i16 -> i32`.
#[inline]
pub fn vmull_s16(a: int16x4_t, b: int16x4_t) -> int32x4_t {
    count(OpClass::SimdAlu);
    a.widen_i32().wrapping_mul(b.widen_i32())
}

/// `vmlal.s16` — widening multiply-accumulate: `acc + a*b` with `i32`
/// accumulators. The fixed-point convolution workhorse on NEON.
#[inline]
pub fn vmlal_s16(acc: int32x4_t, a: int16x4_t, b: int16x4_t) -> int32x4_t {
    count(OpClass::SimdAlu);
    acc.wrapping_add(a.widen_i32().wrapping_mul(b.widen_i32()))
}

/// `vmlal.u8` — widening byte multiply-accumulate into `u16` lanes.
#[inline]
pub fn vmlal_u8(acc: uint16x8_t, a: uint8x8_t, b: uint8x8_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    acc.wrapping_add(a.widen_u16().wrapping_mul(b.widen_u16()))
}

/// `vmla.i16 q` — non-widening multiply-accumulate on halfwords.
#[inline]
pub fn vmlaq_s16(acc: int16x8_t, a: int16x8_t, b: int16x8_t) -> int16x8_t {
    count(OpClass::SimdAlu);
    acc.wrapping_add(a.wrapping_mul(b))
}

/// `vmla.i16 q` with scalar factor (`vmlaq_n_s16`).
#[inline]
pub fn vmlaq_n_s16(acc: int16x8_t, a: int16x8_t, b: i16) -> int16x8_t {
    count(OpClass::SimdAlu);
    acc.wrapping_add(a.wrapping_mul(int16x8_t::splat(b)))
}

/// `vpadd.i16 d` — pairwise addition of adjacent lanes across the two
/// operands.
#[inline]
pub fn vpadd_s16(a: int16x4_t, b: int16x4_t) -> int16x4_t {
    count(OpClass::SimdAlu);
    int16x4_t::new([
        a.lane(0).wrapping_add(a.lane(1)),
        a.lane(2).wrapping_add(a.lane(3)),
        b.lane(0).wrapping_add(b.lane(1)),
        b.lane(2).wrapping_add(b.lane(3)),
    ])
}

/// `vpaddl.u8 q` — pairwise widening addition: sixteen `u8` lanes to eight
/// `u16` sums.
#[inline]
pub fn vpaddlq_u8(a: uint8x16_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    let v = a.to_array();
    let mut out = [0u16; 8];
    for i in 0..8 {
        out[i] = v[2 * i] as u16 + v[2 * i + 1] as u16;
    }
    uint16x8_t::new(out)
}

/// `vmull.u16` — widening halfword multiplication: `u16 * u16 -> u32`.
#[inline]
pub fn vmull_u16(a: uint16x4_t, b: uint16x4_t) -> uint32x4_t {
    count(OpClass::SimdAlu);
    a.widen_u32().wrapping_mul(b.widen_u32())
}

/// `vmlal.u16` — widening halfword multiply-accumulate into `u32` lanes.
#[inline]
pub fn vmlal_u16(acc: uint32x4_t, a: uint16x4_t, b: uint16x4_t) -> uint32x4_t {
    count(OpClass::SimdAlu);
    acc.wrapping_add(a.widen_u32().wrapping_mul(b.widen_u32()))
}

/// `vadd.i32 q` — unsigned word addition.
#[inline]
pub fn vaddq_u32(a: uint32x4_t, b: uint32x4_t) -> uint32x4_t {
    count(OpClass::SimdAlu);
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn float_mla_is_unfused_sum() {
        let acc = vdupq_n_f32(1.0);
        let a = vdupq_n_f32(2.0);
        let b = vdupq_n_f32(3.0);
        assert_eq!(vmlaq_f32(acc, a, b).to_array(), [7.0; 4]);
        assert_eq!(vmlsq_f32(acc, a, b).to_array(), [-5.0; 4]);
        assert_eq!(vmlaq_n_f32(acc, a, 3.0).to_array(), [7.0; 4]);
        assert_eq!(vmulq_n_f32(a, 4.0).to_array(), [8.0; 4]);
    }

    #[test]
    fn saturating_u8() {
        let a = vdupq_n_u8(250);
        let b = vdupq_n_u8(10);
        assert_eq!(vqaddq_u8(a, b).lane(0), 255);
        assert_eq!(vaddq_u8(a, b).lane(0), 4);
        assert_eq!(vqsubq_u8(b, a).lane(0), 0);
    }

    #[test]
    fn widening_mlal_s16() {
        let acc = vdupq_n_s32(100);
        let a = int16x4_t::new([1000, -1000, 30000, -30000]);
        let b = int16x4_t::new([1000, 1000, 2, 2]);
        let r = vmlal_s16(acc, a, b);
        assert_eq!(r.to_array(), [1_000_100, -999_900, 60_100, -59_900]);
    }

    #[test]
    fn widening_byte_ops() {
        let a = uint8x8_t::new([200, 100, 50, 25, 10, 5, 2, 1]);
        let b = uint8x8_t::splat(2);
        assert_eq!(vaddl_u8(a, b).lane(0), 202);
        assert_eq!(vmull_u8(a, b).lane(0), 400);
        let acc = uint16x8_t::splat(1);
        assert_eq!(vmlal_u8(acc, a, b).lane(0), 401);
    }

    #[test]
    fn pairwise_adds() {
        let a = int16x4_t::new([1, 2, 3, 4]);
        let b = int16x4_t::new([10, 20, 30, 40]);
        assert_eq!(vpadd_s16(a, b).to_array(), [3, 7, 30, 70]);
        let bytes = uint8x16_t::new([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 255, 255]);
        assert_eq!(
            vpaddlq_u8(bytes).to_array(),
            [3, 7, 11, 15, 19, 23, 27, 510]
        );
    }

    #[test]
    fn abs_variants() {
        let v = int16x8_t::new([i16::MIN, -5, 5, 0, 1, -1, 100, -100]);
        assert_eq!(vabsq_s16(v).lane(0), i16::MIN);
        assert_eq!(vqabsq_s16(v).lane(0), i16::MAX);
        assert_eq!(vabsq_s16(v).lane(1), 5);
        assert_eq!(vnegq_s16(v).lane(2), -5);
    }

    #[test]
    fn newton_raphson_reciprocal_converges() {
        // One NR iteration: x1 = x0 * (2 - a*x0) — the idiomatic NEON
        // reciprocal refinement the docs recommend after vrecpe.
        let a = vdupq_n_f32(3.0);
        let x0 = vrecpeq_f32(a);
        let x1 = vmulq_f32(x0, vrecpsq_f32(a, x0));
        for lane in x1.to_array() {
            assert!((lane - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn minmax_and_abd() {
        let a = vdupq_n_u8(9);
        let b = vdupq_n_u8(12);
        assert_eq!(vminq_u8(a, b).lane(0), 9);
        assert_eq!(vmaxq_u8(a, b).lane(0), 12);
        assert_eq!(vabdq_u8(a, b).lane(0), 3);
        assert_eq!(vhaddq_u8(a, b).lane(0), 10); // (9+12)/2 trunc
        assert_eq!(vrhaddq_u8(a, b).lane(0), 11); // rounding
    }
}
