//! Compare intrinsics (category *d*). NEON compares return an *unsigned*
//! mask vector of the same lane width, all-ones for true.

use crate::types::*;
use op_trace::{count, OpClass};

macro_rules! neon_cmp {
    ($(#[$meta:meta])* $name:ident, $t:ty, $mask:ty, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: $t, b: $t) -> $mask {
            count(OpClass::SimdAlu);
            a.$method(b)
        }
    };
}

// Unsigned byte compares (used by the threshold kernel).
neon_cmp!(
    /// `vcgt.u8 q` — `a > b` mask.
    vcgtq_u8, uint8x16_t, uint8x16_t, cmp_gt
);
neon_cmp!(
    /// `vcge.u8 q` — `a >= b` mask.
    vcgeq_u8, uint8x16_t, uint8x16_t, cmp_ge
);
neon_cmp!(
    /// `vclt.u8 q` — `a < b` mask.
    vcltq_u8, uint8x16_t, uint8x16_t, cmp_lt
);
neon_cmp!(
    /// `vcle.u8 q` — `a <= b` mask.
    vcleq_u8, uint8x16_t, uint8x16_t, cmp_le
);
neon_cmp!(
    /// `vceq.i8 q` — equality mask on bytes.
    vceqq_u8, uint8x16_t, uint8x16_t, cmp_eq
);

// Signed halfword compares.
neon_cmp!(
    /// `vcgt.s16 q` — signed `a > b` mask.
    vcgtq_s16, int16x8_t, uint16x8_t, cmp_gt
);
neon_cmp!(
    /// `vcge.s16 q` — signed `a >= b` mask.
    vcgeq_s16, int16x8_t, uint16x8_t, cmp_ge
);
neon_cmp!(
    /// `vclt.s16 q` — signed `a < b` mask.
    vcltq_s16, int16x8_t, uint16x8_t, cmp_lt
);
neon_cmp!(
    /// `vceq.i16 q` — equality mask on halfwords.
    vceqq_s16, int16x8_t, uint16x8_t, cmp_eq
);

// Signed word compares.
neon_cmp!(
    /// `vcgt.s32 q` — signed `a > b` mask.
    vcgtq_s32, int32x4_t, uint32x4_t, cmp_gt
);
neon_cmp!(
    /// `vceq.i32 q` — equality mask on words.
    vceqq_s32, int32x4_t, uint32x4_t, cmp_eq
);

// Float compares.
neon_cmp!(
    /// `vcgt.f32 q` — float `a > b` mask (NaN compares false).
    vcgtq_f32, float32x4_t, uint32x4_t, cmp_gt
);
neon_cmp!(
    /// `vcge.f32 q` — float `a >= b` mask.
    vcgeq_f32, float32x4_t, uint32x4_t, cmp_ge
);
neon_cmp!(
    /// `vclt.f32 q` — float `a < b` mask.
    vcltq_f32, float32x4_t, uint32x4_t, cmp_lt
);
neon_cmp!(
    /// `vcle.f32 q` — float `a <= b` mask.
    vcleq_f32, float32x4_t, uint32x4_t, cmp_le
);
neon_cmp!(
    /// `vceq.f32 q` — float equality mask.
    vceqq_f32, float32x4_t, uint32x4_t, cmp_eq
);

/// `vacgt.f32 q` — absolute greater-than: `|a| > |b|` (the paper notes NEON
/// has absolute-value compares that SSE2 lacks).
#[inline]
pub fn vacgtq_f32(a: float32x4_t, b: float32x4_t) -> uint32x4_t {
    count(OpClass::SimdAlu);
    a.abs().cmp_gt(b.abs())
}

/// `vacge.f32 q` — absolute greater-or-equal: `|a| >= |b|`.
#[inline]
pub fn vacgeq_f32(a: float32x4_t, b: float32x4_t) -> uint32x4_t {
    count(OpClass::SimdAlu);
    a.abs().cmp_ge(b.abs())
}

/// `vtst.8 q` — test-bits mask: all-ones where `a & b != 0`.
#[inline]
pub fn vtstq_u8(a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    a.zip(b, |x, y| if x & y != 0 { 0xFF } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn unsigned_byte_compares() {
        let a = uint8x16_t::new([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let t = vdupq_n_u8(7);
        let gt = vcgtq_u8(a, t);
        for i in 0..16 {
            assert_eq!(gt.lane(i), if i > 7 { 0xFF } else { 0x00 });
        }
        assert_eq!(vcgeq_u8(a, t).lane(7), 0xFF);
        assert_eq!(vcltq_u8(a, t).lane(6), 0xFF);
        assert_eq!(vcleq_u8(a, t).lane(7), 0xFF);
        assert_eq!(vceqq_u8(a, t).lane(7), 0xFF);
        assert_eq!(vceqq_u8(a, t).lane(8), 0x00);
    }

    #[test]
    fn signed_compares_respect_sign() {
        let a = vdupq_n_s16(-5);
        let b = vdupq_n_s16(3);
        assert_eq!(vcgtq_s16(b, a).lane(0), 0xFFFF);
        assert_eq!(vcgtq_s16(a, b).lane(0), 0);
        assert_eq!(vcltq_s16(a, b).lane(0), 0xFFFF);
        let c = vdupq_n_s32(-1);
        let d = vdupq_n_s32(1);
        assert_eq!(vcgtq_s32(d, c).lane(0), u32::MAX);
    }

    #[test]
    fn float_compares_and_nan() {
        let a = float32x4_t::new([1.0, f32::NAN, 3.0, 4.0]);
        let b = vdupq_n_f32(2.0);
        let gt = vcgtq_f32(a, b);
        assert_eq!(gt.to_array(), [0, 0, u32::MAX, u32::MAX]);
        let le = vcleq_f32(a, b);
        assert_eq!(le.to_array(), [u32::MAX, 0, 0, 0]);
    }

    #[test]
    fn absolute_compares() {
        let a = float32x4_t::new([-5.0, 1.0, -2.0, 2.0]);
        let b = float32x4_t::new([4.0, -3.0, 2.0, -2.0]);
        assert_eq!(vacgtq_f32(a, b).to_array(), [u32::MAX, 0, 0, 0]);
        assert_eq!(
            vacgeq_f32(a, b).to_array(),
            [u32::MAX, 0, u32::MAX, u32::MAX]
        );
    }

    #[test]
    fn test_bits() {
        let a = vdupq_n_u8(0b0101);
        let b = vdupq_n_u8(0b0100);
        let c = vdupq_n_u8(0b1010);
        assert_eq!(vtstq_u8(a, b).lane(0), 0xFF);
        assert_eq!(vtstq_u8(a, c).lane(0), 0x00);
    }
}
