//! Portable SIMD lane types.
//!
//! This crate provides plain-Rust implementations of the 128-bit ("Q", XMM)
//! and 64-bit ("D", MMX) register contents that the paper's two instruction
//! sets operate on. The `sse-sim` and `neon-sim` crates build the actual
//! intrinsic surfaces (`_mm_*`, `v*q_*`) on top of these types; keeping the
//! lane semantics in one place guarantees that the two ISAs agree wherever
//! the architectures agree (e.g. `_mm_packs_epi32` ==
//! `vcombine_s16(vqmovn_s32(lo), vqmovn_s32(hi))`).
//!
//! Everything here is deliberately boring, safe Rust: the point of the
//! simulated lanes is bit-exact *semantics*, not speed. Speed comes from the
//! native `core::arch` paths that the kernel crate selects at run time on
//! hosts that have the real instructions.
//!
//! # Lane order
//!
//! Lane 0 is the lowest-addressed element in memory, matching both the SSE2
//! little-endian convention and NEON's little-endian layout used on all the
//! paper's platforms.

#![warn(missing_docs)]
// Lane-indexed `for i in 0..N` loops intentionally mirror the per-lane
// pseudocode of the architecture reference manuals.
#![allow(clippy::needless_range_loop)]
// Lane methods deliberately mirror the intrinsic operations they model
// (`add`, `shl`, `not`, ...) rather than implementing the operator traits:
// the ISA surfaces call them by these names and the semantics (wrapping,
// mask-producing) differ from the std operators.
#![allow(clippy::should_implement_trait)]

pub mod align;
pub mod cast;
pub mod float_ops;
pub mod int_ops;
pub mod lanes;
pub mod rounding;

pub use align::AlignedBuf;
pub use lanes::{
    F32x2, F32x4, F64x2, I16x4, I16x8, I32x2, I32x4, I64x1, I64x2, I8x16, I8x8, U16x4, U16x8,
    U32x2, U32x4, U64x1, U64x2, U8x16, U8x8,
};

/// Width in bytes of a Q (quad-word, 128-bit) register.
pub const Q_BYTES: usize = 16;
/// Width in bytes of a D (double-word, 64-bit) register.
pub const D_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_and_d_sizes() {
        assert_eq!(std::mem::size_of::<F32x4>(), Q_BYTES);
        assert_eq!(std::mem::size_of::<U8x16>(), Q_BYTES);
        assert_eq!(std::mem::size_of::<I64x2>(), Q_BYTES);
        assert_eq!(std::mem::size_of::<F32x2>(), D_BYTES);
        assert_eq!(std::mem::size_of::<I16x4>(), D_BYTES);
        assert_eq!(std::mem::size_of::<U8x8>(), D_BYTES);
    }

    #[test]
    fn q_alignment_is_16() {
        assert_eq!(std::mem::align_of::<F32x4>(), 16);
        assert_eq!(std::mem::align_of::<I32x4>(), 16);
    }

    #[test]
    fn d_alignment_is_8() {
        assert_eq!(std::mem::align_of::<I16x4>(), 8);
        assert_eq!(std::mem::align_of::<F32x2>(), 8);
    }
}
