//! Zero-dependency telemetry for the reproduction: scoped **spans**
//! assembling a nested wall-time tree, cross-thread **counters** and
//! **gauges** (high-water marks), and fixed-bucket log-scale
//! **histograms** — the instrumentation substrate the perf PRs use to
//! justify their numbers (the paper's Section V argues from instruction
//! *mixes*, not single averages; this crate plays the same role for the
//! runtime side).
//!
//! # Cost model
//!
//! Telemetry is **off by default**. Every recording entry point
//! ([`add`], [`gauge_max`], [`record`], [`record_steal`], [`span`])
//! starts with the same guard: one relaxed atomic load of the global
//! enable flag and one predictable branch — the `op-trace` crate's
//! proven disabled-cost pattern, lifted from a thread-local to a
//! process-global flag because the work-stealing pool's persistent
//! worker threads must observe an enable issued from the main thread.
//! When disabled nothing else runs: no clock reads, no sink lookup, no
//! allocation.
//!
//! # Aggregation model
//!
//! When enabled, each thread records into its own lazily-created
//! **sink** (counters, gauges and histogram buckets are relaxed
//! atomics; completed span trees sit behind a per-sink mutex touched
//! once per root span). Sinks register themselves in a process-wide
//! registry and live for the life of the process — exactly like the
//! pool's worker threads. [`snapshot`] folds every sink into one
//! [`Snapshot`]: counters and histogram buckets sum, gauges take the
//! max, span trees merge by name path.
//!
//! # Snapshot / reset lifecycle
//!
//! Counters accumulate from the moment telemetry is enabled; they are
//! **not** cleared by [`snapshot`]. Back-to-back measurements that must
//! not bleed into each other (e.g. `repro parallel`'s spawn-baseline
//! arm vs. pool arm) call [`reset`] at the boundary: it zeroes every
//! sink in place (registered threads keep recording into the same
//! storage, so no enable/disable round-trip is needed). Spans that are
//! *open* across a reset are unaffected and merge their full duration
//! after they close; don't reset in the middle of a measured region.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod report;
pub mod span;
pub mod stats;

use hist::{AtomicHistogram, HistData};
use span::SpanNode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metric identifiers
// ---------------------------------------------------------------------------

/// Monotonically increasing event counters, summed across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Bands processed by the fused pipeline (any kernel, any scheduler).
    PipelineBands,
    /// Halo rows whose horizontal pass was recomputed because the band
    /// boundary cut through a stencil neighbourhood.
    PipelineHaloRows,
    /// Bytes of scratch-arena buffer the allocator had to provide
    /// (growth included; reuse is free and therefore uncounted).
    ScratchBytesAllocated,
    /// Individual buffers the scratch ledger allocated or grew.
    ScratchBuffersGrown,
    /// Jobs submitted to the work-stealing pool (one per `par_*` call
    /// that actually went parallel, plus one per `broadcast`).
    PoolJobs,
    /// Tasks executed by pool workers (seeds plus split halves).
    PoolTasks,
    /// Successful steals (a task taken from another worker's deque).
    PoolSteals,
    /// Times a worker parked on the idle condvar.
    PoolParks,
    /// Times a parked worker was woken.
    PoolWakeups,
    /// Nested parallel calls that ran inline inside a worker.
    PoolInlineNested,
    /// Worker threads respawned after dying outside `catch_unwind`
    /// (the pool's self-healing drop-guard).
    PoolRespawns,
    /// Jobs executed serially in-caller because the circuit breaker was
    /// open (degraded mode after consecutive job failures).
    PoolDegradedRuns,
    /// Times a submitting thread's per-job watchdog deadline expired and
    /// it started draining the job's queued tasks itself.
    PoolWatchdogTrips,
    /// Timed passes executed by the measurement harness.
    HarnessPasses,
    /// Frames accepted into the stream engine's admission queue.
    StreamAdmitted,
    /// Frames refused at admission (queue full, or reduced admission
    /// while the circuit breaker is open).
    StreamRejected,
    /// Frames shed by the dispatcher because their deadline had already
    /// passed when they reached the head of the queue.
    StreamShed,
    /// Frames that completed processing and produced output.
    StreamCompleted,
    /// Frames whose processing returned an error or was abandoned by a
    /// dying worker (chaos runs; zero in production configuration).
    StreamFailed,
    /// Frames processed serially by the dispatcher because the pool's
    /// circuit breaker was open (graceful degradation).
    StreamDegradedFrames,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 20] = [
        Counter::PipelineBands,
        Counter::PipelineHaloRows,
        Counter::ScratchBytesAllocated,
        Counter::ScratchBuffersGrown,
        Counter::PoolJobs,
        Counter::PoolTasks,
        Counter::PoolSteals,
        Counter::PoolParks,
        Counter::PoolWakeups,
        Counter::PoolInlineNested,
        Counter::PoolRespawns,
        Counter::PoolDegradedRuns,
        Counter::PoolWatchdogTrips,
        Counter::HarnessPasses,
        Counter::StreamAdmitted,
        Counter::StreamRejected,
        Counter::StreamShed,
        Counter::StreamCompleted,
        Counter::StreamFailed,
        Counter::StreamDegradedFrames,
    ];

    /// Index into the per-sink counter array.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dotted metric name used in reports and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::PipelineBands => "pipeline.bands",
            Counter::PipelineHaloRows => "pipeline.halo_rows",
            Counter::ScratchBytesAllocated => "scratch.bytes_allocated",
            Counter::ScratchBuffersGrown => "scratch.buffers_grown",
            Counter::PoolJobs => "pool.jobs",
            Counter::PoolTasks => "pool.tasks",
            Counter::PoolSteals => "pool.steals",
            Counter::PoolParks => "pool.parks",
            Counter::PoolWakeups => "pool.wakeups",
            Counter::PoolInlineNested => "pool.inline_nested",
            Counter::PoolRespawns => "pool.respawns",
            Counter::PoolDegradedRuns => "pool.degraded_runs",
            Counter::PoolWatchdogTrips => "pool.watchdog_trips",
            Counter::HarnessPasses => "harness.passes",
            Counter::StreamAdmitted => "stream.admitted",
            Counter::StreamRejected => "stream.rejected",
            Counter::StreamShed => "stream.shed",
            Counter::StreamCompleted => "stream.completed",
            Counter::StreamFailed => "stream.failed",
            Counter::StreamDegradedFrames => "stream.degraded_frames",
        }
    }
}

/// Number of [`Counter`] variants.
pub const NUM_COUNTERS: usize = Counter::ALL.len();

/// High-water gauges, merged across threads by maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Largest number of live scratch-arena bytes any single arena held.
    ScratchBytesHighWater,
    /// Deepest any worker deque ever got (tasks queued on one worker).
    PoolDequeDepthHighWater,
    /// Deepest the stream engine's admission queue ever got.
    StreamQueueDepthHighWater,
}

impl Gauge {
    /// Every gauge, in display order.
    pub const ALL: [Gauge; 3] = [
        Gauge::ScratchBytesHighWater,
        Gauge::PoolDequeDepthHighWater,
        Gauge::StreamQueueDepthHighWater,
    ];

    /// Index into the per-sink gauge array.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dotted metric name used in reports and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ScratchBytesHighWater => "scratch.bytes_high_water",
            Gauge::PoolDequeDepthHighWater => "pool.deque_depth_high_water",
            Gauge::StreamQueueDepthHighWater => "stream.queue_depth_high_water",
        }
    }
}

/// Number of [`Gauge`] variants.
pub const NUM_GAUGES: usize = Gauge::ALL.len();

/// Fixed-bucket log-scale histograms, bucket-wise summed across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Wall nanoseconds per fused-pipeline band.
    PipelineBandNanos,
    /// Wall nanoseconds per harness measurement pass (one full image).
    HarnessPassNanos,
    /// Wall nanoseconds from a frame's admission to its completion in
    /// the stream engine (queue wait plus processing).
    StreamFrameNanos,
}

impl HistId {
    /// Every histogram, in display order.
    pub const ALL: [HistId; 3] = [
        HistId::PipelineBandNanos,
        HistId::HarnessPassNanos,
        HistId::StreamFrameNanos,
    ];

    /// Index into the per-sink histogram array.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dotted metric name used in reports and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            HistId::PipelineBandNanos => "pipeline.band_ns",
            HistId::HarnessPassNanos => "harness.pass_ns",
            HistId::StreamFrameNanos => "stream.frame_ns",
        }
    }
}

/// Number of [`HistId`] variants.
pub const NUM_HISTS: usize = HistId::ALL.len();

/// Slots in the steals-by-victim table; victims with higher worker
/// indices fold into the last slot.
pub const STEAL_VICTIM_SLOTS: usize = 32;

// ---------------------------------------------------------------------------
// Enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Per-thread sinks
// ---------------------------------------------------------------------------

/// One thread's storage. Lazily allocated, registered globally, leaked
/// (threads — notably pool workers — persist for the process lifetime).
pub(crate) struct Sink {
    counters: [AtomicU64; NUM_COUNTERS],
    gauges: [AtomicU64; NUM_GAUGES],
    hists: [AtomicHistogram; NUM_HISTS],
    steal_victims: [AtomicU64; STEAL_VICTIM_SLOTS],
    /// Completed root spans of this thread, merged by name.
    pub(crate) spans: Mutex<Vec<SpanNode>>,
}

impl Sink {
    fn new() -> Self {
        Sink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
            steal_victims: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
        for s in &self.steal_victims {
            s.store(0, Ordering::Relaxed);
        }
        lock_spans(self).clear();
    }
}

pub(crate) fn lock_spans(sink: &Sink) -> std::sync::MutexGuard<'_, Vec<SpanNode>> {
    sink.spans.lock().unwrap_or_else(|e| e.into_inner())
}

fn registry() -> &'static Mutex<Vec<&'static Sink>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static Sink>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SINK: std::cell::Cell<Option<&'static Sink>> = const { std::cell::Cell::new(None) };
}

/// The calling thread's sink, created and registered on first use.
pub(crate) fn sink() -> &'static Sink {
    SINK.with(|cell| match cell.get() {
        Some(s) => s,
        None => {
            let s: &'static Sink = Box::leak(Box::new(Sink::new()));
            registry().lock().unwrap_or_else(|e| e.into_inner()).push(s);
            cell.set(Some(s));
            s
        }
    })
}

// ---------------------------------------------------------------------------
// Recording entry points
// ---------------------------------------------------------------------------

/// Adds `n` to a counter (no-op unless telemetry is enabled).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        sink().counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises a high-water gauge to at least `value`.
#[inline]
pub fn gauge_max(gauge: Gauge, value: u64) {
    if enabled() {
        sink().gauges[gauge.index()].fetch_max(value, Ordering::Relaxed);
    }
}

/// Records one sample into a histogram.
#[inline]
pub fn record(hist: HistId, value: u64) {
    if enabled() {
        sink().hists[hist.index()].record(value);
    }
}

/// Records a successful steal from worker `victim`'s deque.
#[inline]
pub fn record_steal(victim: usize) {
    if enabled() {
        sink().steal_victims[victim.min(STEAL_VICTIM_SLOTS - 1)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Starts a wall-clock timer when telemetry is enabled (`None` when
/// disabled, costing only the flag branch).
#[inline]
pub fn start_timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Stops a timer from [`start_timer`] and records the elapsed
/// nanoseconds into `hist`. Accepts `None` silently so call sites stay
/// branch-free.
#[inline]
pub fn stop_timer(hist: HistId, timer: Option<Instant>) {
    if let Some(start) = timer {
        record(hist, start.elapsed().as_nanos() as u64);
    }
}

pub use span::{span, SpanGuard};

// ---------------------------------------------------------------------------
// Snapshot / reset
// ---------------------------------------------------------------------------

/// An aggregated, immutable view of every thread's telemetry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter totals, summed across threads, indexed by [`Counter`].
    pub counters: [u64; NUM_COUNTERS],
    /// Gauge high-waters, max across threads, indexed by [`Gauge`].
    pub gauges: [u64; NUM_GAUGES],
    /// Histograms, bucket-wise summed, indexed by [`HistId`].
    pub hists: [HistData; NUM_HISTS],
    /// Steal counts by victim worker index (last slot = overflow).
    pub steal_victims: [u64; STEAL_VICTIM_SLOTS],
    /// Root span forest, merged across threads by name path.
    pub spans: Vec<SpanNode>,
    /// Number of thread sinks that contributed.
    pub threads: usize,
}

impl Snapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// One histogram's aggregated data.
    pub fn hist(&self, h: HistId) -> &HistData {
        &self.hists[h.index()]
    }

    /// Human-readable Section-V-style report (see [`report`]).
    pub fn render(&self) -> String {
        report::render(self)
    }

    /// Machine-readable JSON document (see [`json`] for the writer).
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }
}

/// Aggregates every registered sink into a [`Snapshot`]. Does not
/// clear anything; see the module docs for the lifecycle.
pub fn snapshot() -> Snapshot {
    let registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut snap = Snapshot {
        counters: [0; NUM_COUNTERS],
        gauges: [0; NUM_GAUGES],
        hists: std::array::from_fn(|_| HistData::default()),
        steal_victims: [0; STEAL_VICTIM_SLOTS],
        spans: Vec::new(),
        threads: registry.len(),
    };
    for s in registry.iter() {
        for (dst, src) in snap.counters.iter_mut().zip(&s.counters) {
            *dst += src.load(Ordering::Relaxed);
        }
        for (dst, src) in snap.gauges.iter_mut().zip(&s.gauges) {
            *dst = (*dst).max(src.load(Ordering::Relaxed));
        }
        for (dst, src) in snap.hists.iter_mut().zip(&s.hists) {
            dst.merge_from(src);
        }
        for (dst, src) in snap.steal_victims.iter_mut().zip(&s.steal_victims) {
            *dst += src.load(Ordering::Relaxed);
        }
        for node in lock_spans(s).iter() {
            span::merge_node(&mut snap.spans, node.clone());
        }
    }
    snap
}

/// Zeroes every sink in place (counters, gauges, histograms, steal
/// table, completed spans). Threads keep recording into the same
/// storage; spans still open finish normally and merge afterwards.
pub fn reset() {
    let registry = registry().lock().unwrap_or_else(|e| e.into_inner());
    for s in registry.iter() {
        s.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global, so the unit tests that flip it
    /// serialize on this lock (mirrors the USE_OPTIMIZED discipline).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        add(Counter::PoolJobs, 5);
        gauge_max(Gauge::PoolDequeDepthHighWater, 9);
        record(HistId::PipelineBandNanos, 1234);
        record_steal(3);
        assert!(start_timer().is_none());
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::PoolJobs), 0);
        assert_eq!(snap.gauge(Gauge::PoolDequeDepthHighWater), 0);
        assert_eq!(snap.hist(HistId::PipelineBandNanos).count, 0);
        assert_eq!(snap.steal_victims.iter().sum::<u64>(), 0);
    }

    #[test]
    fn enabled_counters_accumulate_and_reset_clears() {
        let _g = guard();
        set_enabled(true);
        reset();
        add(Counter::PipelineBands, 3);
        add(Counter::PipelineBands, 4);
        gauge_max(Gauge::ScratchBytesHighWater, 100);
        gauge_max(Gauge::ScratchBytesHighWater, 50); // lower: no effect
        record_steal(2);
        record_steal(STEAL_VICTIM_SLOTS + 10); // folds into last slot
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::PipelineBands), 7);
        assert_eq!(snap.gauge(Gauge::ScratchBytesHighWater), 100);
        assert_eq!(snap.steal_victims[2], 1);
        assert_eq!(snap.steal_victims[STEAL_VICTIM_SLOTS - 1], 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::PipelineBands), 0);
        assert_eq!(snap.gauge(Gauge::ScratchBytesHighWater), 0);
        set_enabled(false);
    }

    #[test]
    fn timer_feeds_histogram_when_enabled() {
        let _g = guard();
        set_enabled(true);
        reset();
        let t = start_timer();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        stop_timer(HistId::HarnessPassNanos, t);
        let snap = snapshot();
        let h = snap.hist(HistId::HarnessPassNanos);
        assert_eq!(h.count, 1);
        assert!(h.min >= 1_000_000, "slept >= 1ms, recorded {}", h.min);
        set_enabled(false);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(HistId::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
