//! The paper's measurement methodology and its table/figure generators.
//!
//! Two modes regenerate every evaluation artifact:
//!
//! * **Simulated-platform mode** (the default) — replays the instruction-mix
//!   and memory models of `platform-model` for all ten Table I platforms,
//!   producing Table II, Table III and the Figure 2–6 speed-up series with
//!   the paper's *shapes*.
//! * **Host mode** — actually runs the kernels on this machine, AUTO
//!   (compiler-vectorized Rust) against HAND (native intrinsics), with the
//!   paper's exact protocol: cycle through 5 different images of each
//!   resolution, 25 times, for an average over 100 runs, using a
//!   high-resolution timer.

#![warn(missing_docs)]

pub mod figures;
pub mod tables;
pub mod timing;

pub use tables::{render_table, Table};
pub use timing::{measure, HostConfig, HostMeasurement};
