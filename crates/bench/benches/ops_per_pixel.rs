//! Section V — instruction-stream measurement cost and the op-trace
//! counting overhead (the tracer must be cheap enough to leave on in
//! development builds).

use criterion::{criterion_group, criterion_main, Criterion};
use pixelimage::Image;
use platform_model::workload::{auto_mix, hand_mix, Kernel};
use platform_model::Isa;
use simdbench_core::convert::convert_row_neon_sim;

fn bench_tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("op_trace");
    let src: Vec<f32> = (0..4096).map(|i| (i as f32) * 3.7 - 8000.0).collect();
    let mut dst = vec![0i16; 4096];

    group.bench_function("sim_kernel_trace_off", |b| {
        op_trace::set_enabled(false);
        b.iter(|| convert_row_neon_sim(&src, &mut dst));
    });
    group.bench_function("sim_kernel_trace_on", |b| {
        op_trace::reset();
        op_trace::set_enabled(true);
        b.iter(|| convert_row_neon_sim(&src, &mut dst));
        op_trace::set_enabled(false);
    });
    group.finish();
}

fn bench_mix_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("section_v_mixes");
    group.sample_size(10);
    // The full Section V measurement for one kernel (trace strip + mix).
    group.bench_function("measure_hand_convert_neon", |b| {
        b.iter(|| {
            // Re-measure from scratch (bypass the cache by tracing inline).
            let src = pixelimage::synthetic_image(256, 24, 1);
            let srcf = pixelimage::convert::u8_to_f32(&src, 100.0, -10000.0);
            let mut dst = Image::<i16>::new(256, 24);
            let (_, mix) = op_trace::trace(|| {
                simdbench_core::convert::convert_f32_to_i16(
                    &srcf,
                    &mut dst,
                    simdbench_core::Engine::NeonSim,
                )
            });
            mix
        })
    });
    group.bench_function("cached_mix_lookup", |b| {
        let _ = hand_mix(Kernel::Convert, Isa::Neon); // warm the cache
        b.iter(|| hand_mix(Kernel::Convert, Isa::Neon))
    });
    group.bench_function("modelled_auto_mix", |b| {
        b.iter(|| auto_mix(Kernel::Edge, Isa::Neon))
    });
    group.finish();
}

criterion_group!(benches, bench_tracing_overhead, bench_mix_measurement);
criterion_main!(benches);
