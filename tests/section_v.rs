//! Section V reproduction: the instruction-stream analysis of the
//! conversion benchmark, measured through the tracing intrinsic surfaces.

use op_trace::OpClass;
use simd_repro::platform::workload::{auto_mix, hand_mix, Kernel};
use simd_repro::platform::Isa;

/// "Overall eight NEON intrinsics translate into eight NEON assembly
/// instructions. An additional six other instructions are required to
/// maintain address offsets and control the loop. Thus a total of 14
/// operations are required per eight output pixels."
#[test]
fn neon_convert_is_14_ops_per_8_pixels() {
    let mix = hand_mix(Kernel::Convert, Isa::Neon);
    let simd_per_8 = mix.simd_total() * 8.0;
    let overhead_per_8 = (mix.get(OpClass::AddrArith) + mix.get(OpClass::Branch)) * 8.0;
    assert!(
        (simd_per_8 - 8.0).abs() < 0.4,
        "SIMD ops/8px = {simd_per_8}"
    );
    assert!(
        (overhead_per_8 - 6.0).abs() < 0.4,
        "overhead/8px = {overhead_per_8}"
    );
    assert!(
        (mix.total() * 8.0 - 14.0).abs() < 0.8,
        "total ops/8px = {}",
        mix.total() * 8.0
    );
}

/// The NEON stream needs two extra intrinsics over SSE2: the paper notes
/// the two-stage downcast (`vqmovn` twice + `vcombine`) against SSE2's
/// single `packs`.
#[test]
fn neon_needs_two_more_ops_than_sse_per_8_pixels() {
    let neon = hand_mix(Kernel::Convert, Isa::Neon).simd_total() * 8.0;
    let sse = hand_mix(Kernel::Convert, Isa::Sse2).simd_total() * 8.0;
    assert!(
        ((neon - sse) - 2.0).abs() < 0.5,
        "NEON {neon} vs SSE {sse} ops per 8 px"
    );
}

/// "For the auto-vectorized assembly ... the major issue is that the loop
/// is not running in blocks of eight pixels. As a consequence many more
/// operations are required per output pixel."
#[test]
fn auto_stream_has_many_more_ops_per_pixel() {
    for isa in [Isa::Neon, Isa::Sse2] {
        let hand = hand_mix(Kernel::Convert, isa);
        let auto = auto_mix(Kernel::Convert, isa);
        assert!(
            auto.total() > 4.0 * hand.total(),
            "{isa:?}: auto {} vs hand {}",
            auto.total(),
            hand.total()
        );
    }
}

/// The gcc ARM listing calls `lrint` per pixel (`bl 0 <lrint>`); the Intel
/// build inlines the SSE `cvRound` instead.
#[test]
fn arm_auto_pays_a_libcall_per_pixel_intel_does_not() {
    let arm = auto_mix(Kernel::Convert, Isa::Neon);
    let intel = auto_mix(Kernel::Convert, Isa::Sse2);
    assert_eq!(arm.get(OpClass::LibCall), 1.0);
    assert_eq!(intel.get(OpClass::LibCall), 0.0);
    assert!(intel.get(OpClass::SimdConvert) > 0.0, "inline cvtsd_si32");
}

/// The report renderer reproduces the Section V numbers in text form.
#[test]
fn stream_report_renders_the_headline_figures() {
    use op_trace::analysis::{StreamComparison, StreamProfile};
    use op_trace::OpMix;

    let hand = hand_mix(Kernel::Convert, Isa::Neon);
    let auto = auto_mix(Kernel::Convert, Isa::Neon);
    let scale = |m: &simd_repro::platform::workload::PixelMix| {
        let mut mix = OpMix::new();
        for class in OpClass::ALL {
            mix.set(class, (m.get(class) * 8000.0).round() as u64);
        }
        mix
    };
    let cmp = StreamComparison::new(
        "convert f32->i16 [NEON]",
        StreamProfile::new("HAND", scale(&hand), 8000),
        StreamProfile::new("AUTO", scale(&auto), 8000),
    );
    let report = cmp.report();
    assert!(report.contains("HAND"));
    assert!(report.contains("AUTO"));
    assert!(report.contains("libcall"));
    assert!(cmp.instruction_ratio() > 4.0);
}

/// Every kernel's HAND stream is SIMD-dominated and every AUTO stream is
/// scalar-dominated — the defining property of the two strategies.
#[test]
fn strategy_character_is_consistent_across_kernels() {
    for isa in [Isa::Neon, Isa::Sse2] {
        for kernel in Kernel::ALL {
            let hand = hand_mix(kernel, isa);
            let auto = auto_mix(kernel, isa);
            assert!(
                hand.simd_total() > hand.scalar_total(),
                "{kernel:?}/{isa:?} HAND should be SIMD-dominated"
            );
            assert!(
                auto.scalar_total() > auto.simd_total(),
                "{kernel:?}/{isa:?} AUTO should be scalar-dominated"
            );
        }
    }
}

/// The measured HAND mixes are memory-lean: blocked SIMD loops touch
/// memory once per vector, not once per pixel.
#[test]
fn hand_streams_amortise_memory_ops() {
    for isa in [Isa::Neon, Isa::Sse2] {
        let hand = hand_mix(Kernel::Threshold, isa);
        let auto = auto_mix(Kernel::Threshold, isa);
        // HAND: 1 load + 1 store per 16 pixels; AUTO: 2 per pixel.
        assert!(
            hand.memory_total() < 0.25,
            "{isa:?} {}",
            hand.memory_total()
        );
        assert!((auto.memory_total() - 2.0).abs() < 0.01);
    }
}
