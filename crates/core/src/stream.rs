//! Streaming multi-frame engine: sustained throughput over the fused
//! band-tiled pipeline (DESIGN.md §11).
//!
//! The paper measures one kernel on one frame; a serving system measures
//! frames per second under sustained offered load. This module pipelines
//! frames through [`crate::pipeline`]'s fused serial kernels using the
//! persistent shim-rayon pool — one frame per pool worker via
//! [`rayon::spawn`], several frames in flight at once — with:
//!
//! * a **fixed slot ring** of reusable per-frame [`Scratch`] arenas and
//!   destination images, warmed at construction so the steady state
//!   performs zero heap allocation (proved by the allocator-instrumented
//!   integration test),
//! * a **bounded admission queue**: [`StreamEngine::submit`] applies
//!   backpressure by returning [`StreamError::Saturated`] instead of
//!   queueing unboundedly,
//! * **deadline-based load shedding**: a frame whose SLO already expired
//!   when it reaches the head of the queue is shed with
//!   [`KernelError::DeadlineExceeded`] — an outcome the caller sees,
//!   never a silent drop,
//! * **graceful degradation** composing with the pool's circuit breaker:
//!   while the breaker is open, frames run serially on the dispatcher
//!   thread and the admission cap is halved, trading throughput for
//!   survival instead of piling work onto a sick pool.
//!
//! Every decision is counted through `obs` (`stream.*` metrics) and
//! every frame produces exactly one [`FrameOutcome`], including frames
//! abandoned by an injected worker death.
//!
//! Failpoints (chaos testing, see `faultline`): `stream.admit` rejects
//! at submit, `stream.slot` fails a frame in the dispatcher (the
//! dispatcher itself survives injected panics there), and
//! `stream.frame` fails or kills the frame on the worker.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use obs::{Counter, Gauge, HistId};
use pixelimage::Image;

use crate::dispatch::Engine;
use crate::error::{validate_frame, KernelError};
use crate::kernelgen::{paper_gaussian_kernel, FixedKernel};
use crate::pipeline::{try_fused_edge_detect_with, try_fused_gaussian_blur_with};
use crate::scratch::{Scratch, WorkspaceSpec};

/// Which fused pipeline a stream runs. Both produce `u8` frames, so a
/// slot's destination image is shared across kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// Fused Gaussian blur with the paper's σ=1 Q8 kernel.
    Gaussian,
    /// Fused edge detect (Sobel magnitude + threshold).
    Edge,
}

/// Configuration for a [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Frame width in pixels; every submitted frame must match.
    pub width: usize,
    /// Frame height in pixels; every submitted frame must match.
    pub height: usize,
    /// Number of slots in the ring — the maximum frames in flight on
    /// the pool at once. Clamped to ≥ 1.
    pub slots: usize,
    /// Admission queue capacity; [`StreamEngine::submit`] returns
    /// [`StreamError::Saturated`] beyond this. Clamped to ≥ 1.
    pub queue_cap: usize,
    /// Optional service-level objective. A frame still queued when its
    /// SLO expires is shed with [`KernelError::DeadlineExceeded`].
    pub slo: Option<Duration>,
    /// Which fused kernel to run.
    pub kernel: StreamKernel,
    /// Compute backend for the fused kernel.
    pub engine: Engine,
    /// Threshold for [`StreamKernel::Edge`]; ignored for Gaussian.
    pub thresh: u8,
}

impl StreamConfig {
    /// A sensible default: Gaussian blur, autovec backend, one slot per
    /// pool worker, a queue twice the slot count, no SLO.
    pub fn new(width: usize, height: usize) -> Self {
        let slots = rayon::current_num_threads().max(1);
        StreamConfig {
            width,
            height,
            slots,
            queue_cap: slots * 2,
            slo: None,
            kernel: StreamKernel::Gaussian,
            engine: Engine::Autovec,
            thresh: 128,
        }
    }
}

/// Why [`StreamEngine::submit`] refused a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The admission queue is full (backpressure): retry later or slow
    /// the offered rate. `cap` is the *effective* cap, which is halved
    /// while the pool's circuit breaker is open.
    Saturated {
        /// Queue depth at the time of the attempt.
        depth: usize,
        /// Effective admission capacity.
        cap: usize,
    },
    /// The frame itself was rejected (geometry mismatch against the
    /// stream's configured dimensions, or an injected admission fault).
    Rejected(KernelError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Saturated { depth, cap } => {
                write!(f, "stream saturated: queue depth {depth} at cap {cap}")
            }
            StreamError::Rejected(e) => write!(f, "frame rejected: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Terminal state of one submitted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStatus {
    /// The frame ran to completion; `checksum` is the FNV-1a hash of
    /// the output pixels (see [`frame_checksum`]) for bit-exactness
    /// checks without retaining every output image.
    Completed {
        /// FNV-1a checksum of the destination pixels.
        checksum: u64,
    },
    /// Shed before execution (deadline expired in queue).
    Shed(KernelError),
    /// Started but failed (kernel error or injected fault).
    Failed(KernelError),
}

/// One frame's journey through the stream, recorded exactly once.
#[derive(Debug, Clone)]
pub struct FrameOutcome {
    /// Caller-assigned frame id from [`StreamEngine::submit`].
    pub id: u64,
    /// How the frame ended.
    pub status: FrameStatus,
    /// Admission-to-outcome latency.
    pub latency: Duration,
    /// True if the frame ran serially on the dispatcher because the
    /// pool's circuit breaker was open.
    pub degraded: bool,
}

/// Aggregate counts over a batch of [`FrameOutcome`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Frames that completed successfully.
    pub completed: usize,
    /// Frames shed for blowing their SLO while queued.
    pub shed: usize,
    /// Frames that started but failed.
    pub failed: usize,
    /// Frames executed in degraded (breaker-open, serial) mode.
    pub degraded: usize,
}

/// Tallies a slice of outcomes into a [`StreamSummary`].
pub fn summarize(outcomes: &[FrameOutcome]) -> StreamSummary {
    let mut s = StreamSummary::default();
    for o in outcomes {
        match o.status {
            FrameStatus::Completed { .. } => s.completed += 1,
            FrameStatus::Shed(_) => s.shed += 1,
            FrameStatus::Failed(_) => s.failed += 1,
        }
        if o.degraded {
            s.degraded += 1;
        }
    }
    s
}

/// FNV-1a over an image's pixel bytes — the checksum recorded in
/// [`FrameStatus::Completed`]. Stable across runs and platforms, so
/// bit-exactness across engines/faults reduces to comparing two `u64`s.
pub fn frame_checksum(img: &Image<u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for y in 0..img.height() {
        for &p in img.row(y) {
            h ^= p as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct FrameRequest {
    id: u64,
    src: Arc<Image<u8>>,
    admitted: Instant,
    deadline: Option<Instant>,
}

/// One reusable execution slot: a warmed scratch arena plus a
/// preallocated destination image. Slots are the only place frame
/// output lands, so slot count bounds in-flight memory exactly.
struct Slot {
    scratch: Scratch,
    dst: Image<u8>,
}

struct State {
    queue: VecDeque<FrameRequest>,
    free_slots: Vec<usize>,
    /// Frames popped from the queue whose outcome is not yet recorded.
    /// Incremented at pop, decremented exactly once per outcome, so
    /// `queue.is_empty() && active == 0` is the idle predicate even
    /// while a frame is between queue and slot.
    active: usize,
    shutdown: bool,
}

struct Shared {
    config: StreamConfig,
    kernel: FixedKernel,
    state: Mutex<State>,
    /// Dispatcher wakes on new work or shutdown.
    work_cv: Condvar,
    /// Dispatcher wakes when a slot frees.
    slot_cv: Condvar,
    /// Callers in `wait_idle`/`finish` wake when the stream drains.
    idle_cv: Condvar,
    slots: Vec<Mutex<Slot>>,
    outcomes: Mutex<Vec<FrameOutcome>>,
}

/// Locks ignoring poison: every protected structure stays coherent
/// across an unwind (scratch checkouts are drop-guarded, the queue and
/// ledgers are plain data), so a panicking worker must not wedge the
/// stream.
fn lock_clean<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn record_outcome(&self, outcome: FrameOutcome) {
        // Never nest the outcomes and state locks: submit reserves
        // outcome capacity under `outcomes` alone, workers push under
        // `outcomes` alone, and the idle accounting below takes `state`
        // alone — no ordering between the two exists to invert.
        lock_clean(&self.outcomes).push(outcome);
        let mut st = lock_clean(&self.state);
        st.active -= 1;
        if st.active == 0 && st.queue.is_empty() {
            self.idle_cv.notify_all();
        }
    }

    fn release_slot(&self, slot: usize) {
        let mut st = lock_clean(&self.state);
        st.free_slots.push(slot);
        self.slot_cv.notify_one();
    }
}

/// Ownership of one slot for one frame, alive from dispatch to outcome.
///
/// The lease travels into the spawned closure; its `Drop` releases the
/// slot *unconditionally* and records an abandonment outcome if none
/// was recorded — so a frame whose closure is dropped unrun (e.g. an
/// injected `pool.task` panic fires before the closure body) or whose
/// worker dies mid-kernel still frees its slot and stays accounted.
struct Lease {
    shared: Arc<Shared>,
    slot: usize,
    id: u64,
    admitted: Instant,
    degraded: bool,
    done: bool,
}

impl Lease {
    fn complete(&mut self, status: FrameStatus) {
        self.done = true;
        self.shared.record_outcome(FrameOutcome {
            id: self.id,
            status,
            latency: self.admitted.elapsed(),
            degraded: self.degraded,
        });
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if !self.done {
            obs::add(Counter::StreamFailed, 1);
            self.shared.record_outcome(FrameOutcome {
                id: self.id,
                status: FrameStatus::Failed(KernelError::FaultInjected {
                    failpoint: "stream.abandoned".to_string(),
                }),
                latency: self.admitted.elapsed(),
                degraded: self.degraded,
            });
        }
        self.shared.release_slot(self.slot);
    }
}

/// The multi-frame streaming scheduler. See the module docs for the
/// architecture; typical use:
///
/// ```
/// use simdbench_core::stream::{StreamConfig, StreamEngine, StreamError};
/// use std::sync::Arc;
///
/// let engine = StreamEngine::new(StreamConfig::new(64, 48)).unwrap();
/// let frame = Arc::new(pixelimage::Image::<u8>::from_fn(64, 48, |x, y| (x ^ y) as u8));
/// for id in 0..8 {
///     loop {
///         match engine.submit(id, Arc::clone(&frame)) {
///             Ok(()) => break,
///             Err(StreamError::Saturated { .. }) => std::thread::yield_now(),
///             Err(e) => panic!("{e}"),
///         }
///     }
/// }
/// let outcomes = engine.finish();
/// assert_eq!(outcomes.len(), 8);
/// ```
pub struct StreamEngine {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl StreamEngine {
    /// Builds the slot ring (warming every arena and destination image
    /// so the steady state allocates nothing) and starts the dispatcher
    /// thread. Fails on degenerate geometry.
    pub fn new(mut config: StreamConfig) -> Result<StreamEngine, KernelError> {
        validate_frame(config.width, config.height, config.width)?;
        config.slots = config.slots.max(1);
        config.queue_cap = config.queue_cap.max(1);

        let kernel = paper_gaussian_kernel();
        let spec = match config.kernel {
            StreamKernel::Gaussian => WorkspaceSpec::gaussian(config.width, kernel.len()),
            StreamKernel::Edge => WorkspaceSpec::edge(config.width),
        };
        let slots: Vec<Mutex<Slot>> = (0..config.slots)
            .map(|_| {
                let mut scratch = Scratch::new();
                scratch.warm(spec);
                Mutex::new(Slot {
                    scratch,
                    dst: Image::new(config.width, config.height),
                })
            })
            .collect();

        let state = State {
            queue: VecDeque::with_capacity(config.queue_cap),
            free_slots: (0..config.slots).collect(),
            active: 0,
            shutdown: false,
        };
        let shared = Arc::new(Shared {
            config,
            kernel,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            slot_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            slots,
            outcomes: Mutex::new(Vec::new()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stream-dispatch".into())
                .spawn(move || run_dispatcher(shared))
                .expect("spawn stream dispatcher")
        };
        Ok(StreamEngine {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Offers one frame. Returns immediately: `Ok` means admitted (an
    /// outcome will eventually exist for `id`), `Err` means the frame
    /// was never taken — [`StreamError::Saturated`] is backpressure,
    /// [`StreamError::Rejected`] is a bad frame. While the pool's
    /// circuit breaker is open the effective queue cap is halved, so
    /// saturation pushes back harder during degradation.
    pub fn submit(&self, id: u64, src: Arc<Image<u8>>) -> Result<(), StreamError> {
        if let Some(fault) = faultline::inject("stream.admit") {
            obs::add(Counter::StreamRejected, 1);
            return Err(StreamError::Rejected(fault.into()));
        }
        let cfg = &self.shared.config;
        if src.width() != cfg.width {
            obs::add(Counter::StreamRejected, 1);
            return Err(StreamError::Rejected(KernelError::WidthMismatch {
                src: src.width(),
                dst: cfg.width,
            }));
        }
        if src.height() != cfg.height {
            obs::add(Counter::StreamRejected, 1);
            return Err(StreamError::Rejected(KernelError::HeightMismatch {
                src: src.height(),
                dst: cfg.height,
            }));
        }
        // Reserve outcome space on the submitting thread so workers
        // never grow the vector: frames in flight are bounded by
        // queue + slots + the one frame between queue and slot.
        {
            let mut outcomes = lock_clean(&self.shared.outcomes);
            let want = outcomes.len() + cfg.queue_cap + cfg.slots + 1;
            if outcomes.capacity() < want {
                let len = outcomes.len();
                outcomes.reserve(want - len);
            }
        }
        let mut st = lock_clean(&self.shared.state);
        let cap = if rayon::circuit_breaker_open() {
            (cfg.queue_cap / 2).max(1)
        } else {
            cfg.queue_cap
        };
        if st.queue.len() >= cap {
            obs::add(Counter::StreamRejected, 1);
            return Err(StreamError::Saturated {
                depth: st.queue.len(),
                cap,
            });
        }
        let now = Instant::now();
        st.queue.push_back(FrameRequest {
            id,
            src,
            admitted: now,
            deadline: cfg.slo.map(|slo| now + slo),
        });
        obs::add(Counter::StreamAdmitted, 1);
        obs::gauge_max(Gauge::StreamQueueDepthHighWater, st.queue.len() as u64);
        self.shared.work_cv.notify_one();
        Ok(())
    }

    /// Blocks until every admitted frame has an outcome and the queue
    /// is empty. Does not stop the engine; more frames may follow.
    pub fn wait_idle(&self) {
        let mut st = lock_clean(&self.shared.state);
        while !(st.queue.is_empty() && st.active == 0) {
            st = self
                .shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Total scratch-ledger bytes checked out across all slots. Zero
    /// whenever the stream is idle — shed, failed, and even abandoned
    /// frames must not leak workspace bytes (the leak-sweep tests pin
    /// this down).
    pub fn outstanding_scratch_bytes(&self) -> usize {
        self.shared
            .slots
            .iter()
            .map(|s| lock_clean(s).scratch.outstanding_bytes())
            .sum()
    }

    /// Sum of fresh arena allocations across all slots. Flat across a
    /// steady-state run after warm-up: the zero-alloc proof.
    pub fn slot_fresh_allocs(&self) -> usize {
        self.shared
            .slots
            .iter()
            .map(|s| lock_clean(s).scratch.fresh_allocs())
            .sum()
    }

    /// Drains the stream and returns every frame's outcome, in
    /// completion order. Consumes the engine: shuts the dispatcher
    /// down after the queue empties and all in-flight frames settle.
    pub fn finish(mut self) -> Vec<FrameOutcome> {
        self.shutdown_and_join();
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop is a no-op now; keeps one exit path.
        let outcomes = std::mem::take(&mut *lock_clean(&shared.outcomes));
        outcomes
    }

    fn shutdown_and_join(&mut self) {
        {
            let mut st = lock_clean(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // The dispatcher drained the queue before exiting; wait for the
        // frames it handed to the pool.
        self.wait_idle();
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn run_dispatcher(shared: Arc<Shared>) {
    loop {
        let req = {
            let mut st = lock_clean(&shared.state);
            loop {
                if let Some(r) = st.queue.pop_front() {
                    st.active += 1;
                    break r;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // Shed check: the SLO clock started at admission, so a frame
        // that sat in the queue past its deadline is doomed — reject it
        // now rather than spend a slot on work nobody will take.
        if let (Some(deadline), Some(slo)) = (req.deadline, shared.config.slo) {
            let now = Instant::now();
            if now >= deadline {
                let waited = now.duration_since(req.admitted);
                obs::add(Counter::StreamShed, 1);
                shared.record_outcome(FrameOutcome {
                    id: req.id,
                    status: FrameStatus::Shed(KernelError::DeadlineExceeded {
                        waited_us: waited.as_micros() as u64,
                        slo_us: slo.as_micros() as u64,
                    }),
                    latency: waited,
                    degraded: false,
                });
                continue;
            }
        }

        // `stream.slot` failpoint, caught so an injected panic fails
        // the frame instead of killing the dispatcher (which would
        // wedge the whole stream).
        if faultline::any_armed() {
            let verdict = catch_unwind(|| faultline::inject("stream.slot"));
            let injected = match verdict {
                Ok(None) => None,
                Ok(Some(fault)) => Some(fault.failpoint),
                Err(payload) => {
                    if let Some(fp) = faultline::injected_failpoint(&payload) {
                        Some(fp.to_string())
                    } else {
                        std::panic::resume_unwind(payload);
                    }
                }
            };
            if let Some(failpoint) = injected {
                obs::add(Counter::StreamFailed, 1);
                shared.record_outcome(FrameOutcome {
                    id: req.id,
                    status: FrameStatus::Failed(KernelError::FaultInjected { failpoint }),
                    latency: req.admitted.elapsed(),
                    degraded: false,
                });
                continue;
            }
        }

        let slot = {
            let mut st = lock_clean(&shared.state);
            loop {
                if let Some(i) = st.free_slots.pop() {
                    break i;
                }
                st = shared
                    .slot_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        let degraded = rayon::circuit_breaker_open();
        let lease = Lease {
            shared: Arc::clone(&shared),
            slot,
            id: req.id,
            admitted: req.admitted,
            degraded,
            done: false,
        };
        if degraded {
            // Breaker open: the pool is suspect. Run serially right
            // here — slower, but it cannot compound pool damage, and
            // the halved admission cap in `submit` sheds the excess.
            obs::add(Counter::StreamDegradedFrames, 1);
            process_frame(lease, req.src);
        } else {
            rayon::spawn(move || process_frame(lease, req.src));
        }
    }
}

/// Runs one frame in its leased slot and records the outcome. Panics
/// injected by `faultline` become [`FrameStatus::Failed`]; any other
/// panic re-raises after the lease's `Drop` has recorded abandonment
/// and released the slot (the pool worker then dies and self-heals).
fn process_frame(mut lease: Lease, src: Arc<Image<u8>>) {
    let shared = Arc::clone(&lease.shared);
    let slot = lease.slot;
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<u64, KernelError> {
        if let Some(fault) = faultline::inject("stream.frame") {
            return Err(fault.into());
        }
        let mut guard = lock_clean(&shared.slots[slot]);
        let slot = &mut *guard;
        match shared.config.kernel {
            StreamKernel::Gaussian => try_fused_gaussian_blur_with(
                &src,
                &mut slot.dst,
                &shared.kernel,
                shared.config.engine,
                &mut slot.scratch,
            )?,
            StreamKernel::Edge => try_fused_edge_detect_with(
                &src,
                &mut slot.dst,
                shared.config.thresh,
                shared.config.engine,
                &mut slot.scratch,
            )?,
        }
        Ok(frame_checksum(&slot.dst))
    }));
    match result {
        Ok(Ok(checksum)) => {
            obs::add(Counter::StreamCompleted, 1);
            obs::record(
                HistId::StreamFrameNanos,
                lease.admitted.elapsed().as_nanos() as u64,
            );
            lease.complete(FrameStatus::Completed { checksum });
        }
        Ok(Err(err)) => {
            obs::add(Counter::StreamFailed, 1);
            lease.complete(FrameStatus::Failed(err));
        }
        Err(payload) => {
            if let Some(fp) = faultline::injected_failpoint(&payload) {
                obs::add(Counter::StreamFailed, 1);
                lease.complete(FrameStatus::Failed(KernelError::FaultInjected {
                    failpoint: fp.to_string(),
                }));
            } else {
                drop(lease);
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame(w: usize, h: usize) -> Arc<Image<u8>> {
        Arc::new(Image::from_fn(w, h, |x, y| {
            (x.wrapping_mul(31) ^ y.wrapping_mul(17)) as u8
        }))
    }

    #[test]
    fn completes_all_frames_bit_exact_against_serial() {
        let cfg = StreamConfig::new(96, 64);
        let frame = test_frame(96, 64);

        // Serial reference checksum.
        let mut reference = Image::new(96, 64);
        let mut scratch = Scratch::new();
        try_fused_gaussian_blur_with(
            &frame,
            &mut reference,
            &paper_gaussian_kernel(),
            cfg.engine,
            &mut scratch,
        )
        .unwrap();
        let want = frame_checksum(&reference);

        let engine = StreamEngine::new(cfg).unwrap();
        for id in 0..24u64 {
            loop {
                match engine.submit(id, Arc::clone(&frame)) {
                    Ok(()) => break,
                    Err(StreamError::Saturated { .. }) => engine.wait_idle(),
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            }
        }
        let outcomes = engine.finish();
        assert_eq!(outcomes.len(), 24);
        for o in &outcomes {
            match &o.status {
                FrameStatus::Completed { checksum } => assert_eq!(*checksum, want),
                other => panic!("frame {} not completed: {other:?}", o.id),
            }
        }
    }

    #[test]
    fn saturated_submit_is_backpressure_not_growth() {
        let mut cfg = StreamConfig::new(64, 48);
        cfg.queue_cap = 1;
        cfg.slots = 1;
        let engine = StreamEngine::new(cfg).unwrap();
        let frame = test_frame(64, 48);
        let mut saturated = 0usize;
        for id in 0..200u64 {
            if let Err(StreamError::Saturated { cap, .. }) = engine.submit(id, Arc::clone(&frame)) {
                assert_eq!(cap, 1);
                saturated += 1;
            }
        }
        let outcomes = engine.finish();
        // Every admitted frame has an outcome; rejected ones have none.
        assert_eq!(outcomes.len() + saturated, 200);
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_submit() {
        let engine = StreamEngine::new(StreamConfig::new(64, 48)).unwrap();
        let wrong = test_frame(32, 48);
        match engine.submit(0, wrong) {
            Err(StreamError::Rejected(KernelError::WidthMismatch { src: 32, dst: 64 })) => {}
            other => panic!("expected width rejection, got {other:?}"),
        }
        assert!(engine.finish().is_empty());
    }

    #[test]
    fn degenerate_config_is_refused() {
        let cfg = StreamConfig::new(0, 48);
        assert!(matches!(
            StreamEngine::new(cfg),
            Err(KernelError::ZeroSize { .. })
        ));
    }

    #[test]
    fn edge_kernel_streams_and_checksums_match_serial() {
        let mut cfg = StreamConfig::new(80, 60);
        cfg.kernel = StreamKernel::Edge;
        cfg.thresh = 96;
        let frame = test_frame(80, 60);

        let mut reference = Image::new(80, 60);
        let mut scratch = Scratch::new();
        try_fused_edge_detect_with(&frame, &mut reference, 96, cfg.engine, &mut scratch).unwrap();
        let want = frame_checksum(&reference);

        let engine = StreamEngine::new(cfg).unwrap();
        for id in 0..8u64 {
            while let Err(StreamError::Saturated { .. }) = engine.submit(id, Arc::clone(&frame)) {
                engine.wait_idle();
            }
        }
        let outcomes = engine.finish();
        assert_eq!(summarize(&outcomes).completed, 8);
        for o in &outcomes {
            assert_eq!(o.status, FrameStatus::Completed { checksum: want });
        }
    }

    #[test]
    fn idle_stream_has_clean_ledgers() {
        let engine = StreamEngine::new(StreamConfig::new(64, 48)).unwrap();
        let frame = test_frame(64, 48);
        for id in 0..4u64 {
            while let Err(StreamError::Saturated { .. }) = engine.submit(id, Arc::clone(&frame)) {
                engine.wait_idle();
            }
        }
        engine.wait_idle();
        assert_eq!(engine.outstanding_scratch_bytes(), 0);
        let baseline = engine.slot_fresh_allocs();
        for id in 4..12u64 {
            while let Err(StreamError::Saturated { .. }) = engine.submit(id, Arc::clone(&frame)) {
                engine.wait_idle();
            }
        }
        engine.wait_idle();
        assert_eq!(
            engine.slot_fresh_allocs(),
            baseline,
            "steady state must not grow any slot arena"
        );
        drop(engine);
    }
}
