//! Logical (bitwise) intrinsics (category *c*).

use crate::types::{__m128, __m128i, ps_from_bits, ps_to_bits};
use op_trace::{count, OpClass};

/// `pand` — 128-bit bitwise AND.
#[inline]
pub fn _mm_and_si128(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i(a.0.and(b.0))
}

/// `por` — 128-bit bitwise OR.
#[inline]
pub fn _mm_or_si128(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i(a.0.or(b.0))
}

/// `pxor` — 128-bit bitwise XOR.
#[inline]
pub fn _mm_xor_si128(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i(a.0.xor(b.0))
}

/// `pandn` — `!a & b` (note the operand order).
#[inline]
pub fn _mm_andnot_si128(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i(a.0.andnot(b.0))
}

/// `andps` — bitwise AND of float registers.
#[inline]
pub fn _mm_and_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    ps_from_bits(ps_to_bits(a).and(ps_to_bits(b)))
}

/// `orps` — bitwise OR of float registers.
#[inline]
pub fn _mm_or_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    ps_from_bits(ps_to_bits(a).or(ps_to_bits(b)))
}

/// `xorps` — bitwise XOR of float registers.
#[inline]
pub fn _mm_xor_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    ps_from_bits(ps_to_bits(a).xor(ps_to_bits(b)))
}

/// `andnps` — `!a & b` on float registers.
#[inline]
pub fn _mm_andnot_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    ps_from_bits(ps_to_bits(a).andnot(ps_to_bits(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn si128_logic() {
        let a = _mm_set1_epi32(0b1100);
        let b = _mm_set1_epi32(0b1010);
        assert_eq!(_mm_and_si128(a, b).as_i32().lane(0), 0b1000);
        assert_eq!(_mm_or_si128(a, b).as_i32().lane(0), 0b1110);
        assert_eq!(_mm_xor_si128(a, b).as_i32().lane(0), 0b0110);
        assert_eq!(_mm_andnot_si128(a, b).as_i32().lane(0), 0b0010);
    }

    #[test]
    fn xor_self_is_zero() {
        let a = _mm_set1_epi32(0x1234_5678);
        assert_eq!(_mm_xor_si128(a, a).as_u8().to_array(), [0; 16]);
    }

    #[test]
    fn ps_logic_preserves_bits() {
        // Sign-bit masking, the classic andps use.
        let v = _mm_setr_ps(-1.0, 2.0, -3.0, 4.0);
        let abs_mask = __m128i::from_u32(simd_vector::U32x4::splat(0x7FFF_FFFF));
        let abs = _mm_and_ps(v, crate::types::cast(abs_mask.0));
        assert_eq!(abs.to_array(), [1.0, 2.0, 3.0, 4.0]);
    }
}
