#!/usr/bin/env bash
# Full local CI, split into named stages with per-stage wall time.
#
# Usage:
#   scripts/ci.sh                 run every stage in order
#   scripts/ci.sh --stage NAME    run a single stage (perf runs even
#                                 without CI_PERF=1)
#   CI_PERF=1 scripts/ci.sh       also run the perf-regression gate:
#                                 `repro host` + scripts_check_bench.py
#                                 against the committed BENCH_host.json
#                                 (threshold via CI_PERF_THRESHOLD, %)
#
# Stage order keeps the fail-fast suites (pool stress, chaos matrix,
# stream smoke, telemetry) ahead of the full test sweep so scheduler,
# fault-tolerance, and streaming regressions surface in seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=(build pool-stress chaos-stress stream-smoke telemetry test workspace-test clippy fmt)
if [[ "${CI_PERF:-0}" == "1" ]]; then
  STAGES+=(perf)
fi

stage_build() {
  cargo build --release
}

stage_pool_stress() {
  cargo test -q -p rayon pool_stress_many_small_calls
}

stage_chaos_stress() {
  cargo test -q -p rayon --test chaos
  cargo run -q --release -p repro-harness --bin repro -- chaos --quick --seed 42
}

stage_stream_smoke() {
  # Asserts zero shed frames, zero steady-state arena growth, and
  # bit-exact output at the smoke rate; exits nonzero on violation.
  cargo run -q --release -p repro-harness --bin repro -- stream --quick
}

stage_telemetry() {
  cargo test -q -p simdbench-core --test telemetry_overhead
  cargo test -q -p rayon --test telemetry
}

stage_test() {
  cargo test -q
}

stage_workspace_test() {
  cargo test --workspace -q
}

stage_clippy() {
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
  cargo fmt --check
}

stage_perf() {
  cargo run -q --release -p repro-harness --bin repro -- host
  python3 scripts_check_bench.py results/bench_host.json BENCH_host.json
}

run_stage() {
  local name="$1"
  local fn="stage_${name//-/_}"
  if ! declare -F "$fn" >/dev/null; then
    echo "unknown stage: $name (known: ${STAGES[*]} perf)" >&2
    exit 2
  fi
  echo "==> [$name]"
  local t0=$SECONDS
  "$fn"
  local dt=$((SECONDS - t0))
  TIMING_REPORT+="$(printf '%-16s %4ds' "$name" "$dt")"$'\n'
  echo "--- [$name] ${dt}s"
}

TIMING_REPORT=""

if [[ "${1:-}" == "--stage" ]]; then
  run_stage "${2:?--stage needs a name}"
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/ci.sh [--stage NAME]" >&2
  exit 2
else
  for s in "${STAGES[@]}"; do
    run_stage "$s"
  done
fi

echo
echo "stage wall times:"
printf '%s' "$TIMING_REPORT"
echo "CI OK"
