//! Extension kernels (experiments A5, A6): BT.601 color conversion and 2x
//! downsampling, AUTO vs HAND — the related-work workloads the paper's
//! motivation cites (color conversion 9.5x, resize 7.6x on Tegra 3).

use bench::bench_image;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::{synthetic_image, Image, Resolution};
use simdbench_core::color::bgr_to_gray;
use simdbench_core::resize::downsample2x;
use simdbench_core::Engine;

fn bench_color(c: &mut Criterion) {
    let res = Resolution::Mp1;
    let (w, h) = res.dims();
    let b = synthetic_image(w, h, 1);
    let g = synthetic_image(w, h, 2);
    let r = synthetic_image(w, h, 3);
    let mut dst = Image::<u8>::new(w, h);
    let mut group = c.benchmark_group("color_bgr_to_gray");
    group.sample_size(20);
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for engine in [Engine::Scalar, Engine::Autovec, Engine::Native] {
        group.bench_with_input(
            BenchmarkId::new(engine.label(), res.label()),
            &engine,
            |bch, &engine| bch.iter(|| bgr_to_gray(&b, &g, &r, &mut dst, engine)),
        );
    }
    group.finish();
}

fn bench_resize(c: &mut Criterion) {
    let res = Resolution::Mp5;
    let src = bench_image(res);
    let mut dst = Image::<u8>::new(src.width() / 2, src.height() / 2);
    let mut group = c.benchmark_group("downsample_2x");
    group.sample_size(20);
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for engine in [Engine::Scalar, Engine::Autovec, Engine::Native] {
        group.bench_with_input(
            BenchmarkId::new(engine.label(), res.label()),
            &engine,
            |bch, &engine| bch.iter(|| downsample2x(&src, &mut dst, engine)),
        );
    }
    group.finish();
}

fn bench_avx2(c: &mut Criterion) {
    // Experiment A8: the related-work claim that AVX delivers 1.58-1.88x
    // over SSE for compute-bound kernels, tested on the convert loop.
    let res = Resolution::Mp1;
    let (w, h) = res.dims();
    let gray = synthetic_image(w, h, 5);
    let src = pixelimage::convert::u8_to_f32(&gray, 257.0, -32768.0);
    let mut group = c.benchmark_group("avx2_vs_sse2");
    group.sample_size(20);
    group.throughput(Throughput::Elements(res.pixels() as u64));
    group.bench_function("convert_sse2", |bch| {
        let mut dst = Image::<i16>::new(w, h);
        bch.iter(|| {
            for y in 0..h {
                simdbench_core::convert::convert_row_native(src.row(y), dst.row_mut(y));
            }
        })
    });
    group.bench_function("convert_avx2", |bch| {
        let mut dst = Image::<i16>::new(w, h);
        bch.iter(|| {
            for y in 0..h {
                simdbench_core::avx::convert_row_avx2(src.row(y), dst.row_mut(y));
            }
        })
    });
    group.bench_function("threshold_sse2", |bch| {
        let mut dst = Image::<u8>::new(w, h);
        bch.iter(|| {
            for y in 0..h {
                simdbench_core::threshold::threshold_row_native(
                    gray.row(y),
                    dst.row_mut(y),
                    128,
                    255,
                    simdbench_core::ThresholdType::Binary,
                );
            }
        })
    });
    group.bench_function("threshold_avx2", |bch| {
        let mut dst = Image::<u8>::new(w, h);
        bch.iter(|| {
            for y in 0..h {
                simdbench_core::avx::threshold_row_avx2(
                    gray.row(y),
                    dst.row_mut(y),
                    128,
                    255,
                    simdbench_core::ThresholdType::Binary,
                );
            }
        })
    });
    group.finish();
}

fn bench_median(c: &mut Criterion) {
    // Experiment A9: the related work's biggest NEON number (23x for median
    // blur) — branchless min/max network vs per-pixel sort.
    let res = Resolution::Mp1;
    let src = bench_image(res);
    let mut dst = Image::<u8>::new(src.width(), src.height());
    let mut group = c.benchmark_group("median_blur3");
    group.sample_size(10);
    group.throughput(Throughput::Elements(res.pixels() as u64));
    for engine in [Engine::Scalar, Engine::Autovec, Engine::Native] {
        group.bench_with_input(
            BenchmarkId::new(engine.label(), res.label()),
            &engine,
            |bch, &engine| {
                bch.iter(|| simdbench_core::median::median_blur3(&src, &mut dst, engine))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_color, bench_resize, bench_avx2, bench_median);
criterion_main!(benches);
