//! Prints the predicted speed-up matrix used to calibrate the platform
//! model against the paper's reported bands.
//!
//! Run: `cargo run -p platform-model --example calibration`

use pixelimage::Resolution;
use platform_model::{all_platforms, predict_seconds, speedup, Kernel, Strategy};

fn main() {
    for kernel in Kernel::ALL {
        println!("\n== {:?} (8 Mpx speed-ups) ==", kernel);
        for p in all_platforms() {
            let auto = predict_seconds(&p, kernel, Strategy::Auto, Resolution::Mp8);
            let hand = predict_seconds(&p, kernel, Strategy::Hand, Resolution::Mp8);
            println!(
                "  {:<14} AUTO {:8.3}s  HAND {:8.3}s  speedup {:5.2}x",
                p.short,
                auto,
                hand,
                speedup(&p, kernel, Resolution::Mp8)
            );
        }
    }
    println!("\n== absolute HAND time ratios (paper sanity anchors) ==");
    let get = |name: &str| platform_model::platform_by_name(name).unwrap();
    let t = |p: &platform_model::PlatformSpec, k| {
        predict_seconds(p, k, Strategy::Hand, Resolution::Mp8)
    };
    let atom = get("Atom-D510");
    let i7 = get("i7-2820QM");
    let i5 = get("i5-3360M");
    let ex = get("Exynos-4412");
    let ex3110 = get("Exynos-3110");
    for k in Kernel::ALL {
        println!(
            "  {:?}: atom/i7 {:.1}  exynos4412/i5 {:.1}  exynos3110/atom {:.1}",
            k,
            t(&atom, k) / t(&i7, k),
            t(&ex, k) / t(&i5, k),
            t(&ex3110, k) / t(&atom, k),
        );
    }
}
