//! Integer lane operations shared by both ISA surfaces.
//!
//! Wrapping arithmetic models the modular behaviour of `padd*`/`vadd*`;
//! saturating arithmetic models `padds*`/`vqadd*`. Compare operations return
//! a mask vector of the *unsigned* counterpart type with all-ones lanes for
//! true, matching both `pcmpgt*` and `vcgt*` semantics.

use crate::lanes::*;

macro_rules! int_common_ops {
    ($name:ident, $elem:ty, $mask:ident, $maskelem:ty, $n:expr) => {
        impl $name {
            /// Lane-wise wrapping addition.
            #[inline]
            pub fn wrapping_add(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.wrapping_add(b))
            }

            /// Lane-wise wrapping subtraction.
            #[inline]
            pub fn wrapping_sub(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.wrapping_sub(b))
            }

            /// Lane-wise low half of the product (`pmullw` / `vmul`).
            #[inline]
            pub fn wrapping_mul(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.wrapping_mul(b))
            }

            /// Lane-wise saturating addition.
            #[inline]
            pub fn saturating_add(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.saturating_add(b))
            }

            /// Lane-wise saturating subtraction.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.saturating_sub(b))
            }

            /// Lane-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.min(b))
            }

            /// Lane-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a.max(b))
            }

            /// Lane-wise bitwise AND.
            #[inline]
            pub fn and(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a & b)
            }

            /// Lane-wise bitwise OR.
            #[inline]
            pub fn or(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a | b)
            }

            /// Lane-wise bitwise XOR.
            #[inline]
            pub fn xor(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a ^ b)
            }

            /// Lane-wise bitwise NOT.
            #[inline]
            pub fn not(self) -> Self {
                self.map(|a| !a)
            }

            /// Lane-wise AND-NOT: `!self & rhs` (SSE `pandn` operand order).
            #[inline]
            pub fn andnot(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| !a & b)
            }

            /// Lane-wise bit clear: `self & !rhs` (NEON `vbic` operand order).
            #[inline]
            pub fn bic(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a & !b)
            }

            /// Lane-wise logical shift left by `n` bits. Shifts of the full
            /// lane width or more produce zero (SSE/NEON immediate-shift
            /// behaviour for in-range immediates; out-of-range is defined
            /// here as zero).
            #[inline]
            pub fn shl(self, n: u32) -> Self {
                const BITS: u32 = <$elem>::BITS;
                if n >= BITS {
                    Self::splat(0 as $elem)
                } else {
                    self.map(|a| ((a as $maskelem) << n) as $elem)
                }
            }

            /// Lane-wise *logical* shift right by `n` bits (zero fill).
            #[inline]
            pub fn shr_logical(self, n: u32) -> Self {
                const BITS: u32 = <$elem>::BITS;
                if n >= BITS {
                    Self::splat(0 as $elem)
                } else {
                    self.map(|a| ((a as $maskelem) >> n) as $elem)
                }
            }

            /// Lane-wise equality compare producing an all-ones/zero mask.
            #[inline]
            pub fn cmp_eq(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] == rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise `self > rhs` mask.
            #[inline]
            pub fn cmp_gt(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] > rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise `self >= rhs` mask.
            #[inline]
            pub fn cmp_ge(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] >= rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise `self < rhs` mask.
            #[inline]
            pub fn cmp_lt(self, rhs: Self) -> $mask {
                rhs.cmp_gt(self)
            }

            /// Lane-wise `self <= rhs` mask.
            #[inline]
            pub fn cmp_le(self, rhs: Self) -> $mask {
                rhs.cmp_ge(self)
            }

            /// Horizontal sum with wrapping arithmetic.
            #[inline]
            pub fn reduce_wrapping_sum(self) -> $elem {
                self.fold(0 as $elem, |acc, x| acc.wrapping_add(x))
            }
        }
    };
}

// Q types.
int_common_ops!(I8x16, i8, U8x16, u8, 16);
int_common_ops!(U8x16, u8, U8x16, u8, 16);
int_common_ops!(I16x8, i16, U16x8, u16, 8);
int_common_ops!(U16x8, u16, U16x8, u16, 8);
int_common_ops!(I32x4, i32, U32x4, u32, 4);
int_common_ops!(U32x4, u32, U32x4, u32, 4);
int_common_ops!(I64x2, i64, U64x2, u64, 2);
int_common_ops!(U64x2, u64, U64x2, u64, 2);
// D types.
int_common_ops!(I8x8, i8, U8x8, u8, 8);
int_common_ops!(U8x8, u8, U8x8, u8, 8);
int_common_ops!(I16x4, i16, U16x4, u16, 4);
int_common_ops!(U16x4, u16, U16x4, u16, 4);
int_common_ops!(I32x2, i32, U32x2, u32, 2);
int_common_ops!(U32x2, u32, U32x2, u32, 2);

macro_rules! signed_extra_ops {
    ($name:ident, $elem:ty) => {
        impl $name {
            /// Lane-wise wrapping absolute value (`vabs`; `|MIN| == MIN`).
            #[inline]
            pub fn abs(self) -> Self {
                self.map(|a| a.wrapping_abs())
            }

            /// Lane-wise saturating absolute value (`vqabs`).
            #[inline]
            pub fn saturating_abs(self) -> Self {
                self.map(|a| {
                    if a == <$elem>::MIN {
                        <$elem>::MAX
                    } else {
                        a.abs()
                    }
                })
            }

            /// Lane-wise arithmetic shift right (sign fill).
            #[inline]
            pub fn shr_arithmetic(self, n: u32) -> Self {
                const BITS: u32 = <$elem>::BITS;
                let n = n.min(BITS - 1);
                self.map(|a| a >> n)
            }

            /// Lane-wise wrapping negation.
            #[inline]
            pub fn neg(self) -> Self {
                self.map(|a| a.wrapping_neg())
            }
        }
    };
}

signed_extra_ops!(I8x16, i8);
signed_extra_ops!(I16x8, i16);
signed_extra_ops!(I32x4, i32);
signed_extra_ops!(I64x2, i64);
signed_extra_ops!(I8x8, i8);
signed_extra_ops!(I16x4, i16);
signed_extra_ops!(I32x2, i32);

macro_rules! unsigned_select {
    ($name:ident, $elem:ty) => {
        impl $name {
            /// Bitwise select (`vbsl`): for each *bit*, picks from `a` where
            /// the mask bit is 1 and from `b` where it is 0.
            #[inline]
            pub fn bitselect(self, a: Self, b: Self) -> Self {
                let mut out = self;
                for i in 0..Self::LANES {
                    out.0[i] = (a.0[i] & self.0[i]) | (b.0[i] & !self.0[i]);
                }
                out
            }

            /// Lane-wise average with rounding up (`pavg` / `vrhadd`):
            /// `(a + b + 1) >> 1` without intermediate overflow.
            #[inline]
            pub fn avg_round(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| (((a as u64) + (b as u64) + 1) >> 1) as $elem)
            }

            /// Lane-wise halving add, truncating (`vhadd`): `(a + b) >> 1`.
            #[inline]
            pub fn halving_add(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| (((a as u64) + (b as u64)) >> 1) as $elem)
            }

            /// Lane-wise absolute difference (`psadbw` building block /
            /// `vabd`).
            #[inline]
            pub fn abs_diff(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| if a > b { a - b } else { b - a })
            }
        }
    };
}

unsigned_select!(U8x16, u8);
unsigned_select!(U16x8, u16);
unsigned_select!(U32x4, u32);
unsigned_select!(U64x2, u64);
unsigned_select!(U8x8, u8);
unsigned_select!(U16x4, u16);
unsigned_select!(U32x2, u32);

// ---------------------------------------------------------------------------
// Widening / narrowing between lane widths (shared by packs / vqmovn etc.)
// ---------------------------------------------------------------------------

impl I32x4 {
    /// Saturating narrow of two `i32x4` into one `i16x8`
    /// (`_mm_packs_epi32(lo, hi)` == `vcombine_s16(vqmovn_s32(lo), vqmovn_s32(hi))`).
    #[inline]
    pub fn narrow_saturate_i16(lo: Self, hi: Self) -> I16x8 {
        let clamp = |v: i32| v.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        I16x8([
            clamp(lo.0[0]),
            clamp(lo.0[1]),
            clamp(lo.0[2]),
            clamp(lo.0[3]),
            clamp(hi.0[0]),
            clamp(hi.0[1]),
            clamp(hi.0[2]),
            clamp(hi.0[3]),
        ])
    }

    /// Saturating narrow of one `i32x4` to `i16x4` (`vqmovn_s32`).
    #[inline]
    pub fn narrow_saturate_i16_half(self) -> I16x4 {
        let clamp = |v: i32| v.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        I16x4([
            clamp(self.0[0]),
            clamp(self.0[1]),
            clamp(self.0[2]),
            clamp(self.0[3]),
        ])
    }

    /// Unsigned-saturating narrow to `u16x4` (`vqmovun_s32`).
    #[inline]
    pub fn narrow_saturate_u16_half(self) -> U16x4 {
        let clamp = |v: i32| v.clamp(0, u16::MAX as i32) as u16;
        U16x4([
            clamp(self.0[0]),
            clamp(self.0[1]),
            clamp(self.0[2]),
            clamp(self.0[3]),
        ])
    }
}

impl I16x8 {
    /// Saturating narrow of two `i16x8` into one `i8x16` (`_mm_packs_epi16`).
    #[inline]
    pub fn narrow_saturate_i8(lo: Self, hi: Self) -> I8x16 {
        let clamp = |v: i16| v.clamp(i8::MIN as i16, i8::MAX as i16) as i8;
        let mut out = [0i8; 16];
        for i in 0..8 {
            out[i] = clamp(lo.0[i]);
            out[8 + i] = clamp(hi.0[i]);
        }
        I8x16(out)
    }

    /// Unsigned-saturating narrow of two `i16x8` into one `u8x16`
    /// (`_mm_packus_epi16`).
    #[inline]
    pub fn narrow_saturate_u8(lo: Self, hi: Self) -> U8x16 {
        let clamp = |v: i16| v.clamp(0, u8::MAX as i16) as u8;
        let mut out = [0u8; 16];
        for i in 0..8 {
            out[i] = clamp(lo.0[i]);
            out[8 + i] = clamp(hi.0[i]);
        }
        U8x16(out)
    }

    /// Unsigned-saturating narrow of one `i16x8` to `u8x8` (`vqmovun_s16`).
    #[inline]
    pub fn narrow_saturate_u8_half(self) -> U8x8 {
        let clamp = |v: i16| v.clamp(0, u8::MAX as i16) as u8;
        let mut out = [0u8; 8];
        for i in 0..8 {
            out[i] = clamp(self.0[i]);
        }
        U8x8(out)
    }

    /// Saturating narrow of one `i16x8` to `i8x8` (`vqmovn_s16`).
    #[inline]
    pub fn narrow_saturate_i8_half(self) -> I8x8 {
        let clamp = |v: i16| v.clamp(i8::MIN as i16, i8::MAX as i16) as i8;
        let mut out = [0i8; 8];
        for i in 0..8 {
            out[i] = clamp(self.0[i]);
        }
        I8x8(out)
    }

    /// Widening multiply-accumulate of the low halves:
    /// `acc + a.low()*b.low()` per `i32` lane pair (`pmaddwd` building block).
    #[inline]
    pub fn madd(self, rhs: Self) -> I32x4 {
        let mut out = [0i32; 4];
        for i in 0..4 {
            let p0 = (self.0[2 * i] as i32) * (rhs.0[2 * i] as i32);
            let p1 = (self.0[2 * i + 1] as i32) * (rhs.0[2 * i + 1] as i32);
            out[i] = p0.wrapping_add(p1);
        }
        I32x4(out)
    }

    /// High half of the 32-bit product per lane (`pmulhw`).
    #[inline]
    pub fn mul_high(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| (((a as i32) * (b as i32)) >> 16) as i16)
    }
}

impl U8x8 {
    /// Zero-extends each `u8` lane to `u16` (`vmovl_u8`).
    #[inline]
    pub fn widen_u16(self) -> U16x8 {
        let mut out = [0u16; 8];
        for i in 0..8 {
            out[i] = self.0[i] as u16;
        }
        U16x8(out)
    }

    /// Zero-extends each `u8` lane to `i16` (`vreinterpret` of `vmovl_u8`).
    #[inline]
    pub fn widen_i16(self) -> I16x8 {
        let mut out = [0i16; 8];
        for i in 0..8 {
            out[i] = self.0[i] as i16;
        }
        I16x8(out)
    }
}

impl I16x4 {
    /// Sign-extends each `i16` lane to `i32` (`vmovl_s16`).
    #[inline]
    pub fn widen_i32(self) -> I32x4 {
        I32x4([
            self.0[0] as i32,
            self.0[1] as i32,
            self.0[2] as i32,
            self.0[3] as i32,
        ])
    }
}

impl U16x4 {
    /// Zero-extends each `u16` lane to `u32` (`vmovl_u16`).
    #[inline]
    pub fn widen_u32(self) -> U32x4 {
        U32x4([
            self.0[0] as u32,
            self.0[1] as u32,
            self.0[2] as u32,
            self.0[3] as u32,
        ])
    }
}

impl U16x8 {
    /// Narrows each `u16` lane to `u8`, truncating (`vmovn_u16`).
    #[inline]
    pub fn narrow_truncate_u8(self) -> U8x8 {
        let mut out = [0u8; 8];
        for i in 0..8 {
            out[i] = self.0[i] as u8;
        }
        U8x8(out)
    }

    /// Narrows each `u16` lane to `u8` with unsigned saturation
    /// (`vqmovn_u16`).
    #[inline]
    pub fn narrow_saturate_u8_half(self) -> U8x8 {
        let mut out = [0u8; 8];
        for i in 0..8 {
            out[i] = self.0[i].min(u8::MAX as u16) as u8;
        }
        U8x8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_and_saturating_add() {
        let a = I16x8::splat(i16::MAX);
        let b = I16x8::splat(1);
        assert_eq!(a.wrapping_add(b).to_array(), [i16::MIN; 8]);
        assert_eq!(a.saturating_add(b).to_array(), [i16::MAX; 8]);
        let c = U8x16::splat(250);
        let d = U8x16::splat(10);
        assert_eq!(c.wrapping_add(d).lane(0), 4);
        assert_eq!(c.saturating_add(d).lane(0), 255);
    }

    #[test]
    fn compare_masks_are_all_ones_or_zero() {
        let a = U8x16::new([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let t = U8x16::splat(7);
        let mask = a.cmp_gt(t);
        for i in 0..16 {
            assert_eq!(mask.lane(i), if i > 7 { 0xFF } else { 0 });
        }
        let ge = a.cmp_ge(t);
        assert_eq!(ge.lane(7), 0xFF);
        assert_eq!(ge.lane(6), 0);
        let lt = a.cmp_lt(t);
        assert_eq!(lt.lane(6), 0xFF);
        assert_eq!(lt.lane(7), 0);
    }

    #[test]
    fn bitselect_picks_per_bit() {
        let mask = U8x16::new([
            0xFF, 0x00, 0xF0, 0x0F, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00,
            0xFF, 0x00,
        ]);
        let a = U8x16::splat(0xAB);
        let b = U8x16::splat(0xCD);
        let r = mask.bitselect(a, b);
        assert_eq!(r.lane(0), 0xAB);
        assert_eq!(r.lane(1), 0xCD);
        assert_eq!(r.lane(2), (0xAB & 0xF0) | (0xCD & 0x0F));
        assert_eq!(r.lane(3), (0xAB & 0x0F) | (0xCD & 0xF0));
    }

    #[test]
    fn shifts() {
        let v = I16x8::splat(-16);
        assert_eq!(v.shr_arithmetic(2).lane(0), -4);
        assert_eq!(v.shr_logical(2).lane(0), ((-16i16 as u16) >> 2) as i16);
        assert_eq!(I32x4::splat(3).shl(4).lane(0), 48);
        assert_eq!(I32x4::splat(3).shl(40).lane(0), 0);
        assert_eq!(U16x8::splat(0x8000).shr_logical(15).lane(0), 1);
    }

    #[test]
    fn narrow_saturate_i16_matches_packs() {
        let lo = I32x4::new([70000, -70000, 5, i32::MAX]);
        let hi = I32x4::new([i32::MIN, 0, 32767, -32768]);
        let packed = I32x4::narrow_saturate_i16(lo, hi);
        assert_eq!(
            packed.to_array(),
            [32767, -32768, 5, 32767, -32768, 0, 32767, -32768]
        );
        // vqmovn + vcombine path must agree.
        let neon_style =
            I16x8::combine(lo.narrow_saturate_i16_half(), hi.narrow_saturate_i16_half());
        assert_eq!(neon_style, packed);
    }

    #[test]
    fn narrow_saturate_u8_clamps_both_ends() {
        let lo = I16x8::new([-5, 0, 127, 128, 255, 256, 300, -1]);
        let hi = I16x8::splat(1000);
        let packed = I16x8::narrow_saturate_u8(lo, hi);
        assert_eq!(packed.to_array()[..8], [0, 0, 127, 128, 255, 255, 255, 0]);
        assert_eq!(packed.to_array()[8..], [255u8; 8]);
    }

    #[test]
    fn widen_roundtrip() {
        let v = U8x8::new([0, 1, 127, 128, 200, 255, 7, 9]);
        assert_eq!(v.widen_u16().to_array(), [0, 1, 127, 128, 200, 255, 7, 9]);
        assert_eq!(v.widen_i16().lane(5), 255i16);
        assert_eq!(v.widen_u16().narrow_truncate_u8(), v);
    }

    #[test]
    fn madd_pairs() {
        let a = I16x8::new([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = I16x8::new([10, 20, 30, 40, 50, 60, 70, 80]);
        // (1*10+2*20, 3*30+4*40, 5*50+6*60, 7*70+8*80)
        assert_eq!(a.madd(b).to_array(), [50, 250, 610, 1130]);
    }

    #[test]
    fn abs_and_saturating_abs() {
        let v = I16x8::new([i16::MIN, -5, 0, 5, 100, -100, 32767, -32767]);
        assert_eq!(v.abs().lane(0), i16::MIN); // wrapping behaviour of vabs
        assert_eq!(v.saturating_abs().lane(0), i16::MAX);
        assert_eq!(v.abs().lane(1), 5);
    }

    #[test]
    fn avg_and_halving() {
        let a = U8x16::splat(255);
        let b = U8x16::splat(254);
        assert_eq!(a.avg_round(b).lane(0), 255); // (255+254+1)/2
        assert_eq!(a.halving_add(b).lane(0), 254); // (255+254)/2 truncated
        assert_eq!(a.abs_diff(b).lane(0), 1);
        assert_eq!(b.abs_diff(a).lane(0), 1);
    }

    #[test]
    fn mul_high() {
        let a = I16x8::splat(0x4000);
        let b = I16x8::splat(0x0200);
        // 0x4000 * 0x0200 = 0x0080_0000; >> 16 = 0x0080
        assert_eq!(a.mul_high(b).lane(0), 0x0080);
    }

    #[test]
    fn logical_ops_and_andnot_bic() {
        let a = U32x4::splat(0b1100);
        let b = U32x4::splat(0b1010);
        assert_eq!(a.and(b).lane(0), 0b1000);
        assert_eq!(a.or(b).lane(0), 0b1110);
        assert_eq!(a.xor(b).lane(0), 0b0110);
        assert_eq!(a.andnot(b).lane(0), !0b1100u32 & 0b1010);
        assert_eq!(a.bic(b).lane(0), 0b1100 & !0b1010u32);
    }
}
