//! Benchmark 4 — Sobel filtering (paper Section III-A.4): "two separable
//! 1-D Sobel filters", i.e. the smoothing kernel `[1, 2, 1]` in one axis and
//! the central-difference kernel `[-1, 0, 1]` in the other, producing a
//! 16-bit signed gradient image (OpenCV `CV_16S` output).

use crate::dispatch::Engine;
use crate::error::{validate_pair, KernelResult};
use pixelimage::Image;

/// Gradient direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SobelDirection {
    /// `d/dx`: difference along rows, smoothing along columns.
    X,
    /// `d/dy`: smoothing along rows, difference along columns.
    Y,
}

/// Computes the Sobel gradient of `src` into `dst` using `engine`.
pub fn sobel(src: &Image<u8>, dst: &mut Image<i16>, dir: SobelDirection, engine: Engine) {
    if let Err(e) = try_sobel(src, dst, dir, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`sobel`]: validates geometry instead of asserting.
pub fn try_sobel(
    src: &Image<u8>,
    dst: &mut Image<i16>,
    dir: SobelDirection,
    engine: Engine,
) -> KernelResult {
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    let mut mid = Image::<i16>::new(src.width(), src.height());
    // Horizontal pass.
    for y in 0..src.height() {
        match dir {
            SobelDirection::X => h_diff_row(src.row(y), mid.row_mut(y), engine),
            SobelDirection::Y => h_smooth_row(src.row(y), mid.row_mut(y), engine),
        }
    }
    // Vertical pass (row indices clamped for border replication).
    let height = src.height();
    let clamp = |y: isize| y.clamp(0, height as isize - 1) as usize;
    for y in 0..height {
        let above = mid.row(clamp(y as isize - 1));
        let here = mid.row(y);
        let below = mid.row(clamp(y as isize + 1));
        match dir {
            SobelDirection::X => v_smooth_row(above, here, below, dst.row_mut(y), engine),
            SobelDirection::Y => v_diff_row(above, below, dst.row_mut(y), engine),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Horizontal difference: t[x] = src[x+1] - src[x-1] (replicated borders)
// ---------------------------------------------------------------------------

/// Horizontal `[-1, 0, 1]` pass on one row.
pub fn h_diff_row(src: &[u8], dst: &mut [i16], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => h_diff_row_scalar(src, dst),
        Engine::Sse2Sim => h_diff_row_sse2_sim(src, dst),
        Engine::NeonSim => h_diff_row_neon_sim(src, dst),
        Engine::Native => h_diff_row_native(src, dst),
    }
}

/// Reference horizontal difference.
pub fn h_diff_row_scalar(src: &[u8], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w == 0 {
        return;
    }
    let clamp = |x: isize| src[x.clamp(0, w as isize - 1) as usize] as i16;
    for x in 0..w {
        dst[x] = clamp(x as isize + 1) - clamp(x as isize - 1);
    }
}

fn h_diff_row_sse2_sim(src: &[u8], dst: &mut [i16]) {
    use sse_sim::*;
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w < 10 {
        h_diff_row_scalar(src, dst);
        return;
    }
    dst[0] = src[1] as i16 - src[0] as i16;
    let zero = _mm_setzero_si128();
    let mut x = 1;
    while x + 8 < w {
        let left = _mm_unpacklo_epi8(_mm_loadl_epi64(&src[x - 1..]), zero);
        let right = _mm_unpacklo_epi8(_mm_loadl_epi64(&src[x + 1..]), zero);
        let diff = _mm_sub_epi16(right, left);
        _mm_storeu_si128(&mut dst[x..], diff);
        x += 8;
    }
    for xi in x..w {
        let xm = xi.saturating_sub(1);
        let xp = (xi + 1).min(w - 1);
        dst[xi] = src[xp] as i16 - src[xm] as i16;
    }
}

fn h_diff_row_neon_sim(src: &[u8], dst: &mut [i16]) {
    use neon_sim::*;
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w < 10 {
        h_diff_row_scalar(src, dst);
        return;
    }
    dst[0] = src[1] as i16 - src[0] as i16;
    let mut x = 1;
    while x + 8 < w {
        let left = vmovl_u8_as_s16(vld1_u8(&src[x - 1..]));
        let right = vmovl_u8_as_s16(vld1_u8(&src[x + 1..]));
        vst1q_s16(&mut dst[x..], vsubq_s16(right, left));
        x += 8;
    }
    for xi in x..w {
        let xm = xi.saturating_sub(1);
        let xp = (xi + 1).min(w - 1);
        dst[xi] = src[xp] as i16 - src[xm] as i16;
    }
}

fn h_diff_row_native(src: &[u8], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(src.len(), dst.len());
        let w = src.len();
        if w < 10 {
            h_diff_row_scalar(src, dst);
            return;
        }
        dst[0] = src[1] as i16 - src[0] as i16;
        let mut x = 1;
        // SAFETY: loads read src[x-1..x+7] and src[x+1..x+9]; with
        // x + 8 <= w - 1 the furthest byte is x+8 <= w-1. Store writes
        // dst[x..x+8] <= w-1+1 = w.
        unsafe {
            let zero = _mm_setzero_si128();
            while x + 8 < w {
                let left = _mm_unpacklo_epi8(
                    _mm_loadl_epi64(src.as_ptr().add(x - 1) as *const __m128i),
                    zero,
                );
                let right = _mm_unpacklo_epi8(
                    _mm_loadl_epi64(src.as_ptr().add(x + 1) as *const __m128i),
                    zero,
                );
                let diff = _mm_sub_epi16(right, left);
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, diff);
                x += 8;
            }
        }
        for xi in x..w {
            let xm = xi.saturating_sub(1);
            let xp = (xi + 1).min(w - 1);
            dst[xi] = src[xp] as i16 - src[xm] as i16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        h_diff_row_scalar(src, dst);
    }
}

// ---------------------------------------------------------------------------
// Horizontal smoothing: t[x] = src[x-1] + 2*src[x] + src[x+1]
// ---------------------------------------------------------------------------

/// Horizontal `[1, 2, 1]` pass on one row.
pub fn h_smooth_row(src: &[u8], dst: &mut [i16], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => h_smooth_row_scalar(src, dst),
        Engine::Sse2Sim => h_smooth_row_sse2_sim(src, dst),
        Engine::NeonSim => h_smooth_row_neon_sim(src, dst),
        Engine::Native => h_smooth_row_native(src, dst),
    }
}

/// Reference horizontal smoothing.
pub fn h_smooth_row_scalar(src: &[u8], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w == 0 {
        return;
    }
    let clamp = |x: isize| src[x.clamp(0, w as isize - 1) as usize] as i16;
    for x in 0..w {
        dst[x] = clamp(x as isize - 1) + 2 * clamp(x as isize) + clamp(x as isize + 1);
    }
}

fn h_smooth_row_sse2_sim(src: &[u8], dst: &mut [i16]) {
    use sse_sim::*;
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w < 10 {
        h_smooth_row_scalar(src, dst);
        return;
    }
    dst[0] = 3 * src[0] as i16 + src[1] as i16;
    let zero = _mm_setzero_si128();
    let mut x = 1;
    while x + 8 < w {
        let left = _mm_unpacklo_epi8(_mm_loadl_epi64(&src[x - 1..]), zero);
        let mid = _mm_unpacklo_epi8(_mm_loadl_epi64(&src[x..]), zero);
        let right = _mm_unpacklo_epi8(_mm_loadl_epi64(&src[x + 1..]), zero);
        let sum = _mm_add_epi16(_mm_add_epi16(left, right), _mm_slli_epi16::<1>(mid));
        _mm_storeu_si128(&mut dst[x..], sum);
        x += 8;
    }
    for xi in x..w {
        let xm = xi.saturating_sub(1);
        let xp = (xi + 1).min(w - 1);
        dst[xi] = src[xm] as i16 + 2 * src[xi] as i16 + src[xp] as i16;
    }
}

fn h_smooth_row_neon_sim(src: &[u8], dst: &mut [i16]) {
    use neon_sim::*;
    assert_eq!(src.len(), dst.len());
    let w = src.len();
    if w < 10 {
        h_smooth_row_scalar(src, dst);
        return;
    }
    dst[0] = 3 * src[0] as i16 + src[1] as i16;
    let mut x = 1;
    while x + 8 < w {
        let left = vmovl_u8_as_s16(vld1_u8(&src[x - 1..]));
        let mid = vmovl_u8_as_s16(vld1_u8(&src[x..]));
        let right = vmovl_u8_as_s16(vld1_u8(&src[x + 1..]));
        let sum = vaddq_s16(vaddq_s16(left, right), vshlq_n_s16(mid, 1));
        vst1q_s16(&mut dst[x..], sum);
        x += 8;
    }
    for xi in x..w {
        let xm = xi.saturating_sub(1);
        let xp = (xi + 1).min(w - 1);
        dst[xi] = src[xm] as i16 + 2 * src[xi] as i16 + src[xp] as i16;
    }
}

fn h_smooth_row_native(src: &[u8], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(src.len(), dst.len());
        let w = src.len();
        if w < 10 {
            h_smooth_row_scalar(src, dst);
            return;
        }
        dst[0] = 3 * src[0] as i16 + src[1] as i16;
        let mut x = 1;
        // SAFETY: identical bounds reasoning to h_diff_row_native.
        unsafe {
            let zero = _mm_setzero_si128();
            while x + 8 < w {
                let left = _mm_unpacklo_epi8(
                    _mm_loadl_epi64(src.as_ptr().add(x - 1) as *const __m128i),
                    zero,
                );
                let mid =
                    _mm_unpacklo_epi8(_mm_loadl_epi64(src.as_ptr().add(x) as *const __m128i), zero);
                let right = _mm_unpacklo_epi8(
                    _mm_loadl_epi64(src.as_ptr().add(x + 1) as *const __m128i),
                    zero,
                );
                let sum = _mm_add_epi16(_mm_add_epi16(left, right), _mm_slli_epi16::<1>(mid));
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, sum);
                x += 8;
            }
        }
        for xi in x..w {
            let xm = xi.saturating_sub(1);
            let xp = (xi + 1).min(w - 1);
            dst[xi] = src[xm] as i16 + 2 * src[xi] as i16 + src[xp] as i16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        h_smooth_row_scalar(src, dst);
    }
}

// ---------------------------------------------------------------------------
// Vertical passes over the i16 intermediate rows
// ---------------------------------------------------------------------------

/// Vertical `[1, 2, 1]`: `dst = above + 2*here + below`.
pub fn v_smooth_row(above: &[i16], here: &[i16], below: &[i16], dst: &mut [i16], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => v_smooth_row_scalar(above, here, below, dst),
        Engine::Sse2Sim => {
            use sse_sim::*;
            let w = dst.len();
            let mut x = 0;
            while x + 8 <= w {
                let a = _mm_loadu_si128(&above[x..]);
                let h = _mm_loadu_si128(&here[x..]);
                let b = _mm_loadu_si128(&below[x..]);
                let sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_slli_epi16::<1>(h));
                _mm_storeu_si128(&mut dst[x..], sum);
                x += 8;
            }
            v_smooth_row_scalar(&above[x..], &here[x..], &below[x..], &mut dst[x..]);
        }
        Engine::NeonSim => {
            use neon_sim::*;
            let w = dst.len();
            let mut x = 0;
            while x + 8 <= w {
                let a = vld1q_s16(&above[x..]);
                let h = vld1q_s16(&here[x..]);
                let b = vld1q_s16(&below[x..]);
                let sum = vaddq_s16(vaddq_s16(a, b), vshlq_n_s16(h, 1));
                vst1q_s16(&mut dst[x..], sum);
                x += 8;
            }
            v_smooth_row_scalar(&above[x..], &here[x..], &below[x..], &mut dst[x..]);
        }
        Engine::Native => v_smooth_row_native(above, here, below, dst),
    }
}

fn v_smooth_row_scalar(above: &[i16], here: &[i16], below: &[i16], dst: &mut [i16]) {
    for x in 0..dst.len() {
        dst[x] = above[x] + 2 * here[x] + below[x];
    }
}

fn v_smooth_row_native(above: &[i16], here: &[i16], below: &[i16], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        let w = dst.len();
        assert!(above.len() >= w && here.len() >= w && below.len() >= w);
        let mut x = 0;
        // SAFETY: all loads/stores cover [x, x+8) <= w on slices of length
        // >= w (asserted above).
        unsafe {
            while x + 8 <= w {
                let a = _mm_loadu_si128(above.as_ptr().add(x) as *const __m128i);
                let h = _mm_loadu_si128(here.as_ptr().add(x) as *const __m128i);
                let b = _mm_loadu_si128(below.as_ptr().add(x) as *const __m128i);
                let sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_slli_epi16::<1>(h));
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, sum);
                x += 8;
            }
        }
        v_smooth_row_scalar(&above[x..w], &here[x..w], &below[x..w], &mut dst[x..]);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        v_smooth_row_scalar(above, here, below, dst);
    }
}

/// Vertical `[-1, 0, 1]`: `dst = below - above`.
pub fn v_diff_row(above: &[i16], below: &[i16], dst: &mut [i16], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => v_diff_row_scalar(above, below, dst),
        Engine::Sse2Sim => {
            use sse_sim::*;
            let w = dst.len();
            let mut x = 0;
            while x + 8 <= w {
                let a = _mm_loadu_si128(&above[x..]);
                let b = _mm_loadu_si128(&below[x..]);
                _mm_storeu_si128(&mut dst[x..], _mm_sub_epi16(b, a));
                x += 8;
            }
            v_diff_row_scalar(&above[x..], &below[x..], &mut dst[x..]);
        }
        Engine::NeonSim => {
            use neon_sim::*;
            let w = dst.len();
            let mut x = 0;
            while x + 8 <= w {
                let a = vld1q_s16(&above[x..]);
                let b = vld1q_s16(&below[x..]);
                vst1q_s16(&mut dst[x..], vsubq_s16(b, a));
                x += 8;
            }
            v_diff_row_scalar(&above[x..], &below[x..], &mut dst[x..]);
        }
        Engine::Native => v_diff_row_native(above, below, dst),
    }
}

fn v_diff_row_scalar(above: &[i16], below: &[i16], dst: &mut [i16]) {
    for x in 0..dst.len() {
        dst[x] = below[x] - above[x];
    }
}

fn v_diff_row_native(above: &[i16], below: &[i16], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        let w = dst.len();
        assert!(above.len() >= w && below.len() >= w);
        let mut x = 0;
        // SAFETY: bounds as in v_smooth_row_native.
        unsafe {
            while x + 8 <= w {
                let a = _mm_loadu_si128(above.as_ptr().add(x) as *const __m128i);
                let b = _mm_loadu_si128(below.as_ptr().add(x) as *const __m128i);
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, _mm_sub_epi16(b, a));
                x += 8;
            }
        }
        v_diff_row_scalar(&above[x..w], &below[x..w], &mut dst[x..]);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        v_diff_row_scalar(above, below, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    /// Direct 3×3 convolution reference for the full Sobel operator.
    fn sobel_reference(src: &Image<u8>, dir: SobelDirection) -> Image<i16> {
        let (w, h) = (src.width(), src.height());
        let clamp = |v: isize, hi: usize| v.clamp(0, hi as isize - 1) as usize;
        let gx_kernel: [[i16; 3]; 3] = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];
        let gy_kernel: [[i16; 3]; 3] = [[-1, -2, -1], [0, 0, 0], [1, 2, 1]];
        let kernel = match dir {
            SobelDirection::X => gx_kernel,
            SobelDirection::Y => gy_kernel,
        };
        Image::from_fn(w, h, |x, y| {
            let mut acc = 0i16;
            for (ky, krow) in kernel.iter().enumerate() {
                for (kx, &kv) in krow.iter().enumerate() {
                    let sx = clamp(x as isize + kx as isize - 1, w);
                    let sy = clamp(y as isize + ky as isize - 1, h);
                    acc += kv * src.get(sx, sy) as i16;
                }
            }
            acc
        })
    }

    #[test]
    fn separable_equals_direct_convolution() {
        let src = synthetic_image(47, 31, 17);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let expect = sobel_reference(&src, dir);
            let mut out = Image::new(47, 31);
            sobel(&src, &mut out, dir, Engine::Scalar);
            assert!(out.pixels_eq(&expect), "direction {dir:?}");
        }
    }

    #[test]
    fn all_engines_match_scalar() {
        let src = synthetic_image(85, 33, 19);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut reference = Image::new(85, 33);
            sobel(&src, &mut reference, dir, Engine::Scalar);
            for engine in [
                Engine::Autovec,
                Engine::Sse2Sim,
                Engine::NeonSim,
                Engine::Native,
            ] {
                let mut out = Image::new(85, 33);
                sobel(&src, &mut out, dir, engine);
                assert!(out.pixels_eq(&reference), "{dir:?} {engine:?}");
            }
        }
    }

    #[test]
    fn constant_image_has_zero_gradient() {
        let src = Image::from_fn(32, 32, |_, _| 99u8);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut out = Image::new(32, 32);
            sobel(&src, &mut out, dir, Engine::Native);
            assert!(out.all_pixels(|p| p == 0), "{dir:?}");
        }
    }

    #[test]
    fn vertical_step_detected_by_gx_only() {
        // Left half 0, right half 200: gx strong at the seam, gy zero.
        let src = Image::from_fn(32, 32, |x, _| if x < 16 { 0u8 } else { 200 });
        let mut gx = Image::new(32, 32);
        let mut gy = Image::new(32, 32);
        sobel(&src, &mut gx, SobelDirection::X, Engine::Native);
        sobel(&src, &mut gy, SobelDirection::Y, Engine::Native);
        assert!(gy.all_pixels(|p| p == 0));
        // Peak response at the step: [1,2,1]ᵀ smooth × [-1,0,1] over a
        // 0→200 step gives 200 * 4 = 800.
        assert_eq!(gx.get(15, 16), 800);
        assert_eq!(gx.get(16, 16), 800);
        assert_eq!(gx.get(3, 16), 0);
    }

    #[test]
    fn gradient_is_antisymmetric_under_inversion() {
        // Inverting the image negates the gradient (up to the 255-v map).
        let src = synthetic_image(40, 24, 23);
        let inv = src.map(|v| 255 - v);
        let mut g = Image::new(40, 24);
        let mut ginv = Image::new(40, 24);
        sobel(&src, &mut g, SobelDirection::X, Engine::Native);
        sobel(&inv, &mut ginv, SobelDirection::X, Engine::Native);
        for y in 0..24 {
            for (a, b) in g.row(y).iter().zip(ginv.row(y).iter()) {
                assert_eq!(*a, -*b);
            }
        }
    }

    #[test]
    fn tiny_images_all_engines() {
        for (w, h) in [(1, 1), (2, 2), (3, 1), (1, 3), (9, 2), (16, 16)] {
            let src = Image::from_fn(w, h, |x, y| ((x * 89 + y * 55) % 251) as u8);
            for dir in [SobelDirection::X, SobelDirection::Y] {
                let mut reference = Image::new(w, h);
                sobel(&src, &mut reference, dir, Engine::Scalar);
                for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                    let mut out = Image::new(w, h);
                    sobel(&src, &mut out, dir, engine);
                    assert!(out.pixels_eq(&reference), "{w}x{h} {dir:?} {engine:?}");
                }
            }
        }
    }
}
