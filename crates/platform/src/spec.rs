//! Platform description: the Table I columns plus the microarchitectural
//! parameters the timing model needs.

use serde::{Deserialize, Serialize};

/// Which SIMD instruction set the platform's HAND kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// Intel SSE2 (all four Intel platforms).
    Sse2,
    /// ARMv7 NEON (all six ARM platforms).
    Neon,
}

impl Isa {
    /// Label used in tables ("SSE2" / "NEON"), matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Isa::Sse2 => "SSE2",
            Isa::Neon => "NEON",
        }
    }
}

/// Core execution style. The paper leans on this distinction repeatedly:
/// the in-order Atom D510 and Cortex-A8 gain far more from hand
/// vectorization than the out-of-order i7/A9 parts, because an in-order
/// pipeline cannot hide the long scalar instruction streams that gcc's
/// auto-vectorizer leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Microarch {
    /// Stalls on every dependence; effective IPC ≈ 1.
    InOrder,
    /// Overlapping execution; `ilp` is the sustained instructions/cycle the
    /// model assumes for independent scalar work.
    OutOfOrder {
        /// Sustained scalar instructions per cycle.
        ilp: f64,
    },
}

impl Microarch {
    /// True for in-order cores.
    pub fn is_in_order(self) -> bool {
        matches!(self, Microarch::InOrder)
    }

    /// Sustained scalar IPC the model charges against.
    pub fn scalar_ipc(self) -> f64 {
        match self {
            Microarch::InOrder => 1.0,
            Microarch::OutOfOrder { ilp } => ilp,
        }
    }
}

/// One of the ten evaluation platforms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Display name, matching Table I ("Intel Atom D510", ...).
    pub name: &'static str,
    /// Short column label for the result tables.
    pub short: &'static str,
    /// Microarchitecture codename from Table I (Pineview, Exynos 4 Quad,…).
    pub codename: &'static str,
    /// Launch quarter from Table I.
    pub launched: &'static str,
    /// SIMD instruction set used by HAND kernels.
    pub isa: Isa,
    /// Core clock in GHz (benchmarks are single-threaded, per the paper).
    pub ghz: f64,
    /// Hardware threads / physical cores, from Table I.
    pub threads: u32,
    /// Physical cores.
    pub cores: u32,
    /// Core execution style.
    pub uarch: Microarch,
    /// Cycles one 128-bit SIMD operation occupies the vector unit.
    /// 1.0 for full-width units (Core 2 onwards), 2.0 for the 64-bit NEON
    /// datapath of the Cortex-A8/A9 and the Atom's split SSE unit; larger
    /// for the Tegra T30's observed NEON bottleneck (the paper measures the
    /// ODROID-X beating it at equal clock and "raises questions about what
    /// bottlenecks are preventing NEON from performing as well").
    pub simd_op_cycles: f64,
    /// Latency charged per libm-style library call (`lrint` in the gcc ARM
    /// listing): call/return overhead plus the soft-float EABI conversion.
    pub libcall_cycles: f64,
    /// Cost charged per data-dependent branch (prediction miss amortised).
    pub branch_cycles: f64,
    /// Extra stall cycles an in-order core pays per memory-class op
    /// (load-use delay it cannot schedule around); 0 for OoO cores.
    pub load_use_stall: f64,
    /// L1 data cache in KiB (Table I).
    pub l1d_kb: u32,
    /// L2 cache in KiB (Table I).
    pub l2_kb: u32,
    /// L3 cache in KiB (0 = none, per Table I).
    pub l3_kb: u32,
    /// Memory description string from Table I ("4GB DDR2", ...).
    pub memory: &'static str,
    /// SIMD-extension description from Table I.
    pub simd_ext: &'static str,
    /// Sustainable single-thread streaming bandwidth in GB/s. These are
    /// *effective copy* numbers, far below the bus peak, tuned to the
    /// platform class (LPDDR on phones, DDR2 on the Atom, dual-channel
    /// DDR3 on the laptops).
    pub stream_gbps: f64,
    /// Typical SoC/package power in watts under load (for the energy
    /// extension experiment, A4).
    pub tdp_watts: f64,
    /// Residual calibration multiplier on AUTO compute cycles. The paper
    /// itself observes that AUTO:HAND ratios vary within a processor group
    /// "presumably due to low level hardware implementation details"
    /// (Section VI) without resolving the cause; this factor captures that
    /// measured residual (1.0 = no adjustment).
    pub auto_quality: f64,
}

impl PlatformSpec {
    /// Cycles per nanosecond.
    pub fn cycles_per_ns(&self) -> f64 {
        self.ghz
    }

    /// Cycles needed to stream one byte from DRAM on this platform.
    pub fn dram_cycles_per_byte(&self) -> f64 {
        // ns per byte = 1 / (GB/s) ; cycles = ns * GHz.
        self.ghz / self.stream_gbps
    }

    /// Largest cache level in KiB (where a streaming intermediate could be
    /// captured).
    pub fn last_level_cache_kb(&self) -> u32 {
        self.l2_kb.max(self.l3_kb)
    }

    /// True for the ARM platforms.
    pub fn is_arm(&self) -> bool {
        self.isa == Isa::Neon
    }

    /// Band plan for the fused pipeline, sized from this platform's real
    /// cache description (Table I) instead of the pipeline's defaults.
    /// L2 shared between cores (the Cortex-A9 parts) is divided across
    /// them, since each core processes its own bands concurrently.
    pub fn band_plan(&self, width: usize) -> simdbench_core::pipeline::BandPlan {
        let l2_per_core = (self.l2_kb as usize * 1024) / (self.cores as usize).max(1);
        simdbench_core::pipeline::BandPlan::for_cache(
            width,
            self.l1d_kb as usize * 1024,
            l2_per_core.max(64 * 1024),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlatformSpec {
        PlatformSpec {
            name: "Test Platform",
            short: "test",
            codename: "Testy",
            launched: "Q1 00",
            isa: Isa::Sse2,
            ghz: 2.0,
            threads: 4,
            cores: 4,
            uarch: Microarch::OutOfOrder { ilp: 2.0 },
            simd_op_cycles: 1.0,
            libcall_cycles: 20.0,
            branch_cycles: 1.5,
            load_use_stall: 0.0,
            l1d_kb: 32,
            l2_kb: 1024,
            l3_kb: 0,
            memory: "test",
            simd_ext: "SSE2",
            stream_gbps: 8.0,
            tdp_watts: 35.0,
            auto_quality: 1.0,
        }
    }

    #[test]
    fn dram_cycles_per_byte() {
        let p = sample();
        // 8 GB/s at 2 GHz: 0.25 cycles per byte.
        assert!((p.dram_cycles_per_byte() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn band_plan_divides_shared_l2_across_cores() {
        let p = sample();
        let plan = p.band_plan(1280);
        // 1 MiB / 4 cores = 256 KiB per core; half of it over 3840 B rows.
        assert_eq!(plan.band_rows, (128 * 1024) / (1280 * 3));
        // A single-core variant of the same cache sees taller bands.
        let single = PlatformSpec { cores: 1, ..p };
        assert!(single.band_plan(1280).band_rows >= plan.band_rows);
    }

    #[test]
    fn microarch_ipc() {
        assert_eq!(Microarch::InOrder.scalar_ipc(), 1.0);
        assert!((Microarch::OutOfOrder { ilp: 2.2 }.scalar_ipc() - 2.2).abs() < 1e-12);
        assert!(Microarch::InOrder.is_in_order());
        assert!(!Microarch::OutOfOrder { ilp: 2.0 }.is_in_order());
    }

    #[test]
    fn last_level_cache_prefers_l3() {
        let mut p = sample();
        assert_eq!(p.last_level_cache_kb(), 1024);
        p.l3_kb = 8192;
        assert_eq!(p.last_level_cache_kb(), 8192);
    }

    #[test]
    fn isa_labels() {
        assert_eq!(Isa::Sse2.label(), "SSE2");
        assert_eq!(Isa::Neon.label(), "NEON");
    }
}
