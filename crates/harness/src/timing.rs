//! Host-mode timing with the paper's protocol.
//!
//! "We cycled through 5 different images of each resolution 25 times, to
//! obtain an average runtime over 100 runs of a benchmark. We chose to
//! traverse 5 different images in succession to minimize caching effects."
//! (The arithmetic quirk — 5 × 25 = 125, reported as "over 100 runs" — is
//! the paper's own; we run `images × cycles` and divide.)

use pixelimage::{synthetic_suite, Image, Resolution};
use platform_model::Kernel;
use simdbench_core::prelude::*;
use std::time::Instant;

/// Host measurement configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Distinct images per resolution (paper: 5).
    pub images: usize,
    /// Cycles through the image set (paper: 25).
    pub cycles: usize,
    /// Warm-up passes excluded from timing.
    pub warmup: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            images: 5,
            cycles: 25,
            warmup: 2,
        }
    }
}

impl HostConfig {
    /// A fast configuration for smoke tests and CI.
    pub fn quick() -> Self {
        HostConfig {
            images: 2,
            cycles: 2,
            warmup: 1,
        }
    }
}

/// One host measurement: the mean plus every timed pass.
///
/// The paper's 5 × 25 protocol produces 125 samples per point; keeping
/// them (instead of only the mean) is what lets `repro host` report
/// min/median/p95/max/stddev — warm-up drift and steal-contention tails
/// are invisible in a single average.
#[derive(Debug, Clone)]
pub struct HostMeasurement {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Which engine ran it.
    pub engine: Engine,
    /// Image size.
    pub resolution: Resolution,
    /// Mean seconds per full-image pass.
    pub seconds: f64,
    /// Total passes timed.
    pub runs: usize,
    /// Per-pass wall seconds, in execution order (`runs` entries).
    pub samples: Vec<f64>,
}

impl HostMeasurement {
    /// Distribution summary of the per-pass samples.
    pub fn stats(&self) -> obs::stats::SampleStats {
        obs::stats::SampleStats::from_samples(&self.samples)
    }
}

/// Runs the paper protocol over `run_once`: warm-up passes untimed, then
/// `images × cycles` individually-timed passes. Each pass also feeds the
/// `harness.pass_ns` telemetry histogram when telemetry is enabled.
/// Returns `(mean_seconds, samples)`.
fn run_protocol(
    work: &WorkSet,
    config: &HostConfig,
    mut run_once: impl FnMut(usize),
) -> (f64, Vec<f64>) {
    for i in 0..config.warmup.min(work.gray.len()) {
        run_once(i);
    }
    let per_cycle = config.images.min(work.gray.len());
    let runs = per_cycle * config.cycles;
    let mut samples = Vec::with_capacity(runs);
    for _cycle in 0..config.cycles {
        for img_idx in 0..per_cycle {
            let start = Instant::now();
            run_once(img_idx);
            let elapsed = start.elapsed();
            obs::add(obs::Counter::HarnessPasses, 1);
            obs::record(obs::HistId::HarnessPassNanos, elapsed.as_nanos() as u64);
            samples.push(elapsed.as_secs_f64());
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    (mean, samples)
}

/// Pre-generated inputs for one resolution (shared across engines so every
/// engine sees identical data).
pub struct WorkSet {
    /// Grayscale sources.
    pub gray: Vec<Image<u8>>,
    /// Float sources for the convert benchmark.
    pub float: Vec<Image<f32>>,
    /// The resolution.
    pub resolution: Resolution,
}

impl WorkSet {
    /// Builds the image suite for a resolution.
    pub fn new(res: Resolution, images: usize) -> Self {
        let gray = synthetic_suite(res, images);
        let float = gray
            .iter()
            .map(|g| pixelimage::convert::u8_to_f32(g, 257.0, -32768.0))
            .collect();
        WorkSet {
            gray,
            float,
            resolution: res,
        }
    }
}

/// Times one (kernel, engine) pair over a work-set with the paper protocol.
pub fn measure(
    kernel: Kernel,
    engine: Engine,
    work: &WorkSet,
    config: &HostConfig,
) -> HostMeasurement {
    let (w, h) = work.resolution.dims();
    let mut dst_u8 = Image::<u8>::new(w, h);
    let mut dst_i16 = Image::<i16>::new(w, h);

    let _span = obs::span(kernel.table3_label());
    let run_once = |img_idx: usize| match kernel {
        Kernel::Convert => {
            convert_f32_to_i16(&work.float[img_idx], &mut dst_i16, engine);
        }
        Kernel::Threshold => {
            threshold_u8(
                &work.gray[img_idx],
                &mut dst_u8,
                128,
                255,
                ThresholdType::Binary,
                engine,
            );
        }
        Kernel::Gaussian => {
            gaussian_blur(&work.gray[img_idx], &mut dst_u8, engine);
        }
        Kernel::Sobel => {
            sobel(&work.gray[img_idx], &mut dst_i16, SobelDirection::X, engine);
        }
        Kernel::Edge => {
            edge_detect(&work.gray[img_idx], &mut dst_u8, 96, engine);
        }
    };

    let (mean, samples) = run_protocol(work, config, run_once);
    HostMeasurement {
        kernel,
        engine,
        resolution: work.resolution,
        seconds: mean,
        runs: samples.len(),
        samples,
    }
}

/// Times the band-tiled fused pipeline for one stencil kernel with the
/// same paper protocol as [`measure`], so fused and two-pass numbers are
/// directly comparable. The scratch arena persists across runs — after
/// the warm-up passes the measured loop performs no heap allocations.
///
/// Only the stencil kernels (Gaussian, Sobel, Edge) have a fused variant;
/// the pointwise kernels are returned via [`measure`] unchanged.
pub fn measure_fused(
    kernel: Kernel,
    engine: Engine,
    work: &WorkSet,
    config: &HostConfig,
) -> HostMeasurement {
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{
        fused_edge_detect_with, fused_gaussian_blur_with, fused_sobel_with,
    };
    use simdbench_core::scratch::Scratch;

    if matches!(kernel, Kernel::Convert | Kernel::Threshold) {
        return measure(kernel, engine, work, config);
    }

    let (w, h) = work.resolution.dims();
    let mut dst_u8 = Image::<u8>::new(w, h);
    let mut dst_i16 = Image::<i16>::new(w, h);
    let mut scratch = Scratch::new();
    let gk = paper_gaussian_kernel();

    let _span = obs::span(kernel.table3_label());
    let run_once = |img_idx: usize| match kernel {
        Kernel::Gaussian => {
            fused_gaussian_blur_with(&work.gray[img_idx], &mut dst_u8, &gk, engine, &mut scratch);
        }
        Kernel::Sobel => {
            fused_sobel_with(
                &work.gray[img_idx],
                &mut dst_i16,
                SobelDirection::X,
                engine,
                &mut scratch,
            );
        }
        Kernel::Edge => {
            fused_edge_detect_with(&work.gray[img_idx], &mut dst_u8, 96, engine, &mut scratch);
        }
        Kernel::Convert | Kernel::Threshold => unreachable!("handled above"),
    };

    let (mean, samples) = run_protocol(work, config, run_once);
    HostMeasurement {
        kernel,
        engine,
        resolution: work.resolution,
        seconds: mean,
        runs: samples.len(),
        samples,
    }
}

/// Which scheduler drives a parallel measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// The persistent work-stealing pool (`par_fused_*_with`).
    Pool,
    /// Per-call `std::thread` spawning — the pre-pool baseline, kept
    /// solely so the dispatch-overhead improvement stays measurable.
    SpawnPerCall,
}

/// Times the band-parallel fused pipeline for one stencil kernel under
/// the chosen [`ParallelMode`], with the same paper protocol as
/// [`measure`]. Pointwise kernels have no banded variant and return via
/// [`measure`] unchanged (their row loops go through the same pool, but
/// the pool-vs-spawn comparison is the stencils' dispatch story).
pub fn measure_parallel(
    kernel: Kernel,
    engine: Engine,
    mode: ParallelMode,
    work: &WorkSet,
    config: &HostConfig,
) -> HostMeasurement {
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{
        par_fused_edge_detect_spawn_baseline, par_fused_edge_detect_with,
        par_fused_gaussian_blur_spawn_baseline, par_fused_gaussian_blur_with,
        par_fused_sobel_spawn_baseline, par_fused_sobel_with, BandPlan,
    };

    if matches!(kernel, Kernel::Convert | Kernel::Threshold) {
        return measure(kernel, engine, work, config);
    }

    let (w, h) = work.resolution.dims();
    let mut dst_u8 = Image::<u8>::new(w, h);
    let mut dst_i16 = Image::<i16>::new(w, h);
    let gk = paper_gaussian_kernel();
    let plan = BandPlan::for_width(w);

    let _span = obs::span(kernel.table3_label());
    let run_once = |img_idx: usize| {
        let src = &work.gray[img_idx];
        match (kernel, mode) {
            (Kernel::Gaussian, ParallelMode::Pool) => {
                par_fused_gaussian_blur_with(src, &mut dst_u8, &gk, engine, &plan);
            }
            (Kernel::Gaussian, ParallelMode::SpawnPerCall) => {
                par_fused_gaussian_blur_spawn_baseline(src, &mut dst_u8, &gk, engine, &plan);
            }
            (Kernel::Sobel, ParallelMode::Pool) => {
                par_fused_sobel_with(src, &mut dst_i16, SobelDirection::X, engine, &plan);
            }
            (Kernel::Sobel, ParallelMode::SpawnPerCall) => {
                par_fused_sobel_spawn_baseline(src, &mut dst_i16, SobelDirection::X, engine, &plan);
            }
            (Kernel::Edge, ParallelMode::Pool) => {
                par_fused_edge_detect_with(src, &mut dst_u8, 96, engine, &plan);
            }
            (Kernel::Edge, ParallelMode::SpawnPerCall) => {
                par_fused_edge_detect_spawn_baseline(src, &mut dst_u8, 96, engine, &plan);
            }
            (Kernel::Convert | Kernel::Threshold, _) => unreachable!("handled above"),
        }
    };

    let (mean, samples) = run_protocol(work, config, run_once);
    HostMeasurement {
        kernel,
        engine,
        resolution: work.resolution,
        seconds: mean,
        runs: samples.len(),
        samples,
    }
}

/// The host's AUTO engine (compiler auto-vectorized source) — the fair
/// analogue of the paper's `-O3` builds.
pub fn host_auto_engine() -> Engine {
    Engine::Autovec
}

/// The host's HAND engine (native intrinsics).
pub fn host_hand_engine() -> Engine {
    Engine::Native
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_sane_numbers() {
        let work = WorkSet::new(Resolution::Vga, 2);
        let config = HostConfig::quick();
        let m = measure(Kernel::Threshold, Engine::Native, &work, &config);
        assert!(m.seconds > 0.0);
        assert!(m.seconds < 1.0, "VGA threshold should be far under 1s");
        assert_eq!(m.runs, 4);
    }

    #[test]
    fn measurement_retains_per_pass_samples() {
        let work = WorkSet::new(Resolution::Vga, 2);
        let config = HostConfig::quick();
        let m = measure(Kernel::Threshold, Engine::Native, &work, &config);
        assert_eq!(m.samples.len(), m.runs);
        let mean = m.samples.iter().sum::<f64>() / m.samples.len() as f64;
        assert!((mean - m.seconds).abs() < 1e-12);
        let s = m.stats();
        assert_eq!(s.count, 4);
        assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.max);
        assert!(s.stddev >= 0.0);
    }

    #[test]
    fn workset_shares_dimensions() {
        let work = WorkSet::new(Resolution::Vga, 3);
        assert_eq!(work.gray.len(), 3);
        assert_eq!(work.float.len(), 3);
        assert_eq!(work.gray[0].width(), 640);
        assert_eq!(work.float[0].width(), 640);
    }

    #[test]
    fn float_inputs_exercise_the_full_i16_range() {
        // 257*255 - 32768 = 32767; 257*0 - 32768 = -32768.
        let work = WorkSet::new(Resolution::Vga, 1);
        let min = work.float[0].iter_pixels().fold(f32::MAX, f32::min);
        let max = work.float[0].iter_pixels().fold(f32::MIN, f32::max);
        assert!(min >= -32768.0);
        assert!(max <= 32767.0);
        assert!(max - min > 20000.0, "range {min}..{max}");
    }

    #[test]
    fn fused_measurement_produces_sane_numbers() {
        let work = WorkSet::new(Resolution::Vga, 2);
        let config = HostConfig::quick();
        let m = measure_fused(Kernel::Edge, Engine::Native, &work, &config);
        assert!(m.seconds > 0.0);
        assert!(m.seconds < 1.0, "VGA fused edge should be far under 1s");
        assert_eq!(m.runs, 4);
        // Pointwise kernels route through the plain measurement.
        let m = measure_fused(Kernel::Threshold, Engine::Native, &work, &config);
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn parallel_measurement_produces_sane_numbers() {
        let work = WorkSet::new(Resolution::Vga, 2);
        let config = HostConfig::quick();
        for mode in [ParallelMode::Pool, ParallelMode::SpawnPerCall] {
            let m = measure_parallel(Kernel::Edge, Engine::Native, mode, &work, &config);
            assert!(m.seconds > 0.0, "{mode:?}");
            assert!(m.seconds < 1.0, "VGA parallel edge should be far under 1s");
            assert_eq!(m.runs, 4);
        }
        // Pointwise kernels route through the plain measurement.
        let m = measure_parallel(
            Kernel::Convert,
            Engine::Native,
            ParallelMode::Pool,
            &work,
            &config,
        );
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn default_config_matches_paper_protocol() {
        let c = HostConfig::default();
        assert_eq!(c.images, 5);
        assert_eq!(c.cycles, 25);
    }
}
