//! 16-byte aligned heap buffers.
//!
//! The paper's Section IV notes that part of the measured HAND advantage
//! comes from the intrinsic code issuing one *aligned* 128-bit store where
//! the scalar code issues eight unaligned 16-bit stores. To reproduce
//! aligned/unaligned ablations (experiment A1) the image rows must actually
//! be 16-byte aligned, which `Vec<u8>`/`Vec<f32>` do not guarantee.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) used for all SIMD-visible buffers.
pub const SIMD_ALIGN: usize = 16;

/// A heap buffer of `T` whose first element is 16-byte aligned.
///
/// Only plain-old-data element types are supported (enforced by the private
/// `Pod` trait); elements are zero-initialised on allocation.
pub struct AlignedBuf<T: Pod> {
    ptr: NonNull<T>,
    len: usize,
    _marker: PhantomData<T>,
}

/// Marker for plain-old-data element types that are valid when zeroed.
///
/// # Safety
/// Implementors must be `Copy` types with no padding-dependent invariants
/// for which the all-zero bit pattern is a valid value.
pub unsafe trait Pod: Copy + Default + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

impl<T: Pod> AlignedBuf<T> {
    /// Allocates a zeroed buffer of `len` elements, 16-byte aligned.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: 0,
                _marker: PhantomData,
            };
        }
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        let layout =
            Layout::from_size_align(len * std::mem::size_of::<T>(), align).expect("invalid layout");
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() > 0 for
        // all Pod impls); alloc_zeroed returns either null or a valid block.
        let raw = unsafe { alloc_zeroed(layout) } as *mut T;
        let ptr = NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout));
        AlignedBuf {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocates a buffer initialised from a slice.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable element view.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe a live allocation of initialised Pod data
        // (zeroed at alloc time).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable element view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above; &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Pod> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        let layout = Layout::from_size_align(self.len * std::mem::size_of::<T>(), align)
            .expect("invalid layout");
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, layout) };
    }
}

impl<T: Pod> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Pod> Deref for AlignedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("align", &SIMD_ALIGN)
            .finish()
    }
}

// SAFETY: AlignedBuf owns its allocation exclusively; T: Pod has no interior
// mutability or thread affinity.
unsafe impl<T: Pod> Send for AlignedBuf<T> {}
unsafe impl<T: Pod> Sync for AlignedBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_aligned_and_zeroed() {
        let buf = AlignedBuf::<f32>::zeroed(37);
        assert_eq!(buf.len(), 37);
        assert_eq!(buf.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_slice_copies() {
        let src: Vec<i16> = (0..100).collect();
        let buf = AlignedBuf::from_slice(&src);
        assert_eq!(buf.as_slice(), src.as_slice());
        assert_eq!(buf.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
    }

    #[test]
    fn mutation_via_deref() {
        let mut buf = AlignedBuf::<u8>::zeroed(16);
        buf[3] = 42;
        assert_eq!(buf.as_slice()[3], 42);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::<u32>::zeroed(8);
        a[0] = 7;
        let b = a.clone();
        a[0] = 9;
        assert_eq!(b[0], 7);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let buf = AlignedBuf::<f64>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice().len(), 0);
        let _clone = buf.clone();
    }

    #[test]
    fn many_allocations_stay_aligned() {
        for len in 1..64 {
            let buf = AlignedBuf::<u8>::zeroed(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
        }
    }
}
