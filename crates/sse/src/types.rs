//! The three SSE register types and element-typed memory access.

use simd_vector::cast::{reinterpret128, Bits128};
use simd_vector::{F32x4, F64x2, I16x8, I32x4, I64x2, I8x16, U16x8, U32x4, U64x2, U8x16};

/// Four packed single-precision floats (XMM register, `ps` view).
pub type __m128 = F32x4;

/// Two packed double-precision floats (XMM register, `pd` view).
pub type __m128d = F64x2;

/// One 128-bit integer register. SSE2 integer intrinsics are typeless over
/// the bits; this wrapper stores the byte image and reinterprets per
/// operation, exactly like the hardware.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct __m128i(pub U8x16);

impl std::fmt::Debug for __m128i {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "__m128i({:02x?})", self.0.to_array())
    }
}

macro_rules! m128i_views {
    ($(($as_fn:ident, $from_fn:ident, $t:ty)),+ $(,)?) => {
        impl __m128i {
            $(
                /// Reinterprets the register bits as the given lane type.
                #[inline]
                pub fn $as_fn(self) -> $t {
                    reinterpret128(self.0)
                }

                /// Builds the register from the given lane type's bits.
                #[inline]
                pub fn $from_fn(v: $t) -> Self {
                    __m128i(reinterpret128(v))
                }
            )+
        }
    };
}

m128i_views!(
    (as_i8, from_i8, I8x16),
    (as_u8, from_u8, U8x16),
    (as_i16, from_i16, I16x8),
    (as_u16, from_u16, U16x8),
    (as_i32, from_i32, I32x4),
    (as_u32, from_u32, U32x4),
    (as_i64, from_i64, I64x2),
    (as_u64, from_u64, U64x2),
);

impl __m128i {
    /// The all-zero register.
    #[inline]
    pub fn zero() -> Self {
        __m128i(U8x16::splat(0))
    }
}

/// Element types that integer memory intrinsics may load and store.
///
/// This is the typed-slice replacement for C's "cast any pointer to
/// `__m128i*`" idiom.
pub trait MemElem: Copy + Default + 'static {
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Writes the element little-endian into `dst` (`dst.len() == BYTES`).
    fn write_le(self, dst: &mut [u8]);
    /// Reads an element little-endian from `src` (`src.len() == BYTES`).
    fn read_le(src: &[u8]) -> Self;
}

macro_rules! mem_elem {
    ($($t:ty),+) => {
        $(impl MemElem for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, dst: &mut [u8]) {
                dst.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(src: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(src);
                <$t>::from_le_bytes(buf)
            }
        })+
    };
}

mem_elem!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Number of elements of `T` in one 128-bit register.
pub const fn lanes_of<T: MemElem>() -> usize {
    16 / T::BYTES
}

/// Reads a full register from the front of `src` (no alignment check).
#[inline]
#[track_caller]
pub(crate) fn read_q<T: MemElem>(src: &[T]) -> U8x16 {
    let n = lanes_of::<T>();
    assert!(
        src.len() >= n,
        "SSE load needs {} elements, slice has {}",
        n,
        src.len()
    );
    let mut bytes = [0u8; 16];
    for (i, chunk) in bytes.chunks_mut(T::BYTES).enumerate() {
        src[i].write_le(chunk);
    }
    U8x16::from_bytes(bytes)
}

/// Writes a full register to the front of `dst` (no alignment check).
#[inline]
#[track_caller]
pub(crate) fn write_q<T: MemElem>(dst: &mut [T], v: U8x16) {
    let n = lanes_of::<T>();
    assert!(
        dst.len() >= n,
        "SSE store needs {} elements, slice has {}",
        n,
        dst.len()
    );
    let bytes = v.to_bytes();
    for (i, chunk) in bytes.chunks(T::BYTES).enumerate() {
        dst[i] = T::read_le(chunk);
    }
}

/// Panics unless the slice data pointer is 16-byte aligned (used by the
/// aligned load/store intrinsics to model hardware #GP faults).
#[inline]
#[track_caller]
pub(crate) fn assert_aligned<T>(ptr: *const T) {
    assert_eq!(
        ptr as usize % 16,
        0,
        "aligned SSE memory access to unaligned address {ptr:p} (would #GP on hardware)"
    );
}

/// Converts an `F32x4` view of register bits (used by `ps`-typed logical and
/// compare results).
#[inline]
pub(crate) fn ps_from_bits(bits: U32x4) -> F32x4 {
    reinterpret128(bits)
}

/// Raw bit view of a `ps` register.
#[inline]
pub(crate) fn ps_to_bits(v: F32x4) -> U32x4 {
    reinterpret128(v)
}

/// Raw bit view of a `pd` register.
#[allow(dead_code)] // used by the compare test-suite
#[inline]
pub(crate) fn pd_to_bits(v: F64x2) -> U64x2 {
    reinterpret128(v)
}

/// Converts register bits to a `pd` view.
#[inline]
pub(crate) fn pd_from_bits(bits: U64x2) -> F64x2 {
    reinterpret128(bits)
}

/// Generic 128-bit reinterpret used by the `_mm_cast*` intrinsics.
#[inline]
pub(crate) fn cast<Src: Bits128, Dst: Bits128>(v: Src) -> Dst {
    reinterpret128(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m128i_views_roundtrip() {
        let v = __m128i::from_i32(I32x4::new([1, -2, 3, -4]));
        assert_eq!(v.as_i32().to_array(), [1, -2, 3, -4]);
        let as_u8 = v.as_u8();
        assert_eq!(as_u8.lane(0), 1);
        assert_eq!(__m128i::from_u8(as_u8), v);
    }

    #[test]
    fn read_write_q_typed() {
        let src: Vec<i16> = (0..10).collect();
        let q = read_q(&src[1..]);
        let mut dst = vec![0i16; 8];
        write_q(&mut dst, q);
        assert_eq!(dst, (1..9).collect::<Vec<i16>>());
    }

    #[test]
    #[should_panic(expected = "SSE load needs")]
    fn read_q_checks_length() {
        let src = [0u8; 15];
        let _ = read_q(&src);
    }

    #[test]
    fn lanes_of_counts() {
        assert_eq!(lanes_of::<u8>(), 16);
        assert_eq!(lanes_of::<i16>(), 8);
        assert_eq!(lanes_of::<i32>(), 4);
        assert_eq!(lanes_of::<f32>(), 4);
        assert_eq!(lanes_of::<i64>(), 2);
    }

    #[test]
    fn zero_register() {
        assert_eq!(__m128i::zero().as_i64().to_array(), [0, 0]);
    }
}
