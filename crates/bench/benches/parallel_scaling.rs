//! Experiment A3 — multi-core scaling of the SIMD kernels (the paper's
//! stated future work): rayon row-parallel Gaussian blur vs thread count.

use bench::bench_image;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::{Image, Resolution};
use simdbench_core::gaussian::gaussian_blur;
use simdbench_core::parallel::par_gaussian_blur;
use simdbench_core::Engine;

fn bench_parallel(c: &mut Criterion) {
    let res = Resolution::Mp5;
    let src = bench_image(res);
    let mut dst = Image::<u8>::new(src.width(), src.height());
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(res.pixels() as u64));

    group.bench_function("gaussian_1thread_seq", |b| {
        b.iter(|| gaussian_blur(&src, &mut dst, Engine::Native))
    });

    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut threads = vec![1usize, 2, 4, 8];
    threads.retain(|&t| t <= max.max(1));
    for t in threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::new("gaussian_par", t), &t, |b, _| {
            pool.install(|| b.iter(|| par_gaussian_blur(&src, &mut dst, Engine::Native)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
