//! Offline stand-in for the `bytes` crate.
//!
//! Provides exactly the subset the BMP codec uses: a growable
//! [`BytesMut`] writer with little-endian `put_*` methods, the [`Buf`]
//! reader trait implemented for `&[u8]`, and the [`BufMut`] marker trait.
//! Semantics match the real crate for this subset (including the panics on
//! reading past the end of a slice — byte slices panic on out-of-range
//! indexing just as the real `Buf` impl does).

/// Read access to a contiguous byte cursor.
///
/// Implemented for `&[u8]`: each getter consumes from the front of the
/// slice, advancing it in place.
pub trait Buf {
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;
    /// Remaining bytes.
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes([self[0], self[1]]);
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes([self[0], self[1], self[2], self[3]]);
        self.advance(4);
        v
    }

    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Write access to a growable byte buffer. As in the real crate, the
/// `put_*` writers live on this trait (not as inherent [`BytesMut`]
/// methods), so writers must `use bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer, backed by `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents out as a plain `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.inner.resize(self.inner.len() + cnt, val);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"BM");
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(0x1234);
        b.put_i32_le(-7);
        b.put_u8(9);
        b.put_bytes(0, 3);
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        r.advance(2);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.remaining(), 3);
    }
}
