//! Image comparison metrics used by the verification suite.

use crate::image::Image;

/// Maximum absolute per-pixel difference between two `u8` images.
pub fn max_abs_diff_u8(a: &Image<u8>, b: &Image<u8>) -> u8 {
    assert_dims(a.width(), a.height(), b.width(), b.height());
    let mut max = 0u8;
    for y in 0..a.height() {
        for (&pa, &pb) in a.row(y).iter().zip(b.row(y).iter()) {
            max = max.max(pa.abs_diff(pb));
        }
    }
    max
}

/// Maximum absolute per-pixel difference between two `i16` images.
pub fn max_abs_diff_i16(a: &Image<i16>, b: &Image<i16>) -> u16 {
    assert_dims(a.width(), a.height(), b.width(), b.height());
    let mut max = 0u16;
    for y in 0..a.height() {
        for (&pa, &pb) in a.row(y).iter().zip(b.row(y).iter()) {
            max = max.max(pa.abs_diff(pb));
        }
    }
    max
}

/// Mean squared error between two `u8` images.
pub fn mse_u8(a: &Image<u8>, b: &Image<u8>) -> f64 {
    assert_dims(a.width(), a.height(), b.width(), b.height());
    let mut sum = 0f64;
    for y in 0..a.height() {
        for (&pa, &pb) in a.row(y).iter().zip(b.row(y).iter()) {
            let d = pa as f64 - pb as f64;
            sum += d * d;
        }
    }
    sum / a.pixels() as f64
}

/// Peak signal-to-noise ratio in dB (`f64::INFINITY` for identical images).
pub fn psnr_u8(a: &Image<u8>, b: &Image<u8>) -> f64 {
    let mse = mse_u8(a, b);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Mean pixel value of a `u8` image.
pub fn mean_u8(img: &Image<u8>) -> f64 {
    let sum: u64 = img.iter_pixels().map(|p| p as u64).sum();
    sum as f64 / img.pixels() as f64
}

/// 256-bin histogram of a `u8` image.
pub fn histogram_u8(img: &Image<u8>) -> [u64; 256] {
    let mut bins = [0u64; 256];
    for p in img.iter_pixels() {
        bins[p as usize] += 1;
    }
    bins
}

/// Fraction of pixels that differ between two `u8` images.
pub fn diff_fraction_u8(a: &Image<u8>, b: &Image<u8>) -> f64 {
    assert_dims(a.width(), a.height(), b.width(), b.height());
    let mut diff = 0usize;
    for y in 0..a.height() {
        for (&pa, &pb) in a.row(y).iter().zip(b.row(y).iter()) {
            if pa != pb {
                diff += 1;
            }
        }
    }
    diff as f64 / a.pixels() as f64
}

#[track_caller]
fn assert_dims(aw: usize, ah: usize, bw: usize, bh: usize) {
    assert!(
        aw == bw && ah == bh,
        "image dimensions differ: {aw}x{ah} vs {bw}x{bh}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(vals: &[&[u8]]) -> Image<u8> {
        Image::from_fn(vals[0].len(), vals.len(), |x, y| vals[y][x])
    }

    #[test]
    fn identical_images_metrics() {
        let a = img(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(max_abs_diff_u8(&a, &a), 0);
        assert_eq!(mse_u8(&a, &a), 0.0);
        assert_eq!(psnr_u8(&a, &a), f64::INFINITY);
        assert_eq!(diff_fraction_u8(&a, &a), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_largest() {
        let a = img(&[&[10, 20], &[30, 40]]);
        let b = img(&[&[12, 20], &[5, 41]]);
        assert_eq!(max_abs_diff_u8(&a, &b), 25);
    }

    #[test]
    fn mse_and_psnr() {
        let a = img(&[&[0, 0], &[0, 0]]);
        let b = img(&[&[10, 0], &[0, 0]]);
        assert_eq!(mse_u8(&a, &b), 25.0);
        let psnr = psnr_u8(&a, &b);
        assert!((psnr - 10.0 * (255.0f64 * 255.0 / 25.0).log10()).abs() < 1e-9);
    }

    #[test]
    fn mean_and_histogram() {
        let a = img(&[&[0, 255], &[255, 0]]);
        assert_eq!(mean_u8(&a), 127.5);
        let h = histogram_u8(&a);
        assert_eq!(h[0], 2);
        assert_eq!(h[255], 2);
        assert_eq!(h[100], 0);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn diff_fraction_counts_changed_pixels() {
        let a = img(&[&[1, 2, 3, 4]]);
        let b = img(&[&[1, 9, 3, 9]]);
        assert_eq!(diff_fraction_u8(&a, &b), 0.5);
    }

    #[test]
    fn i16_diff() {
        let a = Image::<i16>::from_fn(2, 1, |x, _| if x == 0 { -100 } else { 50 });
        let b = Image::<i16>::from_fn(2, 1, |x, _| if x == 0 { 100 } else { 50 });
        assert_eq!(max_abs_diff_i16(&a, &b), 200);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Image::<u8>::new(2, 2);
        let b = Image::<u8>::new(3, 2);
        let _ = max_abs_diff_u8(&a, &b);
    }
}
