//! `imgtool` — a small command-line image processor built on the
//! reproduction's public API, demonstrating the downstream-user path:
//! BMP in → SIMD kernel → BMP out.
//!
//! ```text
//! imgtool blur      <in.bmp> <out.bmp> [--sigma 1.0] [--ksize 7]
//! imgtool edges     <in.bmp> <out.bmp> [--thresh 96]
//! imgtool threshold <in.bmp> <out.bmp> [--thresh 128]
//! imgtool sobel     <in.bmp> <out.bmp>
//! imgtool half      <in.bmp> <out.bmp>
//! imgtool gray      <in.bmp> <out.bmp>
//! imgtool demo      <out-dir>            # generate a synthetic photo set
//! ```
//!
//! 24-bit colour inputs are converted to grayscale (BT.601) first; outputs
//! are 8-bit palettised BMPs. Add `--engine scalar|autovec|sse2-sim|`
//! `neon-sim|native` to pick a backend (default: native).

use pixelimage::bmp::{self, Decoded};
use pixelimage::Image;
use simdbench_core::color::bgr_to_gray;
use simdbench_core::edge::edge_detect;
use simdbench_core::gaussian::gaussian_blur_with;
use simdbench_core::resize::downsample2x;
use simdbench_core::sobel::{sobel, SobelDirection};
use simdbench_core::threshold::{threshold_u8, ThresholdType};
use simdbench_core::Engine;

fn usage() -> ! {
    eprintln!(
        "usage: imgtool <blur|edges|threshold|sobel|half|gray> <in.bmp> <out.bmp> [options]\n\
         \x20      imgtool demo <out-dir>\n\
         options: --thresh N  --sigma F  --ksize N  --engine NAME"
    );
    std::process::exit(2);
}

struct Options {
    thresh: u8,
    sigma: f64,
    ksize: usize,
    engine: Engine,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        thresh: 128,
        sigma: 1.0,
        ksize: 7,
        engine: Engine::Native,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--thresh" => opts.thresh = value("number").parse().unwrap_or(128),
            "--sigma" => opts.sigma = value("number").parse().unwrap_or(1.0),
            "--ksize" => opts.ksize = value("odd number").parse().unwrap_or(7),
            "--engine" => {
                let name = value("engine name");
                opts.engine = Engine::ALL
                    .into_iter()
                    .find(|e| e.label() == name)
                    .unwrap_or_else(|| {
                        eprintln!("unknown engine {name}; use one of: scalar autovec sse2-sim neon-sim native");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn load_gray(path: &str) -> Image<u8> {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    match bmp::decode(&bytes) {
        Ok(Decoded::Gray(img)) => img,
        Ok(Decoded::Bgr(b, g, r)) => {
            let mut gray = Image::new(b.width(), b.height());
            bgr_to_gray(&b, &g, &r, &mut gray, Engine::Native);
            gray
        }
        Err(e) => {
            eprintln!("cannot decode {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn save_gray(path: &str, img: &Image<u8>) {
    if let Err(e) = std::fs::write(path, bmp::encode_gray(img)) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} ({}x{})", img.width(), img.height());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    if command == "demo" {
        let dir = args.get(1).map(String::as_str).unwrap_or("demo-images");
        std::fs::create_dir_all(dir).expect("create output dir");
        for (i, img) in pixelimage::synthetic_suite(pixelimage::Resolution::Vga, 5)
            .iter()
            .enumerate()
        {
            let path = format!("{dir}/photo{i}.bmp");
            std::fs::write(&path, bmp::encode_gray(img)).expect("write demo image");
            println!("wrote {path}");
        }
        return;
    }

    if args.len() < 3 {
        usage();
    }
    let (input, output) = (&args[1], &args[2]);
    let opts = parse_options(&args[3..]);
    let src = load_gray(input);
    let (w, h) = (src.width(), src.height());

    match command.as_str() {
        "blur" => {
            let mut dst = Image::new(w, h);
            gaussian_blur_with(&src, &mut dst, opts.sigma, opts.ksize | 1, opts.engine);
            save_gray(output, &dst);
        }
        "edges" => {
            let mut dst = Image::new(w, h);
            edge_detect(&src, &mut dst, opts.thresh, opts.engine);
            save_gray(output, &dst);
        }
        "threshold" => {
            let mut dst = Image::new(w, h);
            threshold_u8(
                &src,
                &mut dst,
                opts.thresh,
                255,
                ThresholdType::Binary,
                opts.engine,
            );
            save_gray(output, &dst);
        }
        "sobel" => {
            let mut grad = Image::<i16>::new(w, h);
            sobel(&src, &mut grad, SobelDirection::X, opts.engine);
            // Map signed gradient to displayable u8 around mid-gray.
            let vis = grad.map(|v| ((v as i32 / 8) + 128).clamp(0, 255) as u8);
            save_gray(output, &vis);
        }
        "half" => {
            let mut dst = Image::new(w / 2, h / 2);
            downsample2x(&src, &mut dst, opts.engine);
            save_gray(output, &dst);
        }
        "gray" => {
            save_gray(output, &src);
        }
        _ => usage(),
    }
}
