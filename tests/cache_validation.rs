//! Validates the analytic DRAM-traffic rules in
//! `platform_model::workload::dram_bytes_per_pixel` against the
//! set-associative LRU cache simulator — the promise made in that module's
//! documentation.

use simd_repro::platform::cache::{filter_vertical_traffic, Cache};
use simd_repro::platform::workload::{dram_bytes_per_pixel, Kernel};

/// The Gaussian vertical pass at VGA width through a platform-sized L2:
/// the analytic rule says the 7-row tap working set is captured, so the
/// intermediate contributes ~2 B/px of DRAM read traffic. The LRU
/// simulation must agree.
#[test]
fn gaussian_row_capture_rule_agrees_with_lru_sim() {
    let width = 640;
    let height = 96;
    // 1 MB L2 (the A9 class in Table I).
    let mut cache = Cache::new(1024, 8, 64);
    let simulated = filter_vertical_traffic(&mut cache, width, height, 2, 7);
    // Analytic: rule says mid is read once => 2 bytes/pixel (u16).
    let analytic = dram_bytes_per_pixel(Kernel::Gaussian, width, 1024);
    // The analytic total is src(1) + mid write(2) + mid read(2) + dst(1);
    // the simulated figure covers only the mid-read component.
    let analytic_mid_read = analytic - 4.0;
    assert!(
        (simulated - analytic_mid_read).abs() < 0.8,
        "sim {simulated:.2} vs analytic {analytic_mid_read:.2} B/px"
    );
}

/// With a cache smaller than the 7-row working set, the analytic rule
/// switches to 14 B/px of tap re-reads; the LRU sim must also thrash.
#[test]
fn gaussian_thrash_rule_agrees_with_lru_sim() {
    let width = 3264; // 8 Mpx width: 7 rows of u16 = 45.7 KB
    let height = 48;
    let mut small = Cache::new(32, 8, 64); // 32 KB: thrashes
    let simulated = filter_vertical_traffic(&mut small, width, height, 2, 7);
    let analytic = dram_bytes_per_pixel(Kernel::Gaussian, width, 32) - 4.0;
    assert!(
        simulated > 8.0,
        "expected thrashing traffic, sim says {simulated:.2} B/px"
    );
    assert!(
        (simulated - analytic).abs() < 4.0,
        "sim {simulated:.2} vs analytic {analytic:.2} B/px"
    );
}

/// The boundary behaviour: sweeping cache sizes, the LRU sim transitions
/// from captured to thrashing around the analytic working-set threshold.
#[test]
fn capture_threshold_tracks_working_set() {
    let width = 1280; // 7 rows of u16 = 17.5 KB
    let height = 64;
    let mut traffic = Vec::new();
    for kb in [4usize, 8, 16, 32, 64] {
        let mut cache = Cache::new(kb, 8, 64);
        traffic.push((kb, filter_vertical_traffic(&mut cache, width, height, 2, 7)));
    }
    // Monotone non-increasing with cache size.
    for pair in traffic.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1 + 0.2,
            "traffic should fall with cache size: {traffic:?}"
        );
    }
    // Clearly captured at 64 KB, clearly thrashing at 4 KB.
    assert!(traffic.last().unwrap().1 < 3.0, "{traffic:?}");
    assert!(traffic.first().unwrap().1 > 8.0, "{traffic:?}");
}

/// Streaming kernels (threshold) see no reuse at any realistic cache size:
/// every byte is compulsory-miss traffic, matching the analytic 2 B/px.
#[test]
fn streaming_kernels_are_compulsory_miss_bound() {
    let width = 640;
    let rows = 64;
    let mut cache = Cache::new(1024, 8, 64);
    // One sequential pass over src + one over dst.
    for y in 0..rows {
        let src_base = (y * width) as u64;
        let dst_base = (1 << 30) + (y * width) as u64;
        let mut x = 0;
        while x < width {
            cache.access(src_base + x as u64);
            cache.access(dst_base + x as u64);
            x += 64;
        }
    }
    let per_pixel = cache.dram_bytes() as f64 / (width * rows) as f64;
    let analytic = dram_bytes_per_pixel(Kernel::Threshold, width, 1024);
    assert!(
        (per_pixel - analytic).abs() < 0.2,
        "sim {per_pixel:.2} vs analytic {analytic:.2}"
    );
}

/// Edge detection's analytic traffic exceeds the sum of its Sobel parts
/// (gradient images are written then re-read), and every kernel's traffic
/// is positive and bounded.
#[test]
fn traffic_model_sanity_over_all_kernels() {
    for width in [640usize, 1280, 2592, 3264] {
        for llc in [256u32, 1024, 8192] {
            let mut last = 0.0;
            for kernel in [
                Kernel::Threshold,
                Kernel::Convert,
                Kernel::Sobel,
                Kernel::Edge,
            ] {
                let b = dram_bytes_per_pixel(kernel, width, llc);
                assert!(b > 0.0 && b < 64.0, "{kernel:?} {b}");
                assert!(b >= last, "traffic ordering broke at {kernel:?}");
                last = b;
            }
            let sobel = dram_bytes_per_pixel(Kernel::Sobel, width, llc);
            let edge = dram_bytes_per_pixel(Kernel::Edge, width, llc);
            assert!(edge > 2.0 * sobel, "edge {edge} vs sobel {sobel}");
        }
    }
}
