//! Extension kernel — BGR→grayscale color conversion (experiment A5).
//!
//! The paper's related work (Pulli et al., CACM 2012) reports a 9.5× NEON
//! speed-up for color conversion on the Tegra 3; this module adds the kernel
//! to the benchmark family with the same five-backend structure, using
//! OpenCV's fixed-point ITU-R BT.601 weights:
//!
//! `gray = (R*9798 + G*19235 + B*3735 + 2^14) >> 15`
//!
//! (the Q15 quantisation of 0.299/0.587/0.114; the weights sum to 2^15 so
//! converting a gray-in-BGR image is the identity).

use crate::dispatch::Engine;
use crate::error::{validate_frame, KernelError, KernelResult};
use pixelimage::Image;

/// Q15 fixed-point BT.601 luma weights (R, G, B), summing to 2^15.
pub const WEIGHT_R: u16 = 9798;
/// Green weight.
pub const WEIGHT_G: u16 = 19235;
/// Blue weight.
pub const WEIGHT_B: u16 = 3735;
const ROUND: u32 = 1 << 14;

/// Converts planar B, G, R images to grayscale using `engine`.
pub fn bgr_to_gray(
    b: &Image<u8>,
    g: &Image<u8>,
    r: &Image<u8>,
    dst: &mut Image<u8>,
    engine: Engine,
) {
    if let Err(e) = try_bgr_to_gray(b, g, r, dst, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`bgr_to_gray`]: validates geometry (including the
/// cross-plane channel agreement) instead of asserting.
pub fn try_bgr_to_gray(
    b: &Image<u8>,
    g: &Image<u8>,
    r: &Image<u8>,
    dst: &mut Image<u8>,
    engine: Engine,
) -> KernelResult {
    if b.width() != dst.width() {
        return Err(KernelError::WidthMismatch {
            src: b.width(),
            dst: dst.width(),
        });
    }
    if b.height() != dst.height() {
        return Err(KernelError::HeightMismatch {
            src: b.height(),
            dst: dst.height(),
        });
    }
    for plane in [g, r] {
        if plane.width() != b.width() || plane.height() != b.height() {
            return Err(KernelError::ChannelMismatch {
                expected: (b.width(), b.height()),
                got: (plane.width(), plane.height()),
            });
        }
    }
    validate_frame(b.width(), b.height(), b.stride())?;
    validate_frame(dst.width(), dst.height(), dst.stride())?;
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    for y in 0..b.height() {
        bgr_row(b.row(y), g.row(y), r.row(y), dst.row_mut(y), engine);
    }
    Ok(())
}

/// Converts one row of planar BGR to gray.
pub fn bgr_row(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8], engine: Engine) {
    match engine {
        Engine::Scalar => bgr_row_scalar(b, g, r, dst),
        Engine::Autovec => bgr_row_autovec(b, g, r, dst),
        Engine::Sse2Sim => bgr_row_sse2_sim(b, g, r, dst),
        Engine::NeonSim => bgr_row_neon_sim(b, g, r, dst),
        Engine::Native => bgr_row_native(b, g, r, dst),
    }
}

#[inline]
fn luma(b: u8, g: u8, r: u8) -> u8 {
    let acc = r as u32 * WEIGHT_R as u32 + g as u32 * WEIGHT_G as u32 + b as u32 * WEIGHT_B as u32;
    ((acc + ROUND) >> 15) as u8
}

/// Per-pixel reference loop.
pub fn bgr_row_scalar(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8]) {
    assert_eq!(b.len(), dst.len());
    for x in 0..dst.len() {
        dst[x] = luma(b[x], g[x], r[x]);
    }
}

/// Iterator-shaped loop for the auto-vectorizer.
pub fn bgr_row_autovec(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8]) {
    assert_eq!(b.len(), dst.len());
    for (((d, &bv), &gv), &rv) in dst.iter_mut().zip(b).zip(g).zip(r) {
        *d = luma(bv, gv, rv);
    }
}

/// SSE2: widen bytes to u16, split the Q15 products with
/// `pmullw`/`pmulhuw`, accumulate in u32, rounding shift, double pack.
pub fn bgr_row_sse2_sim(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8]) {
    use sse_sim::*;
    assert_eq!(b.len(), dst.len());
    let w = dst.len();
    let zero = _mm_setzero_si128();
    let round = _mm_set1_epi32(ROUND as i32);
    let wr = _mm_set1_epi16(WEIGHT_R as i16);
    let wg = _mm_set1_epi16(WEIGHT_G as i16);
    let wb = _mm_set1_epi16(WEIGHT_B as i16);
    let mut x = 0;
    while x + 8 <= w {
        let mut acc_lo = round;
        let mut acc_hi = round;
        for (plane, weight) in [(r, wr), (g, wg), (b, wb)] {
            let v = _mm_unpacklo_epi8(_mm_loadl_epi64(&plane[x..]), zero);
            let lo16 = _mm_mullo_epi16(v, weight);
            let hi16 = _mm_mulhi_epu16(v, weight);
            acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(lo16, hi16));
            acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(lo16, hi16));
        }
        let packed16 = _mm_packs_epi32(_mm_srli_epi32::<15>(acc_lo), _mm_srli_epi32::<15>(acc_hi));
        let packed8 = _mm_packus_epi16(packed16, packed16);
        _mm_storel_epi64(&mut dst[x..], packed8);
        x += 8;
    }
    bgr_row_scalar(&b[x..], &g[x..], &r[x..], &mut dst[x..]);
}

/// NEON: `vmull_u16` widening MACs per channel, rounding narrow.
pub fn bgr_row_neon_sim(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8]) {
    use neon_sim::*;
    assert_eq!(b.len(), dst.len());
    let w = dst.len();
    let round = vdupq_n_u32(ROUND);
    let wr = uint16x4_t::splat(WEIGHT_R);
    let wg = uint16x4_t::splat(WEIGHT_G);
    let wb = uint16x4_t::splat(WEIGHT_B);
    let mut x = 0;
    while x + 8 <= w {
        let mut acc_lo = round;
        let mut acc_hi = round;
        for (plane, weight) in [(r, wr), (g, wg), (b, wb)] {
            let v = vmovl_u8(vld1_u8(&plane[x..]));
            acc_lo = vmlal_u16(acc_lo, vget_low_u16(v), weight);
            acc_hi = vmlal_u16(acc_hi, vget_high_u16(v), weight);
        }
        let n_lo = vmovn_u32(vshrq_n_u32(acc_lo, 15));
        let n_hi = vmovn_u32(vshrq_n_u32(acc_hi, 15));
        vst1_u8(&mut dst[x..], vqmovn_u16(vcombine_u16(n_lo, n_hi)));
        x += 8;
    }
    bgr_row_scalar(&b[x..], &g[x..], &r[x..], &mut dst[x..]);
}

/// Color conversion on the host's real SIMD unit.
pub fn bgr_row_native(b: &[u8], g: &[u8], r: &[u8], dst: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(b.len(), dst.len());
        assert!(g.len() >= dst.len() && r.len() >= dst.len());
        let w = dst.len();
        let mut x = 0;
        // SAFETY: each 64-bit load reads plane[x..x+8]; the store writes
        // dst[x..x+8]; x + 8 <= w throughout and all slices have length
        // >= w (asserted above).
        unsafe {
            let zero = _mm_setzero_si128();
            let round = _mm_set1_epi32(ROUND as i32);
            let wr = _mm_set1_epi16(WEIGHT_R as i16);
            let wg = _mm_set1_epi16(WEIGHT_G as i16);
            let wb = _mm_set1_epi16(WEIGHT_B as i16);
            while x + 8 <= w {
                let mut acc_lo = round;
                let mut acc_hi = round;
                for (plane, weight) in [(r, wr), (g, wg), (b, wb)] {
                    let v = _mm_unpacklo_epi8(
                        _mm_loadl_epi64(plane.as_ptr().add(x) as *const __m128i),
                        zero,
                    );
                    let lo16 = _mm_mullo_epi16(v, weight);
                    let hi16 = _mm_mulhi_epu16(v, weight);
                    acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(lo16, hi16));
                    acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(lo16, hi16));
                }
                let packed16 =
                    _mm_packs_epi32(_mm_srli_epi32::<15>(acc_lo), _mm_srli_epi32::<15>(acc_hi));
                let packed8 = _mm_packus_epi16(packed16, packed16);
                _mm_storel_epi64(dst.as_mut_ptr().add(x) as *mut __m128i, packed8);
                x += 8;
            }
        }
        bgr_row_scalar(&b[x..], &g[x..], &r[x..], &mut dst[x..]);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        bgr_row_autovec(b, g, r, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn weights_sum_to_q15_one() {
        assert_eq!(WEIGHT_R as u32 + WEIGHT_G as u32 + WEIGHT_B as u32, 1 << 15);
    }

    #[test]
    fn gray_input_is_identity() {
        // When B == G == R the conversion must return the common value.
        let v = synthetic_image(50, 20, 1);
        let mut out = Image::new(50, 20);
        for engine in Engine::ALL {
            bgr_to_gray(&v, &v, &v, &mut out, engine);
            assert!(out.pixels_eq(&v), "{engine:?}");
        }
    }

    #[test]
    fn all_engines_match_scalar() {
        let b = synthetic_image(83, 31, 10);
        let g = synthetic_image(83, 31, 11);
        let r = synthetic_image(83, 31, 12);
        let mut reference = Image::new(83, 31);
        bgr_to_gray(&b, &g, &r, &mut reference, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(83, 31);
            bgr_to_gray(&b, &g, &r, &mut out, engine);
            assert!(out.pixels_eq(&reference), "{engine:?}");
        }
    }

    #[test]
    fn primary_colors_match_bt601() {
        let full = Image::from_fn(8, 1, |_, _| 255u8);
        let zero = Image::from_fn(8, 1, |_, _| 0u8);
        let mut out = Image::new(8, 1);
        // Pure red: 255 * 9798 / 32768 ~ 76.
        bgr_to_gray(&zero, &zero, &full, &mut out, Engine::Native);
        assert_eq!(out.get(0, 0), 76);
        // Pure green: ~150.
        bgr_to_gray(&zero, &full, &zero, &mut out, Engine::Native);
        assert_eq!(out.get(0, 0), 150);
        // Pure blue: ~29.
        bgr_to_gray(&full, &zero, &zero, &mut out, Engine::Native);
        assert_eq!(out.get(0, 0), 29);
        // White stays white.
        bgr_to_gray(&full, &full, &full, &mut out, Engine::Native);
        assert_eq!(out.get(0, 0), 255);
    }

    #[test]
    fn tails_below_vector_width() {
        for len in 0..20 {
            let b: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let g: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let r: Vec<u8> = (0..len).map(|i| (i * 11) as u8).collect();
            let mut expect = vec![0u8; len];
            bgr_row_scalar(&b, &g, &r, &mut expect);
            for engine in Engine::ALL {
                let mut out = vec![0u8; len];
                bgr_row(&b, &g, &r, &mut out, engine);
                assert_eq!(out, expect, "{engine:?} len {len}");
            }
        }
    }

    #[test]
    fn exhaustive_single_channel_sweeps() {
        // For each channel, sweep all 256 values with the others at 0:
        // every engine must agree with the scalar reference exactly.
        let ramp: Vec<u8> = (0..=255).collect();
        let zeros = vec![0u8; 256];
        for (b, g, r) in [
            (&ramp, &zeros, &zeros),
            (&zeros, &ramp, &zeros),
            (&zeros, &zeros, &ramp),
        ] {
            let mut expect = vec![0u8; 256];
            bgr_row_scalar(b, g, r, &mut expect);
            for engine in Engine::ALL {
                let mut out = vec![0u8; 256];
                bgr_row(b, g, r, &mut out, engine);
                assert_eq!(out, expect, "{engine:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel dimensions differ")]
    fn mismatched_channels_panic() {
        let b = Image::<u8>::new(4, 4);
        let g = Image::<u8>::new(5, 4);
        let r = Image::<u8>::new(4, 4);
        let mut out = Image::new(4, 4);
        bgr_to_gray(&b, &g, &r, &mut out, Engine::Scalar);
    }
}
