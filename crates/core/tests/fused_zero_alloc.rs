//! Allocator-level proof of the fused pipeline's zero-allocation contract,
//! counted by a wrapping global allocator rather than inferred from the
//! arena's own ledger:
//!
//! 1. once a [`Scratch`] arena is warm, a sequential `fused_*_with` call
//!    performs **no** heap allocations at all, and
//! 2. once the persistent pool's workers have run each kernel shape once,
//!    steady-state `par_fused_*` calls perform **no** heap allocations on
//!    any worker thread — band workspaces come from the workers'
//!    thread-local arenas and the scheduler's deques reuse their capacity.
//!
//! The parallel phase counts *worker-side* allocations only: the
//! submitting thread still builds the per-call band list (a bounded
//! `Vec`), which is dispatch bookkeeping, not per-pixel work. Workers are
//! identified with a `broadcast` that sets a const-initialised
//! thread-local flag (const-init so reading it inside the allocator can
//! never itself allocate).
//!
//! The whole file is a single `#[test]` because the counter is global and
//! the libtest harness runs sibling tests on other threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static WORKER_ONLY: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn should_count() -> bool {
    if !COUNTING.load(Ordering::Relaxed) {
        return false;
    }
    if WORKER_ONLY.load(Ordering::Relaxed) {
        // `try_with` so a (de)allocation during TLS teardown cannot panic.
        IS_WORKER.try_with(Cell::get).unwrap_or(false)
    } else {
        true
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if should_count() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if should_count() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on; returns how many allocations
/// (including reallocations) it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Like [`count_allocs`], but only allocations made on pool worker
/// threads (those marked via `IS_WORKER`) are counted.
fn count_worker_allocs(f: impl FnOnce()) -> u64 {
    WORKER_ONLY.store(true, Ordering::SeqCst);
    let n = count_allocs(f);
    WORKER_ONLY.store(false, Ordering::SeqCst);
    n
}

#[test]
fn warm_fused_calls_do_not_allocate() {
    use pixelimage::{synthetic_image, Image};
    use simdbench_core::dispatch::Engine;
    use simdbench_core::kernelgen::paper_gaussian_kernel;
    use simdbench_core::pipeline::{
        fused_edge_detect_with, fused_gaussian_blur_with, fused_sobel_with,
        par_fused_edge_detect_with, par_fused_gaussian_blur_with, par_fused_sobel_with, BandPlan,
    };
    use simdbench_core::scratch::{warm_worker_arenas, Scratch, WorkspaceSpec};
    use simdbench_core::sobel::SobelDirection;

    let (w, h) = (257, 53); // odd width: scalar tails + SIMD interior
    let src = synthetic_image(w, h, 163);
    let kernel = paper_gaussian_kernel();
    let mut dst_u8 = Image::new(w, h);
    let mut dst_i16 = Image::new(w, h);
    let mut scratch = Scratch::new();

    for engine in Engine::ALL {
        // Cold pass: allowed to allocate (fills the arena).
        fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, engine, &mut scratch);
        fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, engine, &mut scratch);
        fused_sobel_with(&src, &mut dst_i16, SobelDirection::Y, engine, &mut scratch);
        fused_edge_detect_with(&src, &mut dst_u8, 96, engine, &mut scratch);

        // Warm pass: zero allocations, enforced at the allocator.
        let n = count_allocs(|| {
            fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, engine, &mut scratch);
            fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, engine, &mut scratch);
            fused_sobel_with(&src, &mut dst_i16, SobelDirection::Y, engine, &mut scratch);
            fused_edge_detect_with(&src, &mut dst_u8, 96, engine, &mut scratch);
        });
        assert_eq!(n, 0, "warm fused calls allocated {n} times ({engine:?})");
    }

    // --- Parallel path: no worker-side allocations at steady state. ---
    // A 4-wide install forces the real pool scheduler even on single-core
    // hosts; band_rows = 8 yields several bands per call so tasks are
    // actually split and stolen.
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");
    wide.install(|| {
        rayon::broadcast(|_| IS_WORKER.with(|c| c.set(true)));
        let plan = BandPlan { band_rows: 8 };
        warm_worker_arenas(&[
            WorkspaceSpec::gaussian(w, kernel.len()),
            WorkspaceSpec::sobel(w),
            WorkspaceSpec::edge(w),
        ]);

        // Cold parallel passes grow the scheduler's deques and any
        // remaining lazy state to their steady-state footprint.
        for _ in 0..3 {
            par_fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, Engine::Native, &plan);
            par_fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, Engine::Native, &plan);
            par_fused_edge_detect_with(&src, &mut dst_u8, 96, Engine::Native, &plan);
        }

        let n = count_worker_allocs(|| {
            for _ in 0..5 {
                par_fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, Engine::Native, &plan);
                par_fused_sobel_with(&src, &mut dst_i16, SobelDirection::X, Engine::Native, &plan);
                par_fused_edge_detect_with(&src, &mut dst_u8, 96, Engine::Native, &plan);
            }
        });
        assert_eq!(
            n, 0,
            "steady-state par_fused calls allocated {n} times on pool workers"
        );
    });
}
