//! Pool telemetry aggregation: counters recorded from worker threads
//! land in per-thread sinks; `obs::snapshot()` must fold them into
//! totals that match a serial reference computed with shared atomics.
//!
//! This is one test function (not several) because `obs` state is
//! process-global and integration tests run on a shared thread pool.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn pool_counter_aggregation_matches_serial_reference() {
    obs::set_enabled(true);
    obs::reset();

    const JOBS: usize = 8;
    const ITEMS: usize = 503; // odd, so chunk splits are uneven
    let reference = AtomicU64::new(0);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");
    pool.install(|| {
        for _ in 0..JOBS {
            (0..ITEMS).into_par_iter().for_each(|i| {
                obs::add(obs::Counter::PipelineBands, 1);
                obs::add(obs::Counter::PipelineHaloRows, i as u64);
                obs::record(obs::HistId::PipelineBandNanos, (i as u64) + 1);
                reference.fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    let snap = obs::snapshot();
    let expected = (JOBS * ITEMS) as u64;
    assert_eq!(reference.load(Ordering::Relaxed), expected);

    // Per-item counters: every increment from every worker is visible.
    assert_eq!(snap.counter(obs::Counter::PipelineBands), expected);
    let halo_sum: u64 = (0..ITEMS as u64).sum();
    assert_eq!(
        snap.counter(obs::Counter::PipelineHaloRows),
        halo_sum * JOBS as u64
    );

    // Histogram records aggregate too, with exact count/min/max.
    let hist = snap.hist(obs::HistId::PipelineBandNanos);
    assert_eq!(hist.count, expected);
    assert_eq!(hist.min, 1);
    assert_eq!(hist.max, ITEMS as u64);

    // The scheduler's own counters: each into_par_iter run is one job.
    assert_eq!(snap.counter(obs::Counter::PoolJobs), JOBS as u64);
    assert!(snap.counter(obs::Counter::PoolTasks) >= JOBS as u64);
    // Work ran on more than the submitting thread.
    assert!(snap.threads >= 2, "threads = {}", snap.threads);

    // Steal attribution never exceeds the total steal count.
    let attributed: u64 = snap.steal_victims.iter().sum();
    assert_eq!(attributed, snap.counter(obs::Counter::PoolSteals));

    // reset() returns every aggregate to zero without dropping sinks.
    obs::reset();
    let clean = obs::snapshot();
    assert_eq!(clean.counter(obs::Counter::PipelineBands), 0);
    assert_eq!(clean.counter(obs::Counter::PoolJobs), 0);
    assert_eq!(clean.hist(obs::HistId::PipelineBandNanos).count, 0);

    obs::set_enabled(false);
}
