//! Offline stand-in for the `rayon` crate, built on a **persistent
//! work-stealing thread pool**.
//!
//! Implements the subset this workspace uses — `Vec::into_par_iter()` /
//! `Range::into_par_iter()` with `.enumerate()` and `.for_each()`, plus
//! `ThreadPoolBuilder`/`ThreadPool::install`, `current_num_threads`,
//! `broadcast` and detached [`spawn`] — over a single process-wide
//! worker pool.
//!
//! # Scheduler architecture
//!
//! * **Workers are spawned once.** The pool structure is created behind a
//!   `OnceLock` on first use; worker threads are spawned lazily as jobs
//!   request width, each thread exactly once, and then live for the rest
//!   of the process parked on a condvar when idle. A `par_*` call costs a
//!   few queue pushes and one condvar round-trip — not `t` OS thread
//!   spawns and joins, which at small images used to be the same order of
//!   cost as the kernel itself.
//! * **Per-worker deques with stealing.** Every worker owns a
//!   mutex-guarded `VecDeque` of tasks. Owners pop newest-first (LIFO,
//!   cache-warm); thieves steal oldest-first (FIFO, the biggest unsplit
//!   ranges) from victims scanned in a per-worker pseudo-random rotation —
//!   the classic Chase–Lev discipline with a lock in place of the
//!   lock-free ring, which benchmarks identically at this workspace's
//!   task grain (tens of tasks per job, each thousands of pixels).
//! * **Chunked dynamic tasks.** A job enters the pool as one near-equal
//!   seed range per participating worker, and every task larger than the
//!   job's *grain* splits in half on pop: one half is pushed back
//!   (stealable), the other processed recursively. Ragged band workloads
//!   therefore load-balance instead of being pinned to a static
//!   one-chunk-per-thread partition.
//! * **Scope-style join latch.** The submitting thread parks on a
//!   per-job latch until the job's outstanding-task count drops to zero,
//!   so worker closures may borrow the submitter's stack (the `rows_mut`
//!   slices flow through unchanged). Worker panics are caught, carried to
//!   the latch, and re-raised on the submitting thread.
//! * **`install` scopes a width without respawning.** A [`ThreadPool`] is
//!   only a configured width: `install` sets a thread-local override that
//!   governs how many workers a job seeds and admits (task eligibility is
//!   `worker_index < job_width`), while the workers themselves are the
//!   same process-wide threads.
//!
//! Nested parallel calls issued from inside a worker run inline
//! sequentially (a worker never blocks on another job), which is also the
//! behaviour with width 1: bit-exactness is index-based, not
//! schedule-based, so inline and pooled execution are indistinguishable
//! to callers.
//!
//! When `obs` telemetry is enabled the scheduler reports jobs, tasks,
//! steals (by victim), parks/wakeups, inline-nested runs and the deque
//! depth high-water; disabled, each site costs one flag branch (see
//! `obs`'s cost model and the pool-counter aggregation test in
//! `tests/telemetry.rs`).
//!
//! # Self-healing
//!
//! The pool tolerates its own workers dying, not just leaf panics:
//!
//! * **Worker respawn.** Leaf panics are caught and carried to the latch,
//!   but a panic that escapes the leaf guard (injected via the
//!   `pool.worker` failpoint, or a defect in the scheduler itself) kills
//!   the worker thread. A drop guard in [`Pool::worker_entry`] notices the
//!   unwind and respawns the same slot, so the pool returns to its full
//!   complement (`pool.respawns` counter, [`pool_live_workers`]).
//! * **Job watchdog.** With [`set_job_watchdog`] armed, a submitter that
//!   waits longer than the deadline stops trusting the workers and drains
//!   the job's still-queued tasks inline on its own thread
//!   (`pool.watchdog_trips`). Combined with the latch drop guard below,
//!   a job can therefore always finish even if every worker died.
//! * **Latch drop guard.** Each task's `pending` decrement lives in a
//!   drop guard around the leaf, so latch accounting settles exactly once
//!   per task even when the worker running it unwinds to death.
//! * **Circuit breaker.** Three consecutive parallel-job failures open a
//!   breaker: the next eight jobs run serially in the submitting thread
//!   (`pool.degraded_runs`) — degraded but correct — after which one job
//!   runs parallel as a half-open probe; success closes the breaker,
//!   failure re-opens it. [`circuit_breaker_open`] / [`reset_circuit_breaker`]
//!   expose the state for harnesses.
//!
//! All of it is deterministic-testable through `faultline`'s `pool.task`
//! (inside the leaf guard: surfaces as a job error) and `pool.worker`
//! (after the leaf guard: kills the worker) failpoints; when no failpoint
//! is armed each costs one relaxed load and branch per task.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => host_parallelism(),
    })
}

/// Index of the pool worker executing the current code, or `None` when
/// called from outside the pool (extension over rayon's API; the pool
/// uses it to run nested parallel calls inline).
pub fn worker_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

// ---------------------------------------------------------------------------
// Fault tolerance: watchdog, circuit breaker, worker-complement ledger
// ---------------------------------------------------------------------------

/// Per-job latch deadline in milliseconds; 0 disables the watchdog.
static JOB_WATCHDOG_MS: AtomicU64 = AtomicU64::new(0);
/// Worker threads currently alive (incremented on entry, decremented when
/// one dies; a respawned slot increments again).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Consecutive parallel-job failures; any success resets to zero.
static BREAKER_FAILS: AtomicUsize = AtomicUsize::new(0);
/// Remaining serial degraded runs while the breaker is open.
static BREAKER_COOLDOWN: AtomicUsize = AtomicUsize::new(0);

/// Consecutive failures that open the circuit breaker.
const BREAKER_TRIP: usize = 3;
/// Serial degraded runs served while open, before a half-open probe.
const BREAKER_COOLDOWN_RUNS: usize = 8;

/// Arms (or with `None` disarms) the per-job watchdog: a submitter whose
/// latch wait exceeds `deadline` drains the job's still-queued tasks
/// inline on its own thread. Sub-millisecond deadlines round up to 1 ms.
pub fn set_job_watchdog(deadline: Option<Duration>) {
    let ms = deadline.map_or(0, |d| (d.as_millis() as u64).max(1));
    JOB_WATCHDOG_MS.store(ms, Ordering::Relaxed);
}

/// Number of pool worker threads currently alive. Transiently below the
/// spawned complement while a dead worker's replacement is starting.
pub fn pool_live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Whether the circuit breaker has tripped (jobs degrade to serial
/// in-caller execution until a half-open probe succeeds).
pub fn circuit_breaker_open() -> bool {
    BREAKER_FAILS.load(Ordering::SeqCst) >= BREAKER_TRIP
}

/// Force-closes the circuit breaker (test and harness hook).
pub fn reset_circuit_breaker() {
    BREAKER_FAILS.store(0, Ordering::SeqCst);
    BREAKER_COOLDOWN.store(0, Ordering::SeqCst);
}

/// If the breaker is open, consumes one cooldown slot and returns `true`
/// (caller must run serially). Once the cooldown is exhausted the caller
/// becomes the half-open probe and runs in parallel.
fn breaker_take_degraded_slot() -> bool {
    if BREAKER_FAILS.load(Ordering::SeqCst) < BREAKER_TRIP {
        return false;
    }
    let mut left = BREAKER_COOLDOWN.load(Ordering::SeqCst);
    while left > 0 {
        match BREAKER_COOLDOWN.compare_exchange_weak(
            left,
            left - 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return true,
            Err(now) => left = now,
        }
    }
    false
}

/// Records a parallel job that re-raised a panic at its latch. Opening
/// (or re-opening, for a failed half-open probe) refills the cooldown.
fn breaker_record_failure() {
    let fails = BREAKER_FAILS.fetch_add(1, Ordering::SeqCst) + 1;
    if fails >= BREAKER_TRIP {
        BREAKER_COOLDOWN.store(BREAKER_COOLDOWN_RUNS, Ordering::SeqCst);
    }
}

/// Records a clean parallel job: consecutive-failure count resets, which
/// also closes the breaker after a successful half-open probe.
fn breaker_record_success() {
    BREAKER_FAILS.store(0, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One schedulable unit: either a half-open index range of a latched
/// job, or a detached one-shot closure ([`spawn`]).
enum Task {
    /// A sub-range of a [`JobShared`]. Holds a raw pointer to the job
    /// header on the submitting thread's stack; the join latch
    /// guarantees the header outlives every task.
    Range {
        job: *const JobShared,
        start: usize,
        end: usize,
        /// Pinned tasks ([`broadcast`]) may only run on the queue's owner.
        pinned: bool,
    },
    /// A detached closure with no latch: runs once on whichever worker
    /// pops or steals it; the submitter does not wait.
    Once(Box<dyn FnOnce() + Send>),
}

// SAFETY: the job header is Sync (atomics, mutexes and a Sync closure)
// and outlives the task per the latch protocol; the `Once` payload is
// `Send` by its bound.
unsafe impl Send for Task {}

/// Per-job header, allocated on the submitting thread's stack.
struct JobShared {
    /// The leaf body, `run(start, end)`. Lifetime-erased to `'static`;
    /// valid because the submitter blocks on the latch until `pending`
    /// reaches zero, after which no task can touch the job again.
    run: &'static (dyn Fn(usize, usize) + Sync),
    /// Outstanding tasks (queued or executing).
    pending: AtomicUsize,
    /// Worker admission: only workers with `index < width` may run tasks
    /// of this job. This is what makes `install(t)` an effective width on
    /// a pool with more live workers than `t`.
    width: usize,
    /// Ranges at most this long execute directly; longer ones split.
    grain: usize,
    /// Join latch: flipped under the mutex when `pending` hits zero.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload captured from a worker, re-raised at the latch.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// The process-wide pool.
struct Pool {
    /// One deque per worker *slot*. Slots exist up to the hard cap;
    /// threads are spawned lazily per slot, each at most once.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// How many worker threads have been spawned so far.
    spawned: Mutex<usize>,
    /// Bumped on every push; lets sleepers detect work they raced past.
    generation: AtomicU64,
    /// Idle workers park here.
    sleep: Mutex<()>,
    wake: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Returns the pool, creating the (threadless) structure on first call.
///
/// The slot count is fixed at creation: twice the host parallelism, floor
/// eight, so `install` widths beyond the core count still schedule
/// through the real pool (oversubscription is how the scheduler tests
/// exercise stealing on small CI hosts).
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let slots = (host_parallelism() * 2).max(8);
        Box::leak(Box::new(Pool {
            queues: (0..slots).map(|_| Mutex::new(VecDeque::new())).collect(),
            spawned: Mutex::new(0),
            generation: AtomicU64::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }))
    })
}

impl Pool {
    /// Ensures at least `n` worker threads are live and returns `n`
    /// clamped to the slot count. Each slot's thread is spawned exactly
    /// once, ever.
    fn ensure_workers(&'static self, n: usize) -> usize {
        let n = n.min(self.queues.len());
        let mut spawned = lock(&self.spawned);
        while *spawned < n {
            let index = *spawned;
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{index}"))
                .spawn(move || self.worker_entry(index))
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
        n
    }

    /// Number of live workers.
    fn live_workers(&self) -> usize {
        *lock(&self.spawned)
    }

    /// Enqueues a task on `queue` and wakes sleepers.
    ///
    /// The wake notification happens under the sleep mutex: a worker that
    /// found nothing checks `generation` under the same mutex before
    /// parking, so this push can never slip into its check-to-wait window.
    fn push(&self, queue: usize, task: Task) {
        let depth = {
            let mut q = lock(&self.queues[queue]);
            q.push_back(task);
            q.len()
        };
        obs::gauge_max(obs::Gauge::PoolDequeDepthHighWater, depth as u64);
        self.generation.fetch_add(1, Ordering::SeqCst);
        let _guard = lock(&self.sleep);
        self.wake.notify_all();
    }

    /// Pops or steals one task runnable by worker `me`.
    fn find_task(&self, me: usize, rng: &mut u64) -> Option<Task> {
        // Own deque, newest first: the most recently split (cache-warm)
        // range. Everything in the own deque is runnable by its owner:
        // seeds land only on queues `< width` and splits are self-pushed.
        if let Some(task) = lock(&self.queues[me]).pop_back() {
            return Some(task);
        }
        // Steal, oldest first, from victims in pseudo-random rotation.
        let n = self.queues.len();
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let offset = (*rng as usize) % n;
        for k in 0..n {
            let victim = (offset + k) % n;
            if victim == me {
                continue;
            }
            let mut q = lock(&self.queues[victim]);
            let eligible = |t: &Task| match t {
                // SAFETY: queued tasks keep their job pending (alive).
                Task::Range { job, pinned, .. } => !*pinned && me < unsafe { &**job }.width,
                Task::Once(_) => true,
            };
            if let Some(pos) = q.iter().position(eligible) {
                let task = q.remove(pos);
                drop(q);
                obs::add(obs::Counter::PoolSteals, 1);
                obs::record_steal(victim);
                return task;
            }
        }
        None
    }

    /// Runs one task: splits it down to the job's grain (pushing the far
    /// halves for other workers to steal), executes the leaf, and settles
    /// the job's latch accounting.
    ///
    /// The `pending` decrement lives in a drop guard so it runs exactly
    /// once per task even if this thread unwinds past the leaf's own
    /// catch (the `pool.worker` failpoint, or a scheduler defect): the
    /// job still completes, only the worker dies — and is respawned.
    fn execute(&self, me: usize, task: Task) {
        obs::add(obs::Counter::PoolTasks, 1);
        let (job_ptr, start, mut end) = match task {
            Task::Range {
                job, start, end, ..
            } => (job, start, end),
            Task::Once(f) => {
                // Detached task: no latch to settle and no job header to
                // carry a panic payload, so no leaf catch either — a
                // panic escaping `f` unwinds this worker (the respawn
                // guard restores the complement) and, because the
                // closure has already been consumed, cannot re-run.
                // Callers needing panic isolation catch inside `f`.
                faultline::fire("pool.task");
                f();
                faultline::fire("pool.worker");
                return;
            }
        };
        // SAFETY: `pending` includes this task, so the header is alive.
        let job = unsafe { &*job_ptr };
        while end - start > job.grain {
            let mid = start + (end - start) / 2;
            job.pending.fetch_add(1, Ordering::SeqCst);
            self.push(
                me,
                Task::Range {
                    job: job_ptr,
                    start: mid,
                    end,
                    pinned: false,
                },
            );
            end = mid;
        }
        struct LatchSettle(*const JobShared);
        impl Drop for LatchSettle {
            fn drop(&mut self) {
                // SAFETY: this task's slot of `pending` is still ours.
                let job = unsafe { &*self.0 };
                if job.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let mut done = lock(&job.done);
                    *done = true;
                    job.done_cv.notify_all();
                    // The submitter may free the job as soon as it
                    // observes the flag; nothing may touch `job` after.
                }
            }
        }
        let settle = LatchSettle(job_ptr);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            // Inside the guard: an injected panic here is a *task*
            // failure, carried to the latch like any leaf panic.
            faultline::fire("pool.task");
            (job.run)(start, end)
        })) {
            let mut slot = lock(&job.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        drop(settle);
        // Past the guard: an injected panic here unwinds the worker
        // thread itself, *after* the job's accounting is settled — no
        // work is lost, the latch cannot hang, and the respawn guard in
        // `worker_entry` restores the complement.
        faultline::fire("pool.worker");
    }

    /// Pops every still-queued task of `job` and runs it on the calling
    /// (submitting) thread. The watchdog's help-drain: leaves run
    /// directly — no splitting and no `pool.task` failpoint, so an armed
    /// delay or panic cannot also sabotage the rescue path.
    fn drain_job_inline(&self, job: &JobShared) {
        let job_ptr: *const JobShared = job;
        let belongs =
            |t: &Task| matches!(t, Task::Range { job, .. } if std::ptr::eq(*job, job_ptr));
        loop {
            let mut found = None;
            for q in &self.queues {
                let mut q = lock(q);
                if let Some(pos) = q.iter().position(belongs) {
                    found = q.remove(pos);
                    break;
                }
            }
            let Some(Task::Range { start, end, .. }) = found else {
                break;
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.run)(start, end))) {
                let mut slot = lock(&job.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if job.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let mut done = lock(&job.done);
                *done = true;
                job.done_cv.notify_all();
            }
        }
    }

    /// Thread entry: runs the worker loop under a respawn guard. If the
    /// loop ever unwinds (it contains no `return`), the guard starts a
    /// replacement thread on the same slot, keeping the pool at full
    /// complement without touching the `spawned` ledger.
    fn worker_entry(&'static self, index: usize) {
        struct RespawnGuard {
            pool: &'static Pool,
            index: usize,
        }
        impl Drop for RespawnGuard {
            fn drop(&mut self) {
                LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
                if std::thread::panicking() {
                    obs::add(obs::Counter::PoolRespawns, 1);
                    let pool = self.pool;
                    let index = self.index;
                    // Spawn failure (resource exhaustion) leaves the slot
                    // empty; queued tasks remain stealable and the job
                    // watchdog covers the pathological all-dead case.
                    let _ = std::thread::Builder::new()
                        .name(format!("rayon-shim-worker-{index}"))
                        .spawn(move || pool.worker_entry(index));
                }
            }
        }
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        let _respawn = RespawnGuard { pool: self, index };
        self.worker_loop(index);
    }

    /// The body of every worker thread.
    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|w| w.set(Some(index)));
        let mut rng = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        loop {
            let gen = self.generation.load(Ordering::SeqCst);
            if let Some(task) = self.find_task(index, &mut rng) {
                self.execute(index, task);
                continue;
            }
            // Nothing runnable: park unless a push landed since the scan
            // started (the push's notify happens under this same mutex).
            let guard = lock(&self.sleep);
            if self.generation.load(Ordering::SeqCst) == gen {
                obs::add(obs::Counter::PoolParks, 1);
                let _guard = self.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
                obs::add(obs::Counter::PoolWakeups, 1);
            }
        }
    }
}

/// Submits `leaf` over `0..len` at `width` and blocks until every task
/// has run. Must not be called from a worker thread (callers run nested
/// jobs inline instead).
fn run_job(len: usize, width: usize, leaf: &(dyn Fn(usize, usize) + Sync)) {
    let pool = pool();
    let width = pool.ensure_workers(width).min(len).max(1);
    if width <= 1 {
        leaf(0, len);
        return;
    }
    if breaker_take_degraded_slot() {
        // Breaker open: serial in-caller execution — degraded, correct,
        // and immune to whatever is killing the workers. A panic here
        // propagates directly and does not count against the breaker
        // (degraded runs measure pool health, not kernel health).
        obs::add(obs::Counter::PoolDegradedRuns, 1);
        leaf(0, len);
        return;
    }
    obs::add(obs::Counter::PoolJobs, 1);
    // Each seed splits into ~4 leaves, giving thieves something to take
    // without shrinking tasks below a useful size.
    let grain = (len / (width * 4)).max(1);
    let job = JobShared {
        // SAFETY: lifetime erasure justified by the latch wait below.
        run: unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(leaf)
        },
        pending: AtomicUsize::new(width),
        width,
        grain,
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    };
    let base = len / width;
    let rem = len % width;
    let mut start = 0;
    for i in 0..width {
        let size = base + usize::from(i < rem);
        pool.push(
            i,
            Task::Range {
                job: &job,
                start,
                end: start + size,
                pinned: false,
            },
        );
        start += size;
    }
    let watchdog_ms = JOB_WATCHDOG_MS.load(Ordering::Relaxed);
    let mut done = lock(&job.done);
    if watchdog_ms == 0 {
        while !*done {
            done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    } else {
        let deadline = Duration::from_millis(watchdog_ms);
        while !*done {
            let (guard, timeout) = job
                .done_cv
                .wait_timeout(done, deadline)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
            if timeout.timed_out() && !*done {
                // Deadline blown: stop trusting the workers and drain
                // whatever is still queued on the submitting thread.
                // Tasks already *executing* on a live worker still settle
                // through their own latch guards; we re-wait after.
                obs::add(obs::Counter::PoolWatchdogTrips, 1);
                drop(done);
                pool.drain_job_inline(&job);
                done = lock(&job.done);
            }
        }
    }
    drop(done);
    let payload = lock(&job.panic).take();
    match payload {
        Some(payload) => {
            breaker_record_failure();
            resume_unwind(payload);
        }
        None => breaker_record_success(),
    }
}

/// Runs `leaf(start, end)` over sub-ranges of `0..len`, in parallel when
/// the effective width allows, inline otherwise (width 1, trivial length,
/// or nested inside a worker).
fn drive_range(len: usize, leaf: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let width = current_num_threads();
    if width <= 1 || len == 1 || worker_index().is_some() {
        if worker_index().is_some() {
            obs::add(obs::Counter::PoolInlineNested, 1);
        }
        leaf(0, len);
        return;
    }
    run_job(len, width, leaf);
}

/// Runs `f(worker_index)` exactly once on every live pool worker and
/// blocks until all have finished (rayon's `broadcast`, with the context
/// reduced to the index). Spawns workers up to the current effective
/// width first, so a following `par_*` call finds them warm. Called from
/// inside the pool it degenerates to `f(own_index)`.
pub fn broadcast<F>(f: F)
where
    F: Fn(usize) + Send + Sync,
{
    if let Some(me) = worker_index() {
        f(me);
        return;
    }
    let pool = pool();
    pool.ensure_workers(current_num_threads().max(1));
    let n = pool.live_workers();
    if n == 0 {
        return;
    }
    obs::add(obs::Counter::PoolJobs, 1);
    let leaf = |s: usize, _e: usize| f(s);
    let dyn_leaf: &(dyn Fn(usize, usize) + Sync) = &leaf;
    let job = JobShared {
        // SAFETY: as in `run_job` — the latch wait keeps `leaf` alive.
        run: unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(dyn_leaf)
        },
        pending: AtomicUsize::new(n),
        width: n,
        grain: 1,
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    };
    for i in 0..n {
        pool.push(
            i,
            Task::Range {
                job: &job,
                start: i,
                end: i + 1,
                pinned: true,
            },
        );
    }
    let mut done = lock(&job.done);
    while !*done {
        done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Round-robin cursor distributing [`spawn`]ed tasks across workers.
static SPAWN_CURSOR: AtomicUsize = AtomicUsize::new(0);

/// Submits a detached closure to the persistent pool and returns
/// immediately (rayon's `spawn`): the closure runs once on whichever
/// worker pops or steals it, and **no thread ever blocks on it** — not
/// the submitter (there is no latch) and no pool worker (the closure is
/// ordinary queue work, stealable like any task). This is the
/// submit-from-outside entry the stream engine pipelines frames
/// through: the dispatcher hands a frame to the pool and moves straight
/// on to admitting the next one.
///
/// Contract differences from latched jobs:
///
/// * Completion is the closure's own business — signal through an
///   `Arc`/channel captured by `f` if the submitter needs to know.
/// * A panic escaping `f` is **not** carried anywhere: it unwinds the
///   worker (respawned by the self-healing guard) and the closure,
///   already consumed, never re-runs. Callers needing panic isolation
///   catch inside `f`; the stream engine's slot lease is the worked
///   example (outcome recorded and slot released from a drop guard).
/// * The circuit breaker neither gates nor counts detached tasks; it
///   measures latched-job health.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let pool = pool();
    if let Some(me) = worker_index() {
        // From inside the pool: queue on our own deque (never block).
        pool.push(me, Task::Once(Box::new(f)));
        return;
    }
    let n = pool.ensure_workers(current_num_threads().max(1)).max(1);
    let target = SPAWN_CURSOR.fetch_add(1, Ordering::Relaxed) % n;
    pool.push(target, Task::Once(Box::new(f)));
}

/// The pre-pool scheduling, kept as a measurement baseline: spawns one
/// scoped OS thread per contiguous chunk on **every call** and joins them
/// before returning. The dispatch-overhead benchmark runs this against
/// the persistent pool; nothing else should use it.
pub fn spawn_baseline_for_each<F>(range: Range<usize>, f: F)
where
    F: Fn(usize) + Send + Sync,
{
    let len = range.end.saturating_sub(range.start);
    let threads = current_num_threads().max(1);
    if threads == 1 || len <= 1 {
        for i in range {
            f(i);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    let base = range.start;
    std::thread::scope(|s| {
        let mut lo = 0;
        while lo < len {
            let hi = (lo + chunk).min(len);
            s.spawn(move || {
                for i in lo..hi {
                    f(base + i);
                }
            });
            lo = hi;
        }
    });
}

// ---------------------------------------------------------------------------
// Public rayon-compatible surface
// ---------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (host) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = host parallelism, as rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool handle. Worker threads for the requested width are
    /// spawned now (each at most once, process-wide) so the first
    /// `install`ed parallel call runs at full width; repeated builds
    /// never respawn anything. `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(host_parallelism);
        if threads > 1 {
            pool().ensure_workers(threads);
        }
        Ok(ThreadPool { threads })
    }
}

/// Error type mirroring rayon's (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured degree of parallelism over the process-wide persistent
/// pool. `install` scopes this width over the closure — jobs submitted
/// inside seed and admit at most `threads` workers — without spawning or
/// parking anything.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel
    /// iterators. Nested installs are scoped: the innermost width wins
    /// and the previous width is restored on exit.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(Some(self.threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// The parallel-iterator operations this workspace uses.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Consumes the iterator, applying `f` to every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;

    /// Pairs every element with its index (indices are assigned in the
    /// original order, independent of the execution schedule).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }
}

/// Raw-pointer wrapper so leaf closures can address a shared buffer whose
/// disjoint elements they own by index.
struct SendPtr<T>(*mut T);

// SAFETY: used only to move `T: Send` values across threads; every index
// is read by exactly one leaf of one task.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    /// Runs `f(index, item)` over all items.
    ///
    /// The buffer is consumed in place: leaves move elements out of the
    /// single allocation by index (`ptr::read` over disjoint sub-ranges),
    /// so no per-chunk `Vec`s are ever created. If a leaf panics, the
    /// unread elements of that leaf's range leak (they are never
    /// double-dropped); the panic then propagates to the caller.
    fn drive<F>(self, f: F)
    where
        F: Fn(usize, T) + Send + Sync,
    {
        let mut items = self.items;
        let len = items.len();
        if len == 0 {
            return;
        }
        let width = current_num_threads();
        if width <= 1 || len == 1 || worker_index().is_some() {
            if worker_index().is_some() {
                obs::add(obs::Counter::PoolInlineNested, 1);
            }
            for (i, item) in items.into_iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let base = SendPtr(items.as_mut_ptr());
        // SAFETY: ownership of the elements transfers to the job; the
        // vector is left empty so it frees only its capacity afterwards.
        unsafe { items.set_len(0) };
        let base = &base;
        run_job(len, width, &move |s: usize, e: usize| {
            for i in s..e {
                // SAFETY: leaves cover disjoint sub-ranges of 0..len,
                // each exactly once; `base` outlives the job latch.
                let item = unsafe { std::ptr::read(base.0.add(i)) };
                f(i, item);
            }
        });
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        self.drive(move |_, item| f(item));
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // Indices are computed from the sub-range bounds — no
        // materialised index buffer, no allocation at all.
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        drive_range(len, &|s: usize, e: usize| {
            for i in s..e {
                f(start + i);
            }
        });
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// Index-pairing adapter returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<T: Send> ParallelIterator for Enumerate<VecParIter<T>> {
    type Item = (usize, T);

    fn for_each<F>(self, f: F)
    where
        F: Fn((usize, T)) + Send + Sync,
    {
        self.inner.drive(move |i, item| f((i, item)));
    }
}

impl ParallelIterator for Enumerate<RangeParIter> {
    type Item = (usize, usize);

    fn for_each<F>(self, f: F)
    where
        F: Fn((usize, usize)) + Send + Sync,
    {
        let start = self.inner.range.start;
        let len = self.inner.range.end.saturating_sub(start);
        drive_range(len, &|s: usize, e: usize| {
            for i in s..e {
                f((i, start + i));
            }
        });
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;

    /// A pool wide enough to schedule off the main thread even on a
    /// single-core CI host.
    fn wide_pool() -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        items.into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn enumerate_indices_match_original_order() {
        let items: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let sum = AtomicUsize::new(0);
        wide_pool().install(|| {
            items
                .clone()
                .into_par_iter()
                .enumerate()
                .for_each(|(i, v)| {
                    assert_eq!(v, items[i]);
                    sum.fetch_add(1, Ordering::Relaxed);
                });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn mutable_slices_are_written_in_parallel() {
        let mut data = [0u8; 64];
        let rows: Vec<&mut [u8]> = data.chunks_mut(8).collect();
        wide_pool().install(|| {
            rows.into_par_iter().enumerate().for_each(|(i, row)| {
                for b in row.iter_mut() {
                    *b = i as u8;
                }
            });
        });
        for (i, chunk) in data.chunks(8).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn owned_values_are_consumed_exactly_once() {
        let items: Vec<String> = (0..300).map(|i| format!("item-{i}")).collect();
        let seen = Mutex::new(HashSet::new());
        wide_pool().install(|| {
            items.into_par_iter().for_each(|s| {
                assert!(seen.lock().unwrap().insert(s), "duplicate delivery");
            });
        });
        assert_eq!(seen.lock().unwrap().len(), 300);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 2);
        });
        let pool1 = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool1.install(|| {
            // Single-threaded path runs inline.
            let items: Vec<usize> = (0..10).collect();
            let tid = std::thread::current().id();
            items.into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
    }

    #[test]
    fn nested_install_restores_outer_width() {
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            inner.install(|| assert_eq!(super::current_num_threads(), 4));
            assert_eq!(super::current_num_threads(), 2);
        });
        // Outside any install the host default is back in force.
        assert_eq!(
            super::current_num_threads(),
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }

    #[test]
    fn range_par_iter_covers_range() {
        let hits = AtomicUsize::new(0);
        wide_pool().install(|| {
            (5..105usize).into_par_iter().for_each(|v| {
                assert!((5..105).contains(&v));
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn range_enumerate_pairs_offset_with_value() {
        let sum = AtomicUsize::new(0);
        wide_pool().install(|| {
            (10..74usize)
                .into_par_iter()
                .enumerate()
                .for_each(|(i, v)| {
                    assert_eq!(v, i + 10);
                    sum.fetch_add(1, Ordering::Relaxed);
                });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64);
    }

    /// The thread-id sets observed by parallel work and by `broadcast`
    /// across many calls: workers must be spawned once and reused, never
    /// respawned per call.
    #[test]
    fn pool_spawns_workers_once_across_repeated_calls() {
        let pool = wide_pool();
        let collect_round = || {
            let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
            pool.install(|| {
                for _ in 0..20 {
                    (0..128usize).into_par_iter().for_each(|_| {
                        ids.lock().unwrap().insert(std::thread::current().id());
                    });
                }
                super::broadcast(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            });
            ids.into_inner().unwrap()
        };
        let first = collect_round();
        assert!(!first.is_empty());
        assert!(
            !first.contains(&std::thread::current().id()),
            "width-4 jobs must run on pool workers, not the submitter"
        );
        for round in 0..10 {
            let again = collect_round();
            assert!(
                again.is_subset(&first),
                "round {round} saw new worker threads: pool respawned"
            );
        }
    }

    #[test]
    fn broadcast_reaches_every_worker_exactly_once() {
        let pool = wide_pool();
        let indices: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        pool.install(|| {
            super::broadcast(|i| indices.lock().unwrap().push(i));
        });
        let mut indices = indices.into_inner().unwrap();
        indices.sort_unstable();
        // At least the four ensured workers; each index exactly once.
        assert!(indices.len() >= 4);
        let unique: HashSet<_> = indices.iter().collect();
        assert_eq!(unique.len(), indices.len(), "worker ran broadcast twice");
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let hits = AtomicUsize::new(0);
        wide_pool().install(|| {
            (0..8usize).into_par_iter().for_each(|_| {
                (0..16usize).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 128);
    }

    #[test]
    #[should_panic(expected = "boom at 37")]
    fn worker_panic_propagates_to_the_caller() {
        wide_pool().install(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("boom at 37");
                }
            });
        });
    }

    #[test]
    fn spawn_baseline_matches_pool_results() {
        let pool_sum = AtomicUsize::new(0);
        wide_pool().install(|| {
            (0..257usize).into_par_iter().for_each(|i| {
                pool_sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        let spawn_sum = AtomicUsize::new(0);
        wide_pool().install(|| {
            super::spawn_baseline_for_each(0..257, |i| {
                spawn_sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        assert_eq!(
            pool_sum.load(Ordering::Relaxed),
            spawn_sum.load(Ordering::Relaxed)
        );
    }

    /// Scheduler stress: thousands of small jobs, including concurrent
    /// submitters, ragged lengths and zero-length ranges. Exercises
    /// seeding, splitting, stealing, parking and the latch under churn;
    /// wired into `scripts/ci.sh` so regressions fail fast.
    #[test]
    fn pool_stress_many_small_calls() {
        let pool = wide_pool();
        pool.install(|| {
            for n in 0..400usize {
                let hits = AtomicUsize::new(0);
                (0..n % 23).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), n % 23);
            }
        });
        // Concurrent submitters from plain OS threads, each with its own
        // installed width.
        std::thread::scope(|s| {
            for t in 1..=4usize {
                s.spawn(move || {
                    let p = super::ThreadPoolBuilder::new()
                        .num_threads(t)
                        .build()
                        .unwrap();
                    p.install(|| {
                        for n in [1usize, 2, 3, 7, 64, 129] {
                            let sum = AtomicUsize::new(0);
                            (0..n).into_par_iter().for_each(|i| {
                                sum.fetch_add(i + 1, Ordering::Relaxed);
                            });
                            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
                        }
                    });
                });
            }
        });
    }
}
