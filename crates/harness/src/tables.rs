//! Table I / Table II / Table III generators.

use pixelimage::Resolution;
use platform_model::{all_platforms, predict_seconds, Kernel, PlatformSpec, Strategy};
use std::fmt::Write as _;

/// A rendered table: header row plus data rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Serialises as CSV (caption excluded).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a table as aligned ASCII.
pub fn render_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.header.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    writeln!(out, "{}", table.title).unwrap();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    writeln!(out, "{}", fmt_row(&table.header, &widths)).unwrap();
    writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    )
    .unwrap();
    for row in &table.rows {
        writeln!(out, "{}", fmt_row(row, &widths)).unwrap();
    }
    out
}

/// Table I — the platform inventory.
pub fn table1() -> Table {
    let header = vec![
        "PROCESSOR".into(),
        "CODENAME".into(),
        "Launched".into(),
        "Thr/Cores/GHz".into(),
        "L1/L2/L3 (KB)".into(),
        "Memory".into(),
        "SIMD".into(),
    ];
    let rows = all_platforms()
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.codename.to_string(),
                p.launched.to_string(),
                format!("{}/{}/{}", p.threads, p.cores, p.ghz),
                format!(
                    "{}/{}/{}",
                    p.l1d_kb,
                    p.l2_kb,
                    if p.l3_kb == 0 {
                        "No L3".to_string()
                    } else {
                        p.l3_kb.to_string()
                    }
                ),
                p.memory.to_string(),
                p.simd_ext.to_string(),
            ]
        })
        .collect();
    Table {
        title: "Table I: Platforms Used in Benchmarks".into(),
        header,
        rows,
    }
}

fn strategy_rows(platforms: &[PlatformSpec], kernel: Kernel, res: Resolution) -> Vec<Vec<String>> {
    let auto: Vec<f64> = platforms
        .iter()
        .map(|p| predict_seconds(p, kernel, Strategy::Auto, res))
        .collect();
    let hand: Vec<f64> = platforms
        .iter()
        .map(|p| predict_seconds(p, kernel, Strategy::Hand, res))
        .collect();
    let fmt = |v: &f64| format!("{v:.4}");
    let mut rows = Vec::new();
    let mut auto_row = vec![res.label().to_string(), "AUTO".to_string()];
    auto_row.extend(auto.iter().map(fmt));
    rows.push(auto_row);
    let mut hand_row = vec![String::new(), "HAND".to_string()];
    hand_row.extend(hand.iter().map(fmt));
    rows.push(hand_row);
    let mut speed_row = vec![String::new(), "Speed-up".to_string()];
    speed_row.extend(
        auto.iter()
            .zip(hand.iter())
            .map(|(a, h)| format!("{:.2}", a / h)),
    );
    rows.push(speed_row);
    rows
}

/// Table II — float→short conversion times for all four image sizes across
/// all ten platforms (simulated mode).
pub fn table2() -> Table {
    let platforms = all_platforms();
    let mut header = vec!["Image Size".to_string(), "SIMD".to_string()];
    header.extend(platforms.iter().map(|p| p.short.to_string()));
    let mut rows = Vec::new();
    for res in Resolution::ALL {
        rows.extend(strategy_rows(&platforms, Kernel::Convert, res));
    }
    Table {
        title: "Table II: Time (in seconds) to perform conversion of Float to Short Int \
                (simulated platforms)"
            .into(),
        header,
        rows,
    }
}

/// Table III — benchmarks 2–5 on the 8 Mpx image (simulated mode).
pub fn table3() -> Table {
    let platforms = all_platforms();
    let mut header = vec!["Benchmark".to_string(), "SIMD".to_string()];
    header.extend(platforms.iter().map(|p| p.short.to_string()));
    let mut rows = Vec::new();
    for kernel in [
        Kernel::Threshold,
        Kernel::Gaussian,
        Kernel::Sobel,
        Kernel::Edge,
    ] {
        let mut block = strategy_rows(&platforms, kernel, Resolution::Mp8);
        block[0][0] = kernel.table3_label().to_string();
        rows.extend(block);
    }
    Table {
        title: "Table III: Time (in seconds) for Binary Thresholding, Gaussian Blur, Sobel \
                Filter and Edge Detection on 8mpx (3264x2448) images (simulated platforms)"
            .into(),
        header,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_ten_platforms() {
        let t = table1();
        assert_eq!(t.rows.len(), 10);
        assert!(t.rows[0][0].contains("Atom"));
        assert!(t.rows[9][0].contains("Tegra"));
        // The Atom's quirky 24KB L1 D-cache survives the formatting.
        assert!(t.rows[0][4].starts_with("24/1024/No L3"));
    }

    #[test]
    fn table2_has_four_sizes_times_three_rows() {
        let t = table2();
        assert_eq!(t.rows.len(), 4 * 3);
        assert_eq!(t.header.len(), 2 + 10);
        // First block starts with the smallest size, AUTO row.
        assert_eq!(t.rows[0][0], "640x480");
        assert_eq!(t.rows[0][1], "AUTO");
        assert_eq!(t.rows[2][1], "Speed-up");
    }

    #[test]
    fn table3_has_four_benchmarks() {
        let t = table3();
        assert_eq!(t.rows.len(), 4 * 3);
        assert_eq!(t.rows[0][0], "BinThr");
        assert_eq!(t.rows[3][0], "GauBlu");
        assert_eq!(t.rows[6][0], "SobFil");
        assert_eq!(t.rows[9][0], "EdgDet");
    }

    #[test]
    fn speedup_rows_exceed_one() {
        let t = table3();
        for block in t.rows.chunks(3) {
            let speed = &block[2];
            for cell in &speed[2..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v >= 0.99, "speed-up {v} < 1");
            }
        }
    }

    #[test]
    fn csv_roundtrip_layout() {
        let t = table1();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("PROCESSOR,"));
    }

    #[test]
    fn ascii_rendering_contains_all_cells() {
        let t = table3();
        let text = render_table(&t);
        assert!(text.contains("BinThr"));
        assert!(text.contains("Tegra-T30"));
        assert!(text.contains("Speed-up"));
    }
}
