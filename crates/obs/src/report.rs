//! Human-readable telemetry report, in the style of the Section V
//! analysis tables (`op_trace::analysis`): aligned columns, one block
//! per metric family, durations scaled to readable units.

use crate::span::SpanNode;
use crate::{Counter, Gauge, HistId, Snapshot};
use std::fmt::Write as _;

/// Scales nanoseconds into a human unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats byte counts with a binary unit.
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn render_span(node: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "  {:<38} {:>8} {:>12} {:>12}",
        format!("{indent}{}", node.name),
        node.count,
        fmt_ns(node.total_ns as f64),
        fmt_ns(node.mean_ns()),
    );
    for child in &node.children {
        render_span(child, depth + 1, out);
    }
}

/// Renders the full report.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "telemetry report ({} thread sink{} contributed)",
        snap.threads,
        if snap.threads == 1 { "" } else { "s" }
    );

    let _ = writeln!(out, "\nspan tree (merged across threads by name):");
    if snap.spans.is_empty() {
        let _ = writeln!(out, "  (no spans recorded)");
    } else {
        let _ = writeln!(
            out,
            "  {:<38} {:>8} {:>12} {:>12}",
            "span", "count", "total", "mean"
        );
        for node in &snap.spans {
            render_span(node, 0, &mut out);
        }
    }

    let _ = writeln!(out, "\ncounters (summed across threads):");
    for c in Counter::ALL {
        let v = snap.counter(c);
        if c == Counter::ScratchBytesAllocated {
            let _ = writeln!(out, "  {:<30} {:>14}", c.name(), fmt_bytes(v));
        } else {
            let _ = writeln!(out, "  {:<30} {:>14}", c.name(), v);
        }
    }

    let _ = writeln!(out, "\ngauges (high-water, max across threads):");
    for g in Gauge::ALL {
        let v = snap.gauge(g);
        if g == Gauge::ScratchBytesHighWater {
            let _ = writeln!(out, "  {:<30} {:>14}", g.name(), fmt_bytes(v));
        } else {
            let _ = writeln!(out, "  {:<30} {:>14}", g.name(), v);
        }
    }

    let _ = writeln!(out, "\nhistograms (log2 buckets; p* bucket-resolution):");
    let _ = writeln!(
        out,
        "  {:<20} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "metric", "count", "mean", "min", "p50", "p95", "p99", "max"
    );
    for h in HistId::ALL {
        let d = snap.hist(h);
        let _ = writeln!(
            out,
            "  {:<20} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            h.name(),
            d.count,
            fmt_ns(d.mean()),
            fmt_ns(d.min as f64),
            fmt_ns(d.percentile(50.0) as f64),
            fmt_ns(d.percentile(95.0) as f64),
            fmt_ns(d.percentile(99.0) as f64),
            fmt_ns(d.max as f64),
        );
    }

    let total_steals: u64 = snap.steal_victims.iter().sum();
    if total_steals > 0 {
        let _ = writeln!(out, "\nsteals by victim worker:");
        for (i, &n) in snap.steal_victims.iter().enumerate() {
            if n > 0 {
                let _ = writeln!(out, "  worker {i:<3} {n:>10}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scaling_picks_readable_magnitudes() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.500 us");
        assert_eq!(fmt_ns(2.5e6), "2.500 ms");
        assert_eq!(fmt_ns(3.0e9), "3.000 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
    }

    #[test]
    fn report_contains_every_metric_family() {
        let _g = crate::tests::guard();
        crate::set_enabled(true);
        crate::reset();
        crate::add(Counter::PipelineBands, 2);
        crate::record(HistId::HarnessPassNanos, 1_000_000);
        {
            let _s = crate::span("report_root");
        }
        let snap = crate::snapshot();
        let text = snap.render();
        assert!(text.contains("span tree"));
        assert!(text.contains("report_root"));
        assert!(text.contains("pipeline.bands"));
        assert!(text.contains("scratch.bytes_high_water"));
        assert!(text.contains("harness.pass_ns"));
        assert!(text.contains("1.000 ms"));
        crate::set_enabled(false);
    }
}
