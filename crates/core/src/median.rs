//! Extension kernel — 3×3 median blur (experiment A9).
//!
//! The largest speed-up in the paper's related work is median blur: 23× with
//! NEON on a Tegra 3 (Pulli et al.). The kernel is a showcase for SIMD
//! min/max *sorting networks*: the median of a 3×3 neighbourhood falls out
//! of 19 `min`/`max` operations with no branches at all, while the scalar
//! version sorts 9 elements per pixel.
//!
//! The network (the classic Smith median-of-9):
//!
//! 1. sort each column's 3 samples → per-column (lo, mid, hi);
//! 2. the median is `med3( max(lo₀,lo₁,lo₂), med3(mid₀,mid₁,mid₂),
//!    min(hi₀,hi₁,hi₂) )`.

use crate::dispatch::Engine;
use pixelimage::Image;

/// Applies a 3×3 median filter with replicated borders.
pub fn median_blur3(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    let height = src.height();
    if height == 0 {
        return;
    }
    let clamp = |y: isize| y.clamp(0, height as isize - 1) as usize;
    for y in 0..height {
        let above = src.row(clamp(y as isize - 1));
        let here = src.row(y);
        let below = src.row(clamp(y as isize + 1));
        median_row3(above, here, below, dst.row_mut(y), engine);
    }
}

/// Computes one output row of the 3×3 median from its three source rows.
pub fn median_row3(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8], engine: Engine) {
    match engine {
        Engine::Scalar => median_row3_scalar(above, here, below, dst),
        Engine::Autovec => median_row3_network_scalar(above, here, below, dst),
        Engine::Sse2Sim => median_row3_sse2_sim(above, here, below, dst),
        Engine::NeonSim => median_row3_neon_sim(above, here, below, dst),
        Engine::Native => median_row3_native(above, here, below, dst),
    }
}

/// Reference: gather the 9 clamped samples and sort.
pub fn median_row3_scalar(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8]) {
    assert_eq!(here.len(), dst.len());
    let w = dst.len();
    if w == 0 {
        return;
    }
    let cx = |x: isize| x.clamp(0, w as isize - 1) as usize;
    for x in 0..w {
        let mut v = [
            above[cx(x as isize - 1)],
            above[x],
            above[cx(x as isize + 1)],
            here[cx(x as isize - 1)],
            here[x],
            here[cx(x as isize + 1)],
            below[cx(x as isize - 1)],
            below[x],
            below[cx(x as isize + 1)],
        ];
        v.sort_unstable();
        dst[x] = v[4];
    }
}

#[inline]
fn sort3(a: u8, b: u8, c: u8) -> (u8, u8, u8) {
    let lo = a.min(b).min(c);
    let hi = a.max(b).max(c);
    // mid = a + b + c - lo - hi, computed in u16 to avoid overflow.
    let mid = (a as u16 + b as u16 + c as u16 - lo as u16 - hi as u16) as u8;
    (lo, mid, hi)
}

/// Branch-free min/max network in scalar form — what the auto-vectorizer is
/// given.
pub fn median_row3_network_scalar(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8]) {
    assert_eq!(here.len(), dst.len());
    let w = dst.len();
    if w == 0 {
        return;
    }
    let cx = |x: isize| x.clamp(0, w as isize - 1) as usize;
    for x in 0..w {
        let xm = cx(x as isize - 1);
        let xp = cx(x as isize + 1);
        let (lo0, mid0, hi0) = sort3(above[xm], here[xm], below[xm]);
        let (lo1, mid1, hi1) = sort3(above[x], here[x], below[x]);
        let (lo2, mid2, hi2) = sort3(above[xp], here[xp], below[xp]);
        let max_lo = lo0.max(lo1).max(lo2);
        let (_, med_mid, _) = sort3(mid0, mid1, mid2);
        let min_hi = hi0.min(hi1).min(hi2);
        let (_, median, _) = sort3(max_lo, med_mid, min_hi);
        dst[x] = median;
    }
}

macro_rules! median_network {
    ($min:ident, $max:ident, $c0:expr, $c1:expr, $c2:expr) => {{
        // Column sorts.
        let (a0, b0, c0) = $c0;
        let (a1, b1, c1) = $c1;
        let (a2, b2, c2) = $c2;
        let sort3 = |a, b, c| {
            let lo = $min($min(a, b), c);
            let hi = $max($max(a, b), c);
            // mid via min/max exchanges: mid = max(min(a,b), min(max(a,b),c))
            let mid = $max($min(a, b), $min($max(a, b), c));
            (lo, mid, hi)
        };
        let (lo0, mid0, hi0) = sort3(a0, b0, c0);
        let (lo1, mid1, hi1) = sort3(a1, b1, c1);
        let (lo2, mid2, hi2) = sort3(a2, b2, c2);
        let max_lo = $max($max(lo0, lo1), lo2);
        let (_, med_mid, _) = sort3(mid0, mid1, mid2);
        let min_hi = $min($min(hi0, hi1), hi2);
        let (_, median, _) = sort3(max_lo, med_mid, min_hi);
        median
    }};
}

/// SSE2 median: nine unaligned loads feeding the `pminub`/`pmaxub` network.
pub fn median_row3_sse2_sim(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8]) {
    use sse_sim::*;
    assert_eq!(here.len(), dst.len());
    let w = dst.len();
    if w < 18 {
        median_row3_scalar(above, here, below, dst);
        return;
    }
    dst[0] = median_edge(above, here, below, 0, w);
    let mn = |a, b| _mm_min_epu8(a, b);
    let mx = |a, b| _mm_max_epu8(a, b);
    let mut x = 1;
    while x + 16 < w {
        let col = |row: &[u8], dx: usize| _mm_loadu_si128(&row[x - 1 + dx..]);
        let median = median_network!(
            mn,
            mx,
            (col(above, 0), col(here, 0), col(below, 0)),
            (col(above, 1), col(here, 1), col(below, 1)),
            (col(above, 2), col(here, 2), col(below, 2))
        );
        _mm_storeu_si128(&mut dst[x..], median);
        x += 16;
    }
    for xi in x..w {
        dst[xi] = median_edge(above, here, below, xi, w);
    }
}

/// NEON median: the same network with `vminq_u8`/`vmaxq_u8`.
pub fn median_row3_neon_sim(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8]) {
    use neon_sim::*;
    assert_eq!(here.len(), dst.len());
    let w = dst.len();
    if w < 18 {
        median_row3_scalar(above, here, below, dst);
        return;
    }
    dst[0] = median_edge(above, here, below, 0, w);
    let mn = |a, b| vminq_u8(a, b);
    let mx = |a, b| vmaxq_u8(a, b);
    let mut x = 1;
    while x + 16 < w {
        let col = |row: &[u8], dx: usize| vld1q_u8(&row[x - 1 + dx..]);
        let median = median_network!(
            mn,
            mx,
            (col(above, 0), col(here, 0), col(below, 0)),
            (col(above, 1), col(here, 1), col(below, 1)),
            (col(above, 2), col(here, 2), col(below, 2))
        );
        vst1q_u8(&mut dst[x..], median);
        x += 16;
    }
    for xi in x..w {
        dst[xi] = median_edge(above, here, below, xi, w);
    }
}

/// Median on the host's real SIMD unit.
pub fn median_row3_native(above: &[u8], here: &[u8], below: &[u8], dst: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(here.len(), dst.len());
        let w = dst.len();
        if w < 18 {
            median_row3_scalar(above, here, below, dst);
            return;
        }
        dst[0] = median_edge(above, here, below, 0, w);
        let mut x = 1;
        // SAFETY: loads read row[x-1 .. x+17]; with x + 16 < w the furthest
        // byte is x+16 <= w-1; all three rows have length w (asserted for
        // `here`; `above`/`below` come from the same image).
        unsafe {
            let mn = |a, b| _mm_min_epu8(a, b);
            let mx = |a, b| _mm_max_epu8(a, b);
            while x + 16 < w {
                let col = |row: &[u8], dx: usize| {
                    _mm_loadu_si128(row.as_ptr().add(x - 1 + dx) as *const __m128i)
                };
                let median = median_network!(
                    mn,
                    mx,
                    (col(above, 0), col(here, 0), col(below, 0)),
                    (col(above, 1), col(here, 1), col(below, 1)),
                    (col(above, 2), col(here, 2), col(below, 2))
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, median);
                x += 16;
            }
        }
        for xi in x..w {
            dst[xi] = median_edge(above, here, below, xi, w);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        median_row3_network_scalar(above, here, below, dst);
    }
}

/// Scalar median for one (possibly border) pixel.
fn median_edge(above: &[u8], here: &[u8], below: &[u8], x: usize, w: usize) -> u8 {
    let cx = |v: isize| v.clamp(0, w as isize - 1) as usize;
    let xm = cx(x as isize - 1);
    let xp = cx(x as isize + 1);
    let mut v = [
        above[xm], above[x], above[xp], here[xm], here[x], here[xp], below[xm], below[x], below[xp],
    ];
    v.sort_unstable();
    v[4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn all_engines_match_scalar() {
        let src = synthetic_image(131, 47, 71);
        let mut reference = Image::new(131, 47);
        median_blur3(&src, &mut reference, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(131, 47);
            median_blur3(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference), "{engine:?}");
        }
    }

    #[test]
    fn constant_image_unchanged() {
        let src = Image::from_fn(40, 20, |_, _| 88u8);
        for engine in Engine::ALL {
            let mut out = Image::new(40, 20);
            median_blur3(&src, &mut out, engine);
            assert!(out.all_pixels(|p| p == 88), "{engine:?}");
        }
    }

    #[test]
    fn removes_salt_and_pepper_noise() {
        // Isolated impulses in a flat field disappear entirely.
        let mut src = Image::from_fn(32, 32, |_, _| 100u8);
        src.set(10, 10, 255);
        src.set(20, 20, 0);
        let mut out = Image::new(32, 32);
        median_blur3(&src, &mut out, Engine::Native);
        assert!(out.all_pixels(|p| p == 100));
    }

    #[test]
    fn preserves_step_edges() {
        // Unlike the Gaussian, the median keeps a hard step exactly.
        let src = Image::from_fn(32, 32, |x, _| if x < 16 { 10u8 } else { 240 });
        let mut out = Image::new(32, 32);
        median_blur3(&src, &mut out, Engine::Native);
        assert!(out.pixels_eq(&src), "median moved a clean step edge");
    }

    #[test]
    fn median_is_order_statistic() {
        // Known 3x3 block: output centre is the sorted middle element.
        let vals = [13u8, 200, 7, 99, 42, 180, 65, 3, 250];
        let src = Image::from_fn(3, 3, |x, y| vals[y * 3 + x]);
        let mut out = Image::new(3, 3);
        median_blur3(&src, &mut out, Engine::Native);
        let mut sorted = vals;
        sorted.sort_unstable();
        assert_eq!(out.get(1, 1), sorted[4]);
    }

    #[test]
    fn network_equals_sort_exhaustively_on_binary_patterns() {
        // All 2^9 neighbourhoods of {0, 255}: the min/max network must pick
        // the same median as sorting (the median-of-9 is determined by the
        // count of high samples).
        for bits in 0..512u32 {
            let px = |i: u32| if bits & (1 << i) != 0 { 255u8 } else { 0 };
            let above = [px(0), px(1), px(2)];
            let here = [px(3), px(4), px(5)];
            let below = [px(6), px(7), px(8)];
            let mut expect = [0u8; 3];
            median_row3_scalar(&above, &here, &below, &mut expect);
            let mut got = [0u8; 3];
            median_row3_network_scalar(&above, &here, &below, &mut got);
            assert_eq!(got, expect, "pattern {bits:#011b}");
        }
    }

    #[test]
    fn widths_around_vector_boundary() {
        for w in [1usize, 2, 17, 18, 19, 33, 50] {
            let src = synthetic_image(w, 5, 3);
            let mut reference = Image::new(w, 5);
            median_blur3(&src, &mut reference, Engine::Scalar);
            for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                let mut out = Image::new(w, 5);
                median_blur3(&src, &mut out, engine);
                assert!(out.pixels_eq(&reference), "{engine:?} w={w}");
            }
        }
    }
}
