//! Per-kernel, per-strategy instruction mixes.
//!
//! * [`hand_mix`] is **measured**: the intrinsic kernels from
//!   `simdbench-core` are executed on a representative image strip through
//!   the simulated ISA surfaces with `op_trace` counting enabled, then
//!   normalised per output pixel. Loop/address overhead (not visible to the
//!   intrinsic tracer) is added per vector iteration, matching the 6
//!   overhead instructions per 8 pixels of the paper's Section V listing.
//! * [`auto_mix`] is **modelled** from the paper's own disassembly of gcc
//!   4.6 output. Each stream is documented inline with its derivation.

use crate::spec::Isa;
use op_trace::{OpClass, OpMix, NUM_OP_CLASSES};
use pixelimage::Image;
use serde::{Deserialize, Serialize};
use simdbench_core::dispatch::Engine;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The five benchmarks (Table II row 1 is `Convert`; Table III rows are the
/// other four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Benchmark 1 — float→short saturating conversion.
    Convert,
    /// Benchmark 2 — binary image threshold.
    Threshold,
    /// Benchmark 3 — Gaussian blur, σ=1.
    Gaussian,
    /// Benchmark 4 — Sobel filter.
    Sobel,
    /// Benchmark 5 — edge detection.
    Edge,
}

impl Kernel {
    /// All five, in paper order.
    pub const ALL: [Kernel; 5] = [
        Kernel::Convert,
        Kernel::Threshold,
        Kernel::Gaussian,
        Kernel::Sobel,
        Kernel::Edge,
    ];

    /// Full display name.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Convert => "Convert Float to Short",
            Kernel::Threshold => "Binary Image Thresholding",
            Kernel::Gaussian => "Gaussian Blur",
            Kernel::Sobel => "Sobel Filter",
            Kernel::Edge => "Edge Detection",
        }
    }

    /// The abbreviated row label Table III uses.
    pub fn table3_label(self) -> &'static str {
        match self {
            Kernel::Convert => "Convert",
            Kernel::Threshold => "BinThr",
            Kernel::Gaussian => "GauBlu",
            Kernel::Sobel => "SobFil",
            Kernel::Edge => "EdgDet",
        }
    }
}

/// AUTO (compiler auto-vectorized original source) vs HAND (intrinsics) —
/// the paper's two measurement configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// gcc 4.6 `-O3` with vectorization flags on the unmodified source.
    Auto,
    /// Hand-written SSE2/NEON intrinsics.
    Hand,
}

impl Strategy {
    /// The table row label ("AUTO" / "HAND").
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Auto => "AUTO",
            Strategy::Hand => "HAND",
        }
    }
}

/// A fractional per-output-pixel instruction mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelMix(pub [f64; NUM_OP_CLASSES]);

impl PixelMix {
    /// All-zero mix.
    pub fn zero() -> Self {
        PixelMix([0.0; NUM_OP_CLASSES])
    }

    /// Builds from `(class, per-pixel count)` pairs.
    pub fn from_pairs(pairs: &[(OpClass, f64)]) -> Self {
        let mut mix = Self::zero();
        for &(c, n) in pairs {
            mix.0[c.index()] += n;
        }
        mix
    }

    /// Normalises a measured [`OpMix`] over `pixels` output pixels.
    pub fn from_opmix(mix: &OpMix, pixels: u64) -> Self {
        let mut out = Self::zero();
        for class in OpClass::ALL {
            out.0[class.index()] = mix.get(class) as f64 / pixels as f64;
        }
        out
    }

    /// Per-pixel count for one class.
    pub fn get(&self, class: OpClass) -> f64 {
        self.0[class.index()]
    }

    /// Adds `n` per-pixel ops of `class`.
    pub fn add(&mut self, class: OpClass, n: f64) {
        self.0[class.index()] += n;
    }

    /// Scales every class by `f` (sharing factors in fused pipelines).
    pub fn scaled(&self, f: f64) -> PixelMix {
        let mut out = *self;
        for v in out.0.iter_mut() {
            *v *= f;
        }
        out
    }

    /// Sums two mixes (pipelines such as edge detection).
    pub fn plus(&self, other: &PixelMix) -> PixelMix {
        let mut out = *self;
        for i in 0..NUM_OP_CLASSES {
            out.0[i] += other.0[i];
        }
        out
    }

    /// SIMD ops per pixel.
    pub fn simd_total(&self) -> f64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_simd())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Scalar compute ops per pixel (loads/stores/ALU/converts).
    pub fn scalar_total(&self) -> f64 {
        self.get(OpClass::ScalarLoad)
            + self.get(OpClass::ScalarStore)
            + self.get(OpClass::ScalarAlu)
            + self.get(OpClass::ScalarConvert)
    }

    /// Memory-touching ops per pixel.
    pub fn memory_total(&self) -> f64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_memory())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Total ops per pixel.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

/// Loop/address overhead charged per 8-pixel vector iteration of a HAND
/// loop: the paper's listing shows 5 address/pointer updates plus 1 branch.
const HAND_LOOP_ADDR_PER_8PX: f64 = 5.0 / 8.0;
const HAND_LOOP_BRANCH_PER_8PX: f64 = 1.0 / 8.0;

/// The strip the HAND kernels are traced on. Tall enough for the 7-tap
/// Gaussian's vertical reuse, wide enough that border columns are noise.
const TRACE_W: usize = 256;
const TRACE_H: usize = 24;

fn measure_hand(kernel: Kernel, isa: Isa) -> PixelMix {
    let engine = match isa {
        Isa::Sse2 => Engine::Sse2Sim,
        Isa::Neon => Engine::NeonSim,
    };
    let src = pixelimage::synthetic_image(TRACE_W, TRACE_H, 0xD0);
    let pixels = (TRACE_W * TRACE_H) as u64;
    let (_, traced) = op_trace::trace(|| match kernel {
        Kernel::Convert => {
            let srcf = pixelimage::convert::u8_to_f32(&src, 100.0, -10000.0);
            let mut dst = Image::<i16>::new(TRACE_W, TRACE_H);
            simdbench_core::convert::convert_f32_to_i16(&srcf, &mut dst, engine);
        }
        Kernel::Threshold => {
            let mut dst = Image::<u8>::new(TRACE_W, TRACE_H);
            simdbench_core::threshold::threshold_u8(
                &src,
                &mut dst,
                128,
                255,
                simdbench_core::ThresholdType::Binary,
                engine,
            );
        }
        Kernel::Gaussian => {
            let mut dst = Image::<u8>::new(TRACE_W, TRACE_H);
            simdbench_core::gaussian::gaussian_blur(&src, &mut dst, engine);
        }
        Kernel::Sobel => {
            let mut dst = Image::<i16>::new(TRACE_W, TRACE_H);
            simdbench_core::sobel::sobel(
                &src,
                &mut dst,
                simdbench_core::sobel::SobelDirection::X,
                engine,
            );
        }
        Kernel::Edge => {
            let mut dst = Image::<u8>::new(TRACE_W, TRACE_H);
            simdbench_core::edge::edge_detect(&src, &mut dst, 96, engine);
        }
    });
    let mut mix = PixelMix::from_opmix(&traced, pixels);
    // Loop-control overhead per vector iteration (one iteration covers 8
    // pixels for the widening kernels; approximate uniformly).
    let passes = match kernel {
        Kernel::Convert | Kernel::Threshold => 1.0,
        Kernel::Gaussian | Kernel::Sobel => 2.0,
        Kernel::Edge => 5.0, // 2 sobel passes x2 + magnitude/threshold
    };
    mix.add(OpClass::AddrArith, HAND_LOOP_ADDR_PER_8PX * passes);
    mix.add(OpClass::Branch, HAND_LOOP_BRANCH_PER_8PX * passes);
    mix
}

/// The measured HAND instruction mix per output pixel (cached per
/// kernel/ISA).
pub fn hand_mix(kernel: Kernel, isa: Isa) -> PixelMix {
    static CACHE: OnceLock<Mutex<HashMap<(Kernel, Isa), PixelMix>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Poison-tolerant: a panic in an unrelated caller must not wedge the
    // cache for every later query (the map holds plain Copy values, so a
    // poisoned guard is still coherent).
    if let Some(mix) = cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&(kernel, isa))
    {
        return *mix;
    }
    let mix = measure_hand(kernel, isa);
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert((kernel, isa), mix);
    mix
}

/// The modelled gcc 4.6 AUTO instruction mix per output pixel.
///
/// Derivations (per pixel unless noted):
///
/// * **Convert / NEON** — the paper's Section V listing verbatim: `vldmia`
///   (1 scalar load), `vcvt.f64.f32` + `vmov` (2 scalar converts),
///   `bl lrint` (1 libcall), the 5-instruction saturation sequence
///   (`add/uxth/cmp/it/mov`), `strh` (1 store), 2 address updates, 1
///   branch.
/// * **Convert / SSE2** — gcc keeps the loop scalar but OpenCV's `cvRound`
///   inlines `_mm_set_sd` + `_mm_cvtsd_si32` (the paper quotes the
///   `#if defined __SSE2__` source), so the libcall is replaced by 2
///   scalar-domain SIMD ops; the saturation chain and loop shape match the
///   ARM listing.
/// * **Threshold** — gcc 4.6 does not if-convert the data-dependent
///   branch (the Maleki et al. study the paper cites found exactly this
///   class of failure): load, 2 ALU (compare + select path), a
///   data-dependent branch, store, 1 address update, 1 loop branch.
/// * **Gaussian** — the two tap loops stay scalar (non-unit stride across
///   rows defeats the vectorizer): 7 loads + 13 ALU + 1 store per pass
///   plus loop control, two passes.
/// * **Sobel** — same structure with 3-tap kernels.
/// * **Edge** — two Sobel passes plus magnitude (2 loads, 4 ALU, 1 store)
///   plus the threshold stream.
pub fn auto_mix(kernel: Kernel, isa: Isa) -> PixelMix {
    use OpClass::*;
    match kernel {
        Kernel::Convert => match isa {
            Isa::Neon => PixelMix::from_pairs(&[
                (ScalarLoad, 1.0),
                (ScalarConvert, 2.0),
                (LibCall, 1.0),
                (ScalarAlu, 5.0),
                (ScalarStore, 1.0),
                (AddrArith, 2.0),
                (Branch, 1.0),
            ]),
            Isa::Sse2 => PixelMix::from_pairs(&[
                (ScalarLoad, 1.0),
                (SimdAlu, 1.0),     // _mm_set_sd
                (SimdConvert, 1.0), // _mm_cvtsd_si32
                (ScalarAlu, 6.0),
                (ScalarStore, 1.0),
                (AddrArith, 2.0),
                (Branch, 1.0),
            ]),
        },
        Kernel::Threshold => PixelMix::from_pairs(&[
            (ScalarLoad, 1.0),
            // compare + select, plus amortised mispredictions of the
            // data-dependent branch folded in as serial work.
            (ScalarAlu, 3.0),
            (Branch, 1.0),
            (ScalarStore, 1.0),
            (AddrArith, 1.0),
        ]),
        Kernel::Gaussian => {
            // Two 7-tap scalar passes.
            let pass = PixelMix::from_pairs(&[
                (ScalarLoad, 7.0),
                (ScalarAlu, 13.0), // 7 multiplies + 6 adds
                (ScalarStore, 1.0),
                (AddrArith, 2.0),
                (Branch, 1.0),
            ]);
            pass.plus(&pass)
        }
        Kernel::Sobel => {
            // gcc fully unrolls the constant 3-tap loops, so loop control
            // amortises over unrolled bodies.
            let hpass = PixelMix::from_pairs(&[
                (ScalarLoad, 2.0),
                (ScalarAlu, 1.0),
                (ScalarStore, 1.0),
                (AddrArith, 1.0),
                (Branch, 0.5),
            ]);
            let vpass = PixelMix::from_pairs(&[
                (ScalarLoad, 3.0),
                (ScalarAlu, 3.0),
                (ScalarStore, 1.0),
                (AddrArith, 1.0),
                (Branch, 0.5),
            ]);
            hpass.plus(&vpass)
        }
        Kernel::Edge => {
            // The second Sobel pass shares its loads/loop control with the
            // first (gcc keeps both in one function), so it is charged at
            // 55 % of a standalone pass.
            let sobel = auto_mix(Kernel::Sobel, isa);
            let magnitude = PixelMix::from_pairs(&[
                (ScalarLoad, 2.0),
                (ScalarAlu, 3.0),
                (ScalarStore, 1.0),
                (AddrArith, 1.0),
                (Branch, 1.0),
            ]);
            let threshold = auto_mix(Kernel::Threshold, isa);
            sobel
                .plus(&sobel.scaled(0.55))
                .plus(&magnitude)
                .plus(&threshold)
        }
    }
}

/// Returns the mix for a (kernel, strategy, isa) triple.
pub fn mix_for(kernel: Kernel, strategy: Strategy, isa: Isa) -> PixelMix {
    match strategy {
        Strategy::Auto => auto_mix(kernel, isa),
        Strategy::Hand => hand_mix(kernel, isa),
    }
}

/// DRAM bytes moved per output pixel, assuming the large intermediate
/// images spill to DRAM but the `ksize`-row vertical working set is
/// captured by the last-level cache (validated by the `cache` module's LRU
/// simulation in the integration tests).
pub fn dram_bytes_per_pixel(kernel: Kernel, width: usize, llc_kb: u32) -> f64 {
    let llc_bytes = llc_kb as usize * 1024;
    match kernel {
        // f32 in, i16 out.
        Kernel::Convert => 4.0 + 2.0,
        // u8 in, u8 out.
        Kernel::Threshold => 1.0 + 1.0,
        Kernel::Gaussian => {
            // src read + u16 mid write + mid read(s) + dst write.
            let row_set = 7 * width * 2;
            let mid_reads = if row_set <= llc_bytes / 2 { 2.0 } else { 14.0 };
            1.0 + 2.0 + mid_reads + 1.0
        }
        Kernel::Sobel => {
            // src read + i16 mid write/read + i16 dst write.
            let row_set = 3 * width * 2;
            let mid_reads = if row_set <= llc_bytes / 2 { 2.0 } else { 6.0 };
            1.0 + 2.0 + mid_reads + 2.0
        }
        Kernel::Edge => {
            // Two Sobel passes (u8 dst replaced by i16 gradient images that
            // are written then re-read for the magnitude), + binary output.
            let sobel = dram_bytes_per_pixel(Kernel::Sobel, width, llc_kb);
            2.0 * sobel + 2.0 + 2.0 + 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_convert_neon_matches_section_v() {
        // 8 SIMD ops per 8 pixels: 2 loads, 4 converts (2 cvt + 2 narrow),
        // 1 combine, 1 store.
        let mix = hand_mix(Kernel::Convert, Isa::Neon);
        assert!(
            (mix.simd_total() - 1.0).abs() < 0.05,
            "{}",
            mix.simd_total()
        );
        // Plus ~6 overhead ops per 8 pixels.
        let overhead = mix.get(OpClass::AddrArith) + mix.get(OpClass::Branch);
        assert!((overhead - 6.0 / 8.0).abs() < 0.05, "{overhead}");
        // Total ~14 ops per 8 pixels.
        assert!(
            (mix.total() * 8.0 - 14.0).abs() < 0.6,
            "{}",
            mix.total() * 8.0
        );
    }

    #[test]
    fn hand_convert_sse_has_fewer_ops_than_neon() {
        // The SSE pack is single-step where NEON needs narrow+narrow+combine.
        let sse = hand_mix(Kernel::Convert, Isa::Sse2);
        let neon = hand_mix(Kernel::Convert, Isa::Neon);
        assert!(sse.simd_total() < neon.simd_total());
    }

    #[test]
    fn auto_mixes_are_mostly_scalar() {
        for kernel in Kernel::ALL {
            for isa in [Isa::Sse2, Isa::Neon] {
                let auto = auto_mix(kernel, isa);
                assert!(
                    auto.scalar_total() > auto.simd_total(),
                    "{kernel:?}/{isa:?} AUTO should be scalar-dominated"
                );
            }
        }
    }

    #[test]
    fn auto_convert_differs_by_isa_exactly_as_paper_describes() {
        let arm = auto_mix(Kernel::Convert, Isa::Neon);
        let intel = auto_mix(Kernel::Convert, Isa::Sse2);
        // ARM pays a libcall per pixel; Intel inlines the SSE cvRound.
        assert_eq!(arm.get(OpClass::LibCall), 1.0);
        assert_eq!(intel.get(OpClass::LibCall), 0.0);
        assert!(intel.get(OpClass::SimdConvert) > 0.0);
    }

    #[test]
    fn hand_beats_auto_on_instruction_count_everywhere() {
        for kernel in Kernel::ALL {
            for isa in [Isa::Sse2, Isa::Neon] {
                let hand = hand_mix(kernel, isa);
                let auto = auto_mix(kernel, isa);
                assert!(
                    auto.total() > 1.5 * hand.total(),
                    "{kernel:?}/{isa:?}: auto {} vs hand {}",
                    auto.total(),
                    hand.total()
                );
            }
        }
    }

    #[test]
    fn edge_mix_is_heaviest_auto() {
        let isa = Isa::Neon;
        let edge = auto_mix(Kernel::Edge, isa).total();
        for kernel in [Kernel::Convert, Kernel::Threshold, Kernel::Sobel] {
            assert!(edge > auto_mix(kernel, isa).total(), "{kernel:?}");
        }
    }

    #[test]
    fn dram_traffic_ordering() {
        // At VGA width everything's working set fits the bigger caches.
        let w = 640;
        let llc = 1024;
        let convert = dram_bytes_per_pixel(Kernel::Convert, w, llc);
        let threshold = dram_bytes_per_pixel(Kernel::Threshold, w, llc);
        let gaussian = dram_bytes_per_pixel(Kernel::Gaussian, w, llc);
        let edge = dram_bytes_per_pixel(Kernel::Edge, w, llc);
        assert_eq!(threshold, 2.0);
        assert_eq!(convert, 6.0);
        assert!(gaussian > threshold);
        assert!(edge > gaussian);
    }

    #[test]
    fn small_cache_increases_filter_traffic() {
        // A cache too small for 7 rows of an 8 Mpx image forces tap
        // re-reads from DRAM.
        let wide = 3264;
        let big = dram_bytes_per_pixel(Kernel::Gaussian, wide, 1024);
        let tiny = dram_bytes_per_pixel(Kernel::Gaussian, wide, 32);
        assert!(tiny > big);
    }

    #[test]
    fn mix_arithmetic() {
        let a = PixelMix::from_pairs(&[(OpClass::SimdAlu, 1.5), (OpClass::Branch, 0.5)]);
        let b = PixelMix::from_pairs(&[(OpClass::SimdAlu, 0.5)]);
        let sum = a.plus(&b);
        assert_eq!(sum.get(OpClass::SimdAlu), 2.0);
        assert_eq!(sum.total(), 2.5);
        assert_eq!(sum.simd_total(), 2.0);
    }
}
