#!/usr/bin/env bash
# Full local CI: build, test, lint, format check.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> pool stress (scheduler regressions fail fast)"
cargo test -q -p rayon pool_stress_many_small_calls

echo "==> chaos stress (fault-tolerance regressions fail fast; pinned seed)"
cargo test -q -p rayon --test chaos
cargo run -q --release -p repro-harness --bin repro -- chaos --quick --seed 42

echo "==> telemetry fail-fast (overhead smoke + pool-counter aggregation)"
cargo test -q -p simdbench-core --test telemetry_overhead
cargo test -q -p rayon --test telemetry

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
