//! Floating-point lane operations and float<->int conversions.

use crate::lanes::*;
use crate::rounding;

macro_rules! float_common_ops {
    ($name:ident, $elem:ty, $mask:ident, $maskelem:ty, $n:expr) => {
        impl $name {
            /// Lane-wise addition.
            #[inline]
            pub fn add(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a + b)
            }

            /// Lane-wise subtraction.
            #[inline]
            pub fn sub(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a - b)
            }

            /// Lane-wise multiplication.
            #[inline]
            pub fn mul(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a * b)
            }

            /// Lane-wise division.
            #[inline]
            pub fn div(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| a / b)
            }

            /// Fused-looking multiply-add `self + a * b` computed unfused,
            /// matching NEON `vmla` on the paper's VFPv3/NEON parts (which
            /// perform a rounded multiply then a rounded add).
            #[inline]
            pub fn mul_add(self, a: Self, b: Self) -> Self {
                let prod = a.mul(b);
                self.add(prod)
            }

            /// Lane-wise minimum with IEEE `minps` semantics: if either
            /// operand is NaN, the *second* operand is returned.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| if a < b { a } else { b })
            }

            /// Lane-wise maximum with IEEE `maxps` semantics.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                self.zip(rhs, |a, b| if a > b { a } else { b })
            }

            /// Lane-wise square root.
            #[inline]
            pub fn sqrt(self) -> Self {
                self.map(|a| a.sqrt())
            }

            /// Lane-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                self.map(|a| a.abs())
            }

            /// Lane-wise negation.
            #[inline]
            pub fn neg(self) -> Self {
                self.map(|a| -a)
            }

            /// Lane-wise `self > rhs` mask (all-ones for true; NaN compares
            /// false, matching `cmpgtps` / `vcgtq_f32`).
            #[inline]
            pub fn cmp_gt(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] > rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise `self >= rhs` mask.
            #[inline]
            pub fn cmp_ge(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] >= rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise equality mask (NaN != NaN).
            #[inline]
            pub fn cmp_eq(self, rhs: Self) -> $mask {
                let mut out = [0 as $maskelem; $n];
                for i in 0..$n {
                    out[i] = if self.0[i] == rhs.0[i] {
                        <$maskelem>::MAX
                    } else {
                        0
                    };
                }
                $mask(out)
            }

            /// Lane-wise `self < rhs` mask.
            #[inline]
            pub fn cmp_lt(self, rhs: Self) -> $mask {
                rhs.cmp_gt(self)
            }

            /// Lane-wise `self <= rhs` mask.
            #[inline]
            pub fn cmp_le(self, rhs: Self) -> $mask {
                rhs.cmp_ge(self)
            }

            /// Horizontal sum (left-to-right order, matching a scalar loop).
            #[inline]
            pub fn reduce_sum(self) -> $elem {
                self.fold(0.0, |acc, x| acc + x)
            }
        }
    };
}

float_common_ops!(F32x4, f32, U32x4, u32, 4);
float_common_ops!(F32x2, f32, U32x2, u32, 2);
float_common_ops!(F64x2, f64, U64x2, u64, 2);

impl F32x4 {
    /// Converts to `i32` lanes, truncating toward zero
    /// (`_mm_cvttps_epi32` / ARMv7 `vcvtq_s32_f32`).
    ///
    /// Out-of-range and NaN lanes follow the *NEON* convention of saturating
    /// (NaN becomes 0); use [`Self::to_i32_truncate_sse`] for the SSE
    /// "integer indefinite" convention.
    #[inline]
    pub fn to_i32_truncate(self) -> I32x4 {
        I32x4([
            rounding::f32_to_i32_truncate_saturate(self.0[0]),
            rounding::f32_to_i32_truncate_saturate(self.0[1]),
            rounding::f32_to_i32_truncate_saturate(self.0[2]),
            rounding::f32_to_i32_truncate_saturate(self.0[3]),
        ])
    }

    /// Converts to `i32` lanes, truncating, with SSE out-of-range semantics
    /// (`0x8000_0000` for NaN/overflow).
    #[inline]
    pub fn to_i32_truncate_sse(self) -> I32x4 {
        I32x4([
            rounding::f32_to_i32_truncate_sse(self.0[0]),
            rounding::f32_to_i32_truncate_sse(self.0[1]),
            rounding::f32_to_i32_truncate_sse(self.0[2]),
            rounding::f32_to_i32_truncate_sse(self.0[3]),
        ])
    }

    /// Converts to `i32` lanes rounding to nearest, ties to even
    /// (`_mm_cvtps_epi32` under the default MXCSR rounding mode, and ARMv8
    /// `vcvtnq_s32_f32`), saturating out-of-range values.
    #[inline]
    pub fn to_i32_round(self) -> I32x4 {
        I32x4([
            rounding::f32_to_i32_round_saturate(self.0[0]),
            rounding::f32_to_i32_round_saturate(self.0[1]),
            rounding::f32_to_i32_round_saturate(self.0[2]),
            rounding::f32_to_i32_round_saturate(self.0[3]),
        ])
    }

    /// Converts to `i32` lanes rounding to nearest-even with SSE
    /// out-of-range semantics (`0x8000_0000`).
    #[inline]
    pub fn to_i32_round_sse(self) -> I32x4 {
        I32x4([
            rounding::f32_to_i32_round_sse(self.0[0]),
            rounding::f32_to_i32_round_sse(self.0[1]),
            rounding::f32_to_i32_round_sse(self.0[2]),
            rounding::f32_to_i32_round_sse(self.0[3]),
        ])
    }

    /// Reciprocal estimate (`rcpps` / `vrecpeq_f32`), implemented exactly as
    /// `1/x` — the simulated platforms do not model the reduced-precision
    /// estimate tables.
    #[inline]
    pub fn recip_estimate(self) -> Self {
        self.map(|a| 1.0 / a)
    }

    /// Reciprocal square-root estimate (`rsqrtps` / `vrsqrteq_f32`).
    #[inline]
    pub fn rsqrt_estimate(self) -> Self {
        self.map(|a| 1.0 / a.sqrt())
    }
}

impl I32x4 {
    /// Converts each lane to `f32` (`_mm_cvtepi32_ps` / `vcvtq_f32_s32`).
    #[inline]
    pub fn to_f32(self) -> F32x4 {
        F32x4([
            self.0[0] as f32,
            self.0[1] as f32,
            self.0[2] as f32,
            self.0[3] as f32,
        ])
    }
}

impl U32x4 {
    /// Converts each lane to `f32` (`vcvtq_f32_u32`).
    #[inline]
    pub fn to_f32(self) -> F32x4 {
        F32x4([
            self.0[0] as f32,
            self.0[1] as f32,
            self.0[2] as f32,
            self.0[3] as f32,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arith() {
        let a = F32x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = F32x4::new([0.5, 0.5, 0.5, 0.5]);
        assert_eq!(a.add(b).to_array(), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.sub(b).to_array(), [0.5, 1.5, 2.5, 3.5]);
        assert_eq!(a.mul(b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.div(b).to_array(), [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn mul_add_is_unfused() {
        let acc = F32x4::splat(1.0);
        let a = F32x4::splat(2.0);
        let b = F32x4::splat(3.0);
        assert_eq!(acc.mul_add(a, b).to_array(), [7.0; 4]);
    }

    #[test]
    fn min_max_nan_second_operand_rule() {
        let a = F32x4::new([f32::NAN, 1.0, 5.0, f32::NAN]);
        let b = F32x4::new([2.0, f32::NAN, 3.0, f32::NAN]);
        let min = a.min(b);
        // minps: NaN in either lane -> second operand (b).
        assert_eq!(min.lane(0), 2.0);
        assert!(min.lane(1).is_nan());
        assert_eq!(min.lane(2), 3.0);
        assert!(min.lane(3).is_nan());
    }

    #[test]
    fn compare_masks() {
        let a = F32x4::new([1.0, 2.0, f32::NAN, 4.0]);
        let b = F32x4::splat(2.0);
        let gt = a.cmp_gt(b);
        assert_eq!(gt.to_array(), [0, 0, 0, u32::MAX]);
        let ge = a.cmp_ge(b);
        assert_eq!(ge.to_array(), [0, u32::MAX, 0, u32::MAX]);
        let lt = a.cmp_lt(b);
        assert_eq!(lt.to_array(), [u32::MAX, 0, 0, 0]);
    }

    #[test]
    fn truncate_vs_round_conversion() {
        let v = F32x4::new([1.5, 2.5, -1.5, -2.5]);
        // Truncation drops toward zero.
        assert_eq!(v.to_i32_truncate().to_array(), [1, 2, -1, -2]);
        // Round-ties-even: 1.5->2, 2.5->2, -1.5->-2, -2.5->-2.
        assert_eq!(v.to_i32_round().to_array(), [2, 2, -2, -2]);
    }

    #[test]
    fn conversion_saturation_conventions() {
        let big = F32x4::new([3e9, -3e9, f32::NAN, 100.0]);
        assert_eq!(
            big.to_i32_truncate().to_array(),
            [i32::MAX, i32::MIN, 0, 100]
        );
        assert_eq!(
            big.to_i32_truncate_sse().to_array(),
            [i32::MIN, i32::MIN, i32::MIN, 100]
        );
        assert_eq!(big.to_i32_round_sse().lane(2), i32::MIN);
    }

    #[test]
    fn int_to_float_roundtrip_small() {
        let v = I32x4::new([-7, 0, 42, 1_000_000]);
        assert_eq!(v.to_f32().to_array(), [-7.0, 0.0, 42.0, 1_000_000.0]);
        assert_eq!(v.to_f32().to_i32_round().to_array(), v.to_array());
    }

    #[test]
    fn reduce_sum_order() {
        let v = F32x4::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.reduce_sum(), 10.0);
    }

    #[test]
    fn f64_lanes() {
        let a = F64x2::new([1.5, -2.5]);
        let b = F64x2::splat(2.0);
        assert_eq!(a.mul(b).to_array(), [3.0, -5.0]);
        assert_eq!(a.cmp_lt(b).to_array(), [u64::MAX, u64::MAX]);
    }

    #[test]
    fn estimates_match_exact_math_in_sim() {
        let v = F32x4::new([1.0, 4.0, 16.0, 64.0]);
        assert_eq!(v.recip_estimate().to_array(), [1.0, 0.25, 0.0625, 0.015625]);
        assert_eq!(v.rsqrt_estimate().to_array(), [1.0, 0.5, 0.25, 0.125]);
    }
}
