//! The fault matrix for the fallible (`try_*`) kernel entry points:
//! every malformed-input family must map to its exact [`KernelError`]
//! variant, on every kernel that shares the contract — and the degenerate
//! shapes that are *valid* (1×N, N×1) must keep succeeding bit-exactly.
//!
//! No failpoints are armed here; this file exercises pure validation.
//! (Injected-fault behaviour lives in `fault_injection.rs`.)

use pixelimage::{synthetic_image, Image};
use simdbench_core::dispatch::Engine;
use simdbench_core::error::{validate_frame, KernelError, MAX_PIXELS};
use simdbench_core::kernelgen::{paper_gaussian_kernel, FixedKernel};
use simdbench_core::pipeline::{
    try_fused_edge_detect_with, try_fused_gaussian_blur_with, try_fused_sobel_with,
    try_par_fused_edge_detect_with, BandPlan,
};
use simdbench_core::scratch::Scratch;
use simdbench_core::sobel::SobelDirection;
use simdbench_core::threshold::ThresholdType;

#[test]
fn zero_size_frames_error_not_panic() {
    let engine = Engine::Native;
    let z8 = Image::<u8>::new(0, 5);
    let mut zd8 = Image::<u8>::new(0, 5);
    let mut zi16 = Image::<i16>::new(0, 5);

    let expect = Err(KernelError::ZeroSize {
        width: 0,
        height: 5,
    });
    assert_eq!(
        simdbench_core::sobel::try_sobel(&z8, &mut zi16, SobelDirection::X, engine),
        expect
    );
    assert_eq!(
        simdbench_core::edge::try_edge_detect(&z8, &mut zd8, 96, engine),
        expect
    );
    assert_eq!(
        simdbench_core::threshold::try_threshold_u8(
            &z8,
            &mut zd8,
            96,
            255,
            ThresholdType::Binary,
            engine
        ),
        expect
    );
    assert_eq!(
        simdbench_core::gaussian::try_gaussian_blur_kernel(
            &z8,
            &mut zd8,
            &paper_gaussian_kernel(),
            engine
        ),
        expect
    );
    let zf32 = Image::<f32>::new(0, 5);
    assert_eq!(
        simdbench_core::convert::try_convert_f32_to_i16(&zf32, &mut zi16, engine),
        expect
    );
    // Height-zero as well as width-zero.
    let h0 = Image::<u8>::new(7, 0);
    let mut h0d = Image::<u8>::new(7, 0);
    assert_eq!(
        simdbench_core::edge::try_edge_detect(&h0, &mut h0d, 96, engine),
        Err(KernelError::ZeroSize {
            width: 7,
            height: 0
        })
    );
    // The panicking shims keep the historical no-op semantics.
    simdbench_core::edge::edge_detect(&z8, &mut zd8, 96, engine);
}

#[test]
fn geometry_mismatches_map_to_their_variants() {
    let engine = Engine::Native;
    let src = synthetic_image(16, 8, 1);
    let mut narrow = Image::<u8>::new(15, 8);
    let mut short = Image::<u8>::new(16, 7);

    assert_eq!(
        simdbench_core::edge::try_edge_detect(&src, &mut narrow, 96, engine),
        Err(KernelError::WidthMismatch { src: 16, dst: 15 })
    );
    assert_eq!(
        simdbench_core::edge::try_edge_detect(&src, &mut short, 96, engine),
        Err(KernelError::HeightMismatch { src: 8, dst: 7 })
    );
    // Width is checked before height when both disagree.
    let mut both = Image::<u8>::new(15, 7);
    assert_eq!(
        simdbench_core::edge::try_edge_detect(&src, &mut both, 96, engine),
        Err(KernelError::WidthMismatch { src: 16, dst: 15 })
    );

    // Multi-plane color: a plane disagreeing with the blue reference.
    let b = synthetic_image(16, 8, 2);
    let g = synthetic_image(16, 8, 3);
    let r_bad = synthetic_image(16, 7, 4);
    let mut gray = Image::<u8>::new(16, 8);
    assert_eq!(
        simdbench_core::color::try_bgr_to_gray(&b, &g, &r_bad, &mut gray, engine),
        Err(KernelError::ChannelMismatch {
            expected: (16, 8),
            got: (16, 7)
        })
    );
}

#[test]
fn max_dimension_overflow_is_rejected_before_any_allocation() {
    // Frames beyond MAX_PIXELS cannot be materialised in a test, so the
    // addressing-limit family is checked at the validation layer the
    // try_* entry points share.
    let side = 1usize << 17; // 2^34 pixels > 2^32
    assert_eq!(
        validate_frame(side, side, side),
        Err(KernelError::DimensionOverflow {
            width: side,
            height: side,
        })
    );
    // Stride × height can overflow even when width × height does not.
    let wide_stride = (MAX_PIXELS as usize) / 4;
    assert_eq!(
        validate_frame(16, 8, wide_stride),
        Err(KernelError::DimensionOverflow {
            width: 16,
            height: 8,
        })
    );
    // A stride shorter than the row is rows-overlap corruption.
    assert_eq!(
        validate_frame(100, 10, 64),
        Err(KernelError::StrideMismatch {
            stride: 64,
            width: 100
        })
    );
    // The boundary itself is accepted: 2^32 pixels exactly.
    assert_eq!(validate_frame(1 << 16, 1 << 16, 1 << 16), Ok(()));
}

#[test]
fn one_by_n_and_n_by_one_frames_succeed_and_match_the_shims() {
    // Degenerate-but-valid shapes must take the Ok path and produce the
    // same pixels as the historical panicking entry points.
    for (w, h) in [(1, 64), (64, 1), (1, 1)] {
        let src = synthetic_image(w, h, (w * 31 + h) as u64);
        let mut expect = Image::<u8>::new(w, h);
        simdbench_core::edge::edge_detect(&src, &mut expect, 96, Engine::Native);
        let mut got = Image::<u8>::new(w, h);
        assert_eq!(
            simdbench_core::edge::try_edge_detect(&src, &mut got, 96, Engine::Native),
            Ok(())
        );
        assert!(got.pixels_eq(&expect), "{w}x{h}");
    }
}

#[test]
fn non_q8_kernels_are_rejected_everywhere() {
    let src = synthetic_image(32, 16, 9);
    let mut dst = Image::<u8>::new(32, 16);
    let bad = FixedKernel {
        weights: vec![1, 2, 3, 2, 1],
        radius: 2,
    };
    assert_eq!(
        simdbench_core::gaussian::try_gaussian_blur_kernel(&src, &mut dst, &bad, Engine::Native),
        Err(KernelError::BadKernel { sum: 9 })
    );
    let mut scratch = Scratch::new();
    assert_eq!(
        try_fused_gaussian_blur_with(&src, &mut dst, &bad, Engine::Native, &mut scratch),
        Err(KernelError::BadKernel { sum: 9 })
    );
}

#[test]
fn capped_scratch_surfaces_arena_exhausted_from_the_fused_pipeline() {
    let src = synthetic_image(128, 64, 5);
    let mut dst_u8 = Image::<u8>::new(128, 64);
    let mut dst_i16 = Image::<i16>::new(128, 64);
    let mut scratch = Scratch::with_cap_bytes(1);
    let kernel = paper_gaussian_kernel();

    match try_fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, Engine::Native, &mut scratch) {
        Err(KernelError::ArenaExhausted { requested, cap }) => {
            assert_eq!(cap, 1);
            assert!(requested > 1);
        }
        other => panic!("expected ArenaExhausted, got {other:?}"),
    }
    assert!(matches!(
        try_fused_sobel_with(
            &src,
            &mut dst_i16,
            SobelDirection::X,
            Engine::Native,
            &mut scratch
        ),
        Err(KernelError::ArenaExhausted { .. })
    ));
    assert!(matches!(
        try_fused_edge_detect_with(&src, &mut dst_u8, 96, Engine::Native, &mut scratch),
        Err(KernelError::ArenaExhausted { .. })
    ));
    // Nothing was allocated and nothing is outstanding after rejections.
    assert_eq!(scratch.live_bytes(), 0);
    assert_eq!(scratch.outstanding(), 0);

    // Lifting the cap lets the identical call succeed.
    scratch.set_cap_bytes(None);
    assert_eq!(
        try_fused_gaussian_blur_with(&src, &mut dst_u8, &kernel, Engine::Native, &mut scratch),
        Ok(())
    );
    assert_eq!(scratch.outstanding(), 0, "workspace returned after use");
}

#[test]
fn parallel_fused_pipeline_validates_like_the_sequential_one() {
    let src = synthetic_image(16, 8, 11);
    let mut narrow = Image::<u8>::new(15, 8);
    let plan = BandPlan { band_rows: 4 };
    assert_eq!(
        try_par_fused_edge_detect_with(&src, &mut narrow, 96, Engine::Native, &plan),
        Err(KernelError::WidthMismatch { src: 16, dst: 15 })
    );
    let z = Image::<u8>::new(0, 5);
    let mut zd = Image::<u8>::new(0, 5);
    assert_eq!(
        try_par_fused_edge_detect_with(&z, &mut zd, 96, Engine::Native, &plan),
        Err(KernelError::ZeroSize {
            width: 0,
            height: 5
        })
    );
}
