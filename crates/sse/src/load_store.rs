//! Data-movement intrinsics (category *a* of the paper's taxonomy).

use crate::types::{__m128, __m128d, __m128i, assert_aligned, read_q, write_q, MemElem};
use op_trace::{count, OpClass};
use simd_vector::{F32x4, F64x2, I16x8, I32x4, I8x16, U8x16};

// ---------------------------------------------------------------------------
// Loads
// ---------------------------------------------------------------------------

/// `movups` — loads four floats from the front of `src`, no alignment
/// requirement.
#[inline]
#[track_caller]
pub fn _mm_loadu_ps(src: &[f32]) -> __m128 {
    count(OpClass::SimdLoad);
    F32x4::load(src)
}

/// `movaps` — aligned load of four floats; panics when `src` is not 16-byte
/// aligned (hardware would #GP).
#[inline]
#[track_caller]
pub fn _mm_load_ps(src: &[f32]) -> __m128 {
    assert_aligned(src.as_ptr());
    count(OpClass::SimdLoad);
    F32x4::load(src)
}

/// `movupd` — unaligned load of two doubles.
#[inline]
#[track_caller]
pub fn _mm_loadu_pd(src: &[f64]) -> __m128d {
    count(OpClass::SimdLoad);
    F64x2::load(src)
}

/// `movdqu` — unaligned 128-bit integer load, element type chosen by the
/// slice (`u8`, `i16`, `i32`, ...).
#[inline]
#[track_caller]
pub fn _mm_loadu_si128<T: MemElem>(src: &[T]) -> __m128i {
    count(OpClass::SimdLoad);
    __m128i(read_q(src))
}

/// `movdqa` — aligned 128-bit integer load.
#[inline]
#[track_caller]
pub fn _mm_load_si128<T: MemElem>(src: &[T]) -> __m128i {
    assert_aligned(src.as_ptr());
    count(OpClass::SimdLoad);
    __m128i(read_q(src))
}

/// `movsd` — loads one double into the low lane, zeroing the high lane.
#[inline]
#[track_caller]
pub fn _mm_load_sd(src: &[f64]) -> __m128d {
    count(OpClass::SimdLoad);
    F64x2::new([src[0], 0.0])
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

/// `movups` to memory — stores four floats, no alignment requirement.
#[inline]
#[track_caller]
pub fn _mm_storeu_ps(dst: &mut [f32], v: __m128) {
    count(OpClass::SimdStore);
    v.store(dst);
}

/// `movaps` to memory — aligned store of four floats.
#[inline]
#[track_caller]
pub fn _mm_store_ps(dst: &mut [f32], v: __m128) {
    assert_aligned(dst.as_ptr());
    count(OpClass::SimdStore);
    v.store(dst);
}

/// `movupd` to memory — stores two doubles.
#[inline]
#[track_caller]
pub fn _mm_storeu_pd(dst: &mut [f64], v: __m128d) {
    count(OpClass::SimdStore);
    v.store(dst);
}

/// `movdqu` to memory — unaligned 128-bit integer store.
#[inline]
#[track_caller]
pub fn _mm_storeu_si128<T: MemElem>(dst: &mut [T], v: __m128i) {
    count(OpClass::SimdStore);
    write_q(dst, v.0);
}

/// `movdqa` to memory — aligned 128-bit integer store.
#[inline]
#[track_caller]
pub fn _mm_store_si128<T: MemElem>(dst: &mut [T], v: __m128i) {
    assert_aligned(dst.as_ptr());
    count(OpClass::SimdStore);
    write_q(dst, v.0);
}

// ---------------------------------------------------------------------------
// Register initialisation (set / setzero)
// ---------------------------------------------------------------------------

/// Broadcasts one float to all four lanes.
#[inline]
pub fn _mm_set1_ps(v: f32) -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::splat(v)
}

/// Builds a `ps` register; note the Intel argument order — `e3` is the
/// *highest* lane.
#[inline]
pub fn _mm_set_ps(e3: f32, e2: f32, e1: f32, e0: f32) -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::new([e0, e1, e2, e3])
}

/// Builds a `ps` register in memory order (lane 0 first).
#[inline]
pub fn _mm_setr_ps(e0: f32, e1: f32, e2: f32, e3: f32) -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::new([e0, e1, e2, e3])
}

/// All-zero `ps` register.
#[inline]
pub fn _mm_setzero_ps() -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::splat(0.0)
}

/// All-zero `pd` register.
#[inline]
pub fn _mm_setzero_pd() -> __m128d {
    count(OpClass::SimdAlu);
    F64x2::splat(0.0)
}

/// Sets the low double lane, zeroing the high lane (`_mm_set_sd`). This is
/// the entry point of OpenCV's `cvRound` on SSE2 builds (see the paper's
/// listing of `cvRound`).
#[inline]
pub fn _mm_set_sd(v: f64) -> __m128d {
    count(OpClass::SimdAlu);
    F64x2::new([v, 0.0])
}

/// Broadcasts one double to both lanes.
#[inline]
pub fn _mm_set1_pd(v: f64) -> __m128d {
    count(OpClass::SimdAlu);
    F64x2::splat(v)
}

/// All-zero integer register (`pxor xmm, xmm`).
#[inline]
pub fn _mm_setzero_si128() -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::zero()
}

/// Broadcasts one byte to all sixteen lanes.
#[inline]
pub fn _mm_set1_epi8(v: i8) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i8(I8x16::splat(v))
}

/// Broadcasts one 16-bit value to all eight lanes.
#[inline]
pub fn _mm_set1_epi16(v: i16) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i16(I16x8::splat(v))
}

/// Broadcasts one 32-bit value to all four lanes.
#[inline]
pub fn _mm_set1_epi32(v: i32) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(I32x4::splat(v))
}

/// Builds an `epi32` register; `e3` is the highest lane (Intel order).
#[inline]
pub fn _mm_set_epi32(e3: i32, e2: i32, e1: i32, e0: i32) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(I32x4::new([e0, e1, e2, e3]))
}

/// Builds an `epi32` register in memory order.
#[inline]
pub fn _mm_setr_epi32(e0: i32, e1: i32, e2: i32, e3: i32) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(I32x4::new([e0, e1, e2, e3]))
}

/// Builds an `epi16` register; `e7` is the highest lane (Intel order).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn _mm_set_epi16(
    e7: i16,
    e6: i16,
    e5: i16,
    e4: i16,
    e3: i16,
    e2: i16,
    e1: i16,
    e0: i16,
) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i16(I16x8::new([e0, e1, e2, e3, e4, e5, e6, e7]))
}

/// Builds a `u8` register in memory order (convenience; mirrors
/// `_mm_setr_epi8` with unsigned lanes).
#[inline]
pub fn _mm_setr_epu8(lanes: [u8; 16]) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_u8(U8x16::new(lanes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd_vector::AlignedBuf;

    #[test]
    fn loadu_storeu_ps_roundtrip() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let v = _mm_loadu_ps(&src[1..]);
        assert_eq!(v.to_array(), [2.0, 3.0, 4.0, 5.0]);
        let mut dst = [0.0f32; 4];
        _mm_storeu_ps(&mut dst, v);
        assert_eq!(dst, [2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn aligned_load_accepts_aligned_buffer() {
        let buf = AlignedBuf::<f32>::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let v = _mm_load_ps(&buf);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "aligned SSE memory access")]
    fn aligned_load_panics_on_misaligned() {
        let buf = AlignedBuf::<f32>::from_slice(&[0.0; 8]);
        // Offsetting by one f32 breaks 16-byte alignment.
        let _ = _mm_load_ps(&buf[1..]);
    }

    #[test]
    fn si128_typed_roundtrip() {
        let src: Vec<i16> = vec![1, -2, 3, -4, 5, -6, 7, -8];
        let v = _mm_loadu_si128(&src);
        assert_eq!(v.as_i16().to_array(), [1, -2, 3, -4, 5, -6, 7, -8]);
        let mut dst = vec![0i16; 8];
        _mm_storeu_si128(&mut dst, v);
        assert_eq!(dst, src);
    }

    #[test]
    fn set_order_is_reversed() {
        let v = _mm_set_ps(3.0, 2.0, 1.0, 0.0);
        assert_eq!(v.to_array(), [0.0, 1.0, 2.0, 3.0]);
        let r = _mm_setr_ps(0.0, 1.0, 2.0, 3.0);
        assert_eq!(v, r);
        let i = _mm_set_epi32(3, 2, 1, 0);
        assert_eq!(i.as_i32().to_array(), [0, 1, 2, 3]);
        let h = _mm_set_epi16(7, 6, 5, 4, 3, 2, 1, 0);
        assert_eq!(h.as_i16().to_array(), [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn set1_and_zero() {
        assert_eq!(_mm_set1_epi16(-3).as_i16().to_array(), [-3; 8]);
        assert_eq!(_mm_set1_epi8(7).as_i8().to_array(), [7; 16]);
        assert_eq!(_mm_setzero_si128().as_u8().to_array(), [0; 16]);
        assert_eq!(_mm_setzero_ps().to_array(), [0.0; 4]);
        assert_eq!(_mm_set_sd(2.5).to_array(), [2.5, 0.0]);
    }

    #[test]
    fn loads_count_ops() {
        let (_, mix) = op_trace::trace(|| {
            let v = _mm_loadu_ps(&[1.0, 2.0, 3.0, 4.0]);
            let mut out = [0.0f32; 4];
            _mm_storeu_ps(&mut out, v);
        });
        assert_eq!(mix.get(OpClass::SimdLoad), 1);
        assert_eq!(mix.get(OpClass::SimdStore), 1);
    }
}

/// `movq` — loads 8 bytes into the low half of an integer register, zeroing
/// the high half. Element type chosen by the slice.
#[inline]
#[track_caller]
pub fn _mm_loadl_epi64<T: MemElem>(src: &[T]) -> __m128i {
    count(OpClass::SimdLoad);
    let n = 8 / T::BYTES;
    assert!(
        src.len() >= n,
        "SSE 64-bit load needs {} elements, slice has {}",
        n,
        src.len()
    );
    let mut bytes = [0u8; 16];
    for (i, chunk) in bytes[..8].chunks_mut(T::BYTES).enumerate() {
        src[i].write_le(chunk);
    }
    __m128i(simd_vector::U8x16::from_bytes(bytes))
}

/// `movq` to memory — stores the low 8 bytes of an integer register.
#[inline]
#[track_caller]
pub fn _mm_storel_epi64<T: MemElem>(dst: &mut [T], v: __m128i) {
    count(OpClass::SimdStore);
    let n = 8 / T::BYTES;
    assert!(
        dst.len() >= n,
        "SSE 64-bit store needs {} elements, slice has {}",
        n,
        dst.len()
    );
    let bytes = v.0.to_bytes();
    for (i, chunk) in bytes[..8].chunks(T::BYTES).enumerate() {
        dst[i] = T::read_le(chunk);
    }
}

#[cfg(test)]
mod l64_tests {
    use super::*;

    #[test]
    fn loadl_zeroes_high_half() {
        let src: Vec<u8> = (1..=12).collect();
        let v = _mm_loadl_epi64(&src);
        let arr = v.as_u8().to_array();
        assert_eq!(&arr[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&arr[8..], &[0; 8]);
    }

    #[test]
    fn storel_writes_only_8_bytes() {
        let v = _mm_loadu_si128(&(1u8..=16).collect::<Vec<_>>());
        let mut dst = vec![0u8; 12];
        _mm_storel_epi64(&mut dst, v);
        assert_eq!(&dst[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&dst[8..], &[0; 4]);
    }

    #[test]
    fn typed_l64_roundtrip_u16() {
        let src = [100u16, 200, 300, 400, 999];
        let v = _mm_loadl_epi64(&src);
        assert_eq!(&v.as_u16().to_array()[..4], &[100, 200, 300, 400]);
        let mut dst = [0u16; 4];
        _mm_storel_epi64(&mut dst, v);
        assert_eq!(dst, [100, 200, 300, 400]);
    }
}
