//! Logical intrinsics (category *c*): AND/OR/XOR plus the NEON-specific
//! NOT, bit-clear, OR-complement and bitwise-select forms the paper lists.

use crate::types::*;
use op_trace::{count, OpClass};
use simd_vector::cast::reinterpret128;

macro_rules! neon_logic {
    ($(#[$meta:meta])* $name:ident, $t:ty, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: $t, b: $t) -> $t {
            count(OpClass::SimdAlu);
            a.$method(b)
        }
    };
}

neon_logic!(
    /// `vand q` — bitwise AND on bytes.
    vandq_u8, uint8x16_t, and
);
neon_logic!(
    /// `vorr q` — bitwise OR on bytes (also gcc's lowering of
    /// `vcombine_s16`, per the paper's disassembly).
    vorrq_u8, uint8x16_t, or
);
neon_logic!(
    /// `veor q` — bitwise XOR on bytes.
    veorq_u8, uint8x16_t, xor
);
neon_logic!(
    /// `vbic q` — bit clear: `a & !b`.
    vbicq_u8, uint8x16_t, bic
);
neon_logic!(
    /// `vand q` — bitwise AND on halfwords.
    vandq_u16, uint16x8_t, and
);
neon_logic!(
    /// `vorr q` — bitwise OR on halfwords.
    vorrq_u16, uint16x8_t, or
);
neon_logic!(
    /// `vand q` — bitwise AND on words.
    vandq_u32, uint32x4_t, and
);
neon_logic!(
    /// `vorr q` — bitwise OR on words.
    vorrq_u32, uint32x4_t, or
);
neon_logic!(
    /// `veor q` — bitwise XOR on words.
    veorq_u32, uint32x4_t, xor
);
neon_logic!(
    /// `vand q` — bitwise AND on signed halfwords.
    vandq_s16, int16x8_t, and
);
neon_logic!(
    /// `vorr q` — bitwise OR on signed halfwords.
    vorrq_s16, int16x8_t, or
);

/// `vmvn q` — bitwise NOT on bytes.
#[inline]
pub fn vmvnq_u8(a: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    a.not()
}

/// `vmvn q` — bitwise NOT on halfwords.
#[inline]
pub fn vmvnq_u16(a: uint16x8_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    a.not()
}

/// `vorn q` — OR complement: `a | !b`.
#[inline]
pub fn vornq_u8(a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    a.or(b.not())
}

/// `vbsl q` (bytes) — bitwise select: per *bit*, takes from `a` where the
/// mask bit is set, else from `b`. The threshold kernel's core operation.
///
/// ```
/// use neon_sim::{vbslq_u8, vcgtq_u8, vdupq_n_u8};
/// let src = vdupq_n_u8(200);
/// let mask = vcgtq_u8(src, vdupq_n_u8(128)); // src > 128 ?
/// let out = vbslq_u8(mask, vdupq_n_u8(255), vdupq_n_u8(0));
/// assert_eq!(out.to_array(), [255u8; 16]);
/// ```
#[inline]
pub fn vbslq_u8(mask: uint8x16_t, a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    mask.bitselect(a, b)
}

/// `vbsl q` (halfwords) — bitwise select with a `u16` mask over signed data.
#[inline]
pub fn vbslq_s16(mask: uint16x8_t, a: int16x8_t, b: int16x8_t) -> int16x8_t {
    count(OpClass::SimdAlu);
    let sel = mask.bitselect(reinterpret128(a), reinterpret128(b));
    reinterpret128(sel)
}

/// `vbsl q` (floats) — bitwise select with a `u32` mask over float data.
#[inline]
pub fn vbslq_f32(mask: uint32x4_t, a: float32x4_t, b: float32x4_t) -> float32x4_t {
    count(OpClass::SimdAlu);
    let sel = mask.bitselect(reinterpret128(a), reinterpret128(b));
    reinterpret128(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::*;
    use crate::load_store::*;

    #[test]
    fn basic_logic() {
        let a = vdupq_n_u8(0b1100);
        let b = vdupq_n_u8(0b1010);
        assert_eq!(vandq_u8(a, b).lane(0), 0b1000);
        assert_eq!(vorrq_u8(a, b).lane(0), 0b1110);
        assert_eq!(veorq_u8(a, b).lane(0), 0b0110);
        assert_eq!(vbicq_u8(a, b).lane(0), 0b0100);
        assert_eq!(vornq_u8(a, b).lane(0), 0b1100 | !0b1010u8);
        assert_eq!(vmvnq_u8(a).lane(0), !0b1100u8);
    }

    #[test]
    fn bsl_threshold_idiom() {
        // The binary-threshold kernel: dst = (src > thresh) ? maxval : 0.
        let src = uint8x16_t::new([
            0, 50, 100, 127, 128, 129, 200, 255, 1, 2, 3, 4, 250, 251, 252, 253,
        ]);
        let thresh = vdupq_n_u8(128);
        let maxval = vdupq_n_u8(255);
        let zero = vdupq_n_u8(0);
        let mask = vcgtq_u8(src, thresh);
        let dst = vbslq_u8(mask, maxval, zero);
        for i in 0..16 {
            let expect = if src.lane(i) > 128 { 255 } else { 0 };
            assert_eq!(dst.lane(i), expect, "lane {i}");
        }
    }

    #[test]
    fn bsl_f32_selects_lanes() {
        let mask = uint32x4_t::new([u32::MAX, 0, u32::MAX, 0]);
        let a = vdupq_n_f32(1.5);
        let b = vdupq_n_f32(-2.5);
        assert_eq!(vbslq_f32(mask, a, b).to_array(), [1.5, -2.5, 1.5, -2.5]);
    }

    #[test]
    fn bsl_s16_selects_lanes() {
        let mask = uint16x8_t::new([0xFFFF, 0, 0xFFFF, 0, 0xFFFF, 0, 0xFFFF, 0]);
        let a = vdupq_n_s16(-7);
        let b = vdupq_n_s16(9);
        assert_eq!(
            vbslq_s16(mask, a, b).to_array(),
            [-7, 9, -7, 9, -7, 9, -7, 9]
        );
    }

    #[test]
    fn bsl_mixes_bits_not_just_lanes() {
        let mask = vdupq_n_u8(0x0F);
        let a = vdupq_n_u8(0xAA);
        let b = vdupq_n_u8(0x55);
        assert_eq!(vbslq_u8(mask, a, b).lane(0), (0xAA & 0x0F) | (0x55 & 0xF0));
    }
}
