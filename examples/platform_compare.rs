//! Cross-platform comparison on the simulated Table I hardware: regenerates
//! the paper's headline claims from the platform model and prints the
//! supporting evidence for each.
//!
//! Run: `cargo run --release --example platform_compare`

use simd_repro::image::Resolution;
use simd_repro::platform::{
    all_platforms, platform_by_name, predict_seconds, speedup, Kernel, Strategy,
};

fn main() {
    println!("Simulated Table I platforms — the paper's headline claims\n");

    // Claim 1: hand-tuned NEON is 1.05-13.05x faster than auto-vectorized
    // code on ARM; SSE is 1.34-5.54x faster on Intel.
    let mut arm = (f64::INFINITY, 0.0f64);
    let mut intel = (f64::INFINITY, 0.0f64);
    for p in all_platforms() {
        for kernel in Kernel::ALL {
            for res in Resolution::ALL {
                let s = speedup(&p, kernel, res);
                let slot = if p.is_arm() { &mut arm } else { &mut intel };
                slot.0 = slot.0.min(s);
                slot.1 = slot.1.max(s);
            }
        }
    }
    println!("HAND:AUTO speed-up ranges");
    println!("  ARM   (paper: 1.05 - 13.05): {:.2} - {:.2}", arm.0, arm.1);
    println!(
        "  Intel (paper: 1.34 -  5.54): {:.2} - {:.2}",
        intel.0, intel.1
    );

    // Claim 2: the ODROID-X more than doubles the Tegra T30's NEON benefit
    // at the same 1.3 GHz clock.
    let odroid = platform_by_name("ODROID-X").unwrap();
    let tegra = platform_by_name("Tegra-T30").unwrap();
    let so = speedup(&odroid, Kernel::Convert, Resolution::Mp8);
    let st = speedup(&tegra, Kernel::Convert, Resolution::Mp8);
    println!("\nODROID-X vs Tegra T30 (convert, both 1.3 GHz)");
    println!(
        "  speed-ups: {so:.2}x vs {st:.2}x (ratio {:.2}, paper: >2)",
        so / st
    );

    // Claim 3: the in-order Atom is about 10x slower than the OoO i7.
    let atom = platform_by_name("Atom-D510").unwrap();
    let i7 = platform_by_name("i7-2820QM").unwrap();
    println!("\nAtom D510 vs Core i7 (AUTO, 8 Mpx) — in-order vs out-of-order");
    for kernel in Kernel::ALL {
        let a = predict_seconds(&atom, kernel, Strategy::Auto, Resolution::Mp8);
        let b = predict_seconds(&i7, kernel, Strategy::Auto, Resolution::Mp8);
        println!("  {:<9} {:.1}x slower", kernel.table3_label(), a / b);
    }

    // Claim 4: the fastest ARM part (Exynos 4412) trails the i5 by 8-15x.
    let exynos = platform_by_name("Exynos-4412").unwrap();
    let i5 = platform_by_name("i5-3360M").unwrap();
    println!("\nExynos 4412 vs Core i5 (HAND, 8 Mpx)");
    for kernel in Kernel::ALL {
        let a = predict_seconds(&exynos, kernel, Strategy::Hand, Resolution::Mp8);
        let b = predict_seconds(&i5, kernel, Strategy::Hand, Resolution::Mp8);
        println!("  {:<9} {:.1}x slower", kernel.table3_label(), a / b);
    }

    // Full speed-up matrix at 8 Mpx.
    println!("\nfull speed-up matrix (8 Mpx)");
    print!("{:<14}", "platform");
    for kernel in Kernel::ALL {
        print!("{:>9}", kernel.table3_label());
    }
    println!();
    for p in all_platforms() {
        print!("{:<14}", p.short);
        for kernel in Kernel::ALL {
            print!("{:>8.2}x", speedup(&p, kernel, Resolution::Mp8));
        }
        println!();
    }
}
