//! Error taxonomy for the fallible (`try_*`) kernel entry points.
//!
//! The paper-faithful kernel APIs assert on malformed inputs — correct
//! for a benchmark, fatal for a serving system. Every kernel therefore
//! also exposes a `try_*` twin that **validates** the same preconditions
//! and returns a [`KernelError`] instead of unwinding; the original
//! panicking entry points are thin shims over the `try_*` forms (see
//! [`KernelError::panic_or_ignore`]), so there is exactly one validation
//! path and the legacy panic messages are preserved verbatim.
//!
//! The taxonomy covers the four failure families the fault-model design
//! (DESIGN.md §10) calls out:
//!
//! * geometry — [`KernelError::WidthMismatch`] /
//!   [`KernelError::HeightMismatch`] / [`KernelError::ChannelMismatch`],
//! * degenerate frames — [`KernelError::ZeroSize`],
//! * addressing limits — [`KernelError::StrideMismatch`] /
//!   [`KernelError::DimensionOverflow`],
//! * resource and configuration faults —
//!   [`KernelError::ArenaExhausted`], [`KernelError::BadKernel`],
//!   [`KernelError::FaultInjected`] (a `faultline` forced error
//!   surfacing through a fallible API),
//!
//! plus overload — [`KernelError::DeadlineExceeded`], the stream
//! engine's load-shedding verdict (DESIGN.md §11): a frame rejected for
//! blowing its SLO is an *error the caller sees*, never a silent drop.

use std::fmt;

/// Hard ceiling on `width × height` accepted by the fallible entry
/// points: 2³² pixels (≈ 4 Gpx, 512× the paper's largest frame). Beyond
/// this, intermediate byte counts (`stride × height × size_of::<i16>()`)
/// approach `isize::MAX` on 32-bit hosts and allocation requests stop
/// being distinguishable from corrupted headers — a frame this large is
/// treated as malformed input, not a workload.
pub const MAX_PIXELS: u128 = 1 << 32;

/// Everything that can go wrong at a fallible kernel entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// Source and destination widths differ.
    WidthMismatch {
        /// Source width in pixels.
        src: usize,
        /// Destination width in pixels.
        dst: usize,
    },
    /// Source and destination heights differ.
    HeightMismatch {
        /// Source height in pixels.
        src: usize,
        /// Destination height in pixels.
        dst: usize,
    },
    /// Multi-plane input (BGR) whose channel dimensions disagree.
    ChannelMismatch {
        /// Dimensions of the reference (blue) plane.
        expected: (usize, usize),
        /// Dimensions of the offending plane.
        got: (usize, usize),
    },
    /// A zero-area frame (width or height of 0). The panicking shims
    /// treat this as a no-op for backwards compatibility; the `try_*`
    /// APIs surface it so servers can reject degenerate requests.
    ZeroSize {
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
    },
    /// A row stride shorter than the row width (rows would overlap).
    StrideMismatch {
        /// Claimed stride in elements.
        stride: usize,
        /// Row width in pixels.
        width: usize,
    },
    /// Frame dimensions whose product overflows [`MAX_PIXELS`] (or
    /// `usize` arithmetic on the addressing path).
    DimensionOverflow {
        /// Frame width in pixels.
        width: usize,
        /// Frame height in pixels.
        height: usize,
    },
    /// The scratch arena's byte cap cannot accommodate a checkout.
    ArenaExhausted {
        /// Bytes the checkout would have brought the arena to.
        requested: usize,
        /// The arena's configured cap.
        cap: usize,
    },
    /// A convolution kernel that is not Q8-normalised (taps must sum to
    /// 256 so the fixed-point vertical pass is exact).
    BadKernel {
        /// The kernel's actual tap sum.
        sum: i32,
    },
    /// A `faultline` forced error injected at a fallible entry point
    /// (chaos testing; never produced in production configuration).
    FaultInjected {
        /// Name of the failpoint that tripped.
        failpoint: String,
    },
    /// A streamed frame whose service-level deadline had already passed
    /// when it reached the head of the admission queue; the stream
    /// engine sheds it instead of starting doomed work.
    DeadlineExceeded {
        /// Microseconds the frame waited after admission.
        waited_us: u64,
        /// The configured service-level objective, in microseconds.
        slo_us: u64,
    },
}

impl fmt::Display for KernelError {
    // The mismatch arms embed the exact legacy assert messages ("width
    // mismatch", "height mismatch", "channel dimensions differ", "kernel
    // must be Q8-normalised") so `should_panic(expected = ...)` tests
    // and downstream log scrapers keep matching after the panicking
    // wrappers became shims over try_*.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::WidthMismatch { src, dst } => {
                write!(f, "width mismatch: src {src} vs dst {dst}")
            }
            KernelError::HeightMismatch { src, dst } => {
                write!(f, "height mismatch: src {src} vs dst {dst}")
            }
            KernelError::ChannelMismatch { expected, got } => write!(
                f,
                "channel dimensions differ: {}x{} vs {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            KernelError::ZeroSize { width, height } => {
                write!(f, "zero-size frame: {width}x{height}")
            }
            KernelError::StrideMismatch { stride, width } => {
                write!(f, "stride {stride} shorter than row width {width}")
            }
            KernelError::DimensionOverflow { width, height } => {
                write!(f, "frame dimensions overflow: {width}x{height}")
            }
            KernelError::ArenaExhausted { requested, cap } => {
                write!(
                    f,
                    "scratch arena exhausted: need {requested} B, cap {cap} B"
                )
            }
            KernelError::BadKernel { sum } => {
                write!(
                    f,
                    "kernel must be Q8-normalised: taps sum to {sum}, not 256"
                )
            }
            KernelError::FaultInjected { failpoint } => {
                write!(f, "injected fault at failpoint {failpoint}")
            }
            KernelError::DeadlineExceeded { waited_us, slo_us } => {
                write!(
                    f,
                    "frame deadline exceeded: waited {waited_us}us, SLO {slo_us}us"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<faultline::InjectedFault> for KernelError {
    fn from(fault: faultline::InjectedFault) -> Self {
        KernelError::FaultInjected {
            failpoint: fault.failpoint,
        }
    }
}

impl KernelError {
    /// The legacy-compatibility policy of the panicking shims: zero-size
    /// frames are silently ignored (the historical loops simply executed
    /// zero iterations), every other error panics with the legacy
    /// message. Shims call this in their error arm.
    #[track_caller]
    pub fn panic_or_ignore(self) {
        match self {
            KernelError::ZeroSize { .. } => {}
            other => panic!("{other}"),
        }
    }
}

/// Shorthand result for the fallible kernel APIs.
pub type KernelResult<T = ()> = Result<T, KernelError>;

/// Validates one frame's geometry: non-zero area, stride covering the
/// width, and a pixel count under [`MAX_PIXELS`].
pub fn validate_frame(width: usize, height: usize, stride: usize) -> KernelResult {
    if width == 0 || height == 0 {
        return Err(KernelError::ZeroSize { width, height });
    }
    if stride < width {
        return Err(KernelError::StrideMismatch { stride, width });
    }
    let pixels = width as u128 * height as u128;
    if pixels > MAX_PIXELS || (stride as u128) * (height as u128) > MAX_PIXELS {
        return Err(KernelError::DimensionOverflow { width, height });
    }
    Ok(())
}

/// Validates a same-shape src/dst pair (the contract shared by every
/// single-plane kernel): matching dimensions, then per-frame geometry.
pub fn validate_pair<S, D>(src: &pixelimage::Image<S>, dst: &pixelimage::Image<D>) -> KernelResult
where
    S: simd_vector::align::Pod,
    D: simd_vector::align::Pod,
{
    if src.width() != dst.width() {
        return Err(KernelError::WidthMismatch {
            src: src.width(),
            dst: dst.width(),
        });
    }
    if src.height() != dst.height() {
        return Err(KernelError::HeightMismatch {
            src: src.height(),
            dst: dst.height(),
        });
    }
    validate_frame(src.width(), src.height(), src.stride())?;
    validate_frame(dst.width(), dst.height(), dst.stride())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::Image;

    #[test]
    fn display_preserves_legacy_assert_messages() {
        let w = KernelError::WidthMismatch { src: 4, dst: 5 };
        assert!(w.to_string().contains("width mismatch"));
        let h = KernelError::HeightMismatch { src: 4, dst: 5 };
        assert!(h.to_string().contains("height mismatch"));
        let c = KernelError::ChannelMismatch {
            expected: (4, 4),
            got: (5, 4),
        };
        assert!(c.to_string().contains("channel dimensions differ"));
        let k = KernelError::BadKernel { sum: 300 };
        assert!(k.to_string().contains("kernel must be Q8-normalised"));
    }

    #[test]
    fn frame_validation_catches_each_family() {
        assert_eq!(
            validate_frame(0, 5, 0),
            Err(KernelError::ZeroSize {
                width: 0,
                height: 5
            })
        );
        assert_eq!(
            validate_frame(8, 0, 8),
            Err(KernelError::ZeroSize {
                width: 8,
                height: 0
            })
        );
        assert_eq!(
            validate_frame(100, 10, 64),
            Err(KernelError::StrideMismatch {
                stride: 64,
                width: 100
            })
        );
        let huge = usize::MAX / 2;
        assert_eq!(
            validate_frame(huge, huge, huge),
            Err(KernelError::DimensionOverflow {
                width: huge,
                height: huge
            })
        );
        assert_eq!(validate_frame(640, 480, 640), Ok(()));
        // 1xN and Nx1 frames are valid, not degenerate.
        assert_eq!(validate_frame(1, 480, 16), Ok(()));
        assert_eq!(validate_frame(640, 1, 640), Ok(()));
    }

    #[test]
    fn pair_validation_orders_width_before_height() {
        let a = Image::<u8>::new(4, 6);
        let b = Image::<u8>::new(5, 7);
        assert_eq!(
            validate_pair(&a, &b),
            Err(KernelError::WidthMismatch { src: 4, dst: 5 })
        );
        let c = Image::<u8>::new(4, 7);
        assert_eq!(
            validate_pair(&a, &c),
            Err(KernelError::HeightMismatch { src: 6, dst: 7 })
        );
        let d = Image::<i16>::new(4, 6);
        assert_eq!(validate_pair(&a, &d), Ok(()));
    }

    #[test]
    fn zero_size_is_ignored_by_the_shim_policy_and_others_panic() {
        KernelError::ZeroSize {
            width: 0,
            height: 9,
        }
        .panic_or_ignore(); // must not panic
        let err = std::panic::catch_unwind(|| {
            KernelError::WidthMismatch { src: 1, dst: 2 }.panic_or_ignore()
        })
        .expect_err("non-ZeroSize must panic");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("width mismatch"));
    }
}
