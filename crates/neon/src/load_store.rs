//! Data-movement intrinsics: `vld1`/`vst1` (plus the structured `vld2`/
//! `vld3` de-interleaving forms), `vdup`, `vcombine`, `vget_low`/`vget_high`.

use crate::types::*;
use op_trace::{count, OpClass};

macro_rules! vld1 {
    ($(#[$meta:meta])* $name:ident, $t:ty, $elem:ty) => {
        $(#[$meta])*
        #[inline]
        #[track_caller]
        pub fn $name(src: &[$elem]) -> $t {
            count(OpClass::SimdLoad);
            <$t>::load(src)
        }
    };
}

macro_rules! vst1 {
    ($(#[$meta:meta])* $name:ident, $t:ty, $elem:ty) => {
        $(#[$meta])*
        #[inline]
        #[track_caller]
        pub fn $name(dst: &mut [$elem], v: $t) {
            count(OpClass::SimdStore);
            v.store(dst);
        }
    };
}

// Q-register loads/stores.
vld1!(
    /// `vld1.32 {q}` — loads four floats (the paper's benchmark-1 load).
    vld1q_f32, float32x4_t, f32
);
vld1!(
    /// `vld1.8 {q}` — loads sixteen unsigned bytes.
    vld1q_u8, uint8x16_t, u8
);
vld1!(
    /// `vld1.8 {q}` — loads sixteen signed bytes.
    vld1q_s8, int8x16_t, i8
);
vld1!(
    /// `vld1.16 {q}` — loads eight signed halfwords.
    vld1q_s16, int16x8_t, i16
);
vld1!(
    /// `vld1.16 {q}` — loads eight unsigned halfwords.
    vld1q_u16, uint16x8_t, u16
);
vld1!(
    /// `vld1.32 {q}` — loads four signed words.
    vld1q_s32, int32x4_t, i32
);
vld1!(
    /// `vld1.32 {q}` — loads four unsigned words.
    vld1q_u32, uint32x4_t, u32
);
vst1!(
    /// `vst1.32 {q}` — stores four floats.
    vst1q_f32, float32x4_t, f32
);
vst1!(
    /// `vst1.8 {q}` — stores sixteen unsigned bytes.
    vst1q_u8, uint8x16_t, u8
);
vst1!(
    /// `vst1.16 {q}` — stores eight signed halfwords (the paper's
    /// benchmark-1 store).
    vst1q_s16, int16x8_t, i16
);
vst1!(
    /// `vst1.16 {q}` — stores eight unsigned halfwords.
    vst1q_u16, uint16x8_t, u16
);
vst1!(
    /// `vst1.32 {q}` — stores four signed words.
    vst1q_s32, int32x4_t, i32
);

// D-register loads/stores.
vld1!(
    /// `vld1.32 {d}` — loads two floats.
    vld1_f32, float32x2_t, f32
);
vld1!(
    /// `vld1.8 {d}` — loads eight unsigned bytes.
    vld1_u8, uint8x8_t, u8
);
vld1!(
    /// `vld1.16 {d}` — loads four signed halfwords.
    vld1_s16, int16x4_t, i16
);
vld1!(
    /// `vld1.16 {d}` — loads four unsigned halfwords.
    vld1_u16, uint16x4_t, u16
);
vst1!(
    /// `vst1.8 {d}` — stores eight unsigned bytes.
    vst1_u8, uint8x8_t, u8
);
vst1!(
    /// `vst1.16 {d}` — stores four signed halfwords.
    vst1_s16, int16x4_t, i16
);
vst1!(
    /// `vst1.32 {d}` — stores two floats.
    vst1_f32, float32x2_t, f32
);

/// `vld2.8 {d,d}` — loads sixteen bytes, de-interleaving even/odd elements
/// into two D registers (the NEON "load/store between arrays of vectors"
/// feature the paper highlights in category *a*).
#[inline]
#[track_caller]
pub fn vld2_u8(src: &[u8]) -> uint8x8x2_t {
    count(OpClass::SimdLoad);
    let mut even = [0u8; 8];
    let mut odd = [0u8; 8];
    for i in 0..8 {
        even[i] = src[2 * i];
        odd[i] = src[2 * i + 1];
    }
    uint8x8x2_t {
        val: [uint8x8_t::new(even), uint8x8_t::new(odd)],
    }
}

/// `vld2.8 {q,q}` — loads 32 bytes, de-interleaving into two Q registers.
#[inline]
#[track_caller]
pub fn vld2q_u8(src: &[u8]) -> uint8x16x2_t {
    count(OpClass::SimdLoad);
    let mut even = [0u8; 16];
    let mut odd = [0u8; 16];
    for i in 0..16 {
        even[i] = src[2 * i];
        odd[i] = src[2 * i + 1];
    }
    uint8x16x2_t {
        val: [uint8x16_t::new(even), uint8x16_t::new(odd)],
    }
}

/// `vld3.8 {q,q,q}` — loads 48 bytes, de-interleaving a 3-channel stream
/// (e.g. packed RGB) into three Q registers.
#[inline]
#[track_caller]
pub fn vld3q_u8(src: &[u8]) -> uint8x16x3_t {
    count(OpClass::SimdLoad);
    let mut c0 = [0u8; 16];
    let mut c1 = [0u8; 16];
    let mut c2 = [0u8; 16];
    for i in 0..16 {
        c0[i] = src[3 * i];
        c1[i] = src[3 * i + 1];
        c2[i] = src[3 * i + 2];
    }
    uint8x16x3_t {
        val: [
            uint8x16_t::new(c0),
            uint8x16_t::new(c1),
            uint8x16_t::new(c2),
        ],
    }
}

/// `vst2.8 {d,d}` — interleaves two D registers back into memory.
#[inline]
#[track_caller]
pub fn vst2_u8(dst: &mut [u8], v: uint8x8x2_t) {
    count(OpClass::SimdStore);
    for i in 0..8 {
        dst[2 * i] = v.val[0].lane(i);
        dst[2 * i + 1] = v.val[1].lane(i);
    }
}

macro_rules! vdup {
    ($(#[$meta:meta])* $name:ident, $t:ty, $elem:ty) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(v: $elem) -> $t {
            count(OpClass::SimdAlu);
            <$t>::splat(v)
        }
    };
}

vdup!(
    /// `vdup.32 q` — broadcasts a float to four lanes.
    vdupq_n_f32, float32x4_t, f32
);
vdup!(
    /// `vdup.8 q` — broadcasts a byte to sixteen lanes.
    vdupq_n_u8, uint8x16_t, u8
);
vdup!(
    /// `vdup.8 q` — broadcasts a signed byte.
    vdupq_n_s8, int8x16_t, i8
);
vdup!(
    /// `vdup.16 q` — broadcasts a signed halfword.
    vdupq_n_s16, int16x8_t, i16
);
vdup!(
    /// `vdup.16 q` — broadcasts an unsigned halfword.
    vdupq_n_u16, uint16x8_t, u16
);
vdup!(
    /// `vdup.32 q` — broadcasts a signed word.
    vdupq_n_s32, int32x4_t, i32
);
vdup!(
    /// `vdup.32 q` — broadcasts an unsigned word.
    vdupq_n_u32, uint32x4_t, u32
);
vdup!(
    /// `vdup.32 d` — broadcasts a float to two lanes.
    vdup_n_f32, float32x2_t, f32
);
vdup!(
    /// `vdup.8 d` — broadcasts a byte to eight lanes.
    vdup_n_u8, uint8x8_t, u8
);
vdup!(
    /// `vdup.16 d` — broadcasts a signed halfword to four lanes.
    vdup_n_s16, int16x4_t, i16
);

/// `vmov.32 q` alias used by older code (`vmovq_n_f32 == vdupq_n_f32`).
#[inline]
pub fn vmovq_n_f32(v: f32) -> float32x4_t {
    vdupq_n_f32(v)
}

macro_rules! vcombine {
    ($(#[$meta:meta])* $name:ident, $q:ty, $d:ty) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(low: $d, high: $d) -> $q {
            count(OpClass::SimdAlu);
            <$q>::combine(low, high)
        }
    };
}

vcombine!(
    /// `vcombine.16` — joins two D registers into one Q register (the
    /// benchmark-1 pack step; gcc lowers it to `vorr` per the paper's
    /// listing).
    ///
    /// ```
    /// use neon_sim::{vcombine_s16, types::int16x4_t};
    /// let lo = int16x4_t::new([1, 2, 3, 4]);
    /// let hi = int16x4_t::new([5, 6, 7, 8]);
    /// assert_eq!(vcombine_s16(lo, hi).to_array(), [1, 2, 3, 4, 5, 6, 7, 8]);
    /// ```
    vcombine_s16, int16x8_t, int16x4_t
);
vcombine!(
    /// `vcombine.16` — unsigned halfword form.
    vcombine_u16, uint16x8_t, uint16x4_t
);
vcombine!(
    /// `vcombine.8` — unsigned byte form.
    vcombine_u8, uint8x16_t, uint8x8_t
);
vcombine!(
    /// `vcombine.32` — signed word form.
    vcombine_s32, int32x4_t, int32x2_t
);
vcombine!(
    /// `vcombine.32` — float form.
    vcombine_f32, float32x4_t, float32x2_t
);

macro_rules! vget_halves {
    ($(#[$meta_lo:meta])* $lo:ident, $(#[$meta_hi:meta])* $hi:ident, $q:ty, $d:ty) => {
        $(#[$meta_lo])*
        #[inline]
        pub fn $lo(v: $q) -> $d {
            count(OpClass::SimdAlu);
            v.low()
        }

        $(#[$meta_hi])*
        #[inline]
        pub fn $hi(v: $q) -> $d {
            count(OpClass::SimdAlu);
            v.high()
        }
    };
}

vget_halves!(
    /// `vget_low.16` — the low D half of a Q register.
    vget_low_s16,
    /// `vget_high.16` — the high D half of a Q register.
    vget_high_s16,
    int16x8_t,
    int16x4_t
);
vget_halves!(
    /// `vget_low.16` — unsigned halfword form.
    vget_low_u16,
    /// `vget_high.16` — unsigned halfword form.
    vget_high_u16,
    uint16x8_t,
    uint16x4_t
);
vget_halves!(
    /// `vget_low.8` — unsigned byte form.
    vget_low_u8,
    /// `vget_high.8` — unsigned byte form.
    vget_high_u8,
    uint8x16_t,
    uint8x8_t
);
vget_halves!(
    /// `vget_low.32` — signed word form.
    vget_low_s32,
    /// `vget_high.32` — signed word form.
    vget_high_s32,
    int32x4_t,
    int32x2_t
);
vget_halves!(
    /// `vget_low.32` — float form.
    vget_low_f32,
    /// `vget_high.32` — float form.
    vget_high_f32,
    float32x4_t,
    float32x2_t
);

/// `vgetq_lane.32` — extracts one float lane (lane index is a constant on
/// hardware; here a checked argument).
#[inline]
pub fn vgetq_lane_f32(v: float32x4_t, lane: usize) -> f32 {
    count(OpClass::SimdAlu);
    v.lane(lane)
}

/// `vgetq_lane.16` — extracts one signed halfword lane.
#[inline]
pub fn vgetq_lane_s16(v: int16x8_t, lane: usize) -> i16 {
    count(OpClass::SimdAlu);
    v.lane(lane)
}

/// `vsetq_lane.32` — replaces one float lane.
#[inline]
pub fn vsetq_lane_f32(value: f32, v: float32x4_t, lane: usize) -> float32x4_t {
    count(OpClass::SimdAlu);
    v.with_lane(lane, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vld1q_vst1q_roundtrip() {
        let src = [1.5f32, 2.5, 3.5, 4.5, 5.5];
        let v = vld1q_f32(&src[1..]);
        assert_eq!(v.to_array(), [2.5, 3.5, 4.5, 5.5]);
        let mut dst = [0f32; 4];
        vst1q_f32(&mut dst, v);
        assert_eq!(dst, [2.5, 3.5, 4.5, 5.5]);
    }

    #[test]
    fn vdup_broadcasts() {
        assert_eq!(vdupq_n_u8(9).to_array(), [9; 16]);
        assert_eq!(vdupq_n_s16(-2).to_array(), [-2; 8]);
        assert_eq!(vdup_n_f32(1.25).to_array(), [1.25; 2]);
        assert_eq!(vmovq_n_f32(3.0), vdupq_n_f32(3.0));
    }

    #[test]
    fn combine_and_get_halves() {
        let lo = int16x4_t::new([1, 2, 3, 4]);
        let hi = int16x4_t::new([5, 6, 7, 8]);
        let q = vcombine_s16(lo, hi);
        assert_eq!(q.to_array(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(vget_low_s16(q), lo);
        assert_eq!(vget_high_s16(q), hi);
    }

    #[test]
    fn vld2_deinterleaves() {
        let src: Vec<u8> = (0..16).collect();
        let pair = vld2_u8(&src);
        assert_eq!(pair.val[0].to_array(), [0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(pair.val[1].to_array(), [1, 3, 5, 7, 9, 11, 13, 15]);
        let mut dst = vec![0u8; 16];
        vst2_u8(&mut dst, pair);
        assert_eq!(dst, src);
    }

    #[test]
    fn vld3_splits_rgb() {
        let mut src = vec![0u8; 48];
        for px in 0..16 {
            src[3 * px] = 10; // R
            src[3 * px + 1] = 20; // G
            src[3 * px + 2] = 30; // B
        }
        let rgb = vld3q_u8(&src);
        assert_eq!(rgb.val[0].to_array(), [10; 16]);
        assert_eq!(rgb.val[1].to_array(), [20; 16]);
        assert_eq!(rgb.val[2].to_array(), [30; 16]);
    }

    #[test]
    fn lane_accessors() {
        let v = float32x4_t::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(vgetq_lane_f32(v, 2), 3.0);
        let w = vsetq_lane_f32(9.0, v, 1);
        assert_eq!(w.to_array(), [1.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn loads_count_ops() {
        let (_, mix) = op_trace::trace(|| {
            let v = vld1q_f32(&[1.0, 2.0, 3.0, 4.0]);
            let mut out = [0f32; 4];
            vst1q_f32(&mut out, v);
        });
        assert_eq!(mix.get(OpClass::SimdLoad), 1);
        assert_eq!(mix.get(OpClass::SimdStore), 1);
    }
}
