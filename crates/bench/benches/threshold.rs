//! Figure 3 — binary image thresholding, AUTO vs HAND per size.

use bench::{bench_image, bench_resolutions, TIMED_ENGINES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::Image;
use simdbench_core::threshold::{threshold_u8, ThresholdType};

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_threshold");
    group.sample_size(20);
    for res in bench_resolutions() {
        let src = bench_image(res);
        let mut dst = Image::<u8>::new(src.width(), src.height());
        group.throughput(Throughput::Elements(res.pixels() as u64));
        for engine in TIMED_ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), res.label()),
                &engine,
                |b, &engine| {
                    b.iter(|| threshold_u8(&src, &mut dst, 128, 255, ThresholdType::Binary, engine))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
