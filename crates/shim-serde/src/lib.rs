//! Offline stand-in for the `serde` crate.
//!
//! The workspace annotates model/result structs with
//! `#[derive(Serialize, Deserialize)]` but never instantiates a serializer
//! (there is no `serde_json` or similar in the dependency tree) — the
//! derives exist so downstream users can plug in a real serde. This build
//! environment has no network access to crates.io, so this proc-macro
//! crate provides the two derive macros as no-ops: the annotations keep
//! compiling, and swapping the path dependency back to the real `serde`
//! restores full behaviour without touching any annotated source.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
