//! Per-call dispatch overhead of the persistent worker pool vs. the
//! per-call-spawn baseline (ISSUE 2's tentpole measurement).
//!
//! Three image sizes bracket the regimes that matter:
//!
//! * 64×64 — the kernel is microseconds, so per-call latency is almost
//!   pure scheduling cost; this is where spawn/join overhead dominated.
//! * 640×480 (0.3 Mpx) — the paper's smallest resolution, where the old
//!   dispatch overhead was the same order as the kernel itself.
//! * 3264×2448 (8 Mpx) — compute-bound; both schedulers should converge,
//!   confirming the pool does not tax large images.
//!
//! Two extra `pure_dispatch` series time a trivial-body parallel call
//! (one no-op task per scheduler width) so the raw submit/wake/join cost
//! is visible without any kernel work at all.
//!
//! All series run under a 4-wide `install` so the pool path exercises the
//! real scheduler (work-stealing deques, condvar parking) even on
//! single-core CI hosts, and the spawn baseline pays for the same four
//! threads it would spawn on a 4-core target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pixelimage::{synthetic_image, Image};
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::pipeline::{
    fused_gaussian_blur_with, par_fused_gaussian_blur_spawn_baseline, par_fused_gaussian_blur_with,
    BandPlan,
};
use simdbench_core::scratch::Scratch;
use simdbench_core::Engine;

const ENGINE: Engine = Engine::Native;
const WIDTH: usize = 4;

/// (label, width, height): 64×64 micro, 0.3 Mpx VGA, 8 Mpx full-size.
const SIZES: [(&str, usize, usize); 3] = [
    ("64x64", 64, 64),
    ("0.3mpx", 640, 480),
    ("8mpx", 3264, 2448),
];

fn bench_dispatch_gaussian(c: &mut Criterion) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(WIDTH)
        .build()
        .expect("pool build");
    let mut group = c.benchmark_group("dispatch_gaussian");
    group.sample_size(20);
    let kernel = paper_gaussian_kernel();
    for (label, w, h) in SIZES {
        let src = synthetic_image(w, h, 0xD15);
        let mut dst = Image::<u8>::new(w, h);
        let mut scratch = Scratch::new();
        let plan = BandPlan::for_width(w);
        group.bench_with_input(BenchmarkId::new("seq_fused", label), &(), |b, _| {
            b.iter(|| fused_gaussian_blur_with(&src, &mut dst, &kernel, ENGINE, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("pool", label), &(), |b, _| {
            pool.install(|| {
                b.iter(|| par_fused_gaussian_blur_with(&src, &mut dst, &kernel, ENGINE, &plan))
            })
        });
        group.bench_with_input(BenchmarkId::new("spawn_per_call", label), &(), |b, _| {
            pool.install(|| {
                b.iter(|| {
                    par_fused_gaussian_blur_spawn_baseline(&src, &mut dst, &kernel, ENGINE, &plan)
                })
            })
        });
    }
    group.finish();
}

fn bench_pure_dispatch(c: &mut Criterion) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(WIDTH)
        .build()
        .expect("pool build");
    let mut group = c.benchmark_group("pure_dispatch");
    group.sample_size(20);
    // WIDTH trivial tasks: every scheduler invocation wakes the full
    // width and joins, with effectively zero useful work per task.
    group.bench_function("pool", |b| {
        pool.install(|| {
            b.iter(|| {
                (0..WIDTH).into_par_iter().for_each(|i| {
                    std::hint::black_box(i);
                });
            })
        })
    });
    group.bench_function("spawn_per_call", |b| {
        pool.install(|| {
            b.iter(|| {
                rayon::spawn_baseline_for_each(0..WIDTH, |i| {
                    std::hint::black_box(i);
                });
            })
        })
    });
    group.finish();
}

use rayon::prelude::*;

criterion_group!(benches, bench_dispatch_gaussian, bench_pure_dispatch);
criterion_main!(benches);
