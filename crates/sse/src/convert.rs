//! Conversion intrinsics (category *f*).

use crate::types::{__m128, __m128d, __m128i};
use op_trace::{count, OpClass};
use simd_vector::rounding;
use simd_vector::{F32x4, F64x2};

/// `cvtps2dq` — four floats to four signed 32-bit integers, rounding to
/// nearest (ties to even, the MXCSR default); out-of-range/NaN lanes become
/// `0x8000_0000`.
///
/// This is the first conversion step of the paper's benchmark-1 SSE2 loop.
///
/// ```
/// use sse_sim::{_mm_cvtps_epi32, _mm_setr_ps};
/// let v = _mm_setr_ps(0.5, 1.5, 2.5, -2.5); // ties round to even
/// assert_eq!(_mm_cvtps_epi32(v).as_i32().to_array(), [0, 2, 2, -2]);
/// ```
#[inline]
pub fn _mm_cvtps_epi32(a: __m128) -> __m128i {
    count(OpClass::SimdConvert);
    __m128i::from_i32(a.to_i32_round_sse())
}

/// `cvttps2dq` — four floats to four signed 32-bit integers, truncating.
#[inline]
pub fn _mm_cvttps_epi32(a: __m128) -> __m128i {
    count(OpClass::SimdConvert);
    __m128i::from_i32(a.to_i32_truncate_sse())
}

/// `cvtdq2ps` — four signed 32-bit integers to floats.
#[inline]
pub fn _mm_cvtepi32_ps(a: __m128i) -> __m128 {
    count(OpClass::SimdConvert);
    a.as_i32().to_f32()
}

/// `cvtsd2si` — low double lane to `i32`, rounding ties to even. Together
/// with [`crate::_mm_set_sd`] this is how OpenCV implements `cvRound` on
/// SSE2 (the paper quotes the exact source).
#[inline]
pub fn _mm_cvtsd_si32(a: __m128d) -> i32 {
    count(OpClass::SimdConvert);
    rounding::cv_round_f64(a.lane(0))
}

/// `cvtps2pd` — low two float lanes widened to doubles.
#[inline]
pub fn _mm_cvtps_pd(a: __m128) -> __m128d {
    count(OpClass::SimdConvert);
    F64x2::new([a.lane(0) as f64, a.lane(1) as f64])
}

/// `cvtpd2ps` — two doubles narrowed to floats in the low lanes, high lanes
/// zero.
#[inline]
pub fn _mm_cvtpd_ps(a: __m128d) -> __m128 {
    count(OpClass::SimdConvert);
    F32x4::new([a.lane(0) as f32, a.lane(1) as f32, 0.0, 0.0])
}

/// `cvtsi2ss` — replaces the low float lane with `b as f32`.
#[inline]
pub fn _mm_cvtsi32_ss(a: __m128, b: i32) -> __m128 {
    count(OpClass::SimdConvert);
    a.with_lane(0, b as f32)
}

/// `cvtss2si` — low float lane to `i32`, ties to even, SSE indefinite on
/// overflow/NaN.
#[inline]
pub fn _mm_cvtss_si32(a: __m128) -> i32 {
    count(OpClass::SimdConvert);
    rounding::f32_to_i32_round_sse(a.lane(0))
}

/// `movss`-style lane read — returns the low float lane (register move, no
/// memory traffic).
#[inline]
pub fn _mm_cvtss_f32(a: __m128) -> f32 {
    count(OpClass::SimdAlu);
    a.lane(0)
}

/// `movd` — zero-extends an `i32` into the low lane of an integer register.
#[inline]
pub fn _mm_cvtsi32_si128(v: i32) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(simd_vector::I32x4::new([v, 0, 0, 0]))
}

/// `movd` to GPR — reads the low 32-bit lane.
#[inline]
pub fn _mm_cvtsi128_si32(a: __m128i) -> i32 {
    count(OpClass::SimdAlu);
    a.as_i32().lane(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn cvtps_rounds_ties_to_even() {
        let v = _mm_setr_ps(0.5, 1.5, 2.5, -2.5);
        assert_eq!(_mm_cvtps_epi32(v).as_i32().to_array(), [0, 2, 2, -2]);
    }

    #[test]
    fn cvttps_truncates() {
        let v = _mm_setr_ps(1.9, -1.9, 0.5, -0.5);
        assert_eq!(_mm_cvttps_epi32(v).as_i32().to_array(), [1, -1, 0, 0]);
    }

    #[test]
    fn out_of_range_is_integer_indefinite() {
        let v = _mm_setr_ps(3e9, -3e9, f32::NAN, 7.0);
        assert_eq!(
            _mm_cvtps_epi32(v).as_i32().to_array(),
            [i32::MIN, i32::MIN, i32::MIN, 7]
        );
    }

    #[test]
    fn cvrround_path_matches_reference() {
        // cvRound(value) = _mm_cvtsd_si32(_mm_set_sd(value)) per the paper.
        for v in [-2.5f64, -1.5, -0.5, 0.5, 1.5, 2.5, 1e9, 123.456] {
            let got = _mm_cvtsd_si32(_mm_set_sd(v));
            assert_eq!(got, rounding::cv_round_f64(v), "value {v}");
        }
    }

    #[test]
    fn epi32_to_ps_and_back() {
        let v = _mm_setr_epi32(-3, 0, 7, 1_000_000);
        let f = _mm_cvtepi32_ps(v);
        assert_eq!(f.to_array(), [-3.0, 0.0, 7.0, 1e6]);
        assert_eq!(
            _mm_cvtps_epi32(f).as_i32().to_array(),
            v.as_i32().to_array()
        );
    }

    #[test]
    fn pd_ps_widen_narrow() {
        let f = _mm_setr_ps(1.5, -2.5, 99.0, 98.0);
        let d = _mm_cvtps_pd(f);
        assert_eq!(d.to_array(), [1.5, -2.5]);
        let back = _mm_cvtpd_ps(d);
        assert_eq!(back.to_array(), [1.5, -2.5, 0.0, 0.0]);
    }

    #[test]
    fn scalar_moves() {
        let r = _mm_cvtsi32_si128(-42);
        assert_eq!(r.as_i32().to_array(), [-42, 0, 0, 0]);
        assert_eq!(_mm_cvtsi128_si32(r), -42);
        let f = _mm_cvtsi32_ss(_mm_set1_ps(9.0), 3);
        assert_eq!(f.to_array(), [3.0, 9.0, 9.0, 9.0]);
        assert_eq!(_mm_cvtss_f32(f), 3.0);
        assert_eq!(_mm_cvtss_si32(_mm_set1_ps(2.5)), 2);
    }

    #[test]
    fn conversions_count_as_simd_convert() {
        let (_, mix) = op_trace::trace(|| {
            let v = _mm_setr_ps(1.0, 2.0, 3.0, 4.0);
            let _ = _mm_cvtps_epi32(v);
            let _ = _mm_cvttps_epi32(v);
        });
        assert_eq!(mix.get(OpClass::SimdConvert), 2);
    }
}
