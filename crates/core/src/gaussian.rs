//! Benchmark 3 — Gaussian blur (paper Section III-A.3): separable
//! convolution with a σ=1 Gaussian, fixed-point Q8 weights, replicated
//! borders.
//!
//! The filter runs in two passes, as OpenCV's `sepFilter2D` does for 8-bit
//! images:
//!
//! 1. **Horizontal**: `u16[x] = Σ_k u8[x+k-r] * w[k]` — products fit `u16`
//!    because the Q8 weights sum to 256 (`255 * 256 = 65280 ≤ 65535`).
//! 2. **Vertical**: `u8[x] = (Σ_k u16_row[y+k-r][x] * w[k] + 2^15) >> 16` —
//!    accumulated in `u32`, rounded, exact for constant images.
//!
//! Each pass has scalar, autovec-friendly, SSE2 and NEON implementations.
//! The SIMD paths vectorise the interior columns and fall back to scalar at
//! the replicated borders and row tails.

use crate::dispatch::Engine;
use crate::error::{validate_pair, KernelError, KernelResult};
use crate::kernelgen::{paper_gaussian_kernel, FixedKernel};
use crate::scratch::MAX_TAPS;
use pixelimage::Image;

/// Blurs `src` into `dst` with a sampled Gaussian (`ksize` odd taps,
/// standard deviation `sigma`), using `engine` for both passes.
pub fn gaussian_blur_with(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    sigma: f64,
    ksize: usize,
    engine: Engine,
) {
    let kernel = crate::kernelgen::gaussian_kernel_q8(sigma, ksize);
    gaussian_blur_kernel(src, dst, &kernel, engine);
}

/// The paper's configuration: σ = 1, 7 taps.
pub fn gaussian_blur(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    let kernel = paper_gaussian_kernel();
    gaussian_blur_kernel(src, dst, &kernel, engine);
}

/// Blurs with an explicit Q8 kernel.
pub fn gaussian_blur_kernel(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
) {
    if let Err(e) = try_gaussian_blur_kernel(src, dst, kernel, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`gaussian_blur_kernel`]: validates geometry and the
/// kernel's Q8 normalisation instead of asserting.
pub fn try_gaussian_blur_kernel(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
) -> KernelResult {
    validate_pair(src, dst)?;
    if kernel.sum() != 256 {
        return Err(KernelError::BadKernel { sum: kernel.sum() });
    }
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    let mut mid = Image::<u16>::new(src.width(), src.height());
    for y in 0..src.height() {
        horizontal_row(src.row(y), mid.row_mut(y), kernel, engine);
    }
    vertical_pass(&mid, dst, kernel, engine);
    Ok(())
}

// ---------------------------------------------------------------------------
// Horizontal pass
// ---------------------------------------------------------------------------

/// Runs the horizontal pass on one row with the chosen engine.
pub fn horizontal_row(src: &[u8], dst: &mut [u16], kernel: &FixedKernel, engine: Engine) {
    match engine {
        Engine::Scalar => horizontal_row_scalar(src, dst, kernel),
        Engine::Autovec => horizontal_row_autovec(src, dst, kernel),
        Engine::Sse2Sim => horizontal_row_sse2_sim(src, dst, kernel),
        Engine::NeonSim => horizontal_row_neon_sim(src, dst, kernel),
        Engine::Native => horizontal_row_native(src, dst, kernel),
    }
}

#[inline]
fn clamp_idx(i: isize, len: usize) -> usize {
    i.clamp(0, len as isize - 1) as usize
}

/// Reference horizontal pass with border replication everywhere.
pub fn horizontal_row_scalar(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    assert_eq!(src.len(), dst.len());
    let r = kernel.radius as isize;
    for x in 0..src.len() {
        let mut acc = 0u32;
        for (k, &w) in kernel.weights.iter().enumerate() {
            let idx = clamp_idx(x as isize + k as isize - r, src.len());
            acc += src[idx] as u32 * w as u32;
        }
        dst[x] = acc as u16;
    }
}

/// Split-loop version: clamped borders, clamp-free interior the compiler
/// can vectorise.
pub fn horizontal_row_autovec(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let r = kernel.radius;
    if width <= 2 * r {
        horizontal_row_scalar(src, dst, kernel);
        return;
    }
    // Borders via the clamped reference.
    horizontal_row_scalar_range(src, dst, kernel, 0, r);
    horizontal_row_scalar_range(src, dst, kernel, width - r, width);
    // Interior: no clamping needed.
    let weights = &kernel.weights;
    for x in r..width - r {
        let window = &src[x - r..x + r + 1];
        let mut acc = 0u32;
        for (w, &s) in weights.iter().zip(window.iter()) {
            acc += s as u32 * *w as u32;
        }
        dst[x] = acc as u16;
    }
}

fn horizontal_row_scalar_range(
    src: &[u8],
    dst: &mut [u16],
    kernel: &FixedKernel,
    from: usize,
    to: usize,
) {
    let r = kernel.radius as isize;
    for x in from..to {
        let mut acc = 0u32;
        for (k, &w) in kernel.weights.iter().enumerate() {
            let idx = clamp_idx(x as isize + k as isize - r, src.len());
            acc += src[idx] as u32 * w as u32;
        }
        dst[x] = acc as u16;
    }
}

/// Hand-written SSE2 horizontal pass (simulated surface): per tap, widen
/// eight bytes to `u16` and multiply-accumulate with `pmullw`.
pub fn horizontal_row_sse2_sim(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    use sse_sim::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let r = kernel.radius;
    if width < 2 * r + 8 || !kernel.fits_u8() || kernel.len() > MAX_TAPS {
        horizontal_row_scalar(src, dst, kernel);
        return;
    }
    horizontal_row_scalar_range(src, dst, kernel, 0, r);
    let zero = _mm_setzero_si128();
    // Splatted weights live on the stack (MAX_TAPS-bounded) so row calls
    // stay allocation-free — the fused pipeline invokes this per band row.
    let mut weights = [zero; MAX_TAPS];
    for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
        *wv = _mm_set1_epi16(w as i16);
    }
    let weights = &weights[..kernel.len()];
    let mut x = r;
    while x + 8 <= width - r {
        let mut acc = _mm_setzero_si128();
        for (k, wv) in weights.iter().enumerate() {
            let v = _mm_loadl_epi64(&src[x - r + k..]);
            let wide = _mm_unpacklo_epi8(v, zero);
            acc = _mm_add_epi16(acc, _mm_mullo_epi16(wide, *wv));
        }
        _mm_storeu_si128(&mut dst[x..], acc);
        x += 8;
    }
    horizontal_row_scalar_range(src, dst, kernel, x, width);
}

/// Hand-written NEON horizontal pass (simulated surface): per tap,
/// `vmlal.u8` widening multiply-accumulate.
pub fn horizontal_row_neon_sim(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    use neon_sim::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let r = kernel.radius;
    if width < 2 * r + 8 || !kernel.fits_u8() || kernel.len() > MAX_TAPS {
        horizontal_row_scalar(src, dst, kernel);
        return;
    }
    horizontal_row_scalar_range(src, dst, kernel, 0, r);
    let mut weights = [vdup_n_u8(0); MAX_TAPS];
    for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
        *wv = vdup_n_u8(w as u8);
    }
    let weights = &weights[..kernel.len()];
    let mut x = r;
    while x + 8 <= width - r {
        let mut acc = vmull_u8(vld1_u8(&src[x - r..]), weights[0]);
        for (k, wv) in weights.iter().enumerate().skip(1) {
            acc = vmlal_u8(acc, vld1_u8(&src[x - r + k..]), *wv);
        }
        vst1q_u16(&mut dst[x..], acc);
        x += 8;
    }
    horizontal_row_scalar_range(src, dst, kernel, x, width);
}

/// Horizontal pass on the host's real SIMD unit.
pub fn horizontal_row_native(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    #[cfg(target_arch = "x86_64")]
    {
        horizontal_row_native_sse2(src, dst, kernel);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        horizontal_row_autovec(src, dst, kernel);
    }
}

#[cfg(target_arch = "x86_64")]
fn horizontal_row_native_sse2(src: &[u8], dst: &mut [u16], kernel: &FixedKernel) {
    use std::arch::x86_64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let r = kernel.radius;
    if width < 2 * r + 8 || !kernel.fits_u8() || kernel.len() > MAX_TAPS {
        horizontal_row_scalar(src, dst, kernel);
        return;
    }
    horizontal_row_scalar_range(src, dst, kernel, 0, r);
    let mut x = r;
    // SAFETY: per tap the 64-bit load reads src[x-r+k .. x-r+k+8]; with
    // x + 8 <= width - r and k <= 2r this stays within src. The store
    // writes dst[x..x+8] <= width. SSE2 is baseline on x86_64.
    unsafe {
        let zero = _mm_setzero_si128();
        let mut weights = [zero; MAX_TAPS];
        for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
            *wv = _mm_set1_epi16(w as i16);
        }
        let weights = &weights[..kernel.len()];
        while x + 8 <= width - r {
            let mut acc = _mm_setzero_si128();
            for (k, wv) in weights.iter().enumerate() {
                let v = _mm_loadl_epi64(src.as_ptr().add(x - r + k) as *const __m128i);
                let wide = _mm_unpacklo_epi8(v, zero);
                acc = _mm_add_epi16(acc, _mm_mullo_epi16(wide, *wv));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, acc);
            x += 8;
        }
    }
    horizontal_row_scalar_range(src, dst, kernel, x, width);
}

// ---------------------------------------------------------------------------
// Vertical pass
// ---------------------------------------------------------------------------

/// Runs the vertical pass over the whole intermediate image.
pub fn vertical_pass(mid: &Image<u16>, dst: &mut Image<u8>, kernel: &FixedKernel, engine: Engine) {
    let height = mid.height();
    let r = kernel.radius;
    // Borrow the tap rows for each output row, clamping at the edges.
    let mut taps: Vec<&[u16]> = Vec::with_capacity(kernel.len());
    for y in 0..height {
        taps.clear();
        for k in 0..kernel.len() {
            let yy = clamp_idx(y as isize + k as isize - r as isize, height);
            taps.push(mid.row(yy));
        }
        vertical_row(&taps, dst.row_mut(y), kernel, engine);
    }
}

/// Vertical pass for one output row given its `ksize` tap rows.
pub fn vertical_row(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel, engine: Engine) {
    match engine {
        Engine::Scalar => vertical_row_scalar(taps, dst, kernel),
        Engine::Autovec => vertical_row_autovec(taps, dst, kernel),
        Engine::Sse2Sim => vertical_row_sse2_sim(taps, dst, kernel),
        Engine::NeonSim => vertical_row_neon_sim(taps, dst, kernel),
        Engine::Native => vertical_row_native(taps, dst, kernel),
    }
}

const ROUND: u32 = 1 << 15;

/// Reference vertical pass.
pub fn vertical_row_scalar(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    assert_eq!(taps.len(), kernel.len());
    for x in 0..dst.len() {
        let mut acc = ROUND;
        for (row, &w) in taps.iter().zip(kernel.weights.iter()) {
            acc += row[x] as u32 * w as u32;
        }
        dst[x] = (acc >> 16) as u8;
    }
}

/// Iterator-shaped vertical pass for the auto-vectorizer.
pub fn vertical_row_autovec(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    assert_eq!(taps.len(), kernel.len());
    let width = dst.len();
    // Accumulate per-tap into a u32 stack block; LLVM vectorises each
    // inner loop independently and no heap allocation is needed (the same
    // per-element u32 arithmetic as the old full-row scratch, so outputs
    // are unchanged).
    const BLOCK: usize = 64;
    let mut acc = [0u32; BLOCK];
    let mut x0 = 0;
    while x0 < width {
        let n = BLOCK.min(width - x0);
        acc[..n].fill(ROUND);
        for (row, &w) in taps.iter().zip(kernel.weights.iter()) {
            let w = w as u32;
            for (a, &v) in acc[..n].iter_mut().zip(row[x0..x0 + n].iter()) {
                *a += v as u32 * w;
            }
        }
        for (d, &a) in dst[x0..x0 + n].iter_mut().zip(acc[..n].iter()) {
            *d = (a >> 16) as u8;
        }
        x0 += n;
    }
}

/// Hand-written SSE2 vertical pass: `pmullw`/`pmulhuw` split products,
/// 32-bit accumulation, rounding shift, double pack.
pub fn vertical_row_sse2_sim(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    use sse_sim::*;
    assert_eq!(taps.len(), kernel.len());
    if kernel.len() > MAX_TAPS {
        vertical_row_scalar(taps, dst, kernel);
        return;
    }
    let width = dst.len();
    let round = _mm_set1_epi32(ROUND as i32);
    let mut weights = [_mm_setzero_si128(); MAX_TAPS];
    for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
        *wv = _mm_set1_epi16(w as i16);
    }
    let weights = &weights[..kernel.len()];
    let mut x = 0;
    while x + 8 <= width {
        let mut acc_lo = round;
        let mut acc_hi = round;
        for (row, wv) in taps.iter().zip(weights.iter()) {
            let v = _mm_loadu_si128(&row[x..]);
            let lo16 = _mm_mullo_epi16(v, *wv);
            let hi16 = _mm_mulhi_epu16(v, *wv);
            acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(lo16, hi16));
            acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(lo16, hi16));
        }
        let r_lo = _mm_srli_epi32::<16>(acc_lo);
        let r_hi = _mm_srli_epi32::<16>(acc_hi);
        let packed16 = _mm_packs_epi32(r_lo, r_hi);
        let packed8 = _mm_packus_epi16(packed16, packed16);
        _mm_storel_epi64(&mut dst[x..], packed8);
        x += 8;
    }
    vertical_row_scalar_range(taps, dst, kernel, x, width);
}

/// Hand-written NEON vertical pass: `vmlal.u16` into `u32`, rounding shift,
/// narrow twice.
pub fn vertical_row_neon_sim(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    use neon_sim::*;
    assert_eq!(taps.len(), kernel.len());
    if kernel.len() > MAX_TAPS {
        vertical_row_scalar(taps, dst, kernel);
        return;
    }
    let width = dst.len();
    let round = vdupq_n_u32(ROUND);
    let mut weights = [uint16x4_t::splat(0); MAX_TAPS];
    for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
        *wv = uint16x4_t::splat(w as u16);
    }
    let weights = &weights[..kernel.len()];
    let mut x = 0;
    while x + 8 <= width {
        let mut acc_lo = round;
        let mut acc_hi = round;
        for (row, wv) in taps.iter().zip(weights.iter()) {
            let v = vld1q_u16(&row[x..]);
            acc_lo = vmlal_u16(acc_lo, vget_low_u16(v), *wv);
            acc_hi = vmlal_u16(acc_hi, vget_high_u16(v), *wv);
        }
        let n_lo = vmovn_u32(vshrq_n_u32(acc_lo, 16));
        let n_hi = vmovn_u32(vshrq_n_u32(acc_hi, 16));
        let packed = vqmovn_u16(vcombine_u16(n_lo, n_hi));
        vst1_u8(&mut dst[x..], packed);
        x += 8;
    }
    vertical_row_scalar_range(taps, dst, kernel, x, width);
}

fn vertical_row_scalar_range(
    taps: &[&[u16]],
    dst: &mut [u8],
    kernel: &FixedKernel,
    from: usize,
    to: usize,
) {
    for x in from..to {
        let mut acc = ROUND;
        for (row, &w) in taps.iter().zip(kernel.weights.iter()) {
            acc += row[x] as u32 * w as u32;
        }
        dst[x] = (acc >> 16) as u8;
    }
}

/// Vertical pass on the host's real SIMD unit.
pub fn vertical_row_native(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    #[cfg(target_arch = "x86_64")]
    {
        vertical_row_native_sse2(taps, dst, kernel);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        vertical_row_autovec(taps, dst, kernel);
    }
}

#[cfg(target_arch = "x86_64")]
fn vertical_row_native_sse2(taps: &[&[u16]], dst: &mut [u8], kernel: &FixedKernel) {
    use std::arch::x86_64::*;
    assert_eq!(taps.len(), kernel.len());
    if kernel.len() > MAX_TAPS {
        vertical_row_scalar(taps, dst, kernel);
        return;
    }
    let width = dst.len();
    let mut x = 0;
    // SAFETY: loads read row[x..x+8] of each tap row (length >= width);
    // the 64-bit store writes dst[x..x+8]; x + 8 <= width throughout.
    unsafe {
        let round = _mm_set1_epi32(ROUND as i32);
        let mut weights = [_mm_setzero_si128(); MAX_TAPS];
        for (wv, &w) in weights.iter_mut().zip(kernel.weights.iter()) {
            *wv = _mm_set1_epi16(w as i16);
        }
        let weights = &weights[..kernel.len()];
        while x + 8 <= width {
            let mut acc_lo = round;
            let mut acc_hi = round;
            for (row, wv) in taps.iter().zip(weights.iter()) {
                debug_assert!(row.len() >= width);
                let v = _mm_loadu_si128(row.as_ptr().add(x) as *const __m128i);
                let lo16 = _mm_mullo_epi16(v, *wv);
                let hi16 = _mm_mulhi_epu16(v, *wv);
                acc_lo = _mm_add_epi32(acc_lo, _mm_unpacklo_epi16(lo16, hi16));
                acc_hi = _mm_add_epi32(acc_hi, _mm_unpackhi_epi16(lo16, hi16));
            }
            let r_lo = _mm_srli_epi32::<16>(acc_lo);
            let r_hi = _mm_srli_epi32::<16>(acc_hi);
            let packed16 = _mm_packs_epi32(r_lo, r_hi);
            let packed8 = _mm_packus_epi16(packed16, packed16);
            _mm_storel_epi64(dst.as_mut_ptr().add(x) as *mut __m128i, packed8);
            x += 8;
        }
    }
    vertical_row_scalar_range(taps, dst, kernel, x, width);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn constant_image_is_fixed_point() {
        // A normalised kernel must preserve constant images exactly.
        let src = Image::from_fn(40, 20, |_, _| 177u8);
        for engine in Engine::ALL {
            let mut dst = Image::new(40, 20);
            gaussian_blur(&src, &mut dst, engine);
            assert!(
                dst.all_pixels(|p| p == 177),
                "engine {engine:?} broke constant image"
            );
        }
    }

    #[test]
    fn all_engines_match_scalar() {
        let src = synthetic_image(83, 37, 21);
        let mut reference = Image::new(83, 37);
        gaussian_blur(&src, &mut reference, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(83, 37);
            gaussian_blur(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference), "engine {engine:?} diverged");
        }
    }

    #[test]
    fn blur_reduces_gradient_energy() {
        let src = synthetic_image(64, 64, 5);
        let mut dst = Image::new(64, 64);
        gaussian_blur(&src, &mut dst, Engine::Native);
        let energy = |img: &Image<u8>| -> u64 {
            let mut e = 0u64;
            for y in 0..img.height() {
                let row = img.row(y);
                for x in 1..img.width() {
                    e += (row[x] as i64 - row[x - 1] as i64).unsigned_abs();
                }
            }
            e
        };
        assert!(
            energy(&dst) < energy(&src) / 2,
            "blur did not smooth: {} vs {}",
            energy(&dst),
            energy(&src)
        );
    }

    #[test]
    fn impulse_response_is_separable_kernel() {
        // Blurring a centred impulse recovers the outer product of the 1-D
        // kernel with itself (up to fixed-point rounding).
        let mut src = Image::<u8>::new(15, 15);
        src.set(7, 7, 255);
        let mut dst = Image::new(15, 15);
        gaussian_blur(&src, &mut dst, Engine::Native);
        let k = paper_gaussian_kernel();
        // Centre value: 255 * w[3]^2 / 2^16, rounded.
        let expect = ((255u32 * (k.weights[3] * k.weights[3]) as u32 + ROUND) >> 16) as u8;
        assert_eq!(dst.get(7, 7), expect);
        // Symmetry of the response.
        for d in 1..=3usize {
            assert_eq!(dst.get(7 - d, 7), dst.get(7 + d, 7));
            assert_eq!(dst.get(7, 7 - d), dst.get(7, 7 + d));
            assert_eq!(dst.get(7 - d, 7 - d), dst.get(7 + d, 7 + d));
        }
        // Energy decays away from the centre.
        assert!(dst.get(7, 7) > dst.get(6, 7));
        assert!(dst.get(6, 7) > dst.get(5, 7));
    }

    #[test]
    fn narrow_images_use_scalar_fallback() {
        // Narrower than the kernel: every engine must still agree.
        for width in 1..16 {
            let src = Image::from_fn(width, 9, |x, y| (x * 31 + y * 7) as u8);
            let mut reference = Image::new(width, 9);
            gaussian_blur(&src, &mut reference, Engine::Scalar);
            for engine in [
                Engine::Autovec,
                Engine::Sse2Sim,
                Engine::NeonSim,
                Engine::Native,
            ] {
                let mut out = Image::new(width, 9);
                gaussian_blur(&src, &mut out, engine);
                assert!(out.pixels_eq(&reference), "{engine:?} width {width}");
            }
        }
    }

    #[test]
    fn different_sigmas_agree_across_engines() {
        let src = synthetic_image(50, 30, 8);
        for (sigma, ksize) in [(0.8, 5), (1.5, 9), (2.0, 13)] {
            let mut reference = Image::new(50, 30);
            gaussian_blur_with(&src, &mut reference, sigma, ksize, Engine::Scalar);
            for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                let mut out = Image::new(50, 30);
                gaussian_blur_with(&src, &mut out, sigma, ksize, engine);
                assert!(out.pixels_eq(&reference), "{engine:?} sigma {sigma}");
            }
        }
    }
}
