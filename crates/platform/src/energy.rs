//! Energy-efficiency extension (experiment A4).
//!
//! The paper's introduction cites a three-tier GFLOPS/Watt classification
//! (desktop/server ≈ 1, GPU accelerators ≈ 2, ARM ≈ 4 GFLOPS/W) and names
//! performance-per-watt the future-work metric. This module derives
//! pixels/joule for every platform/kernel pair from the timing model and
//! the platforms' load power, and reproduces the tier classification.

use crate::predict::predict_seconds;
use crate::spec::PlatformSpec;
use crate::workload::{Kernel, Strategy};
use pixelimage::Resolution;
use serde::{Deserialize, Serialize};

/// The introduction's three-tier efficiency classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EfficiencyTier {
    /// ≈1 GFLOPS/W — desktop and server processors.
    Tier1Desktop,
    /// ≈2 GFLOPS/W — GPU accelerators.
    Tier2Accelerator,
    /// ≈4 GFLOPS/W — ARM RISC processors.
    Tier3Arm,
}

/// Megapixels processed per joule for one configuration.
pub fn megapixels_per_joule(
    p: &PlatformSpec,
    kernel: Kernel,
    strategy: Strategy,
    res: Resolution,
) -> f64 {
    let seconds = predict_seconds(p, kernel, strategy, res);
    let joules = seconds * p.tdp_watts;
    res.megapixels() / joules
}

/// Energy (joules) for one pass over the image.
pub fn joules_per_frame(
    p: &PlatformSpec,
    kernel: Kernel,
    strategy: Strategy,
    res: Resolution,
) -> f64 {
    predict_seconds(p, kernel, strategy, res) * p.tdp_watts
}

/// Classifies a platform by the intro's taxonomy (no GPUs in the study, so
/// only tiers 1 and 3 appear).
pub fn classify(p: &PlatformSpec) -> EfficiencyTier {
    if p.is_arm() {
        EfficiencyTier::Tier3Arm
    } else {
        EfficiencyTier::Tier1Desktop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::*;

    #[test]
    fn hand_is_more_energy_efficient_than_auto() {
        for p in all_platforms() {
            let hand = megapixels_per_joule(&p, Kernel::Convert, Strategy::Hand, Resolution::Mp8);
            let auto = megapixels_per_joule(&p, Kernel::Convert, Strategy::Auto, Resolution::Mp8);
            assert!(hand >= auto, "{}", p.short);
        }
    }

    #[test]
    fn arm_hand_kernels_beat_desktop_per_joule() {
        // The intro's thesis: low-power ARM parts win on efficiency even
        // while losing on absolute speed.
        let c2q = core2_q9400();
        let exynos = exynos_4412();
        let arm = megapixels_per_joule(&exynos, Kernel::Threshold, Strategy::Hand, Resolution::Mp8);
        let desktop =
            megapixels_per_joule(&c2q, Kernel::Threshold, Strategy::Hand, Resolution::Mp8);
        assert!(
            arm > desktop,
            "ARM {arm:.2} Mpx/J should beat desktop {desktop:.2} Mpx/J"
        );
    }

    #[test]
    fn tier_classification_matches_isa() {
        assert_eq!(classify(&atom_d510()), EfficiencyTier::Tier1Desktop);
        assert_eq!(classify(&exynos_3110()), EfficiencyTier::Tier3Arm);
        assert_eq!(classify(&tegra_t30()), EfficiencyTier::Tier3Arm);
    }

    #[test]
    fn energy_scales_with_image_size() {
        let p = exynos_4412();
        let small = joules_per_frame(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Vga);
        let large = joules_per_frame(&p, Kernel::Gaussian, Strategy::Hand, Resolution::Mp8);
        assert!(large > 20.0 * small);
    }
}
