//! Extension — 256-bit AVX2 variants of the byte/float kernels
//! (experiment A8).
//!
//! Table I lists the i7-2820QM and i5-3360M as AVX-capable, but the paper
//! compiles everything for SSE2 and cites related work measuring AVX at
//! 1.58–1.88× over SSE for compute-bound HPC kernels. This module supplies
//! the missing data point: the same hand-written loops widened to 256-bit
//! registers, selected at run time with `is_x86_feature_detected!` (the
//! paper-era equivalent was a CPUID dispatch).
//!
//! On non-x86_64 hosts, or when the CPU lacks AVX2, every entry point falls
//! back to the 128-bit native path, so callers can use these functions
//! unconditionally.

use crate::threshold::ThresholdType;

/// True when the 256-bit paths will actually run on this host.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// 256-bit float→short conversion row; falls back to the 128-bit native
/// path without AVX2.
pub fn convert_row_avx2(src: &[f32], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            unsafe { convert_row_avx2_impl(src, dst) };
            return;
        }
    }
    crate::convert::convert_row_native(src, dst);
}

/// The AVX2 widening of the paper's SSE2 listing: 16 pixels per iteration,
/// `vcvtps2dq` + `vpackssdw` (which packs within 128-bit lanes, needing a
/// `vpermq` fix-up — the classic AVX2 port pitfall).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn convert_row_avx2_impl(src: &[f32], dst: &mut [i16]) {
    use std::arch::x86_64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY (caller + bounds): AVX2 present; loads read src[x..x+16] and
    // the store writes dst[x..x+16], guarded by the loop condition.
    unsafe {
        while x + 16 <= width {
            let s0 = _mm256_loadu_ps(src.as_ptr().add(x));
            let i0 = _mm256_cvtps_epi32(s0);
            let s1 = _mm256_loadu_ps(src.as_ptr().add(x + 8));
            let i1 = _mm256_cvtps_epi32(s1);
            // packs operates per 128-bit lane: [a0 b0 a1 b1] -> permute to
            // restore memory order.
            let packed = _mm256_packs_epi32(i0, i1);
            let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
            _mm256_storeu_si256(dst.as_mut_ptr().add(x) as *mut __m256i, fixed);
            x += 16;
        }
    }
    crate::convert::convert_row_scalar(&src[x..], &mut dst[x..]);
}

/// 256-bit threshold row; falls back to the 128-bit native path without
/// AVX2.
pub fn threshold_row_avx2(src: &[u8], dst: &mut [u8], thresh: u8, maxval: u8, ty: ThresholdType) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            unsafe { threshold_row_avx2_impl(src, dst, thresh, maxval, ty) };
            return;
        }
    }
    crate::threshold::threshold_row_native(src, dst, thresh, maxval, ty);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn threshold_row_avx2_impl(
    src: &[u8],
    dst: &mut [u8],
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
) {
    use std::arch::x86_64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY: AVX2 present (target_feature + caller check); loads read
    // src[x..x+32], stores write dst[x..x+32], within the checked length.
    unsafe {
        let sign = _mm256_set1_epi8(-128i8);
        let thresh_s = _mm256_xor_si256(_mm256_set1_epi8(thresh as i8), sign);
        let maxval_v = _mm256_set1_epi8(maxval as i8);
        let thresh_v = _mm256_set1_epi8(thresh as i8);
        while x + 32 <= width {
            let v = _mm256_loadu_si256(src.as_ptr().add(x) as *const __m256i);
            let v_s = _mm256_xor_si256(v, sign);
            let gt = _mm256_cmpgt_epi8(v_s, thresh_s);
            let out = match ty {
                ThresholdType::Binary => _mm256_and_si256(gt, maxval_v),
                ThresholdType::BinaryInv => _mm256_andnot_si256(gt, maxval_v),
                ThresholdType::Trunc => _mm256_min_epu8(v, thresh_v),
                ThresholdType::ToZero => _mm256_and_si256(gt, v),
                ThresholdType::ToZeroInv => _mm256_andnot_si256(gt, v),
            };
            _mm256_storeu_si256(dst.as_mut_ptr().add(x) as *mut __m256i, out);
            x += 32;
        }
    }
    crate::threshold::threshold_row_scalar(&src[x..], &mut dst[x..], thresh, maxval, ty);
}

/// 256-bit L1 gradient magnitude; falls back without AVX2.
pub fn magnitude_row_avx2(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: guarded by the runtime AVX2 check.
            unsafe { magnitude_row_avx2_impl(gx, gy, dst) };
            return;
        }
    }
    crate::edge::magnitude_row_native(gx, gy, dst);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn magnitude_row_avx2_impl(gx: &[i16], gy: &[i16], dst: &mut [u8]) {
    use std::arch::x86_64::*;
    assert_eq!(gx.len(), dst.len());
    assert_eq!(gy.len(), dst.len());
    let w = dst.len();
    let mut x = 0;
    // SAFETY: AVX2 present; loads read gx/gy[x..x+16]; the 128-bit store
    // writes dst[x..x+16]; bounds guarded by the loop condition.
    unsafe {
        while x + 16 <= w {
            let vx = _mm256_loadu_si256(gx.as_ptr().add(x) as *const __m256i);
            let vy = _mm256_loadu_si256(gy.as_ptr().add(x) as *const __m256i);
            let ax = _mm256_abs_epi16(vx);
            let ay = _mm256_abs_epi16(vy);
            let sum = _mm256_adds_epi16(ax, ay);
            let packed = _mm256_packus_epi16(sum, sum);
            let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(x) as *mut __m128i,
                _mm256_castsi256_si128(fixed),
            );
            x += 16;
        }
    }
    crate::edge::magnitude_row_scalar(&gx[x..], &gy[x..], &mut dst[x..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_row_scalar;
    use crate::threshold::threshold_row_scalar;

    #[test]
    fn convert_avx2_matches_scalar() {
        let src: Vec<f32> = (0..203)
            .map(|i| (i as f32) * 331.7 - 33000.0)
            .chain([0.5, 1.5, 2.5, -2.5, 4e4, -4e4])
            .collect();
        let mut expect = vec![0i16; src.len()];
        convert_row_scalar(&src, &mut expect);
        let mut out = vec![0i16; src.len()];
        convert_row_avx2(&src, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn threshold_avx2_matches_scalar_all_types() {
        let src: Vec<u8> = (0..300).map(|i| (i * 83) as u8).collect();
        for ty in ThresholdType::ALL {
            for thresh in [0u8, 127, 128, 255] {
                let mut expect = vec![0u8; src.len()];
                threshold_row_scalar(&src, &mut expect, thresh, 200, ty);
                let mut out = vec![0u8; src.len()];
                threshold_row_avx2(&src, &mut out, thresh, 200, ty);
                assert_eq!(out, expect, "{ty:?} thresh {thresh}");
            }
        }
    }

    #[test]
    fn magnitude_avx2_matches_scalar() {
        let gx: Vec<i16> = (0..99).map(|i| (i * 37 - 1020) as i16).collect();
        let gy: Vec<i16> = (0..99).map(|i| (1020 - i * 29) as i16).collect();
        let mut expect = vec![0u8; 99];
        crate::edge::magnitude_row_scalar(&gx, &gy, &mut expect);
        let mut out = vec![0u8; 99];
        magnitude_row_avx2(&gx, &gy, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn tails_below_256bit_width() {
        for len in 0..40 {
            let src: Vec<f32> = (0..len).map(|i| i as f32 * 7.7 - 50.0).collect();
            let mut expect = vec![0i16; len];
            convert_row_scalar(&src, &mut expect);
            let mut out = vec![0i16; len];
            convert_row_avx2(&src, &mut out);
            assert_eq!(out, expect, "len {len}");
        }
    }

    #[test]
    fn detection_is_consistent() {
        // Calling twice must agree (no torn CPUID state).
        assert_eq!(avx2_available(), avx2_available());
    }
}
