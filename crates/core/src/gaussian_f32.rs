//! Extension — float-path separable Gaussian (experiment A7).
//!
//! The paper's benchmark 1 exists because real pipelines convert 8-bit
//! pixels to float, filter in float, and convert back. This module supplies
//! that middle stage: a separable Gaussian over `f32` images, exercising
//! the float SIMD families (`mulps`/`addps`, `vmlaq_f32`) the fixed-point
//! kernels never touch.
//!
//! Float accumulation order matters for bit-exactness: all backends
//! accumulate taps in ascending index order with unfused multiply-add
//! (matching `vmla` on VFPv3/NEON and `mulps`+`addps` on SSE2), so scalar,
//! simulated and native results are identical bit patterns.

use crate::dispatch::Engine;
use crate::kernelgen::gaussian_kernel_f64;
use pixelimage::Image;

/// Blurs an `f32` image with a sampled Gaussian (`ksize` odd, σ > 0).
pub fn gaussian_blur_f32(
    src: &Image<f32>,
    dst: &mut Image<f32>,
    sigma: f64,
    ksize: usize,
    engine: Engine,
) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    let weights: Vec<f32> = gaussian_kernel_f64(sigma, ksize)
        .into_iter()
        .map(|w| w as f32)
        .collect();
    let radius = ksize / 2;
    let mut mid = Image::<f32>::new(src.width(), src.height());
    for y in 0..src.height() {
        horizontal_row_f32(src.row(y), mid.row_mut(y), &weights, radius, engine);
    }
    let height = src.height();
    let clamp = |y: isize| y.clamp(0, height as isize - 1) as usize;
    let mut taps: Vec<&[f32]> = Vec::with_capacity(ksize);
    for y in 0..height {
        taps.clear();
        for k in 0..ksize {
            taps.push(mid.row(clamp(y as isize + k as isize - radius as isize)));
        }
        vertical_row_f32(&taps, dst.row_mut(y), &weights, engine);
    }
}

/// Horizontal float pass (border replicate).
pub fn horizontal_row_f32(
    src: &[f32],
    dst: &mut [f32],
    weights: &[f32],
    radius: usize,
    engine: Engine,
) {
    match engine {
        Engine::Scalar | Engine::Autovec => horizontal_row_f32_scalar(src, dst, weights, radius),
        Engine::Sse2Sim => horizontal_row_f32_sse2_sim(src, dst, weights, radius),
        Engine::NeonSim => horizontal_row_f32_neon_sim(src, dst, weights, radius),
        Engine::Native => horizontal_row_f32_native(src, dst, weights, radius),
    }
}

fn horizontal_row_f32_scalar(src: &[f32], dst: &mut [f32], weights: &[f32], radius: usize) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    for x in 0..n {
        let mut acc = 0.0f32;
        for (k, &w) in weights.iter().enumerate() {
            let idx = (x as isize + k as isize - radius as isize).clamp(0, n as isize - 1) as usize;
            acc += src[idx] * w;
        }
        dst[x] = acc;
    }
}

fn horizontal_row_f32_range(
    src: &[f32],
    dst: &mut [f32],
    weights: &[f32],
    radius: usize,
    from: usize,
    to: usize,
) {
    let n = src.len();
    for x in from..to {
        let mut acc = 0.0f32;
        for (k, &w) in weights.iter().enumerate() {
            let idx = (x as isize + k as isize - radius as isize).clamp(0, n as isize - 1) as usize;
            acc += src[idx] * w;
        }
        dst[x] = acc;
    }
}

fn horizontal_row_f32_sse2_sim(src: &[f32], dst: &mut [f32], weights: &[f32], radius: usize) {
    use sse_sim::*;
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    if n < 2 * radius + 4 {
        horizontal_row_f32_scalar(src, dst, weights, radius);
        return;
    }
    horizontal_row_f32_range(src, dst, weights, radius, 0, radius);
    let wv: Vec<__m128> = weights.iter().map(|&w| _mm_set1_ps(w)).collect();
    let mut x = radius;
    while x + 4 <= n - radius {
        let mut acc = _mm_setzero_ps();
        for (k, w) in wv.iter().enumerate() {
            let v = _mm_loadu_ps(&src[x - radius + k..]);
            acc = _mm_add_ps(acc, _mm_mul_ps(v, *w));
        }
        _mm_storeu_ps(&mut dst[x..], acc);
        x += 4;
    }
    horizontal_row_f32_range(src, dst, weights, radius, x, n);
}

fn horizontal_row_f32_neon_sim(src: &[f32], dst: &mut [f32], weights: &[f32], radius: usize) {
    use neon_sim::*;
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    if n < 2 * radius + 4 {
        horizontal_row_f32_scalar(src, dst, weights, radius);
        return;
    }
    horizontal_row_f32_range(src, dst, weights, radius, 0, radius);
    let mut x = radius;
    while x + 4 <= n - radius {
        let mut acc = vdupq_n_f32(0.0);
        for (k, &w) in weights.iter().enumerate() {
            let v = vld1q_f32(&src[x - radius + k..]);
            acc = vmlaq_n_f32(acc, v, w);
        }
        vst1q_f32(&mut dst[x..], acc);
        x += 4;
    }
    horizontal_row_f32_range(src, dst, weights, radius, x, n);
}

fn horizontal_row_f32_native(src: &[f32], dst: &mut [f32], weights: &[f32], radius: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert_eq!(src.len(), dst.len());
        let n = src.len();
        if n < 2 * radius + 4 {
            horizontal_row_f32_scalar(src, dst, weights, radius);
            return;
        }
        horizontal_row_f32_range(src, dst, weights, radius, 0, radius);
        let mut x = radius;
        // SAFETY: per tap the load reads src[x-radius+k .. +4]; with
        // x + 4 <= n - radius and k <= 2*radius this stays in bounds; the
        // store writes dst[x..x+4] <= n.
        unsafe {
            let wv: Vec<__m128> = weights.iter().map(|&w| _mm_set1_ps(w)).collect();
            while x + 4 <= n - radius {
                let mut acc = _mm_setzero_ps();
                for (k, w) in wv.iter().enumerate() {
                    let v = _mm_loadu_ps(src.as_ptr().add(x - radius + k));
                    acc = _mm_add_ps(acc, _mm_mul_ps(v, *w));
                }
                _mm_storeu_ps(dst.as_mut_ptr().add(x), acc);
                x += 4;
            }
        }
        horizontal_row_f32_range(src, dst, weights, radius, x, n);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        horizontal_row_f32_scalar(src, dst, weights, radius);
    }
}

/// Vertical float pass over the tap rows.
pub fn vertical_row_f32(taps: &[&[f32]], dst: &mut [f32], weights: &[f32], engine: Engine) {
    match engine {
        Engine::Scalar | Engine::Autovec => vertical_row_f32_scalar(taps, dst, weights),
        Engine::Sse2Sim => {
            use sse_sim::*;
            let n = dst.len();
            let wv: Vec<__m128> = weights.iter().map(|&w| _mm_set1_ps(w)).collect();
            let mut x = 0;
            while x + 4 <= n {
                let mut acc = _mm_setzero_ps();
                for (row, w) in taps.iter().zip(wv.iter()) {
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(&row[x..]), *w));
                }
                _mm_storeu_ps(&mut dst[x..], acc);
                x += 4;
            }
            vertical_row_f32_scalar_range(taps, dst, weights, x, n);
        }
        Engine::NeonSim => {
            use neon_sim::*;
            let n = dst.len();
            let mut x = 0;
            while x + 4 <= n {
                let mut acc = vdupq_n_f32(0.0);
                for (row, &w) in taps.iter().zip(weights.iter()) {
                    acc = vmlaq_n_f32(acc, vld1q_f32(&row[x..]), w);
                }
                vst1q_f32(&mut dst[x..], acc);
                x += 4;
            }
            vertical_row_f32_scalar_range(taps, dst, weights, x, n);
        }
        Engine::Native => vertical_row_f32_native(taps, dst, weights),
    }
}

fn vertical_row_f32_scalar(taps: &[&[f32]], dst: &mut [f32], weights: &[f32]) {
    vertical_row_f32_scalar_range(taps, dst, weights, 0, dst.len());
}

fn vertical_row_f32_scalar_range(
    taps: &[&[f32]],
    dst: &mut [f32],
    weights: &[f32],
    from: usize,
    to: usize,
) {
    for x in from..to {
        let mut acc = 0.0f32;
        for (row, &w) in taps.iter().zip(weights.iter()) {
            acc += row[x] * w;
        }
        dst[x] = acc;
    }
}

fn vertical_row_f32_native(taps: &[&[f32]], dst: &mut [f32], weights: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        let n = dst.len();
        for row in taps {
            assert!(row.len() >= n);
        }
        let mut x = 0;
        // SAFETY: loads read row[x..x+4] (rows >= n, asserted); stores
        // write dst[x..x+4]; x + 4 <= n throughout.
        unsafe {
            let wv: Vec<__m128> = weights.iter().map(|&w| _mm_set1_ps(w)).collect();
            while x + 4 <= n {
                let mut acc = _mm_setzero_ps();
                for (row, w) in taps.iter().zip(wv.iter()) {
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(row.as_ptr().add(x)), *w));
                }
                _mm_storeu_ps(dst.as_mut_ptr().add(x), acc);
                x += 4;
            }
        }
        vertical_row_f32_scalar_range(taps, dst, weights, x, n);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        vertical_row_f32_scalar(taps, dst, weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image_f32;

    #[test]
    fn all_engines_bit_exact() {
        let src = synthetic_image_f32(77, 29, 19);
        let mut reference = Image::new(77, 29);
        gaussian_blur_f32(&src, &mut reference, 1.0, 7, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(77, 29);
            gaussian_blur_f32(&src, &mut out, 1.0, 7, engine);
            for y in 0..29 {
                for (a, b) in out.row(y).iter().zip(reference.row(y).iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{engine:?}");
                }
            }
        }
    }

    #[test]
    fn constant_image_nearly_preserved() {
        // Float weights sum to 1 within rounding; constants survive to ulps.
        let src = Image::<f32>::from_fn(32, 16, |_, _| 100.0);
        let mut dst = Image::new(32, 16);
        gaussian_blur_f32(&src, &mut dst, 1.0, 7, Engine::Native);
        assert!(
            dst.iter_pixels().all(|v| (v - 100.0).abs() < 1e-3),
            "constant drifted"
        );
    }

    #[test]
    fn matches_fixed_point_path_within_quantisation() {
        // The f32 blur and the Q8 fixed-point blur agree to within the Q8
        // quantisation error on 8-bit data.
        let gray = pixelimage::synthetic_image(60, 40, 23);
        let srcf = pixelimage::convert::u8_to_f32(&gray, 1.0, 0.0);
        let mut blurf = Image::new(60, 40);
        gaussian_blur_f32(&srcf, &mut blurf, 1.0, 7, Engine::Native);
        let mut blur8 = Image::new(60, 40);
        crate::gaussian::gaussian_blur(&gray, &mut blur8, Engine::Native);
        for y in 0..40 {
            for x in 0..60 {
                let diff = (blurf.get(x, y) - blur8.get(x, y) as f32).abs();
                assert!(
                    diff <= 1.5,
                    "({x},{y}): f32 {} vs q8 {}",
                    blurf.get(x, y),
                    blur8.get(x, y)
                );
            }
        }
    }

    #[test]
    fn narrow_images_fall_back() {
        for w in 1..12 {
            let src = synthetic_image_f32(w, 5, 7);
            let mut reference = Image::new(w, 5);
            gaussian_blur_f32(&src, &mut reference, 1.0, 7, Engine::Scalar);
            for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                let mut out = Image::new(w, 5);
                gaussian_blur_f32(&src, &mut out, 1.0, 7, engine);
                for y in 0..5 {
                    for (a, b) in out.row(y).iter().zip(reference.row(y).iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{engine:?} w={w}");
                    }
                }
            }
        }
    }

    #[test]
    fn wider_sigma_smooths_more() {
        let src = synthetic_image_f32(64, 48, 31);
        let variance = |img: &Image<f32>| {
            let mean = img.iter_pixels().sum::<f32>() / img.pixels() as f32;
            img.iter_pixels()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / img.pixels() as f32
        };
        let mut narrow = Image::new(64, 48);
        let mut wide = Image::new(64, 48);
        gaussian_blur_f32(&src, &mut narrow, 0.8, 5, Engine::Native);
        gaussian_blur_f32(&src, &mut wide, 2.5, 15, Engine::Native);
        assert!(variance(&wide) < variance(&narrow));
        assert!(variance(&narrow) < variance(&src));
    }
}
