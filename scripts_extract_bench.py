#!/usr/bin/env python3
"""Summarises a criterion bench_output.txt into group/median tables."""
import re, sys, collections

def parse(path):
    results = []
    name = None
    for line in open(path):
        m = re.match(r'^([a-z0-9_]+/[^\s]+)\s*$', line.strip())
        if m and '/' in m.group(1):
            name = m.group(1)
        m = re.search(r'time:\s+\[[^ ]+ [^\s]+ ([0-9.]+) (ns|µs|ms|s)', line)
        if m and name:
            val, unit = float(m.group(1)), m.group(2)
            mult = {'ns':1e-9,'µs':1e-6,'ms':1e-3,'s':1.0}[unit]
            results.append((name, val*mult))
            name = None
    return results

if __name__ == '__main__':
    res = parse(sys.argv[1] if len(sys.argv)>1 else 'bench_output.txt')
    groups = collections.defaultdict(list)
    for name, sec in res:
        groups[name.split('/')[0]].append((name, sec))
    for g, items in groups.items():
        print(f'== {g}')
        for name, sec in items:
            print(f'  {name:<55} {sec*1e3:10.3f} ms')
