//! Aggregated instruction mixes.

use crate::{OpClass, NUM_OP_CLASSES};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// An aggregated count of micro-ops by [`OpClass`].
///
/// An `OpMix` is produced either by *measuring* a kernel (running it with the
/// simulated intrinsics under a [`crate::TraceGuard`]) or by *modelling* it
/// (the gcc-4.6-shaped AUTO streams derived from the paper's Section V
/// disassembly). Both feed the platform timing model identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpMix {
    counts: [u64; NUM_OP_CLASSES],
}

impl OpMix {
    /// An all-zero mix.
    pub const fn new() -> Self {
        OpMix {
            counts: [0; NUM_OP_CLASSES],
        }
    }

    /// Builds a mix from a raw counter array (indexed by [`OpClass::index`]).
    pub const fn from_counts(counts: [u64; NUM_OP_CLASSES]) -> Self {
        OpMix { counts }
    }

    /// Builds a mix from `(class, count)` pairs.
    pub fn from_pairs(pairs: &[(OpClass, u64)]) -> Self {
        let mut mix = OpMix::new();
        for &(class, n) in pairs {
            mix.counts[class.index()] += n;
        }
        mix
    }

    /// Count for one class.
    #[inline]
    pub fn get(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sets the count for one class.
    pub fn set(&mut self, class: OpClass, n: u64) {
        self.counts[class.index()] = n;
    }

    /// Adds `n` ops of `class`.
    pub fn add_ops(&mut self, class: OpClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Total op count across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total SIMD ops (loads, stores, ALU, converts).
    pub fn simd_total(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_simd())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Total scalar compute ops (everything that is neither SIMD nor
    /// branch/libcall/address overhead).
    pub fn scalar_total(&self) -> u64 {
        self.get(OpClass::ScalarLoad)
            + self.get(OpClass::ScalarStore)
            + self.get(OpClass::ScalarAlu)
            + self.get(OpClass::ScalarConvert)
    }

    /// Total loop/branch/call overhead ops.
    pub fn overhead_total(&self) -> u64 {
        self.get(OpClass::Branch) + self.get(OpClass::LibCall) + self.get(OpClass::AddrArith)
    }

    /// Total memory-touching ops.
    pub fn memory_total(&self) -> u64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_memory())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Ops per pixel for a workload over `pixels` output pixels.
    pub fn per_pixel(&self, pixels: u64) -> f64 {
        if pixels == 0 {
            0.0
        } else {
            self.total() as f64 / pixels as f64
        }
    }

    /// Fraction of all ops that are SIMD (0.0 when the mix is empty).
    pub fn simd_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.simd_total() as f64 / total as f64
        }
    }

    /// Iterates over non-zero `(class, count)` entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        OpClass::ALL
            .iter()
            .map(move |&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
    }

    /// Scales every count by `factor`, rounding to nearest. Used to
    /// extrapolate a mix measured on a small image to a larger one.
    pub fn scaled(&self, factor: f64) -> OpMix {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let mut out = OpMix::new();
        for (i, &n) in self.counts.iter().enumerate() {
            out.counts[i] = (n as f64 * factor).round() as u64;
        }
        out
    }
}

impl Add for OpMix {
    type Output = OpMix;
    fn add(mut self, rhs: OpMix) -> OpMix {
        self += rhs;
        self
    }
}

impl AddAssign for OpMix {
    fn add_assign(&mut self, rhs: OpMix) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
    }
}

impl Mul<u64> for OpMix {
    type Output = OpMix;
    fn mul(mut self, rhs: u64) -> OpMix {
        for c in self.counts.iter_mut() {
            *c *= rhs;
        }
        self
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (class, n) in self.iter_nonzero() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", class.mnemonic(), n)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_the_mix() {
        let mix = OpMix::from_pairs(&[
            (OpClass::SimdLoad, 2),
            (OpClass::SimdStore, 1),
            (OpClass::SimdAlu, 3),
            (OpClass::SimdConvert, 2),
            (OpClass::ScalarAlu, 4),
            (OpClass::Branch, 1),
            (OpClass::AddrArith, 5),
            (OpClass::LibCall, 1),
        ]);
        assert_eq!(mix.simd_total(), 8);
        assert_eq!(mix.scalar_total(), 4);
        assert_eq!(mix.overhead_total(), 7);
        assert_eq!(mix.total(), 19);
        assert_eq!(
            mix.total(),
            mix.simd_total() + mix.scalar_total() + mix.overhead_total()
        );
    }

    #[test]
    fn per_pixel_and_fraction() {
        let mix = OpMix::from_pairs(&[(OpClass::SimdAlu, 14)]);
        assert_eq!(mix.per_pixel(8), 14.0 / 8.0);
        assert_eq!(mix.per_pixel(0), 0.0);
        assert_eq!(mix.simd_fraction(), 1.0);
        assert_eq!(OpMix::new().simd_fraction(), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let a = OpMix::from_pairs(&[(OpClass::SimdAlu, 2), (OpClass::Branch, 1)]);
        let b = OpMix::from_pairs(&[(OpClass::SimdAlu, 3)]);
        let sum = a + b;
        assert_eq!(sum.get(OpClass::SimdAlu), 5);
        assert_eq!(sum.get(OpClass::Branch), 1);
        let scaled = sum.scaled(2.5);
        assert_eq!(scaled.get(OpClass::SimdAlu), 13); // 12.5 rounds to 13
        let times = sum * 4;
        assert_eq!(times.get(OpClass::SimdAlu), 20);
    }

    #[test]
    fn display_lists_nonzero_classes() {
        let mix = OpMix::from_pairs(&[(OpClass::SimdLoad, 2), (OpClass::LibCall, 7)]);
        let text = mix.to_string();
        assert!(text.contains("simd.ld=2"));
        assert!(text.contains("libcall=7"));
        assert_eq!(OpMix::new().to_string(), "(empty)");
    }

    #[test]
    fn memory_total_counts_loads_and_stores() {
        let mix = OpMix::from_pairs(&[
            (OpClass::SimdLoad, 2),
            (OpClass::ScalarStore, 3),
            (OpClass::SimdAlu, 9),
        ]);
        assert_eq!(mix.memory_total(), 5);
    }
}
