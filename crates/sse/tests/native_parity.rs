//! Checks every simulated SSE2 intrinsic against the genuine hardware
//! instruction via `core::arch::x86_64`, over both structured edge cases and
//! randomized inputs. Only compiled on x86_64 hosts (every x86_64 CPU has
//! SSE2 by definition of the ABI).
#![cfg(target_arch = "x86_64")]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::arch::x86_64 as native;

/// Number of random trials per intrinsic.
const TRIALS: usize = 512;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5EED_CAFE)
}

// --- helpers to move data between the sim and native worlds ----------------

fn native_ps(lanes: [f32; 4]) -> native::__m128 {
    unsafe { native::_mm_loadu_ps(lanes.as_ptr()) }
}

fn native_ps_out(v: native::__m128) -> [f32; 4] {
    let mut out = [0f32; 4];
    unsafe { native::_mm_storeu_ps(out.as_mut_ptr(), v) };
    out
}

fn native_pd(lanes: [f64; 2]) -> native::__m128d {
    unsafe { native::_mm_loadu_pd(lanes.as_ptr()) }
}

fn native_pd_out(v: native::__m128d) -> [f64; 2] {
    let mut out = [0f64; 2];
    unsafe { native::_mm_storeu_pd(out.as_mut_ptr(), v) };
    out
}

fn native_si(bytes: [u8; 16]) -> native::__m128i {
    unsafe { native::_mm_loadu_si128(bytes.as_ptr() as *const native::__m128i) }
}

fn native_si_out(v: native::__m128i) -> [u8; 16] {
    let mut out = [0u8; 16];
    unsafe { native::_mm_storeu_si128(out.as_mut_ptr() as *mut native::__m128i, v) };
    out
}

fn sim_si(bytes: [u8; 16]) -> sse_sim::__m128i {
    sse_sim::_mm_loadu_si128(&bytes)
}

fn sim_si_out(v: sse_sim::__m128i) -> [u8; 16] {
    let mut out = [0u8; 16];
    sse_sim::_mm_storeu_si128(&mut out, v);
    out
}

fn rand_bytes(rng: &mut StdRng) -> [u8; 16] {
    let mut b = [0u8; 16];
    rng.fill(&mut b);
    b
}

fn rand_floats(rng: &mut StdRng) -> [f32; 4] {
    // Mix of magnitudes including values near the i32/i16 boundaries.
    let pick = |rng: &mut StdRng| -> f32 {
        match rng.gen_range(0..6) {
            0 => rng.gen_range(-1.0f32..1.0),
            1 => rng.gen_range(-100_000.0f32..100_000.0),
            2 => rng.gen_range(-40_000.0f32..40_000.0),
            3 => (rng.gen_range(-100i32..100) as f32) + 0.5,
            4 => rng.gen_range(-3.0e9f32..3.0e9),
            _ => rng.gen_range(-255.0f32..255.0),
        }
    };
    [pick(rng), pick(rng), pick(rng), pick(rng)]
}

/// Compares float lanes bit-for-bit (NaN payloads included).
fn assert_bits_eq(a: [f32; 4], b: [f32; 4], what: &str) {
    for i in 0..4 {
        assert_eq!(
            a[i].to_bits(),
            b[i].to_bits(),
            "{what}: lane {i}: sim {} vs native {}",
            a[i],
            b[i]
        );
    }
}

macro_rules! check_ps_binop {
    ($name:ident, $sim:path, $nat:path) => {
        #[test]
        fn $name() {
            let mut rng = rng();
            for _ in 0..TRIALS {
                let a = rand_floats(&mut rng);
                let b = rand_floats(&mut rng);
                let sim = $sim(a.into(), b.into()).to_array();
                let nat = native_ps_out(unsafe { $nat(native_ps(a), native_ps(b)) });
                assert_bits_eq(sim, nat, stringify!($name));
            }
        }
    };
}

check_ps_binop!(add_ps, sse_sim::_mm_add_ps, native::_mm_add_ps);
check_ps_binop!(sub_ps, sse_sim::_mm_sub_ps, native::_mm_sub_ps);
check_ps_binop!(mul_ps, sse_sim::_mm_mul_ps, native::_mm_mul_ps);
check_ps_binop!(div_ps, sse_sim::_mm_div_ps, native::_mm_div_ps);
check_ps_binop!(min_ps, sse_sim::_mm_min_ps, native::_mm_min_ps);
check_ps_binop!(max_ps, sse_sim::_mm_max_ps, native::_mm_max_ps);
check_ps_binop!(cmpgt_ps, sse_sim::_mm_cmpgt_ps, native::_mm_cmpgt_ps);
check_ps_binop!(cmpge_ps, sse_sim::_mm_cmpge_ps, native::_mm_cmpge_ps);
check_ps_binop!(cmplt_ps, sse_sim::_mm_cmplt_ps, native::_mm_cmplt_ps);
check_ps_binop!(cmple_ps, sse_sim::_mm_cmple_ps, native::_mm_cmple_ps);
check_ps_binop!(cmpeq_ps, sse_sim::_mm_cmpeq_ps, native::_mm_cmpeq_ps);
check_ps_binop!(and_ps, sse_sim::_mm_and_ps, native::_mm_and_ps);
check_ps_binop!(or_ps, sse_sim::_mm_or_ps, native::_mm_or_ps);
check_ps_binop!(xor_ps, sse_sim::_mm_xor_ps, native::_mm_xor_ps);
check_ps_binop!(andnot_ps, sse_sim::_mm_andnot_ps, native::_mm_andnot_ps);

macro_rules! check_si_binop {
    ($name:ident, $sim:path, $nat:path) => {
        #[test]
        fn $name() {
            let mut rng = rng();
            for _ in 0..TRIALS {
                let a = rand_bytes(&mut rng);
                let b = rand_bytes(&mut rng);
                let sim = sim_si_out($sim(sim_si(a), sim_si(b)));
                let nat = native_si_out(unsafe { $nat(native_si(a), native_si(b)) });
                assert_eq!(sim, nat, stringify!($name));
            }
        }
    };
}

check_si_binop!(add_epi8, sse_sim::_mm_add_epi8, native::_mm_add_epi8);
check_si_binop!(sub_epi8, sse_sim::_mm_sub_epi8, native::_mm_sub_epi8);
check_si_binop!(add_epi16, sse_sim::_mm_add_epi16, native::_mm_add_epi16);
check_si_binop!(sub_epi16, sse_sim::_mm_sub_epi16, native::_mm_sub_epi16);
check_si_binop!(add_epi32, sse_sim::_mm_add_epi32, native::_mm_add_epi32);
check_si_binop!(sub_epi32, sse_sim::_mm_sub_epi32, native::_mm_sub_epi32);
check_si_binop!(add_epi64, sse_sim::_mm_add_epi64, native::_mm_add_epi64);
check_si_binop!(sub_epi64, sse_sim::_mm_sub_epi64, native::_mm_sub_epi64);
check_si_binop!(adds_epi8, sse_sim::_mm_adds_epi8, native::_mm_adds_epi8);
check_si_binop!(adds_epi16, sse_sim::_mm_adds_epi16, native::_mm_adds_epi16);
check_si_binop!(subs_epi16, sse_sim::_mm_subs_epi16, native::_mm_subs_epi16);
check_si_binop!(adds_epu8, sse_sim::_mm_adds_epu8, native::_mm_adds_epu8);
check_si_binop!(subs_epu8, sse_sim::_mm_subs_epu8, native::_mm_subs_epu8);
check_si_binop!(adds_epu16, sse_sim::_mm_adds_epu16, native::_mm_adds_epu16);
check_si_binop!(subs_epu16, sse_sim::_mm_subs_epu16, native::_mm_subs_epu16);
check_si_binop!(
    mullo_epi16,
    sse_sim::_mm_mullo_epi16,
    native::_mm_mullo_epi16
);
check_si_binop!(
    mulhi_epi16,
    sse_sim::_mm_mulhi_epi16,
    native::_mm_mulhi_epi16
);
check_si_binop!(
    mulhi_epu16,
    sse_sim::_mm_mulhi_epu16,
    native::_mm_mulhi_epu16
);
check_si_binop!(madd_epi16, sse_sim::_mm_madd_epi16, native::_mm_madd_epi16);
check_si_binop!(max_epu8, sse_sim::_mm_max_epu8, native::_mm_max_epu8);
check_si_binop!(min_epu8, sse_sim::_mm_min_epu8, native::_mm_min_epu8);
check_si_binop!(max_epi16, sse_sim::_mm_max_epi16, native::_mm_max_epi16);
check_si_binop!(min_epi16, sse_sim::_mm_min_epi16, native::_mm_min_epi16);
check_si_binop!(avg_epu8, sse_sim::_mm_avg_epu8, native::_mm_avg_epu8);
check_si_binop!(avg_epu16, sse_sim::_mm_avg_epu16, native::_mm_avg_epu16);
check_si_binop!(sad_epu8, sse_sim::_mm_sad_epu8, native::_mm_sad_epu8);
check_si_binop!(mul_epu32, sse_sim::_mm_mul_epu32, native::_mm_mul_epu32);
check_si_binop!(and_si128, sse_sim::_mm_and_si128, native::_mm_and_si128);
check_si_binop!(or_si128, sse_sim::_mm_or_si128, native::_mm_or_si128);
check_si_binop!(xor_si128, sse_sim::_mm_xor_si128, native::_mm_xor_si128);
check_si_binop!(
    andnot_si128,
    sse_sim::_mm_andnot_si128,
    native::_mm_andnot_si128
);
check_si_binop!(cmpeq_epi8, sse_sim::_mm_cmpeq_epi8, native::_mm_cmpeq_epi8);
check_si_binop!(cmpgt_epi8, sse_sim::_mm_cmpgt_epi8, native::_mm_cmpgt_epi8);
check_si_binop!(
    cmpeq_epi16,
    sse_sim::_mm_cmpeq_epi16,
    native::_mm_cmpeq_epi16
);
check_si_binop!(
    cmpgt_epi16,
    sse_sim::_mm_cmpgt_epi16,
    native::_mm_cmpgt_epi16
);
check_si_binop!(
    cmpeq_epi32,
    sse_sim::_mm_cmpeq_epi32,
    native::_mm_cmpeq_epi32
);
check_si_binop!(
    cmpgt_epi32,
    sse_sim::_mm_cmpgt_epi32,
    native::_mm_cmpgt_epi32
);
check_si_binop!(
    packs_epi32,
    sse_sim::_mm_packs_epi32,
    native::_mm_packs_epi32
);
check_si_binop!(
    packs_epi16,
    sse_sim::_mm_packs_epi16,
    native::_mm_packs_epi16
);
check_si_binop!(
    packus_epi16,
    sse_sim::_mm_packus_epi16,
    native::_mm_packus_epi16
);
check_si_binop!(
    unpacklo_epi8,
    sse_sim::_mm_unpacklo_epi8,
    native::_mm_unpacklo_epi8
);
check_si_binop!(
    unpackhi_epi8,
    sse_sim::_mm_unpackhi_epi8,
    native::_mm_unpackhi_epi8
);
check_si_binop!(
    unpacklo_epi16,
    sse_sim::_mm_unpacklo_epi16,
    native::_mm_unpacklo_epi16
);
check_si_binop!(
    unpackhi_epi16,
    sse_sim::_mm_unpackhi_epi16,
    native::_mm_unpackhi_epi16
);
check_si_binop!(
    unpacklo_epi32,
    sse_sim::_mm_unpacklo_epi32,
    native::_mm_unpacklo_epi32
);
check_si_binop!(
    unpackhi_epi32,
    sse_sim::_mm_unpackhi_epi32,
    native::_mm_unpackhi_epi32
);
check_si_binop!(
    unpacklo_epi64,
    sse_sim::_mm_unpacklo_epi64,
    native::_mm_unpacklo_epi64
);
check_si_binop!(
    unpackhi_epi64,
    sse_sim::_mm_unpackhi_epi64,
    native::_mm_unpackhi_epi64
);

macro_rules! check_si_shift {
    ($name:ident, $sim:path, $nat:path, $($imm:literal),+) => {
        #[test]
        fn $name() {
            use $sim as sim_fn;
            use $nat as nat_fn;
            let mut rng = rng();
            for _ in 0..TRIALS {
                let a = rand_bytes(&mut rng);
                $(
                    {
                        let sim = sim_si_out(sim_fn::<$imm>(sim_si(a)));
                        let nat = native_si_out(unsafe { nat_fn::<$imm>(native_si(a)) });
                        assert_eq!(sim, nat, concat!(stringify!($name), " imm ", $imm));
                    }
                )+
            }
        }
    };
}

check_si_shift!(
    slli_epi16,
    sse_sim::_mm_slli_epi16,
    native::_mm_slli_epi16,
    0,
    1,
    7,
    15
);
check_si_shift!(
    srli_epi16,
    sse_sim::_mm_srli_epi16,
    native::_mm_srli_epi16,
    0,
    1,
    7,
    15
);
check_si_shift!(
    srai_epi16,
    sse_sim::_mm_srai_epi16,
    native::_mm_srai_epi16,
    0,
    1,
    7,
    15
);
check_si_shift!(
    slli_epi32,
    sse_sim::_mm_slli_epi32,
    native::_mm_slli_epi32,
    0,
    1,
    15,
    31
);
check_si_shift!(
    srli_epi32,
    sse_sim::_mm_srli_epi32,
    native::_mm_srli_epi32,
    0,
    1,
    15,
    31
);
check_si_shift!(
    srai_epi32,
    sse_sim::_mm_srai_epi32,
    native::_mm_srai_epi32,
    0,
    1,
    15,
    31
);
check_si_shift!(
    slli_si128,
    sse_sim::_mm_slli_si128,
    native::_mm_slli_si128,
    0,
    1,
    4,
    15
);
check_si_shift!(
    srli_si128,
    sse_sim::_mm_srli_si128,
    native::_mm_srli_si128,
    0,
    1,
    4,
    15
);

#[test]
fn cvtps_epi32_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_floats(&mut rng);
        let sim = sse_sim::_mm_cvtps_epi32(a.into()).as_i32().to_array();
        let nat: [i32; 4] = unsafe {
            let v = native::_mm_cvtps_epi32(native_ps(a));
            std::mem::transmute(native_si_out(v))
        };
        assert_eq!(sim, nat, "inputs {a:?}");
    }
    // Explicit edge cases: ties, NaN, overflow.
    for v in [0.5f32, 1.5, 2.5, -0.5, -1.5, -2.5, f32::NAN, 3e9, -3e9] {
        let sim = sse_sim::_mm_cvtps_epi32([v; 4].into()).as_i32().lane(0);
        let nat: [i32; 4] = unsafe {
            std::mem::transmute(native_si_out(native::_mm_cvtps_epi32(native_ps([v; 4]))))
        };
        assert_eq!(sim, nat[0], "value {v}");
    }
}

#[test]
fn cvttps_epi32_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_floats(&mut rng);
        let sim = sse_sim::_mm_cvttps_epi32(a.into()).as_i32().to_array();
        let nat: [i32; 4] =
            unsafe { std::mem::transmute(native_si_out(native::_mm_cvttps_epi32(native_ps(a)))) };
        assert_eq!(sim, nat, "inputs {a:?}");
    }
}

#[test]
fn cvtepi32_ps_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_bytes(&mut rng);
        let sim = sse_sim::_mm_cvtepi32_ps(sim_si(a)).to_array();
        let nat = native_ps_out(unsafe { native::_mm_cvtepi32_ps(native_si(a)) });
        assert_bits_eq(sim, nat, "cvtepi32_ps");
    }
}

#[test]
fn cvtsd_si32_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let v: f64 = rng.gen_range(-1e6..1e6);
        let sim = sse_sim::_mm_cvtsd_si32(sse_sim::_mm_set_sd(v));
        let nat = unsafe { native::_mm_cvtsd_si32(native::_mm_set_sd(v)) };
        assert_eq!(sim, nat, "value {v}");
    }
    for v in [0.5f64, 1.5, 2.5, -0.5, -1.5, -2.5] {
        let sim = sse_sim::_mm_cvtsd_si32(sse_sim::_mm_set_sd(v));
        let nat = unsafe { native::_mm_cvtsd_si32(native::_mm_set_sd(v)) };
        assert_eq!(sim, nat, "tie value {v}");
    }
}

#[test]
fn sqrt_rcp_parity() {
    // sqrtps is exact so must match bit-for-bit; rcp/rsqrt are hardware
    // estimates, so only check the sim is within the documented 1.5e-4
    // relative error of the exact value the sim returns.
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a: [f32; 4] = [
            rng.gen_range(0.001f32..1e6),
            rng.gen_range(0.001f32..1e6),
            rng.gen_range(0.001f32..1e6),
            rng.gen_range(0.001f32..1e6),
        ];
        let sim = sse_sim::_mm_sqrt_ps(a.into()).to_array();
        let nat = native_ps_out(unsafe { native::_mm_sqrt_ps(native_ps(a)) });
        assert_bits_eq(sim, nat, "sqrt_ps");

        let sim_rcp = sse_sim::_mm_rcp_ps(a.into()).to_array();
        let nat_rcp = native_ps_out(unsafe { native::_mm_rcp_ps(native_ps(a)) });
        for i in 0..4 {
            let rel = ((sim_rcp[i] - nat_rcp[i]) / sim_rcp[i]).abs();
            assert!(
                rel < 3e-4,
                "rcp lane {i}: sim {} nat {}",
                sim_rcp[i],
                nat_rcp[i]
            );
        }
    }
}

#[test]
fn movemask_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_bytes(&mut rng);
        let sim = sse_sim::_mm_movemask_epi8(sim_si(a));
        let nat = unsafe { native::_mm_movemask_epi8(native_si(a)) };
        assert_eq!(sim, nat);
        let f = rand_floats(&mut rng);
        let sim = sse_sim::_mm_movemask_ps(f.into());
        let nat = unsafe { native::_mm_movemask_ps(native_ps(f)) };
        assert_eq!(sim, nat);
    }
}

#[test]
fn shuffle_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_bytes(&mut rng);
        let sim = sim_si_out(sse_sim::_mm_shuffle_epi32::<0b10_01_00_11>(sim_si(a)));
        let nat =
            native_si_out(unsafe { native::_mm_shuffle_epi32::<0b10_01_00_11>(native_si(a)) });
        assert_eq!(sim, nat);
        let f = rand_floats(&mut rng);
        let g = rand_floats(&mut rng);
        let sim = sse_sim::_mm_shuffle_ps::<0b00_01_10_11>(f.into(), g.into()).to_array();
        let nat = native_ps_out(unsafe {
            native::_mm_shuffle_ps::<0b00_01_10_11>(native_ps(f), native_ps(g))
        });
        assert_bits_eq(sim, nat, "shuffle_ps");
    }
}

#[test]
fn extract_insert_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = rand_bytes(&mut rng);
        let v: i32 = rng.gen();
        assert_eq!(sse_sim::_mm_extract_epi16::<5>(sim_si(a)), unsafe {
            native::_mm_extract_epi16::<5>(native_si(a))
        },);
        assert_eq!(
            sim_si_out(sse_sim::_mm_insert_epi16::<5>(sim_si(a), v)),
            native_si_out(unsafe { native::_mm_insert_epi16::<5>(native_si(a), v) }),
        );
    }
}

#[test]
fn pd_ops_parity() {
    let mut rng = rng();
    for _ in 0..TRIALS {
        let a = [rng.gen_range(-1e9f64..1e9), rng.gen_range(-1e9f64..1e9)];
        let b = [rng.gen_range(-1e9f64..1e9), rng.gen_range(-1e9f64..1e9)];
        macro_rules! check_pd {
            ($simf:path, $natf:path) => {{
                let sim = $simf(a.into(), b.into()).to_array();
                let nat = native_pd_out(unsafe { $natf(native_pd(a), native_pd(b)) });
                for i in 0..2 {
                    assert_eq!(sim[i].to_bits(), nat[i].to_bits());
                }
            }};
        }
        check_pd!(sse_sim::_mm_add_pd, native::_mm_add_pd);
        check_pd!(sse_sim::_mm_sub_pd, native::_mm_sub_pd);
        check_pd!(sse_sim::_mm_mul_pd, native::_mm_mul_pd);
        check_pd!(sse_sim::_mm_div_pd, native::_mm_div_pd);
        check_pd!(sse_sim::_mm_min_pd, native::_mm_min_pd);
        check_pd!(sse_sim::_mm_max_pd, native::_mm_max_pd);
    }
}
