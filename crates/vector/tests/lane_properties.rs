//! Property tests on the portable lane types: the algebraic invariants the
//! ISA surfaces (and everything above them) rely on.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use simd_vector::cast::{reinterpret128, reinterpret64};
use simd_vector::rounding;
use simd_vector::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // --- saturating arithmetic matches widened-and-clamped reference -----

    #[test]
    fn saturating_add_i16_matches_wide_clamp(a in any::<[i16; 8]>(), b in any::<[i16; 8]>()) {
        let got = I16x8::new(a).saturating_add(I16x8::new(b));
        for i in 0..8 {
            let wide = a[i] as i32 + b[i] as i32;
            prop_assert_eq!(got.lane(i) as i32, wide.clamp(i16::MIN as i32, i16::MAX as i32));
        }
    }

    #[test]
    fn saturating_sub_u8_matches_wide_clamp(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let got = U8x16::new(a).saturating_sub(U8x16::new(b));
        for i in 0..16 {
            let wide = a[i] as i32 - b[i] as i32;
            prop_assert_eq!(got.lane(i) as i32, wide.max(0));
        }
    }

    #[test]
    fn narrow_saturate_matches_per_lane_clamp(lo in any::<[i32; 4]>(), hi in any::<[i32; 4]>()) {
        let packed = I32x4::narrow_saturate_i16(I32x4::new(lo), I32x4::new(hi));
        for i in 0..4 {
            prop_assert_eq!(
                packed.lane(i) as i32,
                lo[i].clamp(i16::MIN as i32, i16::MAX as i32)
            );
            prop_assert_eq!(
                packed.lane(4 + i) as i32,
                hi[i].clamp(i16::MIN as i32, i16::MAX as i32)
            );
        }
    }

    // --- compare masks are total and complementary ------------------------

    #[test]
    fn gt_and_le_masks_partition(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let gt = U8x16::new(a).cmp_gt(U8x16::new(b));
        let le = U8x16::new(a).cmp_le(U8x16::new(b));
        for i in 0..16 {
            prop_assert_eq!(gt.lane(i) ^ le.lane(i), 0xFF);
            prop_assert!(gt.lane(i) == 0 || gt.lane(i) == 0xFF);
        }
    }

    #[test]
    fn bitselect_with_full_or_empty_mask_is_projection(
        a in any::<[u8; 16]>(), b in any::<[u8; 16]>()
    ) {
        let ones = U8x16::splat(0xFF);
        let zeros = U8x16::splat(0);
        prop_assert_eq!(ones.bitselect(a.into(), b.into()), U8x16::new(a));
        prop_assert_eq!(zeros.bitselect(a.into(), b.into()), U8x16::new(b));
    }

    // --- widen/narrow round trips ------------------------------------------

    #[test]
    fn widen_then_truncate_is_identity(a in any::<[u8; 8]>()) {
        let v = U8x8::new(a);
        prop_assert_eq!(v.widen_u16().narrow_truncate_u8(), v);
    }

    #[test]
    fn combine_splits_back(lo in any::<[i16; 4]>(), hi in any::<[i16; 4]>()) {
        let q = I16x8::combine(I16x4::new(lo), I16x4::new(hi));
        prop_assert_eq!(q.low(), I16x4::new(lo));
        prop_assert_eq!(q.high(), I16x4::new(hi));
    }

    // --- reinterpret casts are lossless bijections -------------------------

    #[test]
    fn reinterpret128_roundtrip(bytes in any::<[u8; 16]>()) {
        let v = U8x16::new(bytes);
        let as_f: F32x4 = reinterpret128(v);
        let back: U8x16 = reinterpret128(as_f);
        prop_assert_eq!(back, v);
        let as_i64: I64x2 = reinterpret128(v);
        let back2: U8x16 = reinterpret128(as_i64);
        prop_assert_eq!(back2, v);
    }

    #[test]
    fn reinterpret64_roundtrip(bytes in any::<[u8; 8]>()) {
        let v = U8x8::new(bytes);
        let as_u16: U16x4 = reinterpret64(v);
        let back: U8x8 = reinterpret64(as_u16);
        prop_assert_eq!(back, v);
    }

    // --- rounding helpers ----------------------------------------------------

    #[test]
    fn cv_round_is_nearest_even(v in -1.0e6f32..1.0e6) {
        let r = rounding::cv_round(v);
        // Nearest: within 0.5 of the input.
        prop_assert!((r as f64 - v as f64).abs() <= 0.5 + 1e-6);
        // Ties to even: exact .5 values round to the even neighbour.
        let frac = v.fract().abs();
        if (frac - 0.5).abs() < f32::EPSILON {
            prop_assert_eq!(r % 2, 0, "tie {} rounded to odd {}", v, r);
        }
    }

    #[test]
    fn shl_shr_logical_roundtrip_high_bits(v in any::<[u16; 8]>(), n in 0u32..16) {
        let x = U16x8::new(v);
        let masked = x.shl(n).shr_logical(n);
        for i in 0..8 {
            let keep = if n == 0 { u16::MAX } else { u16::MAX >> n };
            prop_assert_eq!(masked.lane(i), v[i] & keep);
        }
    }

    #[test]
    fn avg_round_is_commutative_and_bounded(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let ab = U8x16::new(a).avg_round(U8x16::new(b));
        let ba = U8x16::new(b).avg_round(U8x16::new(a));
        prop_assert_eq!(ab, ba);
        for i in 0..16 {
            prop_assert!(ab.lane(i) >= a[i].min(b[i]));
            prop_assert!(ab.lane(i) <= a[i].max(b[i]));
        }
    }

    #[test]
    fn abs_diff_is_symmetric_metric(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let d1 = U8x16::new(a).abs_diff(U8x16::new(b));
        let d2 = U8x16::new(b).abs_diff(U8x16::new(a));
        prop_assert_eq!(d1, d2);
        let zero = U8x16::new(a).abs_diff(U8x16::new(a));
        prop_assert_eq!(zero, U8x16::splat(0));
    }

    #[test]
    fn madd_matches_scalar_dot_pairs(a in any::<[i16; 8]>(), b in any::<[i16; 8]>()) {
        let got = I16x8::new(a).madd(I16x8::new(b));
        for i in 0..4 {
            let expect = (a[2 * i] as i32 * b[2 * i] as i32)
                .wrapping_add(a[2 * i + 1] as i32 * b[2 * i + 1] as i32);
            prop_assert_eq!(got.lane(i), expect);
        }
    }

    // --- aligned buffers -------------------------------------------------------

    #[test]
    fn aligned_buf_is_aligned_for_any_length(len in 0usize..500) {
        let buf = AlignedBuf::<u8>::zeroed(len);
        prop_assert_eq!(buf.len(), len);
        if len > 0 {
            prop_assert_eq!(buf.as_slice().as_ptr() as usize % 16, 0);
        }
    }
}
