//! Edge-geometry contract for the fused pipeline and the parallel
//! wrappers: bit-for-bit equality with the sequential two-pass kernels on
//! every engine, for shapes chosen to break lane assumptions — widths that
//! are not multiples of 8/16, widths below the kernel radius, single-row
//! and single-pixel images, and band heights that leave ragged tails.

use pixelimage::{synthetic_image, Image};
use simdbench_core::dispatch::Engine;
use simdbench_core::edge::edge_detect;
use simdbench_core::gaussian::gaussian_blur;
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::parallel::{par_edge_detect, par_gaussian_blur, par_sobel};
use simdbench_core::pipeline::{
    fused_edge_detect, fused_gaussian_blur, fused_sobel, par_fused_edge_detect_with,
    par_fused_gaussian_blur_with, par_fused_sobel_with, BandPlan,
};
use simdbench_core::sobel::{sobel, SobelDirection};

/// Widths straddling the SSE/NEON 8- and 16-lane boundaries, plus widths
/// below the 7-tap Gaussian radius (3) where every engine must take its
/// scalar fallback.
const WIDTHS: &[usize] = &[1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 33, 63, 65];
const HEIGHTS: &[usize] = &[1, 2, 3, 4, 9];

#[test]
fn fused_gaussian_matches_sequential_on_awkward_shapes() {
    for &w in WIDTHS {
        for &h in HEIGHTS {
            let src = synthetic_image(w, h, (w * 131 + h) as u64);
            for engine in Engine::ALL {
                let mut expect = Image::new(w, h);
                gaussian_blur(&src, &mut expect, engine);
                let mut got = Image::new(w, h);
                fused_gaussian_blur(&src, &mut got, engine);
                assert!(got.pixels_eq(&expect), "fused gaussian {w}x{h} {engine:?}");
            }
        }
    }
}

#[test]
fn fused_sobel_matches_sequential_on_awkward_shapes() {
    for &w in WIDTHS {
        for &h in HEIGHTS {
            let src = synthetic_image(w, h, (w * 137 + h) as u64);
            for dir in [SobelDirection::X, SobelDirection::Y] {
                for engine in Engine::ALL {
                    let mut expect = Image::new(w, h);
                    sobel(&src, &mut expect, dir, engine);
                    let mut got = Image::new(w, h);
                    fused_sobel(&src, &mut got, dir, engine);
                    assert!(
                        got.pixels_eq(&expect),
                        "fused sobel {w}x{h} {dir:?} {engine:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn fused_edge_matches_sequential_on_awkward_shapes() {
    for &w in WIDTHS {
        for &h in HEIGHTS {
            let src = synthetic_image(w, h, (w * 139 + h) as u64);
            for engine in Engine::ALL {
                let mut expect = Image::new(w, h);
                edge_detect(&src, &mut expect, 96, engine);
                let mut got = Image::new(w, h);
                fused_edge_detect(&src, &mut got, 96, engine);
                assert!(got.pixels_eq(&expect), "fused edge {w}x{h} {engine:?}");
            }
        }
    }
}

#[test]
fn par_wrappers_match_sequential_on_awkward_shapes() {
    // The public par_* wrappers now route through the fused band pipeline;
    // they must keep their historical contract on every shape and engine.
    for &(w, h) in &[(1, 1), (7, 1), (9, 3), (17, 2), (33, 9), (63, 4), (129, 65)] {
        let src = synthetic_image(w, h, (w * 149 + h) as u64);
        for engine in Engine::ALL {
            let mut expect_u8 = Image::new(w, h);
            gaussian_blur(&src, &mut expect_u8, engine);
            let mut got_u8 = Image::new(w, h);
            par_gaussian_blur(&src, &mut got_u8, engine);
            assert!(
                got_u8.pixels_eq(&expect_u8),
                "par gaussian {w}x{h} {engine:?}"
            );

            for dir in [SobelDirection::X, SobelDirection::Y] {
                let mut expect_i16 = Image::new(w, h);
                sobel(&src, &mut expect_i16, dir, engine);
                let mut got_i16 = Image::new(w, h);
                par_sobel(&src, &mut got_i16, dir, engine);
                assert!(
                    got_i16.pixels_eq(&expect_i16),
                    "par sobel {w}x{h} {dir:?} {engine:?}"
                );
            }

            edge_detect(&src, &mut expect_u8, 96, engine);
            par_edge_detect(&src, &mut got_u8, 96, engine);
            assert!(got_u8.pixels_eq(&expect_u8), "par edge {w}x{h} {engine:?}");
        }
    }
}

#[test]
fn ragged_band_tails_are_bit_exact() {
    // band_rows that do not divide the height: the last band is shorter
    // and the halo priming at each band seam must still reproduce the
    // sequential result exactly.
    let (w, h) = (41, 29);
    let src = synthetic_image(w, h, 151);
    // A 4-wide install forces the persistent pool to actually schedule
    // bands across workers (instead of the width-1 inline path on
    // single-core hosts), so seam priming is validated under stealing.
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    wide.install(|| {
        for band_rows in [1usize, 2, 3, 5, 7, 13, 28, 29, 64] {
            let plan = BandPlan { band_rows };

            let mut expect_u8 = Image::new(w, h);
            gaussian_blur(&src, &mut expect_u8, Engine::Native);
            let mut got_u8 = Image::new(w, h);
            par_fused_gaussian_blur_with(
                &src,
                &mut got_u8,
                &paper_gaussian_kernel(),
                Engine::Native,
                &plan,
            );
            assert!(
                got_u8.pixels_eq(&expect_u8),
                "gaussian band_rows={band_rows}"
            );

            let mut expect_i16 = Image::new(w, h);
            sobel(&src, &mut expect_i16, SobelDirection::X, Engine::Native);
            let mut got_i16 = Image::new(w, h);
            par_fused_sobel_with(&src, &mut got_i16, SobelDirection::X, Engine::Native, &plan);
            assert!(
                got_i16.pixels_eq(&expect_i16),
                "sobel band_rows={band_rows}"
            );

            edge_detect(&src, &mut expect_u8, 80, Engine::Native);
            par_fused_edge_detect_with(&src, &mut got_u8, 80, Engine::Native, &plan);
            assert!(got_u8.pixels_eq(&expect_u8), "edge band_rows={band_rows}");
        }
    });
}

#[test]
fn paper_resolutions_are_bit_exact_for_fused_pipeline() {
    // The full-size contract from the issue: fused == two-pass at all four
    // paper resolutions. Scalar reference computed once per size; every
    // engine's fused output must equal that engine's two-pass output,
    // which in turn equals the scalar reference (engine equivalence).
    use pixelimage::Resolution;
    for res in Resolution::ALL {
        let (w, h) = res.dims();
        let src = synthetic_image(w, h, 7 + w as u64);
        let mut expect = Image::new(w, h);
        edge_detect(&src, &mut expect, 96, Engine::Native);
        let mut got = Image::new(w, h);
        let plan = BandPlan::for_width(w);
        par_fused_edge_detect_with(&src, &mut got, 96, Engine::Native, &plan);
        assert!(got.pixels_eq(&expect), "{res:?} edge");

        gaussian_blur(&src, &mut expect, Engine::Native);
        par_fused_gaussian_blur_with(
            &src,
            &mut got,
            &paper_gaussian_kernel(),
            Engine::Native,
            &plan,
        );
        assert!(got.pixels_eq(&expect), "{res:?} gaussian");
    }
}
