#!/usr/bin/env python3
"""Merges a `repro host` dump (results/bench_host.json) into the BENCH
trajectory file (BENCH_host.json) so successive runs accumulate into a
time series of host measurements.

Usage: scripts_merge_bench.py [bench_host.json] [BENCH_host.json]

The trajectory is a JSON object:
  {"runs": [{"date": "...", "protocol": {...}, "measurements": [...]}]}
Each invocation appends one run entry; an entry whose measurements are
byte-identical to the last run is skipped (re-running the merge is
idempotent). Telemetry output is namespaced per subcommand
(results/telemetry_<cmd>.json); when the host run was taken with
--telemetry, its counters from results/telemetry_host.json are attached
to the run entry so the trajectory carries pool/scratch counters next
to the timings. Sibling of scripts_extract_bench.py, which summarises
criterion output; this one owns the repro-host side.
"""
import datetime
import json
import os
import sys

HOST_TELEMETRY = "results/telemetry_host.json"


def merge(src_path, traj_path):
    with open(src_path) as f:
        run = json.load(f)
    if "measurements" not in run:
        raise SystemExit(f"{src_path}: not a bench_host.json dump (no 'measurements')")

    if os.path.exists(traj_path):
        with open(traj_path) as f:
            traj = json.load(f)
    else:
        traj = {"runs": []}

    entry = {
        "date": datetime.date.today().isoformat(),
        "protocol": run.get("protocol", {}),
        "measurements": run["measurements"],
    }
    telemetry_path = os.path.join(os.path.dirname(src_path) or ".", "telemetry_host.json")
    if not os.path.exists(telemetry_path):
        telemetry_path = HOST_TELEMETRY
    if os.path.exists(telemetry_path):
        with open(telemetry_path) as f:
            entry["telemetry_counters"] = json.load(f).get("counters", {})
    if traj["runs"] and traj["runs"][-1]["measurements"] == entry["measurements"]:
        print(f"{traj_path}: last run identical, nothing to merge")
        return

    traj["runs"].append(entry)
    with open(traj_path, "w") as f:
        json.dump(traj, f, indent=1)
        f.write("\n")
    points = len(entry["measurements"])
    print(f"{traj_path}: appended run {len(traj['runs'])} ({points} measurement points)")


if __name__ == "__main__":
    src = sys.argv[1] if len(sys.argv) > 1 else "results/bench_host.json"
    traj = sys.argv[2] if len(sys.argv) > 2 else "BENCH_host.json"
    merge(src, traj)
