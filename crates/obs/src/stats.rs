//! Exact distribution statistics over retained samples.
//!
//! The harness keeps every timed pass (the paper's 5 × 25 protocol
//! yields 125 per point) and summarizes them here — exact order
//! statistics from a sort, unlike the bucket-resolution percentiles of
//! [`crate::hist`], which trade precision for fixed-size lock-free
//! storage on hot paths. Use histograms where recording happens inside
//! the measured region; use `SampleStats` where the sample vector is
//! already in hand.

/// Summary statistics of a sample set (seconds, nanoseconds — unitless).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (nearest-rank).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl SampleStats {
    /// An all-zero summary (the empty sample set).
    pub const EMPTY: SampleStats = SampleStats {
        count: 0,
        mean: 0.0,
        min: 0.0,
        median: 0.0,
        p95: 0.0,
        max: 0.0,
        stddev: 0.0,
    };

    /// Computes the summary of `samples` (order irrelevant).
    pub fn from_samples(samples: &[f64]) -> SampleStats {
        if samples.is_empty() {
            return SampleStats::EMPTY;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let rank = |p: f64| -> f64 {
            // Nearest-rank: the smallest sample with at least p% below-or-at.
            let idx = ((p / 100.0) * n as f64).ceil().max(1.0) as usize - 1;
            sorted[idx.min(n - 1)]
        };
        SampleStats {
            count: n,
            mean,
            min: sorted[0],
            median: rank(50.0),
            p95: rank(95.0),
            max: sorted[n - 1],
            stddev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_is_all_zero() {
        assert_eq!(SampleStats::from_samples(&[]), SampleStats::EMPTY);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s = SampleStats::from_samples(&[2.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p95, 2.5);
        assert_eq!(s.max, 2.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn order_statistics_match_a_known_set() {
        // 1..=100 (shuffled): median = 50, p95 = 95 by nearest-rank.
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        samples.reverse();
        let s = SampleStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p95, 95.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // Population stddev of 1..=100 is sqrt((100^2 - 1)/12).
        let expect = ((100.0f64 * 100.0 - 1.0) / 12.0).sqrt();
        assert!((s.stddev - expect).abs() < 1e-9, "{} vs {expect}", s.stddev);
    }

    #[test]
    fn stddev_is_zero_for_constant_samples() {
        let s = SampleStats::from_samples(&[3.0; 17]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 3.0);
    }
}
