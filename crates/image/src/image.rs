//! The strided, row-aligned image container (the `cv::Mat` stand-in).

use simd_vector::align::{AlignedBuf, Pod, SIMD_ALIGN};

/// The four image resolutions used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 640×480 — 0.3 Mpx ("the smallest resolution").
    Vga,
    /// 1280×960 — 1 Mpx.
    Mp1,
    /// 2592×1920 — 5 Mpx.
    Mp5,
    /// 3264×2448 — 8 Mpx (the Table III size).
    Mp8,
}

impl Resolution {
    /// All four, smallest first (the order of the figures' x-axes).
    pub const ALL: [Resolution; 4] = [
        Resolution::Vga,
        Resolution::Mp1,
        Resolution::Mp5,
        Resolution::Mp8,
    ];

    /// (width, height) in pixels.
    pub const fn dims(self) -> (usize, usize) {
        match self {
            Resolution::Vga => (640, 480),
            Resolution::Mp1 => (1280, 960),
            Resolution::Mp5 => (2592, 1920),
            Resolution::Mp8 => (3264, 2448),
        }
    }

    /// Total pixel count.
    pub const fn pixels(self) -> usize {
        let (w, h) = self.dims();
        w * h
    }

    /// Pixel count in megapixels.
    pub fn megapixels(self) -> f64 {
        self.pixels() as f64 / 1.0e6
    }

    /// Display label matching the paper's figures (e.g. `"3264x2448"`).
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Vga => "640x480",
            Resolution::Mp1 => "1280x960",
            Resolution::Mp5 => "2592x1920",
            Resolution::Mp8 => "3264x2448",
        }
    }
}

/// A single-channel image with 16-byte-aligned rows.
///
/// `stride` is the distance between row starts in *elements* and is chosen
/// so every row begins on a 16-byte boundary — matching the aligned-store
/// advantage the paper measures for the intrinsic kernels.
#[derive(Debug, Clone)]
pub struct Image<T: Pod> {
    width: usize,
    height: usize,
    stride: usize,
    data: AlignedBuf<T>,
}

impl<T: Pod> Image<T> {
    /// Creates a zero-filled image.
    pub fn new(width: usize, height: usize) -> Self {
        let elem = std::mem::size_of::<T>();
        let stride = if width == 0 {
            0
        } else {
            let bytes = width * elem;
            let padded = bytes.div_ceil(SIMD_ALIGN) * SIMD_ALIGN;
            padded / elem
        };
        Image {
            width,
            height,
            stride,
            data: AlignedBuf::zeroed(stride * height),
        }
    }

    /// Creates an image for one of the paper's resolutions.
    pub fn for_resolution(res: Resolution) -> Self {
        let (w, h) = res.dims();
        Self::new(w, h)
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            let row = img.row_mut(y);
            for (x, px) in row.iter_mut().enumerate() {
                *px = f(x, y);
            }
        }
        img
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row stride in elements (≥ width; rows are 16-byte aligned).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total pixel count (`width * height`).
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// One row, exactly `width` elements.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let start = y * self.stride;
        &self.data.as_slice()[start..start + self.width]
    }

    /// One row including its alignment padding (`stride` elements). SIMD
    /// kernels may read/write the padding lanes of the final vector.
    #[inline]
    pub fn row_padded(&self, y: usize) -> &[T] {
        let start = y * self.stride;
        &self.data.as_slice()[start..start + self.stride]
    }

    /// Mutable row, exactly `width` elements.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        let start = y * self.stride;
        &mut self.data.as_mut_slice()[start..start + self.width]
    }

    /// Mutable row including padding.
    #[inline]
    pub fn row_padded_mut(&mut self, y: usize) -> &mut [T] {
        let start = y * self.stride;
        &mut self.data.as_mut_slice()[start..start + self.stride]
    }

    /// Reads one pixel (panics out of bounds).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data.as_slice()[y * self.stride + x]
    }

    /// Writes one pixel (panics out of bounds).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data.as_mut_slice()[y * self.stride + x] = v;
    }

    /// The whole backing buffer including padding (length `stride*height`).
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable backing buffer including padding.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Two disjoint mutable rows (for in-place two-row algorithms).
    pub fn two_rows_mut(&mut self, y0: usize, y1: usize) -> (&mut [T], &mut [T]) {
        assert!(y0 != y1, "rows must be distinct");
        assert!(y0 < self.height && y1 < self.height);
        let stride = self.stride;
        let width = self.width;
        let data = self.data.as_mut_slice();
        if y0 < y1 {
            let (a, b) = data.split_at_mut(y1 * stride);
            (&mut a[y0 * stride..y0 * stride + width], &mut b[..width])
        } else {
            let (a, b) = data.split_at_mut(y0 * stride);
            (&mut b[..width], &mut a[y1 * stride..y1 * stride + width])
        }
    }

    /// Applies `f` to every pixel, producing a new image of the same shape.
    pub fn map<U: Pod>(&self, mut f: impl FnMut(T) -> U) -> Image<U> {
        let mut out = Image::new(self.width, self.height);
        for y in 0..self.height {
            let src = self.row(y);
            let dst = out.row_mut(y);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = f(*s);
            }
        }
        out
    }

    /// Iterates over all valid pixels row-major (excluding padding).
    pub fn iter_pixels(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.height).flat_map(move |y| self.row(y).iter().copied())
    }

    /// True when every pixel satisfies `pred`.
    pub fn all_pixels(&self, mut pred: impl FnMut(T) -> bool) -> bool {
        self.iter_pixels().all(&mut pred)
    }
}

impl<T: Pod + PartialEq> Image<T> {
    /// Pixel-exact equality ignoring padding contents.
    pub fn pixels_eq(&self, other: &Image<T>) -> bool {
        if self.width != other.width || self.height != other.height {
            return false;
        }
        (0..self.height).all(|y| self.row(y) == other.row(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_simd_aligned() {
        for width in [1usize, 3, 16, 17, 639, 640, 641] {
            let img = Image::<u8>::new(width, 4);
            for y in 0..4 {
                let ptr = img.row_padded(y).as_ptr() as usize;
                assert_eq!(ptr % SIMD_ALIGN, 0, "width {width} row {y}");
            }
        }
        let imgf = Image::<f32>::new(5, 3);
        assert_eq!(imgf.stride() % 4, 0);
        assert_eq!(imgf.row_padded(1).as_ptr() as usize % SIMD_ALIGN, 0);
    }

    #[test]
    fn stride_at_least_width() {
        for width in 1..70 {
            let img = Image::<i16>::new(width, 2);
            assert!(img.stride() >= width);
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::<i16>::new(10, 10);
        img.set(3, 7, -42);
        assert_eq!(img.get(3, 7), -42);
        assert_eq!(img.get(4, 7), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let img = Image::<u8>::new(4, 4);
        let _ = img.get(4, 0);
    }

    #[test]
    fn from_fn_and_map() {
        let img = Image::from_fn(8, 4, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(3, 2), 23);
        let doubled = img.map(|v| v as u16 * 2);
        assert_eq!(doubled.get(3, 2), 46);
        assert_eq!(doubled.width(), 8);
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut img = Image::from_fn(4, 4, |x, y| (x + y) as u8);
        let (r0, r2) = img.two_rows_mut(0, 2);
        r0[0] = 100;
        r2[0] = 200;
        assert_eq!(img.get(0, 0), 100);
        assert_eq!(img.get(0, 2), 200);
        // Reversed order also works.
        let (r3, r1) = img.two_rows_mut(3, 1);
        r3[1] = 7;
        r1[1] = 8;
        assert_eq!(img.get(1, 3), 7);
        assert_eq!(img.get(1, 1), 8);
    }

    #[test]
    fn pixels_eq_ignores_padding() {
        let mut a = Image::<u8>::new(5, 2);
        let b = Image::<u8>::new(5, 2);
        // Poke padding only (stride 16 > width 5).
        assert!(a.stride() > a.width());
        let stride = a.stride();
        a.as_mut_slice()[stride - 1] = 99;
        assert!(a.pixels_eq(&b));
        a.set(0, 0, 1);
        assert!(!a.pixels_eq(&b));
    }

    #[test]
    fn iter_pixels_visits_width_times_height() {
        let img = Image::from_fn(7, 3, |_, _| 1u8);
        assert_eq!(img.iter_pixels().count(), 21);
        assert!(img.all_pixels(|p| p == 1));
    }
}
