//! Benchmark 1 — saturating conversion of 32-bit float pixels to 16-bit
//! signed integers (OpenCV's `cvt_32f16s`, paper Section III-A.1).
//!
//! The paper quotes the three variants verbatim; they are reproduced here:
//! the scalar `saturate_cast<short>` loop, the SSE2 loop
//! (`loadu_ps` → `cvtps_epi32` ×2 → `packs_epi32` → `storeu_si128`), and the
//! NEON loop (`vld1q_f32` → `vcvt` → `vqmovn_s32` ×2 → `vcombine_s16` →
//! `vst1q_s16`). One deliberate fix: the NEON path uses the rounding
//! conversion (`vcvtnq`) instead of ARMv7's truncating `vcvtq`, so all
//! backends agree bit-for-bit with `cvRound` (see `neon-sim` crate docs).

use crate::dispatch::Engine;
use crate::error::{validate_pair, KernelResult};
use pixelimage::Image;
use simd_vector::rounding::saturate_f32_to_i16;

/// Converts a float image to a saturated `i16` image using `engine`.
///
/// `src` and `dst` must have identical dimensions.
///
/// # Domain
///
/// Inputs must be representable in `i32` (|v| < 2³¹) for the backends to
/// agree bit-for-bit: beyond that, SSE2's `cvtps2dq` yields the "integer
/// indefinite" value `0x8000_0000` where NEON and the scalar `cvRound`
/// saturate — a quirk the paper's (and OpenCV's) SSE2 kernel has on real
/// hardware, reproduced faithfully here.
pub fn convert_f32_to_i16(src: &Image<f32>, dst: &mut Image<i16>, engine: Engine) {
    if let Err(e) = try_convert_f32_to_i16(src, dst, engine) {
        e.panic_or_ignore();
    }
}

/// Fallible form of [`convert_f32_to_i16`]: validates geometry instead of
/// asserting, so a malformed frame surfaces as a
/// [`KernelError`](crate::error::KernelError) rather than unwinding.
pub fn try_convert_f32_to_i16(
    src: &Image<f32>,
    dst: &mut Image<i16>,
    engine: Engine,
) -> KernelResult {
    validate_pair(src, dst)?;
    if let Some(fault) = faultline::inject("kernel.entry") {
        return Err(fault.into());
    }
    for y in 0..src.height() {
        let s = src.row(y);
        let d = dst.row_mut(y);
        convert_row(s, d, engine);
    }
    Ok(())
}

/// Converts one row with the chosen engine.
#[inline]
pub fn convert_row(src: &[f32], dst: &mut [i16], engine: Engine) {
    match engine {
        Engine::Scalar => convert_row_scalar(src, dst),
        Engine::Autovec => convert_row_autovec(src, dst),
        Engine::Sse2Sim => convert_row_sse2_sim(src, dst),
        Engine::NeonSim => convert_row_neon_sim(src, dst),
        Engine::Native => convert_row_native(src, dst),
    }
}

/// The original OpenCV loop: `dst[x] = saturate_cast<short>(src[x])` — one
/// `cvRound` plus one clamp per pixel.
pub fn convert_row_scalar(src: &[f32], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    for x in 0..src.len() {
        dst[x] = saturate_f32_to_i16(src[x]);
    }
}

/// Auto-vectorizer-friendly restructuring: straight-line slice iteration
/// with no bounds checks inside the loop body. What the compiler makes of
/// this is exactly the paper's AUTO measurement.
pub fn convert_row_autovec(src: &[f32], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = saturate_f32_to_i16(s);
    }
}

/// The paper's SSE2 listing, executed through the simulated surface.
pub fn convert_row_sse2_sim(src: &[f32], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    while x + 8 <= width {
        let src128 = sse_sim::_mm_loadu_ps(&src[x..]);
        let src_int128 = sse_sim::_mm_cvtps_epi32(src128);
        let src128 = sse_sim::_mm_loadu_ps(&src[x + 4..]);
        let src1_int128 = sse_sim::_mm_cvtps_epi32(src128);
        let packed = sse_sim::_mm_packs_epi32(src_int128, src1_int128);
        sse_sim::_mm_storeu_si128(&mut dst[x..], packed);
        x += 8;
    }
    convert_row_scalar(&src[x..], &mut dst[x..]);
}

/// The paper's NEON listing, executed through the simulated surface
/// (rounding conversion, see module docs).
pub fn convert_row_neon_sim(src: &[f32], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    while x + 8 <= width {
        let src128 = neon_sim::vld1q_f32(&src[x..]);
        let src_int128 = neon_sim::vcvtnq_s32_f32(src128);
        let src0_int64 = neon_sim::vqmovn_s32(src_int128);
        let src128 = neon_sim::vld1q_f32(&src[x + 4..]);
        let src_int128 = neon_sim::vcvtnq_s32_f32(src128);
        let src1_int64 = neon_sim::vqmovn_s32(src_int128);
        let res_int128 = neon_sim::vcombine_s16(src0_int64, src1_int64);
        neon_sim::vst1q_s16(&mut dst[x..], res_int128);
        x += 8;
    }
    convert_row_scalar(&src[x..], &mut dst[x..]);
}

/// The hand-tuned loop on the host's real SIMD unit.
pub fn convert_row_native(src: &[f32], dst: &mut [i16]) {
    #[cfg(target_arch = "x86_64")]
    {
        convert_row_native_sse2(src, dst);
    }
    #[cfg(target_arch = "aarch64")]
    {
        convert_row_native_neon(src, dst);
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        convert_row_autovec(src, dst);
    }
}

/// Real-silicon SSE2 version of the paper's listing.
#[cfg(target_arch = "x86_64")]
fn convert_row_native_sse2(src: &[f32], dst: &mut [i16]) {
    use std::arch::x86_64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY: every load reads src[x..x+8] and every store writes
    // dst[x..x+8]; the loop condition keeps x+8 <= width for both slices,
    // which have equal length. SSE2 is part of the x86_64 baseline.
    unsafe {
        while x + 8 <= width {
            let s0 = _mm_loadu_ps(src.as_ptr().add(x));
            let i0 = _mm_cvtps_epi32(s0);
            let s1 = _mm_loadu_ps(src.as_ptr().add(x + 4));
            let i1 = _mm_cvtps_epi32(s1);
            let packed = _mm_packs_epi32(i0, i1);
            _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, packed);
            x += 8;
        }
    }
    convert_row_scalar(&src[x..], &mut dst[x..]);
}

/// Real-silicon NEON version of the paper's listing (ARMv8 hosts).
#[cfg(target_arch = "aarch64")]
fn convert_row_native_neon(src: &[f32], dst: &mut [i16]) {
    use std::arch::aarch64::*;
    assert_eq!(src.len(), dst.len());
    let width = src.len();
    let mut x = 0;
    // SAFETY: bounds maintained as in the SSE2 variant; NEON is part of the
    // aarch64 baseline.
    unsafe {
        while x + 8 <= width {
            let s0 = vld1q_f32(src.as_ptr().add(x));
            let i0 = vcvtnq_s32_f32(s0);
            let n0 = vqmovn_s32(i0);
            let s1 = vld1q_f32(src.as_ptr().add(x + 4));
            let i1 = vcvtnq_s32_f32(s1);
            let n1 = vqmovn_s32(i1);
            let res = vcombine_s16(n0, n1);
            vst1q_s16(dst.as_mut_ptr().add(x), res);
            x += 8;
        }
    }
    convert_row_scalar(&src[x..], &mut dst[x..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image_f32;

    fn reference(src: &[f32]) -> Vec<i16> {
        src.iter().map(|&v| saturate_f32_to_i16(v)).collect()
    }

    fn test_row() -> Vec<f32> {
        let mut row: Vec<f32> = (-50..50).map(|i| i as f32 * 997.25).collect();
        row.extend([0.5, 1.5, 2.5, -0.5, -1.5, -2.5, 4e4, -4e4, 1e9, -1e9, 0.0]);
        row
    }

    #[test]
    fn all_engines_match_reference_on_edge_values() {
        let src = test_row();
        let expect = reference(&src);
        for engine in Engine::ALL {
            let mut dst = vec![0i16; src.len()];
            convert_row(&src, &mut dst, engine);
            assert_eq!(dst, expect, "engine {engine:?}");
        }
    }

    #[test]
    fn tail_handling_below_vector_width() {
        for len in 0..24 {
            let src: Vec<f32> = (0..len).map(|i| i as f32 * 3.3 - 10.0).collect();
            let expect = reference(&src);
            for engine in Engine::ALL {
                let mut dst = vec![0i16; len];
                convert_row(&src, &mut dst, engine);
                assert_eq!(dst, expect, "engine {engine:?} len {len}");
            }
        }
    }

    #[test]
    fn full_image_conversion_all_engines_agree() {
        let srcu8 = synthetic_image_f32(161, 73, 42);
        // Scale into a range that exercises saturation both ways.
        let src = srcu8.map(|v| (v - 128.0) * 400.0);
        let mut reference_img = Image::new(src.width(), src.height());
        convert_f32_to_i16(&src, &mut reference_img, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(src.width(), src.height());
            convert_f32_to_i16(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference_img), "engine {engine:?} diverged");
        }
    }

    #[test]
    fn saturation_is_exercised() {
        let src = Image::<f32>::from_fn(16, 1, |x, _| if x % 2 == 0 { 1e6 } else { -1e6 });
        let mut dst = Image::new(16, 1);
        convert_f32_to_i16(&src, &mut dst, Engine::Native);
        for x in 0..16 {
            let expect = if x % 2 == 0 { i16::MAX } else { i16::MIN };
            assert_eq!(dst.get(x, 0), expect);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn dimension_mismatch_panics() {
        let src = Image::<f32>::new(4, 4);
        let mut dst = Image::<i16>::new(5, 4);
        convert_f32_to_i16(&src, &mut dst, Engine::Scalar);
    }

    #[test]
    fn hand_neon_stream_is_14_ops_per_8_pixels() {
        // The Section V result: 8 SIMD ops per 8 pixels from the intrinsics
        // (2 loads, 2 converts, 2 narrows, 1 combine, 1 store); the 6
        // address/loop ops are integer overhead not visible to the sim, so
        // the traced SIMD count must be exactly 8 per 8 pixels.
        let src: Vec<f32> = (0..80).map(|i| i as f32).collect();
        let mut dst = vec![0i16; 80];
        let (_, mix) = op_trace::trace(|| convert_row_neon_sim(&src, &mut dst));
        assert_eq!(mix.simd_total(), 8 * (80 / 8));
        assert_eq!(mix.get(op_trace::OpClass::SimdLoad), 2 * 10);
        assert_eq!(mix.get(op_trace::OpClass::SimdStore), 10);
        assert_eq!(mix.get(op_trace::OpClass::SimdConvert), 4 * 10);
        assert_eq!(mix.get(op_trace::OpClass::SimdAlu), 10); // vcombine
    }

    #[test]
    fn hand_sse_stream_is_6_simd_ops_per_8_pixels() {
        // SSE2 needs two fewer intrinsics (single-step pack).
        let src: Vec<f32> = (0..80).map(|i| i as f32).collect();
        let mut dst = vec![0i16; 80];
        let (_, mix) = op_trace::trace(|| convert_row_sse2_sim(&src, &mut dst));
        assert_eq!(mix.simd_total(), 6 * (80 / 8));
    }
}
