//! Software implementation of the ARMv7 NEON (Advanced SIMD) intrinsic
//! surface.
//!
//! Every public function mirrors one NEON intrinsic from `arm_neon.h` —
//! same name, same lane semantics per the ARM Architecture Reference Manual
//! (DDI 0406). Memory intrinsics take slices instead of raw pointers (length
//! checked), which is the only signature deviation.
//!
//! This crate is the substitution for the paper's six ARM boards: on an
//! x86_64 host the NEON HAND kernels execute bit-exactly through these
//! functions, every call records a micro-op via [`op_trace`] for the Section
//! V instruction-mix analysis, and the cross-ISA test-suite proves the
//! identities the paper relies on (e.g. `vcombine_s16(vqmovn_s32(lo),
//! vqmovn_s32(hi)) == _mm_packs_epi32(lo, hi)`).
//!
//! Naming follows the paper's Section II-C: `[intrin_op][flags]_[type]`,
//! where the `q` flag denotes the 128-bit Q-register form.
//!
//! One ARMv8 addition is provided: [`vcvtnq_s32_f32`] (round to nearest,
//! ties to even). The ARMv7 `vcvtq_s32_f32` truncates toward zero, which
//! silently changes rounding relative to the scalar `cvRound` code — the
//! paper's listing has this discrepancy. The kernel crate uses the rounding
//! variant so that all backends are bit-exact; DESIGN.md documents this.

#![allow(non_camel_case_types)]
#![warn(missing_docs)]
// Lane-indexed `for i in 0..N` loops intentionally mirror the per-lane
// pseudocode of the architecture reference manuals.
#![allow(clippy::needless_range_loop)]

pub mod arith;
pub mod compare;
pub mod convert;
pub mod load_store;
pub mod logical;
pub mod misc;
pub mod narrow;
pub mod shift;
pub mod types;

pub use arith::*;
pub use compare::*;
pub use convert::*;
pub use load_store::*;
pub use logical::*;
pub use misc::*;
pub use narrow::*;
pub use shift::*;
pub use types::*;
