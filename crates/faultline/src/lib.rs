//! Deterministic fault injection for the reproduction: named
//! **failpoints** compiled into the production code paths (the pool's
//! worker loop and task bodies, the fused pipeline's band bodies, the
//! fallible kernel entry points) that chaos tests and `repro chaos` can
//! *arm* with an action — panic, delay, or forced error — fired at a
//! configured rate from a **seeded** RNG, so every chaos run replays
//! bit-identically for a given seed.
//!
//! Modeled on the `obs` telemetry crate's cost discipline:
//!
//! # Cost model
//!
//! Failpoints are **disarmed by default**. Every site entry point
//! ([`fire`], [`inject`]) starts with one relaxed atomic load of the
//! global armed-count and one predictable branch; when nothing is armed
//! (the production configuration) nothing else runs — no lock, no name
//! comparison, no RNG step. Arming any failpoint flips the global flag;
//! armed evaluation takes the registry mutex, which is fine because
//! chaos runs are not benchmarks.
//!
//! # Determinism
//!
//! Each armed failpoint owns a private SplitMix64 stream seeded by
//! [`arm`]'s `seed`. Trip decisions are drawn from that stream in
//! evaluation order under the registry lock, so the *decision sequence*
//! per failpoint is a pure function of `(seed, rate)`. (Which thread
//! observes which decision still depends on the schedule — the
//! invariants chaos asserts are schedule-independent.)
//!
//! # Hit ledger
//!
//! Every evaluation and every trip is counted per failpoint;
//! [`snapshot`] returns the ledger for reports and assertions, and
//! [`disarm_all`] clears everything back to the zero-cost state.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a `String` payload `"faultline injected panic at <name>"`
    /// (recognisable via [`is_injected_panic`]). Simulates a worker or
    /// kernel dying mid-flight.
    Panic,
    /// Sleep for the given number of milliseconds. Simulates a stuck or
    /// slow job (the watchdog's prey).
    Delay(u64),
    /// Return an [`InjectedFault`] from [`inject`] sites, which map it to
    /// their own error type (`KernelError::FaultInjected` in `core`).
    /// At [`fire`] sites — which cannot return errors — it is a no-op
    /// (still counted as a trip in the ledger).
    Error,
}

/// A forced error produced by an [`Action::Error`] trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Name of the failpoint that tripped.
    pub failpoint: String,
}

/// Ledger entry for one armed failpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointHits {
    /// The failpoint's name.
    pub name: String,
    /// The configured action.
    pub action: Action,
    /// How many times a site evaluated this failpoint while armed.
    pub evals: u64,
    /// How many evaluations tripped the action.
    pub trips: u64,
}

struct Armed {
    name: String,
    action: Action,
    rate: f64,
    rng: StdRng,
    evals: u64,
    trips: u64,
}

/// Number of currently armed failpoints; the global fast-path flag.
/// `fire`/`inject` load this relaxed — zero means fully disarmed and the
/// site costs one load + one branch.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<Vec<Armed>> {
    static REGISTRY: OnceLock<Mutex<Vec<Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_registry() -> MutexGuard<'static, Vec<Armed>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// True when at least one failpoint is armed (the slow path is live).
#[inline]
pub fn any_armed() -> bool {
    ARMED_COUNT.load(Ordering::Relaxed) != 0
}

/// Arms failpoint `name` with `action`, tripping each evaluation with
/// probability `rate` drawn from a SplitMix64 stream seeded by `seed`.
/// Re-arming an already-armed name replaces its configuration and resets
/// its ledger counts and RNG stream.
pub fn arm(name: &str, action: Action, rate: f64, seed: u64) {
    assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
    let mut reg = lock_registry();
    let armed = Armed {
        name: name.to_string(),
        action,
        rate,
        rng: StdRng::seed_from_u64(seed),
        evals: 0,
        trips: 0,
    };
    match reg.iter_mut().find(|a| a.name == name) {
        Some(slot) => *slot = armed,
        None => reg.push(armed),
    }
    ARMED_COUNT.store(reg.len(), Ordering::SeqCst);
}

/// Disarms failpoint `name` (no-op when not armed). Its ledger entry is
/// dropped; snapshot before disarming if the counts matter.
pub fn disarm(name: &str) {
    let mut reg = lock_registry();
    reg.retain(|a| a.name != name);
    ARMED_COUNT.store(reg.len(), Ordering::SeqCst);
}

/// Disarms every failpoint, restoring the zero-cost disabled state.
pub fn disarm_all() {
    let mut reg = lock_registry();
    reg.clear();
    ARMED_COUNT.store(0, Ordering::SeqCst);
}

/// Snapshot of the hit ledger: one entry per armed failpoint.
pub fn snapshot() -> Vec<FailpointHits> {
    lock_registry()
        .iter()
        .map(|a| FailpointHits {
            name: a.name.clone(),
            action: a.action,
            evals: a.evals,
            trips: a.trips,
        })
        .collect()
}

/// Evaluates failpoint `name`: decides (deterministically per seed)
/// whether it trips, updates the ledger, and returns the action to
/// perform. `None` when the failpoint is not armed or did not trip.
fn evaluate(name: &str) -> Option<Action> {
    let mut reg = lock_registry();
    let armed = reg.iter_mut().find(|a| a.name == name)?;
    armed.evals += 1;
    if !armed.rng.gen_bool(armed.rate) {
        return None;
    }
    armed.trips += 1;
    Some(armed.action)
}

/// The panic-message prefix used by [`Action::Panic`] trips.
pub const PANIC_PREFIX: &str = "faultline injected panic at ";

/// True when a caught panic payload is a faultline-injected panic (used
/// by chaos harnesses to separate injected faults from real bugs).
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    injected_failpoint(payload).is_some()
}

/// The failpoint name carried by a faultline-injected panic payload, or
/// `None` for ordinary panics.
pub fn injected_failpoint(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    payload.downcast_ref::<String>()?.strip_prefix(PANIC_PREFIX)
}

/// A failpoint site that cannot surface an error: may panic or delay.
/// An armed [`Action::Error`] counts as a trip but does nothing here.
///
/// Cost when nothing is armed: one relaxed load + branch.
#[inline]
pub fn fire(name: &str) {
    if !any_armed() {
        return;
    }
    fire_slow(name);
}

#[cold]
fn fire_slow(name: &str) {
    match evaluate(name) {
        Some(Action::Panic) => panic!("{PANIC_PREFIX}{name}"),
        Some(Action::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(Action::Error) | None => {}
    }
}

/// A failpoint site on a fallible path: may panic, delay, or return a
/// forced error for the caller to map into its own error type.
///
/// Cost when nothing is armed: one relaxed load + branch.
#[inline]
pub fn inject(name: &str) -> Option<InjectedFault> {
    if !any_armed() {
        return None;
    }
    inject_slow(name)
}

#[cold]
fn inject_slow(name: &str) -> Option<InjectedFault> {
    match evaluate(name) {
        Some(Action::Panic) => panic!("{PANIC_PREFIX}{name}"),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Some(Action::Error) => Some(InjectedFault {
            failpoint: name.to_string(),
        }),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Failpoint state is process-global; tests that arm serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_sites_do_nothing() {
        let _g = guard();
        disarm_all();
        assert!(!any_armed());
        fire("nonexistent.site");
        assert_eq!(inject("nonexistent.site"), None);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn armed_error_trips_only_at_its_site() {
        let _g = guard();
        disarm_all();
        arm("site.a", Action::Error, 1.0, 7);
        assert!(any_armed());
        // Other names are unaffected.
        assert_eq!(inject("site.b"), None);
        let fault = inject("site.a").expect("rate 1.0 must trip");
        assert_eq!(fault.failpoint, "site.a");
        // fire() cannot return the error: no-op, but counted.
        fire("site.a");
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].evals, 2);
        assert_eq!(snap[0].trips, 2);
        disarm_all();
        assert!(!any_armed());
    }

    #[test]
    fn trip_sequence_is_deterministic_per_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            disarm_all();
            arm("det.site", Action::Error, 0.5, seed);
            let hits = (0..64).map(|_| inject("det.site").is_some()).collect();
            disarm_all();
            hits
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_ne!(a, c, "different seeds must differ somewhere in 64 draws");
        assert!(a.iter().any(|&h| h) && a.iter().any(|&h| !h), "rate 0.5");
    }

    #[test]
    fn injected_panics_are_recognisable() {
        let _g = guard();
        disarm_all();
        arm("boom.site", Action::Panic, 1.0, 1);
        let err = catch_unwind(AssertUnwindSafe(|| fire("boom.site")))
            .expect_err("armed panic must unwind");
        assert!(is_injected_panic(err.as_ref()));
        // A plain panic is not misclassified.
        let plain = catch_unwind(|| panic!("ordinary failure")).expect_err("panics");
        assert!(!is_injected_panic(plain.as_ref()));
        disarm_all();
    }

    #[test]
    fn delay_sleeps_and_counts() {
        let _g = guard();
        disarm_all();
        arm("slow.site", Action::Delay(5), 1.0, 3);
        let t0 = std::time::Instant::now();
        fire("slow.site");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(snapshot()[0].trips, 1);
        disarm_all();
    }

    #[test]
    fn rearming_resets_ledger_and_stream() {
        let _g = guard();
        disarm_all();
        arm("re.site", Action::Error, 1.0, 9);
        assert!(inject("re.site").is_some());
        arm("re.site", Action::Error, 0.0, 9);
        assert_eq!(inject("re.site"), None);
        let snap = snapshot();
        assert_eq!(snap.len(), 1, "re-arm replaces, not duplicates");
        assert_eq!(snap[0].evals, 1, "re-arm resets the ledger");
        assert_eq!(snap[0].trips, 0);
        disarm_all();
    }

    #[test]
    fn zero_rate_never_trips() {
        let _g = guard();
        disarm_all();
        arm("never.site", Action::Panic, 0.0, 11);
        for _ in 0..256 {
            fire("never.site");
        }
        let snap = snapshot();
        assert_eq!(snap[0].evals, 256);
        assert_eq!(snap[0].trips, 0);
        disarm_all();
    }
}
