//! Compare intrinsics (category *d*). Results are all-ones / all-zero masks
//! in the same register class as the operands, exactly as on hardware.

use crate::types::{__m128, __m128d, __m128i, cast, ps_from_bits};
use op_trace::{count, OpClass};
use simd_vector::{U32x4, U64x2};

macro_rules! epi_cmp {
    ($(#[$meta:meta])* $name:ident, $view:ident, $from:ident, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128i, b: __m128i) -> __m128i {
            count(OpClass::SimdAlu);
            __m128i::$from(cast(a.$view().$method(b.$view())))
        }
    };
}

epi_cmp!(
    /// `pcmpeqb` — signed 8-bit equality mask.
    _mm_cmpeq_epi8, as_i8, from_u8, cmp_eq
);
epi_cmp!(
    /// `pcmpgtb` — signed 8-bit greater-than mask.
    _mm_cmpgt_epi8, as_i8, from_u8, cmp_gt
);
epi_cmp!(
    /// `pcmpeqw` — 16-bit equality mask.
    _mm_cmpeq_epi16, as_i16, from_u16, cmp_eq
);
epi_cmp!(
    /// `pcmpgtw` — signed 16-bit greater-than mask.
    _mm_cmpgt_epi16, as_i16, from_u16, cmp_gt
);
epi_cmp!(
    /// `pcmpeqd` — 32-bit equality mask.
    _mm_cmpeq_epi32, as_i32, from_u32, cmp_eq
);
epi_cmp!(
    /// `pcmpgtd` — signed 32-bit greater-than mask.
    _mm_cmpgt_epi32, as_i32, from_u32, cmp_gt
);

/// `pcmpgtb` with swapped operands — SSE2's `_mm_cmplt_epi8`.
#[inline]
pub fn _mm_cmplt_epi8(a: __m128i, b: __m128i) -> __m128i {
    _mm_cmpgt_epi8(b, a)
}

/// `pcmpgtw` with swapped operands.
#[inline]
pub fn _mm_cmplt_epi16(a: __m128i, b: __m128i) -> __m128i {
    _mm_cmpgt_epi16(b, a)
}

/// `pcmpgtd` with swapped operands.
#[inline]
pub fn _mm_cmplt_epi32(a: __m128i, b: __m128i) -> __m128i {
    _mm_cmpgt_epi32(b, a)
}

macro_rules! ps_cmp {
    ($(#[$meta:meta])* $name:ident, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128, b: __m128) -> __m128 {
            count(OpClass::SimdAlu);
            ps_from_bits(a.$method(b))
        }
    };
}

ps_cmp!(
    /// `cmpeqps` — float equality mask (NaN compares false).
    _mm_cmpeq_ps, cmp_eq
);
ps_cmp!(
    /// `cmpltps` — float less-than mask.
    _mm_cmplt_ps, cmp_lt
);
ps_cmp!(
    /// `cmpleps` — float less-or-equal mask.
    _mm_cmple_ps, cmp_le
);
ps_cmp!(
    /// `cmpgtps` — float greater-than mask.
    _mm_cmpgt_ps, cmp_gt
);
ps_cmp!(
    /// `cmpgeps` — float greater-or-equal mask.
    _mm_cmpge_ps, cmp_ge
);

/// `cmpneqps` — float not-equal mask (true for NaN operands).
#[inline]
pub fn _mm_cmpneq_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    let eq = a.cmp_eq(b);
    ps_from_bits(U32x4::new([
        !eq.lane(0),
        !eq.lane(1),
        !eq.lane(2),
        !eq.lane(3),
    ]))
}

/// `cmpltpd` — double less-than mask.
#[inline]
pub fn _mm_cmplt_pd(a: __m128d, b: __m128d) -> __m128d {
    count(OpClass::SimdAlu);
    crate::types::pd_from_bits(a.cmp_lt(b))
}

/// `cmpgtpd` — double greater-than mask.
#[inline]
pub fn _mm_cmpgt_pd(a: __m128d, b: __m128d) -> __m128d {
    count(OpClass::SimdAlu);
    crate::types::pd_from_bits(a.cmp_gt(b))
}

/// `cmpeqpd` — double equality mask.
#[inline]
pub fn _mm_cmpeq_pd(a: __m128d, b: __m128d) -> __m128d {
    count(OpClass::SimdAlu);
    crate::types::pd_from_bits(a.cmp_eq(b))
}

/// Helper: builds a `pd` mask register from raw bits (used in tests).
pub fn pd_mask(bits: [u64; 2]) -> __m128d {
    crate::types::pd_from_bits(U64x2::new(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn epi8_signed_compare() {
        // 200u8 is -56 as i8, so signed-gt treats it as small.
        let a = _mm_loadu_si128(&[200u8; 16]);
        let b = _mm_loadu_si128(&[100u8; 16]);
        assert_eq!(_mm_cmpgt_epi8(a, b).as_u8().lane(0), 0x00);
        assert_eq!(_mm_cmpgt_epi8(b, a).as_u8().lane(0), 0xFF);
        assert_eq!(_mm_cmplt_epi8(a, b).as_u8().lane(0), 0xFF);
    }

    #[test]
    fn epi16_epi32_compare() {
        let a = _mm_set1_epi16(5);
        let b = _mm_set1_epi16(5);
        assert_eq!(_mm_cmpeq_epi16(a, b).as_u16().lane(0), 0xFFFF);
        let c = _mm_set1_epi32(-1);
        let d = _mm_set1_epi32(1);
        assert_eq!(_mm_cmpgt_epi32(d, c).as_u32().lane(0), 0xFFFF_FFFF);
        assert_eq!(_mm_cmpgt_epi32(c, d).as_u32().lane(0), 0);
        assert_eq!(_mm_cmplt_epi32(c, d).as_u32().lane(0), 0xFFFF_FFFF);
    }

    #[test]
    fn ps_compare_nan_behaviour() {
        let a = _mm_setr_ps(1.0, f32::NAN, 3.0, 4.0);
        let b = _mm_set1_ps(2.0);
        let lt = crate::types::ps_to_bits(_mm_cmplt_ps(a, b));
        assert_eq!(lt.to_array(), [u32::MAX, 0, 0, 0]);
        let neq = crate::types::ps_to_bits(_mm_cmpneq_ps(a, b));
        assert_eq!(neq.to_array(), [u32::MAX, u32::MAX, u32::MAX, u32::MAX]);
        let eq = crate::types::ps_to_bits(_mm_cmpeq_ps(b, b));
        assert_eq!(eq.to_array(), [u32::MAX; 4]);
    }

    #[test]
    fn pd_compare() {
        let a = _mm_set1_pd(1.0);
        let b = _mm_set1_pd(2.0);
        assert_eq!(
            crate::types::pd_to_bits(_mm_cmplt_pd(a, b)).to_array(),
            [u64::MAX, u64::MAX]
        );
        assert_eq!(
            crate::types::pd_to_bits(_mm_cmpgt_pd(a, b)).to_array(),
            [0, 0]
        );
        assert_eq!(
            crate::types::pd_to_bits(_mm_cmpeq_pd(a, a)).to_array(),
            [u64::MAX, u64::MAX]
        );
    }
}
