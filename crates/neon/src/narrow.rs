//! Narrowing and widening moves: `vqmovn`, `vqmovun`, `vmovn`, `vmovl`.

use crate::types::*;
use op_trace::{count, OpClass};

/// `vqmovn.s32` — saturating narrow of four `i32` lanes to four `i16` lanes
/// (the benchmark-1 downcast step).
///
/// ```
/// use neon_sim::{vqmovn_s32, types::int32x4_t};
/// let v = int32x4_t::new([70_000, -70_000, 7, -7]);
/// assert_eq!(vqmovn_s32(v).to_array(), [32767, -32768, 7, -7]);
/// ```
#[inline]
pub fn vqmovn_s32(a: int32x4_t) -> int16x4_t {
    count(OpClass::SimdConvert);
    a.narrow_saturate_i16_half()
}

/// `vqmovn.s16` — saturating narrow of eight `i16` lanes to eight `i8`
/// lanes.
#[inline]
pub fn vqmovn_s16(a: int16x8_t) -> int8x8_t {
    count(OpClass::SimdConvert);
    a.narrow_saturate_i8_half()
}

/// `vqmovun.s16` — *unsigned*-saturating narrow of eight signed `i16` lanes
/// to eight `u8` lanes (the edge-detection magnitude downcast).
#[inline]
pub fn vqmovun_s16(a: int16x8_t) -> uint8x8_t {
    count(OpClass::SimdConvert);
    a.narrow_saturate_u8_half()
}

/// `vqmovun.s32` — unsigned-saturating narrow of four signed `i32` lanes to
/// four `u16` lanes.
#[inline]
pub fn vqmovun_s32(a: int32x4_t) -> uint16x4_t {
    count(OpClass::SimdConvert);
    a.narrow_saturate_u16_half()
}

/// `vqmovn.u16` — saturating narrow of eight `u16` lanes to eight `u8`
/// lanes.
#[inline]
pub fn vqmovn_u16(a: uint16x8_t) -> uint8x8_t {
    count(OpClass::SimdConvert);
    a.narrow_saturate_u8_half()
}

/// `vmovn.i16` — truncating narrow of eight `u16` lanes to eight `u8`
/// lanes (drops high bits).
#[inline]
pub fn vmovn_u16(a: uint16x8_t) -> uint8x8_t {
    count(OpClass::SimdConvert);
    a.narrow_truncate_u8()
}

/// `vmovl.u8` — zero-extending widen of eight `u8` lanes to eight `u16`
/// lanes.
#[inline]
pub fn vmovl_u8(a: uint8x8_t) -> uint16x8_t {
    count(OpClass::SimdConvert);
    a.widen_u16()
}

/// `vmovl.s16` — sign-extending widen of four `i16` lanes to four `i32`
/// lanes.
#[inline]
pub fn vmovl_s16(a: int16x4_t) -> int32x4_t {
    count(OpClass::SimdConvert);
    a.widen_i32()
}

/// `vmovl.u16` — zero-extending widen of four `u16` lanes to four `u32`
/// lanes.
#[inline]
pub fn vmovl_u16(a: uint16x4_t) -> uint32x4_t {
    count(OpClass::SimdConvert);
    a.widen_u32()
}

/// Reinterprets the `u16` widen of bytes as signed halfwords — the
/// ubiquitous `vreinterpretq_s16_u16(vmovl_u8(x))` idiom, provided directly
/// because filter kernels use it on every tap.
#[inline]
pub fn vmovl_u8_as_s16(a: uint8x8_t) -> int16x8_t {
    count(OpClass::SimdConvert);
    a.widen_i16()
}

/// `vmovn.i32` — truncating narrow of four `u32` lanes to four `u16` lanes.
#[inline]
pub fn vmovn_u32(a: uint32x4_t) -> uint16x4_t {
    count(OpClass::SimdConvert);
    uint16x4_t::new([
        a.lane(0) as u16,
        a.lane(1) as u16,
        a.lane(2) as u16,
        a.lane(3) as u16,
    ])
}

/// `vqmovn.u32` — saturating narrow of four `u32` lanes to four `u16`
/// lanes.
#[inline]
pub fn vqmovn_u32(a: uint32x4_t) -> uint16x4_t {
    count(OpClass::SimdConvert);
    uint16x4_t::new([
        a.lane(0).min(u16::MAX as u32) as u16,
        a.lane(1).min(u16::MAX as u32) as u16,
        a.lane(2).min(u16::MAX as u32) as u16,
        a.lane(3).min(u16::MAX as u32) as u16,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qmovn_saturates_both_ends() {
        let v = int32x4_t::new([70000, -70000, 5, -5]);
        assert_eq!(vqmovn_s32(v).to_array(), [32767, -32768, 5, -5]);
        let h = int16x8_t::new([300, -300, 127, -128, 128, -129, 0, 1]);
        assert_eq!(
            vqmovn_s16(h).to_array(),
            [127, -128, 127, -128, 127, -128, 0, 1]
        );
    }

    #[test]
    fn qmovun_clamps_negative_to_zero() {
        let v = int16x8_t::new([-5, 0, 127, 128, 255, 256, 300, -1]);
        assert_eq!(
            vqmovun_s16(v).to_array(),
            [0, 0, 127, 128, 255, 255, 255, 0]
        );
        let w = int32x4_t::new([-1, 0, 65535, 65536]);
        assert_eq!(vqmovun_s32(w).to_array(), [0, 0, 65535, 65535]);
    }

    #[test]
    fn movn_truncates_movl_widens() {
        let v = uint16x8_t::new([0x1FF, 0x100, 0xFF, 1, 2, 3, 4, 5]);
        assert_eq!(vmovn_u16(v).to_array(), [0xFF, 0, 0xFF, 1, 2, 3, 4, 5]);
        assert_eq!(vqmovn_u16(v).to_array(), [255, 255, 255, 1, 2, 3, 4, 5]);
        let b = uint8x8_t::new([0, 1, 127, 128, 200, 255, 7, 9]);
        assert_eq!(vmovl_u8(b).to_array(), [0, 1, 127, 128, 200, 255, 7, 9]);
        assert_eq!(vmovl_u8_as_s16(b).lane(5), 255i16);
        let s = int16x4_t::new([-1, 0, 1, i16::MIN]);
        assert_eq!(vmovl_s16(s).to_array(), [-1, 0, 1, -32768]);
        let u = uint16x4_t::new([0, 1, 65535, 7]);
        assert_eq!(vmovl_u16(u).to_array(), [0, 1, 65535, 7]);
    }

    #[test]
    fn paper_benchmark1_narrow_pipeline() {
        // int16x4_t lo = vqmovn_s32(cvt(lo)); hi likewise; combine.
        let lo = int32x4_t::new([1, 2, 40000, -40000]);
        let hi = int32x4_t::new([5, 6, 7, 8]);
        let res = crate::vcombine_s16(vqmovn_s32(lo), vqmovn_s32(hi));
        assert_eq!(res.to_array(), [1, 2, 32767, -32768, 5, 6, 7, 8]);
    }
}
