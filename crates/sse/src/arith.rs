//! Arithmetic intrinsics (category *b*).

use crate::types::{__m128, __m128d, __m128i};
use op_trace::{count, OpClass};
use simd_vector::U16x8;

macro_rules! ps_binop {
    ($(#[$meta:meta])* $name:ident, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128, b: __m128) -> __m128 {
            count(OpClass::SimdAlu);
            a.$method(b)
        }
    };
}

ps_binop!(
    /// `addps` — lane-wise single-precision addition.
    _mm_add_ps, add
);
ps_binop!(
    /// `subps` — lane-wise single-precision subtraction.
    _mm_sub_ps, sub
);
ps_binop!(
    /// `mulps` — lane-wise single-precision multiplication.
    _mm_mul_ps, mul
);
ps_binop!(
    /// `divps` — lane-wise single-precision division.
    _mm_div_ps, div
);
ps_binop!(
    /// `minps` — lane-wise minimum (second operand on NaN).
    _mm_min_ps, min
);
ps_binop!(
    /// `maxps` — lane-wise maximum (second operand on NaN).
    _mm_max_ps, max
);

/// `sqrtps` — lane-wise square root.
#[inline]
pub fn _mm_sqrt_ps(a: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    a.sqrt()
}

/// `rcpps` — reciprocal estimate (exact in the sim; see `simd-vector`).
#[inline]
pub fn _mm_rcp_ps(a: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    a.recip_estimate()
}

/// `rsqrtps` — reciprocal square-root estimate (exact in the sim).
#[inline]
pub fn _mm_rsqrt_ps(a: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    a.rsqrt_estimate()
}

macro_rules! pd_binop {
    ($(#[$meta:meta])* $name:ident, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128d, b: __m128d) -> __m128d {
            count(OpClass::SimdAlu);
            a.$method(b)
        }
    };
}

pd_binop!(
    /// `addpd` — lane-wise double-precision addition.
    _mm_add_pd, add
);
pd_binop!(
    /// `subpd` — lane-wise double-precision subtraction.
    _mm_sub_pd, sub
);
pd_binop!(
    /// `mulpd` — lane-wise double-precision multiplication.
    _mm_mul_pd, mul
);
pd_binop!(
    /// `divpd` — lane-wise double-precision division (SSE2-only feature the
    /// paper notes NEON lacks for doubles).
    _mm_div_pd, div
);
pd_binop!(
    /// `minpd` — lane-wise double minimum.
    _mm_min_pd, min
);
pd_binop!(
    /// `maxpd` — lane-wise double maximum.
    _mm_max_pd, max
);

/// `sqrtpd` — lane-wise double square root.
#[inline]
pub fn _mm_sqrt_pd(a: __m128d) -> __m128d {
    count(OpClass::SimdAlu);
    a.sqrt()
}

macro_rules! epi_binop {
    ($(#[$meta:meta])* $name:ident, $view:ident, $build:ident, $method:ident) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128i, b: __m128i) -> __m128i {
            count(OpClass::SimdAlu);
            __m128i::$build(a.$view().$method(b.$view()))
        }
    };
}

epi_binop!(
    /// `paddb` — wrapping 8-bit addition.
    _mm_add_epi8, as_i8, from_i8, wrapping_add
);
epi_binop!(
    /// `psubb` — wrapping 8-bit subtraction.
    _mm_sub_epi8, as_i8, from_i8, wrapping_sub
);
epi_binop!(
    /// `paddw` — wrapping 16-bit addition.
    _mm_add_epi16, as_i16, from_i16, wrapping_add
);
epi_binop!(
    /// `psubw` — wrapping 16-bit subtraction.
    _mm_sub_epi16, as_i16, from_i16, wrapping_sub
);
epi_binop!(
    /// `paddd` — wrapping 32-bit addition.
    _mm_add_epi32, as_i32, from_i32, wrapping_add
);
epi_binop!(
    /// `psubd` — wrapping 32-bit subtraction.
    _mm_sub_epi32, as_i32, from_i32, wrapping_sub
);
epi_binop!(
    /// `paddq` — wrapping 64-bit addition.
    _mm_add_epi64, as_i64, from_i64, wrapping_add
);
epi_binop!(
    /// `psubq` — wrapping 64-bit subtraction.
    _mm_sub_epi64, as_i64, from_i64, wrapping_sub
);
epi_binop!(
    /// `paddsb` — saturating signed 8-bit addition.
    _mm_adds_epi8, as_i8, from_i8, saturating_add
);
epi_binop!(
    /// `paddsw` — saturating signed 16-bit addition.
    _mm_adds_epi16, as_i16, from_i16, saturating_add
);
epi_binop!(
    /// `psubsw` — saturating signed 16-bit subtraction.
    _mm_subs_epi16, as_i16, from_i16, saturating_sub
);
epi_binop!(
    /// `paddusb` — saturating unsigned 8-bit addition.
    _mm_adds_epu8, as_u8, from_u8, saturating_add
);
epi_binop!(
    /// `psubusb` — saturating unsigned 8-bit subtraction.
    _mm_subs_epu8, as_u8, from_u8, saturating_sub
);
epi_binop!(
    /// `paddusw` — saturating unsigned 16-bit addition.
    _mm_adds_epu16, as_u16, from_u16, saturating_add
);
epi_binop!(
    /// `psubusw` — saturating unsigned 16-bit subtraction.
    _mm_subs_epu16, as_u16, from_u16, saturating_sub
);
epi_binop!(
    /// `pmullw` — low 16 bits of the 16-bit products.
    _mm_mullo_epi16, as_i16, from_i16, wrapping_mul
);
epi_binop!(
    /// `pmulhw` — high 16 bits of the signed 16-bit products.
    _mm_mulhi_epi16, as_i16, from_i16, mul_high
);
epi_binop!(
    /// `pmaxub` — unsigned 8-bit maximum.
    _mm_max_epu8, as_u8, from_u8, max
);
epi_binop!(
    /// `pminub` — unsigned 8-bit minimum.
    _mm_min_epu8, as_u8, from_u8, min
);
epi_binop!(
    /// `pmaxsw` — signed 16-bit maximum.
    _mm_max_epi16, as_i16, from_i16, max
);
epi_binop!(
    /// `pminsw` — signed 16-bit minimum.
    _mm_min_epi16, as_i16, from_i16, min
);
epi_binop!(
    /// `pavgb` — unsigned 8-bit rounding average.
    _mm_avg_epu8, as_u8, from_u8, avg_round
);
epi_binop!(
    /// `pavgw` — unsigned 16-bit rounding average.
    _mm_avg_epu16, as_u16, from_u16, avg_round
);

/// `pmaddwd` — multiplies signed 16-bit lanes and adds adjacent pairs into
/// 32-bit lanes. The workhorse of fixed-point convolution.
#[inline]
pub fn _mm_madd_epi16(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i32(a.as_i16().madd(b.as_i16()))
}

/// `pmulhuw` — high 16 bits of the unsigned 16-bit products.
#[inline]
pub fn _mm_mulhi_epu16(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let av = a.as_u16();
    let bv = b.as_u16();
    __m128i::from_u16(av.zip(bv, |x, y| (((x as u32) * (y as u32)) >> 16) as u16))
}

/// `psadbw` — sum of absolute byte differences per 8-byte half, producing
/// two 64-bit sums.
#[inline]
pub fn _mm_sad_epu8(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let d = a.as_u8().abs_diff(b.as_u8());
    let lanes = d.to_array();
    let lo: u64 = lanes[..8].iter().map(|&v| v as u64).sum();
    let hi: u64 = lanes[8..].iter().map(|&v| v as u64).sum();
    __m128i::from_u64(simd_vector::U64x2::new([lo, hi]))
}

/// `pmuludq` — multiplies the even unsigned 32-bit lanes into 64-bit
/// products.
#[inline]
pub fn _mm_mul_epu32(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let av = a.as_u32();
    let bv = b.as_u32();
    __m128i::from_u64(simd_vector::U64x2::new([
        (av.lane(0) as u64) * (bv.lane(0) as u64),
        (av.lane(2) as u64) * (bv.lane(2) as u64),
    ]))
}

/// Helper mirroring `_mm_avg_epu16` semantics on a raw `U16x8` (used by
/// kernels that mix views).
#[inline]
pub fn avg_round_u16(a: U16x8, b: U16x8) -> U16x8 {
    a.avg_round(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn float_arith() {
        let a = _mm_setr_ps(1.0, 2.0, 3.0, 4.0);
        let b = _mm_set1_ps(2.0);
        assert_eq!(_mm_add_ps(a, b).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!(_mm_mul_ps(a, b).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!(_mm_div_ps(a, b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(_mm_sqrt_ps(_mm_set1_ps(9.0)).to_array(), [3.0; 4]);
        assert_eq!(_mm_min_ps(a, b).to_array(), [1.0, 2.0, 2.0, 2.0]);
        assert_eq!(_mm_max_ps(a, b).to_array(), [2.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn double_arith() {
        let a = _mm_set1_pd(3.0);
        let b = _mm_set_sd(1.5);
        assert_eq!(_mm_add_pd(a, b).to_array(), [4.5, 3.0]);
        assert_eq!(_mm_div_pd(a, _mm_set1_pd(2.0)).to_array(), [1.5, 1.5]);
        assert_eq!(_mm_sqrt_pd(_mm_set1_pd(16.0)).to_array(), [4.0, 4.0]);
    }

    #[test]
    fn saturating_vs_wrapping_u8() {
        let a = _mm_loadu_si128(&[250u8; 16]);
        let b = _mm_loadu_si128(&[10u8; 16]);
        assert_eq!(_mm_adds_epu8(a, b).as_u8().lane(0), 255);
        assert_eq!(_mm_add_epi8(a, b).as_u8().lane(0), 4);
        assert_eq!(_mm_subs_epu8(b, a).as_u8().lane(0), 0);
    }

    #[test]
    fn saturating_i16() {
        let a = _mm_set1_epi16(i16::MAX);
        let one = _mm_set1_epi16(1);
        assert_eq!(_mm_adds_epi16(a, one).as_i16().lane(0), i16::MAX);
        assert_eq!(_mm_add_epi16(a, one).as_i16().lane(0), i16::MIN);
        let b = _mm_set1_epi16(i16::MIN);
        assert_eq!(_mm_subs_epi16(b, one).as_i16().lane(0), i16::MIN);
    }

    #[test]
    fn mul_lo_hi() {
        let a = _mm_set1_epi16(300);
        let b = _mm_set1_epi16(400);
        // 300*400 = 120000 = 0x1D4C0; lo = 0xD4C0 (as i16 = -11072), hi = 1.
        assert_eq!(_mm_mullo_epi16(a, b).as_i16().lane(0), 0xD4C0u16 as i16);
        assert_eq!(_mm_mulhi_epi16(a, b).as_i16().lane(0), 1);
    }

    #[test]
    fn madd_combines_pairs() {
        let a = _mm_set_epi16(8, 7, 6, 5, 4, 3, 2, 1);
        let b = _mm_set1_epi16(10);
        assert_eq!(_mm_madd_epi16(a, b).as_i32().to_array(), [30, 70, 110, 150]);
    }

    #[test]
    fn sad_sums_absolute_differences() {
        let a = _mm_loadu_si128(&[10u8; 16]);
        let mut lanes = [0u8; 16];
        lanes[0] = 13; // |13-10| = 3
        lanes[8] = 4; // |4-10| = 6
        let b = _mm_loadu_si128(&lanes);
        let r = _mm_sad_epu8(a, b).as_u64().to_array();
        assert_eq!(r[0], 3 + 10 * 7);
        assert_eq!(r[1], 6 + 10 * 7);
    }

    #[test]
    fn unsigned_minmax_avg() {
        let a = _mm_loadu_si128(&[200u8; 16]);
        let b = _mm_loadu_si128(&[100u8; 16]);
        assert_eq!(_mm_max_epu8(a, b).as_u8().lane(0), 200);
        assert_eq!(_mm_min_epu8(a, b).as_u8().lane(0), 100);
        assert_eq!(_mm_avg_epu8(a, b).as_u8().lane(0), 150);
        // pavg rounds up: (1+2+1)/2 = 2
        let one = _mm_loadu_si128(&[1u8; 16]);
        let two = _mm_loadu_si128(&[2u8; 16]);
        assert_eq!(_mm_avg_epu8(one, two).as_u8().lane(0), 2);
    }

    #[test]
    fn mul_epu32_even_lanes() {
        let a = _mm_setr_epi32(-1, 7, 3, 9); // -1 as u32 = 0xFFFF_FFFF
        let b = _mm_setr_epi32(2, 8, 5, 10);
        let r = _mm_mul_epu32(a, b).as_u64().to_array();
        assert_eq!(r[0], 0xFFFF_FFFFu64 * 2);
        assert_eq!(r[1], 15);
    }
}
