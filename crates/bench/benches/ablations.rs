//! Ablation benches (experiments A1 and A2 in DESIGN.md):
//!
//! * A1 — aligned vs unaligned SIMD memory access: the same threshold loop
//!   run on the image's aligned row starts vs deliberately offset windows.
//! * A2 — backend ablation on identical data: scalar vs autovec vs native
//!   vs the two simulated-ISA interpreters (small image: the interpreters
//!   are semantic models, 2-3 orders of magnitude slower by design).

use bench::bench_image;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pixelimage::{Image, Resolution};
use simdbench_core::threshold::{threshold_row, threshold_u8, ThresholdType};
use simdbench_core::Engine;

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_alignment");
    let src = bench_image(Resolution::Mp1);
    let mut dst = Image::<u8>::new(src.width(), src.height());
    group.bench_function("threshold_aligned_rows", |b| {
        b.iter(|| {
            for y in 0..src.height() {
                threshold_row(
                    src.row_padded(y),
                    dst.row_padded_mut(y),
                    128,
                    255,
                    ThresholdType::Binary,
                    Engine::Native,
                );
            }
        })
    });
    group.bench_function("threshold_offset_rows", |b| {
        b.iter(|| {
            for y in 0..src.height() {
                // Offset by one byte: every vector access becomes unaligned.
                let s = &src.row_padded(y)[1..];
                let d = &mut dst.row_padded_mut(y)[1..];
                threshold_row(s, d, 128, 255, ThresholdType::Binary, Engine::Native);
            }
        })
    });
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend");
    group.sample_size(10);
    let src = bench_image(Resolution::Vga);
    let mut dst = Image::<u8>::new(src.width(), src.height());
    for engine in Engine::ALL {
        group.bench_with_input(
            BenchmarkId::new("threshold_vga", engine.label()),
            &engine,
            |b, &engine| {
                b.iter(|| threshold_u8(&src, &mut dst, 128, 255, ThresholdType::Binary, engine))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alignment, bench_backends);
criterion_main!(benches);
