//! Shape assertions against the paper's reported results. Absolute seconds
//! are model estimates; these tests pin the *relations* the paper claims:
//! who wins, by roughly what factor, and where the outliers sit.

use simd_repro::image::Resolution;
use simd_repro::platform::{
    all_platforms, platform_by_name, predict_seconds, speedup, Kernel, Strategy,
};

fn p(name: &str) -> simd_repro::platform::PlatformSpec {
    platform_by_name(name).unwrap()
}

/// Abstract: "On the ARM platforms the hand-tuned NEON benchmarks were
/// between 1.05 and 13.05 faster than the auto-vectorized code."
#[test]
fn arm_speedup_band_matches_abstract() {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for platform in all_platforms().iter().filter(|p| p.is_arm()) {
        for kernel in Kernel::ALL {
            for res in Resolution::ALL {
                let s = speedup(platform, kernel, res);
                min = min.min(s);
                max = max.max(s);
            }
        }
    }
    assert!(
        (0.95..=1.5).contains(&min),
        "ARM min speed-up {min} (paper 1.05)"
    );
    assert!(
        (10.0..=16.0).contains(&max),
        "ARM max speed-up {max} (paper 13.05)"
    );
}

/// Abstract: "for the Intel platforms the hand-tuned SSE benchmarks were
/// between 1.34 and 5.54 faster."
#[test]
fn intel_speedup_band_matches_abstract() {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for platform in all_platforms().iter().filter(|p| !p.is_arm()) {
        for kernel in Kernel::ALL {
            for res in Resolution::ALL {
                let s = speedup(platform, kernel, res);
                min = min.min(s);
                max = max.max(s);
            }
        }
    }
    assert!(
        (0.95..=1.7).contains(&min),
        "Intel min speed-up {min} (paper 1.34)"
    );
    assert!(
        (4.2..=6.5).contains(&max),
        "Intel max speed-up {max} (paper 5.54)"
    );
}

/// Section IV-A: "the speed-up obtained with HAND varies from 5.27 for the
/// Atom to just 1.34 for the Core 2 Quad" — ordering within Intel for the
/// conversion benchmark.
#[test]
fn convert_intel_ordering_atom_max_core2_min() {
    let intel: Vec<_> = all_platforms()
        .into_iter()
        .filter(|p| !p.is_arm())
        .collect();
    let speedups: Vec<(String, f64)> = intel
        .iter()
        .map(|pl| {
            (
                pl.short.to_string(),
                speedup(pl, Kernel::Convert, Resolution::Vga),
            )
        })
        .collect();
    let atom = speedups.iter().find(|(n, _)| n == "Atom-D510").unwrap().1;
    let c2q = speedups.iter().find(|(n, _)| n == "Core2-Q9400").unwrap().1;
    for (name, s) in &speedups {
        assert!(*s <= atom + 1e-9, "{name} {s} exceeds Atom {atom}");
        assert!(*s >= c2q - 1e-9, "{name} {s} below Core2 {c2q}");
    }
    assert!(
        (4.0..=6.0).contains(&atom),
        "Atom convert {atom} (paper 5.27)"
    );
    assert!(
        (1.1..=1.8).contains(&c2q),
        "Core2 convert {c2q} (paper 1.34)"
    );
}

/// Section IV-A: the Exynos 3110's conversion speed-up reaches ~13, the
/// Tegra T30's only ~3.4.
#[test]
fn convert_arm_extremes() {
    let exynos = speedup(&p("Exynos-3110"), Kernel::Convert, Resolution::Mp8);
    let tegra = speedup(&p("Tegra-T30"), Kernel::Convert, Resolution::Mp8);
    assert!(
        (11.0..=15.5).contains(&exynos),
        "Exynos 3110: {exynos} (paper 13.05)"
    );
    assert!((3.0..=5.0).contains(&tegra), "Tegra: {tegra} (paper 3.42)");
}

/// Section IV-A: "The ODROID shows more than twice as much benefit from
/// using NEON compared to the Tegra T30", at the same 1.3 GHz clock.
#[test]
fn odroid_beats_tegra_by_over_2x() {
    let odroid = p("ODROID-X");
    let tegra = p("Tegra-T30");
    assert_eq!(odroid.ghz, tegra.ghz, "paper equalised the clocks");
    let so = speedup(&odroid, Kernel::Convert, Resolution::Mp8);
    let st = speedup(&tegra, Kernel::Convert, Resolution::Mp8);
    assert!(so / st > 2.0, "ODROID {so} vs Tegra {st}");
    // And in absolute HAND time the ODROID wins too (Section IV-B).
    for kernel in Kernel::ALL {
        let to = predict_seconds(&odroid, kernel, Strategy::Hand, Resolution::Mp8);
        let tt = predict_seconds(&tegra, kernel, Strategy::Hand, Resolution::Mp8);
        assert!(
            to < tt,
            "{kernel:?}: ODROID {to} not faster than Tegra {tt}"
        );
    }
}

/// Section IV-B: "the maximum speed-up observed in Figures 3-6 is about 5.5
/// across all platforms", versus 13 for the conversion benchmark.
#[test]
fn figures_3_to_6_cap_below_convert() {
    let mut max_b2_b5 = 0.0f64;
    for platform in all_platforms() {
        for kernel in [
            Kernel::Threshold,
            Kernel::Gaussian,
            Kernel::Sobel,
            Kernel::Edge,
        ] {
            for res in Resolution::ALL {
                max_b2_b5 = max_b2_b5.max(speedup(&platform, kernel, res));
            }
        }
    }
    assert!(
        (4.0..=6.5).contains(&max_b2_b5),
        "max fig3-6 speed-up {max_b2_b5} (paper ~5.5)"
    );
}

/// Section IV-B: the i5 has the best absolute times; the Exynos 4412 is the
/// fastest ARM system; the Atom is ~10x slower than the i7.
#[test]
fn absolute_time_ordering() {
    let i5 = p("i5-3360M");
    for kernel in Kernel::ALL {
        let best = predict_seconds(&i5, kernel, Strategy::Hand, Resolution::Mp8);
        for platform in all_platforms() {
            let t = predict_seconds(&platform, kernel, Strategy::Hand, Resolution::Mp8);
            assert!(
                t >= best - 1e-12,
                "{} beat the i5 on {kernel:?}",
                platform.short
            );
        }
    }
    let exynos = p("Exynos-4412");
    for kernel in Kernel::ALL {
        let best_arm = predict_seconds(&exynos, kernel, Strategy::Hand, Resolution::Mp8);
        for platform in all_platforms().iter().filter(|p| p.is_arm()) {
            let t = predict_seconds(platform, kernel, Strategy::Hand, Resolution::Mp8);
            assert!(
                t >= best_arm - 1e-12,
                "{} beat the Exynos 4412 on {kernel:?}",
                platform.short
            );
        }
    }
    // Atom vs i7 on the AUTO builds of benchmarks 2-5: "about 10x slower".
    let atom = p("Atom-D510");
    let i7 = p("i7-2820QM");
    for kernel in [
        Kernel::Threshold,
        Kernel::Gaussian,
        Kernel::Sobel,
        Kernel::Edge,
    ] {
        let ratio = predict_seconds(&atom, kernel, Strategy::Auto, Resolution::Mp8)
            / predict_seconds(&i7, kernel, Strategy::Auto, Resolution::Mp8);
        assert!(
            (4.0..=14.0).contains(&ratio),
            "{kernel:?}: atom/i7 = {ratio}"
        );
    }
}

/// Section IV-B: "This system [Exynos 4412] is typically 8-15 slower than
/// the Intel Core i5."
#[test]
fn exynos_4412_vs_i5_band() {
    let exynos = p("Exynos-4412");
    let i5 = p("i5-3360M");
    let mut in_band = 0;
    for kernel in Kernel::ALL {
        let ratio = predict_seconds(&exynos, kernel, Strategy::Hand, Resolution::Mp8)
            / predict_seconds(&i5, kernel, Strategy::Hand, Resolution::Mp8);
        assert!((2.0..=20.0).contains(&ratio), "{kernel:?}: ratio {ratio}");
        if (6.0..=15.0).contains(&ratio) {
            in_band += 1;
        }
    }
    assert!(
        in_band >= 3,
        "most kernels should land in the paper's 8-15x band"
    );
}

/// Table II behaviour: "absolute execution times ... scale almost linearly
/// with image size".
#[test]
fn times_scale_linearly_with_pixels() {
    for platform in all_platforms() {
        for strategy in [Strategy::Auto, Strategy::Hand] {
            let t_vga = predict_seconds(&platform, Kernel::Convert, strategy, Resolution::Vga);
            let t_8mp = predict_seconds(&platform, Kernel::Convert, strategy, Resolution::Mp8);
            let ratio = t_8mp / t_vga;
            let pixels = Resolution::Mp8.pixels() as f64 / Resolution::Vga.pixels() as f64;
            assert!(
                (ratio / pixels - 1.0).abs() < 0.25,
                "{} {strategy:?}: {ratio} vs pixel ratio {pixels}",
                platform.short
            );
        }
    }
}

/// The in-order platforms (Atom, both A8s) benefit more from HAND than
/// their out-of-order siblings — the paper's recurring explanation.
#[test]
fn in_order_platforms_gain_most() {
    let avg_speedup = |name: &str| -> f64 {
        let platform = p(name);
        Kernel::ALL
            .iter()
            .map(|&k| speedup(&platform, k, Resolution::Mp8))
            .sum::<f64>()
            / Kernel::ALL.len() as f64
    };
    // Atom (in-order) above its Intel OoO siblings on average.
    let atom = avg_speedup("Atom-D510");
    assert!(atom > avg_speedup("Core2-Q9400"));
    // A8 (in-order) above every A9 on average.
    let a8 = avg_speedup("Exynos-3110");
    for a9 in ["OMAP4460", "Exynos-4412", "ODROID-X", "Tegra-T30"] {
        assert!(a8 > avg_speedup(a9), "A8 {a8} vs {a9}");
    }
}
