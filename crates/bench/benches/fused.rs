//! Fused band-tiled pipeline vs the two-pass kernels (experiment A4),
//! swept over all four paper resolutions. The intermediates the two-pass
//! code materialises grow with the image (10 MB u16 at 5 Mpx, 16 MB at
//! 8 Mpx) while the fused working set stays a few rows — the gap between
//! the `two_pass/*` and `fused/*` series is that locality difference.

use bench::bench_image;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::{Image, Resolution};
use simdbench_core::edge::edge_detect;
use simdbench_core::gaussian::gaussian_blur;
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::pipeline::{
    fused_edge_detect_with, fused_gaussian_blur_with, fused_sobel_with, par_fused_edge_detect_with,
    BandPlan,
};
use simdbench_core::scratch::Scratch;
use simdbench_core::sobel::{sobel, SobelDirection};
use simdbench_core::Engine;

const ENGINE: Engine = Engine::Native;

fn bench_fused_gaussian(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_gaussian");
    group.sample_size(12);
    let kernel = paper_gaussian_kernel();
    for res in Resolution::ALL {
        let src = bench_image(res);
        let mut dst = Image::<u8>::new(src.width(), src.height());
        let mut scratch = Scratch::new();
        group.throughput(Throughput::Elements(res.pixels() as u64));
        group.bench_with_input(BenchmarkId::new("two_pass", res.label()), &(), |b, _| {
            b.iter(|| gaussian_blur(&src, &mut dst, ENGINE))
        });
        group.bench_with_input(BenchmarkId::new("fused", res.label()), &(), |b, _| {
            b.iter(|| fused_gaussian_blur_with(&src, &mut dst, &kernel, ENGINE, &mut scratch))
        });
    }
    group.finish();
}

fn bench_fused_sobel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_sobel");
    group.sample_size(12);
    for res in Resolution::ALL {
        let src = bench_image(res);
        let mut dst = Image::<i16>::new(src.width(), src.height());
        let mut scratch = Scratch::new();
        group.throughput(Throughput::Elements(res.pixels() as u64));
        group.bench_with_input(BenchmarkId::new("two_pass", res.label()), &(), |b, _| {
            b.iter(|| sobel(&src, &mut dst, SobelDirection::X, ENGINE))
        });
        group.bench_with_input(BenchmarkId::new("fused", res.label()), &(), |b, _| {
            b.iter(|| fused_sobel_with(&src, &mut dst, SobelDirection::X, ENGINE, &mut scratch))
        });
    }
    group.finish();
}

fn bench_fused_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_edge");
    group.sample_size(12);
    for res in Resolution::ALL {
        let src = bench_image(res);
        let mut dst = Image::<u8>::new(src.width(), src.height());
        let mut scratch = Scratch::new();
        let plan = BandPlan::for_width(src.width());
        group.throughput(Throughput::Elements(res.pixels() as u64));
        group.bench_with_input(BenchmarkId::new("two_pass", res.label()), &(), |b, _| {
            b.iter(|| edge_detect(&src, &mut dst, 96, ENGINE))
        });
        group.bench_with_input(BenchmarkId::new("fused", res.label()), &(), |b, _| {
            b.iter(|| fused_edge_detect_with(&src, &mut dst, 96, ENGINE, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("par_fused", res.label()), &(), |b, _| {
            b.iter(|| par_fused_edge_detect_with(&src, &mut dst, 96, ENGINE, &plan))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_gaussian,
    bench_fused_sobel,
    bench_fused_edge
);
criterion_main!(benches);
