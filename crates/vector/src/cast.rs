//! Bit-preserving reinterpret casts between equal-width lane types.
//!
//! These model `vreinterpretq_*` on NEON and the implicit `__m128 <->
//! __m128i <-> __m128d` casts (`_mm_castps_si128` etc.) on SSE. All lane
//! types are `repr(C)` arrays of plain-old-data, so the casts are plain
//! byte-level transmutes done safely through little-endian byte buffers.

use crate::lanes::*;

macro_rules! impl_bits128 {
    ($name:ident, $elem:ty, $n:expr) => {
        impl $name {
            /// Serialises the register to its 16-byte little-endian image.
            #[inline]
            pub fn to_bytes(self) -> [u8; 16] {
                let mut out = [0u8; 16];
                let step = std::mem::size_of::<$elem>();
                for (i, lane) in self.0.iter().enumerate() {
                    out[i * step..(i + 1) * step].copy_from_slice(&lane.to_le_bytes());
                }
                out
            }

            /// Rebuilds the register from its 16-byte little-endian image.
            #[inline]
            pub fn from_bytes(bytes: [u8; 16]) -> Self {
                let mut out = [<$elem>::default(); $n];
                let step = std::mem::size_of::<$elem>();
                for (i, lane) in out.iter_mut().enumerate() {
                    let mut buf = [0u8; std::mem::size_of::<$elem>()];
                    buf.copy_from_slice(&bytes[i * step..(i + 1) * step]);
                    *lane = <$elem>::from_le_bytes(buf);
                }
                Self(out)
            }
        }
    };
}

macro_rules! impl_bits64 {
    ($name:ident, $elem:ty, $n:expr) => {
        impl $name {
            /// Serialises the register to its 8-byte little-endian image.
            #[inline]
            pub fn to_bytes(self) -> [u8; 8] {
                let mut out = [0u8; 8];
                let step = std::mem::size_of::<$elem>();
                for (i, lane) in self.0.iter().enumerate() {
                    out[i * step..(i + 1) * step].copy_from_slice(&lane.to_le_bytes());
                }
                out
            }

            /// Rebuilds the register from its 8-byte little-endian image.
            #[inline]
            pub fn from_bytes(bytes: [u8; 8]) -> Self {
                let mut out = [<$elem>::default(); $n];
                let step = std::mem::size_of::<$elem>();
                for (i, lane) in out.iter_mut().enumerate() {
                    let mut buf = [0u8; std::mem::size_of::<$elem>()];
                    buf.copy_from_slice(&bytes[i * step..(i + 1) * step]);
                    *lane = <$elem>::from_le_bytes(buf);
                }
                Self(out)
            }
        }
    };
}

impl_bits128!(F32x4, f32, 4);
impl_bits128!(F64x2, f64, 2);
impl_bits128!(I8x16, i8, 16);
impl_bits128!(U8x16, u8, 16);
impl_bits128!(I16x8, i16, 8);
impl_bits128!(U16x8, u16, 8);
impl_bits128!(I32x4, i32, 4);
impl_bits128!(U32x4, u32, 4);
impl_bits128!(I64x2, i64, 2);
impl_bits128!(U64x2, u64, 2);

impl_bits64!(F32x2, f32, 2);
impl_bits64!(I8x8, i8, 8);
impl_bits64!(U8x8, u8, 8);
impl_bits64!(I16x4, i16, 4);
impl_bits64!(U16x4, u16, 4);
impl_bits64!(I32x2, i32, 2);
impl_bits64!(U32x2, u32, 2);
impl_bits64!(I64x1, i64, 1);
impl_bits64!(U64x1, u64, 1);

/// Reinterprets the bits of a 128-bit register as another 128-bit type.
///
/// ```
/// use simd_vector::{cast::reinterpret128, F32x4, U32x4};
/// let ones: U32x4 = reinterpret128::<F32x4, U32x4>(F32x4::splat(1.0));
/// assert_eq!(ones.to_array(), [0x3f80_0000u32; 4]);
/// ```
#[inline]
pub fn reinterpret128<Src: Bits128, Dst: Bits128>(src: Src) -> Dst {
    Dst::from_bits(src.to_bits())
}

/// Reinterprets the bits of a 64-bit register as another 64-bit type.
#[inline]
pub fn reinterpret64<Src: Bits64, Dst: Bits64>(src: Src) -> Dst {
    Dst::from_bits(src.to_bits())
}

/// Trait unifying 128-bit registers for [`reinterpret128`].
pub trait Bits128: Copy {
    /// Little-endian byte image.
    fn to_bits(self) -> [u8; 16];
    /// Rebuild from a little-endian byte image.
    fn from_bits(bits: [u8; 16]) -> Self;
}

/// Trait unifying 64-bit registers for [`reinterpret64`].
pub trait Bits64: Copy {
    /// Little-endian byte image.
    fn to_bits(self) -> [u8; 8];
    /// Rebuild from a little-endian byte image.
    fn from_bits(bits: [u8; 8]) -> Self;
}

macro_rules! impl_bits_traits {
    (128: $($t:ty),+ ; 64: $($d:ty),+) => {
        $(impl Bits128 for $t {
            #[inline]
            fn to_bits(self) -> [u8; 16] { self.to_bytes() }
            #[inline]
            fn from_bits(bits: [u8; 16]) -> Self { Self::from_bytes(bits) }
        })+
        $(impl Bits64 for $d {
            #[inline]
            fn to_bits(self) -> [u8; 8] { self.to_bytes() }
            #[inline]
            fn from_bits(bits: [u8; 8]) -> Self { Self::from_bytes(bits) }
        })+
    };
}

impl_bits_traits!(
    128: F32x4, F64x2, I8x16, U8x16, I16x8, U16x8, I32x4, U32x4, I64x2, U64x2 ;
    64: F32x2, I8x8, U8x8, I16x4, U16x4, I32x2, U32x2, I64x1, U64x1
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_q() {
        let v = I32x4::new([1, -2, 3, -4]);
        assert_eq!(I32x4::from_bytes(v.to_bytes()), v);
        let f = F32x4::new([1.5, -2.5, 0.0, f32::INFINITY]);
        assert_eq!(F32x4::from_bytes(f.to_bytes()), f);
    }

    #[test]
    fn bytes_roundtrip_d() {
        let v = I16x4::new([1, -2, 3, -4]);
        assert_eq!(I16x4::from_bytes(v.to_bytes()), v);
    }

    #[test]
    fn reinterpret_i32_as_u8_is_little_endian() {
        let v = I32x4::new([0x0403_0201, 0, 0, 0]);
        let bytes: U8x16 = reinterpret128(v);
        assert_eq!(&bytes.to_array()[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn reinterpret_preserves_float_bits() {
        let f = F32x4::splat(-0.0);
        let u: U32x4 = reinterpret128(f);
        assert_eq!(u.to_array(), [0x8000_0000u32; 4]);
        let back: F32x4 = reinterpret128(u);
        assert_eq!(back.to_bytes(), f.to_bytes());
    }

    #[test]
    fn reinterpret64_roundtrip() {
        let v = U8x8::new([1, 2, 3, 4, 5, 6, 7, 8]);
        let as_u16: U16x4 = reinterpret64(v);
        assert_eq!(as_u16.to_array(), [0x0201, 0x0403, 0x0605, 0x0807]);
        let back: U8x8 = reinterpret64(as_u16);
        assert_eq!(back, v);
    }

    #[test]
    fn mask_reinterpret_between_signed_and_unsigned() {
        let mask = U16x8::new([u16::MAX, 0, u16::MAX, 0, u16::MAX, 0, u16::MAX, 0]);
        let signed: I16x8 = reinterpret128(mask);
        assert_eq!(signed.lane(0), -1);
        assert_eq!(signed.lane(1), 0);
    }
}
