//! Cross-crate equivalence: every kernel, every backend, bit-identical
//! output on a spread of image shapes — the contract that makes the AUTO vs
//! HAND timing comparison meaningful (the paper times *the same
//! computation* two ways).

use simd_repro::image::{bmp, synthetic_image, synthetic_image_f32};
use simd_repro::kernels::parallel::*;
use simd_repro::kernels::prelude::*;

const SHAPES: &[(usize, usize)] = &[(1, 1), (7, 3), (16, 16), (33, 9), (640, 48), (129, 65)];

fn hand_engines() -> [Engine; 3] {
    [Engine::Sse2Sim, Engine::NeonSim, Engine::Native]
}

#[test]
fn convert_equivalence_over_shapes() {
    for &(w, h) in SHAPES {
        let src = synthetic_image_f32(w, h, 0xC0FFEE).map(|v| (v - 128.0) * 300.0);
        let mut reference = Image::new(w, h);
        convert_f32_to_i16(&src, &mut reference, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(w, h);
            convert_f32_to_i16(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference), "{w}x{h} {engine:?}");
        }
    }
}

#[test]
fn threshold_equivalence_over_shapes_and_types() {
    for &(w, h) in SHAPES {
        let src = synthetic_image(w, h, 99);
        for ty in ThresholdType::ALL {
            let mut reference = Image::new(w, h);
            threshold_u8(&src, &mut reference, 101, 200, ty, Engine::Scalar);
            for engine in hand_engines() {
                let mut out = Image::new(w, h);
                threshold_u8(&src, &mut out, 101, 200, ty, engine);
                assert!(out.pixels_eq(&reference), "{w}x{h} {ty:?} {engine:?}");
            }
        }
    }
}

#[test]
fn gaussian_equivalence_over_shapes() {
    for &(w, h) in SHAPES {
        let src = synthetic_image(w, h, 3);
        let mut reference = Image::new(w, h);
        gaussian_blur(&src, &mut reference, Engine::Scalar);
        for engine in hand_engines() {
            let mut out = Image::new(w, h);
            gaussian_blur(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference), "{w}x{h} {engine:?}");
        }
    }
}

#[test]
fn sobel_and_edge_equivalence_over_shapes() {
    for &(w, h) in SHAPES {
        let src = synthetic_image(w, h, 5);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut reference = Image::new(w, h);
            sobel(&src, &mut reference, dir, Engine::Scalar);
            for engine in hand_engines() {
                let mut out = Image::new(w, h);
                sobel(&src, &mut out, dir, engine);
                assert!(out.pixels_eq(&reference), "{w}x{h} {dir:?} {engine:?}");
            }
        }
        let mut reference = Image::new(w, h);
        edge_detect(&src, &mut reference, 80, Engine::Scalar);
        for engine in hand_engines() {
            let mut out = Image::new(w, h);
            edge_detect(&src, &mut out, 80, engine);
            assert!(out.pixels_eq(&reference), "edge {w}x{h} {engine:?}");
        }
    }
}

#[test]
fn parallel_wrappers_match_sequential_at_odd_shapes() {
    let (w, h) = (127, 43);
    let gray = synthetic_image(w, h, 11);
    let float = synthetic_image_f32(w, h, 11).map(|v| v * 120.0 - 9000.0);

    let mut seq_i16 = Image::new(w, h);
    let mut par_i16 = Image::new(w, h);
    convert_f32_to_i16(&float, &mut seq_i16, Engine::Native);
    par_convert_f32_to_i16(&float, &mut par_i16, Engine::Native);
    assert!(par_i16.pixels_eq(&seq_i16));

    let mut seq_u8 = Image::new(w, h);
    let mut par_u8 = Image::new(w, h);
    gaussian_blur(&gray, &mut seq_u8, Engine::Native);
    par_gaussian_blur(&gray, &mut par_u8, Engine::Native);
    assert!(par_u8.pixels_eq(&seq_u8));

    edge_detect(&gray, &mut seq_u8, 90, Engine::Native);
    par_edge_detect(&gray, &mut par_u8, 90, Engine::Native);
    assert!(par_u8.pixels_eq(&seq_u8));
}

#[test]
fn set_use_optimized_switches_like_opencv() {
    use simd_repro::kernels::dispatch::{default_engine, with_use_optimized};
    with_use_optimized(false, || {
        assert_eq!(default_engine(), Engine::Scalar);
    });
    with_use_optimized(true, || {
        assert!(default_engine().is_hand() || default_engine() == Engine::Autovec);
    });
}

#[test]
fn full_pipeline_through_bmp_roundtrip() {
    // Image file -> decode -> process -> encode -> decode: the downstream
    // user path the library advertises.
    let photo = synthetic_image(160, 120, 77);
    let encoded = bmp::encode_gray(&photo);
    let decoded = match bmp::decode(&encoded).unwrap() {
        bmp::Decoded::Gray(img) => img,
        _ => panic!("expected gray"),
    };
    assert!(decoded.pixels_eq(&photo));

    let mut edges = Image::new(160, 120);
    edge_detect(&decoded, &mut edges, 96, Engine::Native);
    let edge_bmp = bmp::encode_gray(&edges);
    match bmp::decode(&edge_bmp).unwrap() {
        bmp::Decoded::Gray(round) => assert!(round.pixels_eq(&edges)),
        _ => panic!("expected gray"),
    }
}

#[test]
fn simulated_and_native_engines_agree_on_saturation_torture() {
    // Values engineered to hit every saturation branch of benchmark 1.
    let torture: Vec<f32> = vec![
        32766.4, 32766.6, 32767.5, 32768.5, -32767.4, -32768.6, -32769.5, 0.5, -0.5, 1.5, 2.5,
        -1.5, -2.5, 65536.0, -65536.0, 1e9, -1e9, 1e-9, -1e-9, 0.0,
    ];
    let w = torture.len();
    let src = Image::from_fn(w, 1, |x, _| torture[x]);
    let mut expected = Image::new(w, 1);
    convert_f32_to_i16(&src, &mut expected, Engine::Scalar);
    for engine in hand_engines() {
        let mut out = Image::new(w, 1);
        convert_f32_to_i16(&src, &mut out, engine);
        assert!(out.pixels_eq(&expected), "{engine:?}");
    }
}
