//! Software implementation of the Intel SSE2 intrinsic surface.
//!
//! Every public function mirrors one Intel intrinsic — same name, same lane
//! semantics (per the Intel Intrinsics Guide) — implemented over the
//! portable lane types of `simd-vector`. Two deliberate deviations from the
//! C signatures keep the surface safe and testable:
//!
//! 1. Memory intrinsics take **slices** instead of raw pointers. Length is
//!    checked; the `_mm_load_*`/`_mm_store_*` (aligned) variants also assert
//!    16-byte alignment of the slice start, so alignment bugs that would
//!    fault on real hardware panic in the sim.
//! 2. Integer loads/stores are generic over the element type
//!    (`_mm_loadu_si128(&src[x..])` with `src: &[i16]`), since Rust slices
//!    are typed where C pointers are freely cast.
//!
//! Every call records one micro-op with [`op_trace`], so running a kernel
//! under a `TraceGuard` measures its true instruction mix (the paper's
//! Section V analysis).
//!
//! On x86_64 hosts the companion test-suite checks each simulated intrinsic
//! against the genuine `core::arch::x86_64` instruction over random inputs.

#![allow(non_camel_case_types)]
#![warn(missing_docs)]
// Lane-indexed `for i in 0..N` loops intentionally mirror the per-lane
// pseudocode of the architecture reference manuals.
#![allow(clippy::needless_range_loop)]

pub mod arith;
pub mod compare;
pub mod convert;
pub mod load_store;
pub mod logical;
pub mod pack;
pub mod shift;
pub mod types;

pub use arith::*;
pub use compare::*;
pub use convert::*;
pub use load_store::*;
pub use logical::*;
pub use pack::*;
pub use shift::*;
pub use types::{__m128, __m128d, __m128i, MemElem};
