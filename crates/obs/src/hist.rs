//! Fixed-bucket log-scale histograms.
//!
//! Sixty-four power-of-two buckets cover the full `u64` range: bucket 0
//! holds the value 0, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]` (the
//! last bucket absorbs everything above). Recording is three relaxed
//! atomic RMWs plus two compare-loops for min/max — cheap enough for
//! per-band latencies, coarse enough that the storage is a fixed 70
//! words per thread with no allocation ever.
//!
//! Percentiles are bucket-resolution by construction: a reported p95 is
//! the upper bound of the bucket containing the 95th-percentile sample,
//! clamped to the exact observed maximum (so single-sample histograms
//! report the sample itself). Exact `min`/`max`/`sum` are tracked on
//! the side, making `mean` exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0 plus one bucket per power of two.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, otherwise its bit length (clamped
/// to the last bucket).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive `(low, high)` value bounds of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        _ if b >= BUCKETS - 1 => (1 << (BUCKETS - 2), u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// Lock-free per-thread histogram storage.
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Aggregated histogram data, as it appears in a
/// [`Snapshot`](crate::Snapshot).
#[derive(Debug, Clone)]
pub struct HistData {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact minimum sample (0 when empty).
    pub min: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistData {
    pub(crate) fn merge_from(&mut self, src: &AtomicHistogram) {
        let src_count = src.count.load(Ordering::Relaxed);
        if src_count == 0 {
            return;
        }
        for (dst, s) in self.buckets.iter_mut().zip(&src.buckets) {
            *dst += s.load(Ordering::Relaxed);
        }
        let src_min = src.min.load(Ordering::Relaxed);
        self.min = if self.count == 0 {
            src_min
        } else {
            self.min.min(src_min)
        };
        self.max = self.max.max(src.max.load(Ordering::Relaxed));
        self.count += src_count;
        self.sum += src.sum.load(Ordering::Relaxed);
    }

    /// Exact arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution percentile (`p` in 0..=100): the upper bound of
    /// the bucket holding the nearest-rank sample, clamped to the exact
    /// observed `[min, max]`. Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(b).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`percentile(50)`).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_from(samples: &[u64]) -> HistData {
        let h = AtomicHistogram::new();
        for &s in samples {
            h.record(s);
        }
        let mut d = HistData::default();
        d.merge_from(&h);
        d
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for b in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(lo, expected_lo, "bucket {b}");
            assert!(hi >= lo);
            // Every bucket holds exactly the values whose index maps back.
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
            if b < BUCKETS - 1 {
                expected_lo = hi + 1;
            }
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let d = data_from(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.median(), 0);
        assert_eq!(d.percentile(95.0), 0);
        assert_eq!(d.min, 0);
        assert_eq!(d.max, 0);
    }

    #[test]
    fn single_sample_reports_itself_everywhere() {
        let d = data_from(&[1000]);
        assert_eq!(d.count, 1);
        assert_eq!(d.mean(), 1000.0);
        assert_eq!(d.min, 1000);
        assert_eq!(d.max, 1000);
        // Bucket upper bound (1023) clamps to the exact observed max.
        assert_eq!(d.median(), 1000);
        assert_eq!(d.percentile(0.0), 1000);
        assert_eq!(d.percentile(100.0), 1000);
    }

    #[test]
    fn percentiles_walk_buckets_in_order() {
        // 90 samples in bucket 4 (value 10), 10 in bucket 11 (value 2000).
        let mut samples = vec![10u64; 90];
        samples.extend([2000u64; 10]);
        let d = data_from(&samples);
        assert_eq!(d.count, 100);
        // p50 and p90 land in the low bucket: upper bound 15, min-clamped.
        assert_eq!(d.median(), 15);
        assert_eq!(d.percentile(90.0), 15);
        // p95 lands in the high bucket: upper bound 2047 clamps to max.
        assert_eq!(d.percentile(95.0), 2000);
        assert_eq!(d.percentile(100.0), 2000);
        assert_eq!(d.min, 10);
        assert_eq!(d.max, 2000);
        assert_eq!(d.mean(), (90.0 * 10.0 + 10.0 * 2000.0) / 100.0);
    }

    #[test]
    fn zero_valued_samples_occupy_bucket_zero() {
        let d = data_from(&[0, 0, 0, 8]);
        assert_eq!(d.buckets[0], 3);
        assert_eq!(d.buckets[4], 1);
        assert_eq!(d.median(), 0);
        assert_eq!(d.percentile(100.0), 8);
    }

    #[test]
    fn merge_accumulates_across_threads_worth_of_data() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(5);
        a.record(100);
        b.record(1);
        let mut d = HistData::default();
        d.merge_from(&a);
        d.merge_from(&b);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 106);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 100);
        // Merging an empty histogram changes nothing.
        let empty = AtomicHistogram::new();
        let before = d.clone();
        d.merge_from(&empty);
        assert_eq!(d.count, before.count);
        assert_eq!(d.min, before.min);
    }
}
