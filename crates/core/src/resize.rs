//! Extension kernel — 2× image downsampling (experiment A6).
//!
//! The paper's related work (Pulli et al.) reports a 7.6× NEON speed-up for
//! image resizing; this module adds the 2:1 case to the benchmark family.
//! It is also the showcase for NEON's *structured loads* (`vld2`), the
//! "load/stores between arrays of vectors" feature the paper singles out in
//! its category-(a) taxonomy: NEON de-interleaves even/odd pixels in one
//! instruction where SSE2 needs mask/shift/pack.
//!
//! # Semantics
//!
//! Each output pixel is the **two-stage rounding average** of its 2×2
//! source block:
//!
//! `out = rhalf(rhalf(a, b), rhalf(c, d))` with `rhalf(x, y) = (x+y+1)>>1`
//!
//! — i.e. exactly the `pavgb`/`vrhadd` cascade the SIMD loops compute. This
//! differs from the exact `(a+b+c+d+2)>>2` by at most 1 count (biased up);
//! the scalar reference implements the same cascade so all backends stay
//! bit-identical.

use crate::dispatch::Engine;
use pixelimage::Image;

#[inline]
fn rhalf(a: u8, b: u8) -> u8 {
    (((a as u16) + (b as u16) + 1) >> 1) as u8
}

/// Downsamples `src` by 2× in each axis into `dst`
/// (`dst` must be `(src.width()/2, src.height()/2)`; odd trailing
/// rows/columns of `src` are dropped, as in OpenCV's `pyrDown` fast path).
pub fn downsample2x(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    assert_eq!(dst.width(), src.width() / 2, "dst width must be src/2");
    assert_eq!(dst.height(), src.height() / 2, "dst height must be src/2");
    for y in 0..dst.height() {
        let top = src.row(2 * y);
        let bottom = src.row(2 * y + 1);
        downsample_row(top, bottom, dst.row_mut(y), engine);
    }
}

/// Downsamples one output row from its two source rows.
pub fn downsample_row(top: &[u8], bottom: &[u8], dst: &mut [u8], engine: Engine) {
    match engine {
        Engine::Scalar => downsample_row_scalar(top, bottom, dst),
        Engine::Autovec => downsample_row_autovec(top, bottom, dst),
        Engine::Sse2Sim => downsample_row_sse2_sim(top, bottom, dst),
        Engine::NeonSim => downsample_row_neon_sim(top, bottom, dst),
        Engine::Native => downsample_row_native(top, bottom, dst),
    }
}

/// Reference cascade.
pub fn downsample_row_scalar(top: &[u8], bottom: &[u8], dst: &mut [u8]) {
    assert!(top.len() >= 2 * dst.len() && bottom.len() >= 2 * dst.len());
    for x in 0..dst.len() {
        let h_top = rhalf(top[2 * x], top[2 * x + 1]);
        let h_bot = rhalf(bottom[2 * x], bottom[2 * x + 1]);
        dst[x] = rhalf(h_top, h_bot);
    }
}

/// Chunked formulation for the auto-vectorizer.
pub fn downsample_row_autovec(top: &[u8], bottom: &[u8], dst: &mut [u8]) {
    assert!(top.len() >= 2 * dst.len() && bottom.len() >= 2 * dst.len());
    let n = dst.len();
    for ((d, t), b) in dst
        .iter_mut()
        .zip(top[..2 * n].chunks_exact(2))
        .zip(bottom[..2 * n].chunks_exact(2))
    {
        *d = rhalf(rhalf(t[0], t[1]), rhalf(b[0], b[1]));
    }
}

/// SSE2: even/odd split via mask + shift + `packus`, then `pavgb` cascade.
pub fn downsample_row_sse2_sim(top: &[u8], bottom: &[u8], dst: &mut [u8]) {
    use sse_sim::*;
    assert!(top.len() >= 2 * dst.len() && bottom.len() >= 2 * dst.len());
    let n = dst.len();
    let byte_mask = _mm_set1_epi16(0x00FF);
    let mut x = 0;
    while x + 16 <= n {
        let havg = |row: &[u8]| {
            let v0 = _mm_loadu_si128(&row[2 * x..]);
            let v1 = _mm_loadu_si128(&row[2 * x + 16..]);
            let even = _mm_packus_epi16(_mm_and_si128(v0, byte_mask), _mm_and_si128(v1, byte_mask));
            let odd = _mm_packus_epi16(_mm_srli_epi16::<8>(v0), _mm_srli_epi16::<8>(v1));
            _mm_avg_epu8(even, odd)
        };
        let out = _mm_avg_epu8(havg(top), havg(bottom));
        _mm_storeu_si128(&mut dst[x..], out);
        x += 16;
    }
    downsample_row_scalar(&top[2 * x..], &bottom[2 * x..], &mut dst[x..]);
}

/// NEON: `vld2q_u8` de-interleaves even/odd in one structured load, then
/// the `vrhadd` cascade.
pub fn downsample_row_neon_sim(top: &[u8], bottom: &[u8], dst: &mut [u8]) {
    use neon_sim::*;
    assert!(top.len() >= 2 * dst.len() && bottom.len() >= 2 * dst.len());
    let n = dst.len();
    let mut x = 0;
    while x + 16 <= n {
        let t = vld2q_u8(&top[2 * x..]);
        let b = vld2q_u8(&bottom[2 * x..]);
        let h_top = vrhaddq_u8(t.val[0], t.val[1]);
        let h_bot = vrhaddq_u8(b.val[0], b.val[1]);
        vst1q_u8(&mut dst[x..], vrhaddq_u8(h_top, h_bot));
        x += 16;
    }
    downsample_row_scalar(&top[2 * x..], &bottom[2 * x..], &mut dst[x..]);
}

/// Downsampling on the host's real SIMD unit.
pub fn downsample_row_native(top: &[u8], bottom: &[u8], dst: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        assert!(top.len() >= 2 * dst.len() && bottom.len() >= 2 * dst.len());
        let n = dst.len();
        let mut x = 0;
        // SAFETY: the two loads per row read row[2x .. 2x+32] which is
        // within 2n (x + 16 <= n); the store writes dst[x..x+16] <= n.
        unsafe {
            let byte_mask = _mm_set1_epi16(0x00FF);
            while x + 16 <= n {
                let havg = |row: &[u8]| {
                    let v0 = _mm_loadu_si128(row.as_ptr().add(2 * x) as *const __m128i);
                    let v1 = _mm_loadu_si128(row.as_ptr().add(2 * x + 16) as *const __m128i);
                    let even = _mm_packus_epi16(
                        _mm_and_si128(v0, byte_mask),
                        _mm_and_si128(v1, byte_mask),
                    );
                    let odd = _mm_packus_epi16(_mm_srli_epi16::<8>(v0), _mm_srli_epi16::<8>(v1));
                    _mm_avg_epu8(even, odd)
                };
                let out = _mm_avg_epu8(havg(top), havg(bottom));
                _mm_storeu_si128(dst.as_mut_ptr().add(x) as *mut __m128i, out);
                x += 16;
            }
        }
        downsample_row_scalar(&top[2 * x..], &bottom[2 * x..], &mut dst[x..]);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        downsample_row_autovec(top, bottom, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pixelimage::synthetic_image;

    #[test]
    fn constant_image_stays_constant() {
        let src = Image::from_fn(64, 32, |_, _| 173u8);
        let mut dst = Image::new(32, 16);
        for engine in Engine::ALL {
            downsample2x(&src, &mut dst, engine);
            assert!(dst.all_pixels(|p| p == 173), "{engine:?}");
        }
    }

    #[test]
    fn all_engines_match_scalar() {
        let src = synthetic_image(130, 66, 15);
        let mut reference = Image::new(65, 33);
        downsample2x(&src, &mut reference, Engine::Scalar);
        for engine in [
            Engine::Autovec,
            Engine::Sse2Sim,
            Engine::NeonSim,
            Engine::Native,
        ] {
            let mut out = Image::new(65, 33);
            downsample2x(&src, &mut out, engine);
            assert!(out.pixels_eq(&reference), "{engine:?}");
        }
    }

    #[test]
    fn cascade_semantics_exact_values() {
        // One 2x2 block per case: [a b; c d] -> rhalf(rhalf(a,b), rhalf(c,d)).
        let cases: &[([u8; 4], u8)] = &[
            ([0, 0, 0, 0], 0),
            ([255, 255, 255, 255], 255),
            ([0, 1, 0, 0], 1), // two-stage rounding bias: exact avg is 0
            ([0, 0, 1, 1], 1),
            ([10, 20, 30, 40], rhalf(rhalf(10, 20), rhalf(30, 40))),
            ([255, 0, 0, 0], rhalf(128, 0)),
        ];
        for &(block, expect) in cases {
            let src = Image::from_fn(2, 2, |x, y| block[y * 2 + x]);
            let mut dst = Image::new(1, 1);
            for engine in Engine::ALL {
                downsample2x(&src, &mut dst, engine);
                assert_eq!(dst.get(0, 0), expect, "{block:?} {engine:?}");
            }
        }
    }

    #[test]
    fn result_is_within_one_of_exact_average() {
        let src = synthetic_image(128, 64, 21);
        let mut dst = Image::new(64, 32);
        downsample2x(&src, &mut dst, Engine::Native);
        for y in 0..32 {
            for x in 0..64 {
                let exact = (src.get(2 * x, 2 * y) as u32
                    + src.get(2 * x + 1, 2 * y) as u32
                    + src.get(2 * x, 2 * y + 1) as u32
                    + src.get(2 * x + 1, 2 * y + 1) as u32
                    + 2)
                    >> 2;
                let got = dst.get(x, y) as u32;
                assert!(
                    got.abs_diff(exact) <= 1,
                    "({x},{y}): cascade {got} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn odd_source_dimensions_drop_trailing() {
        let src = synthetic_image(65, 33, 8);
        let mut dst = Image::new(32, 16);
        for engine in Engine::ALL {
            let mut reference = Image::new(32, 16);
            downsample2x(&src, &mut reference, Engine::Scalar);
            downsample2x(&src, &mut dst, engine);
            assert!(dst.pixels_eq(&reference), "{engine:?}");
        }
    }

    #[test]
    fn widths_around_vector_boundary() {
        for w_out in [1usize, 15, 16, 17, 31, 32, 33] {
            let src = synthetic_image(2 * w_out, 4, 9);
            let mut reference = Image::new(w_out, 2);
            downsample2x(&src, &mut reference, Engine::Scalar);
            for engine in [Engine::Sse2Sim, Engine::NeonSim, Engine::Native] {
                let mut out = Image::new(w_out, 2);
                downsample2x(&src, &mut out, engine);
                assert!(out.pixels_eq(&reference), "{engine:?} w={w_out}");
            }
        }
    }

    #[test]
    fn repeated_downsampling_converges() {
        // Pyramid: 128 -> 64 -> 32 -> 16; mean should stay roughly stable.
        let mut level = synthetic_image(128, 128, 33);
        let mean0 = pixelimage::metrics::mean_u8(&level);
        for _ in 0..3 {
            let (w, h) = (level.width() / 2, level.height() / 2);
            let mut next = Image::new(w, h);
            downsample2x(&level, &mut next, Engine::Native);
            level = next;
        }
        let mean3 = pixelimage::metrics::mean_u8(&level);
        assert!(
            (mean0 - mean3).abs() < 4.0,
            "pyramid drifted: {mean0} -> {mean3}"
        );
    }
}
