//! Deterministic photo-like synthetic images.
//!
//! The paper cycles through five different photographs per resolution "to
//! minimize caching effects"; the photographs themselves are not published.
//! This module generates stand-ins with the statistical features that matter
//! to the benchmarked kernels: smooth large-scale illumination (so the
//! Gaussian/Sobel filters see realistic gradients), hard-edged occluding
//! shapes (so edge detection has edges to find), and per-pixel sensor noise
//! (so the data is incompressible and threshold masks are irregular).

use crate::image::{Image, Resolution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value-noise lattice resolution (cells across the image's short side).
const NOISE_CELLS: usize = 16;

struct ValueNoise {
    lattice: Vec<f32>,
    cols: usize,
    rows: usize,
    cell_w: f32,
    cell_h: f32,
}

impl ValueNoise {
    fn new(width: usize, height: usize, rng: &mut StdRng) -> Self {
        let cols = NOISE_CELLS + 2;
        let rows = (NOISE_CELLS * height / width.max(1)).max(2) + 2;
        let lattice = (0..cols * rows).map(|_| rng.gen_range(0.0..1.0)).collect();
        ValueNoise {
            lattice,
            cols,
            rows,
            cell_w: width as f32 / (cols - 1) as f32,
            cell_h: height as f32 / (rows - 1) as f32,
        }
    }

    fn at(&self, x: usize, y: usize) -> f32 {
        let fx = x as f32 / self.cell_w;
        let fy = y as f32 / self.cell_h;
        let cx = (fx as usize).min(self.cols - 2);
        let cy = (fy as usize).min(self.rows - 2);
        let tx = fx - cx as f32;
        let ty = fy - cy as f32;
        // Smoothstep for C1 continuity.
        let sx = tx * tx * (3.0 - 2.0 * tx);
        let sy = ty * ty * (3.0 - 2.0 * ty);
        let v00 = self.lattice[cy * self.cols + cx];
        let v10 = self.lattice[cy * self.cols + cx + 1];
        let v01 = self.lattice[(cy + 1) * self.cols + cx];
        let v11 = self.lattice[(cy + 1) * self.cols + cx + 1];
        let top = v00 + (v10 - v00) * sx;
        let bottom = v01 + (v11 - v01) * sx;
        top + (bottom - top) * sy
    }
}

#[derive(Clone, Copy)]
enum Shape {
    Disc {
        cx: f32,
        cy: f32,
        r: f32,
        level: f32,
    },
    Rect {
        x0: f32,
        y0: f32,
        x1: f32,
        y1: f32,
        level: f32,
    },
}

impl Shape {
    fn sample(&self, x: f32, y: f32) -> Option<f32> {
        match *self {
            Shape::Disc { cx, cy, r, level } => {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                (d2 <= r * r).then_some(level)
            }
            Shape::Rect {
                x0,
                y0,
                x1,
                y1,
                level,
            } => (x >= x0 && x < x1 && y >= y0 && y < y1).then_some(level),
        }
    }
}

/// Generates a photo-like grayscale image. The same `(width, height, seed)`
/// always produces the same image.
pub fn synthetic_image(width: usize, height: usize, seed: u64) -> Image<u8> {
    let f = synthetic_image_f32(width, height, seed);
    f.map(|v| v.clamp(0.0, 255.0) as u8)
}

/// The `f32` master from which [`synthetic_image`] is quantised. Values are
/// in `[0, 255]` — kernels that need floating-point input (benchmark 1)
/// consume this directly, optionally rescaled.
pub fn synthetic_image_f32(width: usize, height: usize, seed: u64) -> Image<f32> {
    assert!(width > 0 && height > 0, "image must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5397_1D06_3A11_C0DE);
    let noise = ValueNoise::new(width, height, &mut rng);

    // Illumination: a tilted plane plus a bright spot, like a lit scene.
    let tilt_x = rng.gen_range(-40.0f32..40.0);
    let tilt_y = rng.gen_range(-40.0f32..40.0);
    let base = rng.gen_range(90.0f32..150.0);
    let spot_x = rng.gen_range(0.2f32..0.8) * width as f32;
    let spot_y = rng.gen_range(0.2f32..0.8) * height as f32;
    let spot_r = 0.4 * width.max(height) as f32;
    let spot_gain = rng.gen_range(30.0f32..70.0);

    // Occluders.
    let num_shapes = rng.gen_range(6..12);
    let shapes: Vec<Shape> = (0..num_shapes)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Shape::Disc {
                    cx: rng.gen_range(0.0..width as f32),
                    cy: rng.gen_range(0.0..height as f32),
                    r: rng.gen_range(0.03..0.2) * width as f32,
                    level: rng.gen_range(-80.0..80.0),
                }
            } else {
                let x0 = rng.gen_range(0.0..width as f32 * 0.9);
                let y0 = rng.gen_range(0.0..height as f32 * 0.9);
                Shape::Rect {
                    x0,
                    y0,
                    x1: x0 + rng.gen_range(0.05..0.3) * width as f32,
                    y1: y0 + rng.gen_range(0.05..0.3) * height as f32,
                    level: rng.gen_range(-80.0..80.0),
                }
            }
        })
        .collect();

    // Cheap per-pixel noise: xorshift on pixel coordinates mixed with the
    // seed, avoiding an RNG call per pixel (8 Mpx images).
    let noise_seed = rng.gen::<u64>() | 1;
    let pixel_noise = move |x: usize, y: usize| -> f32 {
        let mut h = (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(noise_seed);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        ((h & 0xFFFF) as f32 / 65535.0 - 0.5) * 12.0
    };

    let inv_spot_r2 = 1.0 / (spot_r * spot_r);
    Image::from_fn(width, height, |x, y| {
        let xf = x as f32;
        let yf = y as f32;
        let mut v = base + tilt_x * (xf / width as f32 - 0.5) + tilt_y * (yf / height as f32 - 0.5);
        let dx = xf - spot_x;
        let dy = yf - spot_y;
        let d2 = (dx * dx + dy * dy) * inv_spot_r2;
        v += spot_gain * (-d2).exp();
        v += 35.0 * (noise.at(x, y) - 0.5);
        for shape in &shapes {
            if let Some(level) = shape.sample(xf, yf) {
                v += level;
            }
        }
        v += pixel_noise(x, y);
        v.clamp(0.0, 255.0)
    })
}

/// The paper's "5 different images of each resolution".
pub fn synthetic_suite(res: Resolution, count: usize) -> Vec<Image<u8>> {
    let (w, h) = res.dims();
    (0..count)
        .map(|i| synthetic_image(w, h, 0xBEEF + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_image(64, 48, 7);
        let b = synthetic_image(64, 48, 7);
        assert!(a.pixels_eq(&b));
        let c = synthetic_image(64, 48, 8);
        assert!(!a.pixels_eq(&c));
    }

    #[test]
    fn uses_wide_dynamic_range() {
        let img = synthetic_image(128, 96, 3);
        let min = img.iter_pixels().min().unwrap();
        let max = img.iter_pixels().max().unwrap();
        assert!(max - min > 100, "range {min}..{max} too narrow");
    }

    #[test]
    fn has_edges_and_noise() {
        // Horizontal gradient magnitude should be non-zero somewhere (edges)
        // and small-but-nonzero in most places (noise).
        let img = synthetic_image(128, 96, 11);
        let mut nonzero = 0usize;
        let mut strong = 0usize;
        for y in 0..img.height() {
            let row = img.row(y);
            for x in 1..img.width() {
                let d = (row[x] as i32 - row[x - 1] as i32).abs();
                if d > 0 {
                    nonzero += 1;
                }
                if d > 40 {
                    strong += 1;
                }
            }
        }
        let total = (img.width() - 1) * img.height();
        assert!(nonzero > total / 2, "too smooth: {nonzero}/{total}");
        assert!(strong > 0, "no strong edges");
    }

    #[test]
    fn threshold_splits_nontrivially() {
        // A 128 threshold should leave both classes populated — needed for
        // the threshold benchmark to exercise both branches.
        let img = synthetic_image(128, 96, 5);
        let above = img.iter_pixels().filter(|&p| p > 128).count();
        let total = img.pixels();
        assert!(above > total / 20, "above = {above}");
        assert!(above < total * 19 / 20, "above = {above}");
    }

    #[test]
    fn f32_master_matches_quantised() {
        let f = synthetic_image_f32(32, 32, 9);
        let q = synthetic_image(32, 32, 9);
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(q.get(x, y), f.get(x, y).clamp(0.0, 255.0) as u8);
            }
        }
    }

    #[test]
    fn suite_produces_distinct_images() {
        let suite = synthetic_suite(Resolution::Vga, 5);
        assert_eq!(suite.len(), 5);
        for i in 0..5 {
            assert_eq!(suite[i].width(), 640);
            for j in (i + 1)..5 {
                assert!(!suite[i].pixels_eq(&suite[j]), "{i} == {j}");
            }
        }
    }
}
