//! Set-associative LRU cache simulator.
//!
//! Used to validate the analytic traffic assumptions in
//! [`crate::workload::dram_bytes_per_pixel`] — specifically, that a
//! separable filter's `ksize`-row vertical working set is captured by the
//! last-level cache at the paper's image widths — and available for cache
//! ablation experiments.

/// A single-level set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line size in bytes (power of two).
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `tags[set][way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_kb` KiB with the given associativity and
    /// line size. `size_kb * 1024` must be divisible by `ways *
    /// line_bytes`.
    pub fn new(size_kb: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(ways >= 1);
        let total = size_kb * 1024;
        assert_eq!(
            total % (ways * line_bytes),
            0,
            "size not divisible into {ways} ways of {line_bytes}B lines"
        );
        let sets = total / (ways * line_bytes);
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Accesses one byte address; returns `true` on hit. Misses allocate
    /// (write-allocate, no distinction between reads and writes — adequate
    /// for traffic estimation).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            if self.tags[base + way] == u64::MAX {
                victim = way;
                break;
            }
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accesses a byte range (e.g. one vector load), counting each line
    /// once.
    pub fn access_range(&mut self, addr: u64, len: usize) {
        let first = addr / self.line_bytes as u64;
        let last = (addr + len as u64 - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.access(line * self.line_bytes as u64);
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses (0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Bytes fetched from the next level (misses × line size).
    pub fn dram_bytes(&self) -> u64 {
        self.misses * self.line_bytes as u64
    }

    /// Resets statistics (contents retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Simulates the vertical pass of a `ksize`-tap separable filter over a
/// `width × height` image of `elem` byte elements through `cache`,
/// returning DRAM bytes per output pixel. This is the experiment behind
/// the analytic row-capture rule in `workload`.
pub fn filter_vertical_traffic(
    cache: &mut Cache,
    width: usize,
    height: usize,
    elem: usize,
    ksize: usize,
) -> f64 {
    cache.reset_stats();
    let radius = ksize / 2;
    let row_bytes = (width * elem) as u64;
    for y in 0..height {
        for k in 0..ksize {
            let yy = (y + k).saturating_sub(radius).min(height - 1);
            // Touch the tap row sequentially.
            let base = yy as u64 * row_bytes;
            let mut x = 0;
            while x < width * elem {
                cache.access(base + x as u64);
                x += cache.line_bytes;
            }
        }
    }
    cache.dram_bytes() as f64 / (width * height) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_geometry() {
        let c = Cache::new(32, 8, 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(4, 2, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, map three conflicting lines into one set.
        let mut c = Cache::new(4, 2, 64);
        let stride = (c.sets() * 64) as u64; // same set, different tags
        assert!(!c.access(0));
        assert!(!c.access(stride));
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(2 * stride)); // evicts `stride` (LRU)
        assert!(c.access(0)); // still resident
        assert!(!c.access(stride)); // was evicted
    }

    #[test]
    fn streaming_through_small_cache_misses_every_line() {
        let mut c = Cache::new(4, 4, 64);
        let lines = 1000;
        for i in 0..lines {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), lines);
        assert_eq!(c.miss_ratio(), 1.0);
    }

    #[test]
    fn access_range_counts_straddling_lines() {
        let mut c = Cache::new(4, 4, 64);
        c.access_range(60, 8); // straddles two lines
        assert_eq!(c.misses() + c.hits(), 2);
    }

    #[test]
    fn filter_rows_captured_by_big_cache() {
        // 7 rows of a 640-wide u16 image = 8.75 KB; a 256 KB cache keeps
        // them resident, so each mid row is fetched once: ~2 bytes/pixel.
        let mut cache = Cache::new(256, 8, 64);
        let traffic = filter_vertical_traffic(&mut cache, 640, 64, 2, 7);
        assert!(
            traffic < 2.6,
            "expected near-2 B/px with row reuse, got {traffic}"
        );
    }

    #[test]
    fn filter_rows_thrash_tiny_cache() {
        // The same pass through a 4 KB cache re-fetches tap rows: ~7x the
        // traffic.
        let mut cache = Cache::new(4, 4, 64);
        let traffic = filter_vertical_traffic(&mut cache, 640, 64, 2, 7);
        assert!(traffic > 10.0, "expected thrashing traffic, got {traffic}");
    }
}

/// A two-level cache hierarchy (L1 backed by L2), modelling the Table I
/// platforms' structure (none of them has an L3 except the Sandy/Ivy Bridge
/// laptops, where `l2` here plays the last-level role).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l1_hits: u64,
    l2_hits: u64,
    dram_accesses: u64,
}

impl Hierarchy {
    /// Builds a hierarchy from (size KiB, ways) pairs with a shared line
    /// size.
    pub fn new(l1_kb: usize, l1_ways: usize, l2_kb: usize, l2_ways: usize, line: usize) -> Self {
        assert!(l2_kb >= l1_kb, "L2 must be at least as large as L1");
        Hierarchy {
            l1: Cache::new(l1_kb, l1_ways, line),
            l2: Cache::new(l2_kb, l2_ways, line),
            l1_hits: 0,
            l2_hits: 0,
            dram_accesses: 0,
        }
    }

    /// Accesses one byte address; returns the level that served it
    /// (1, 2, or 3 = DRAM).
    pub fn access(&mut self, addr: u64) -> u8 {
        if self.l1.access(addr) {
            self.l1_hits += 1;
            1
        } else if self.l2.access(addr) {
            self.l2_hits += 1;
            2
        } else {
            self.dram_accesses += 1;
            3
        }
    }

    /// L1 hit count.
    pub fn l1_hits(&self) -> u64 {
        self.l1_hits
    }

    /// L2 hit count (L1 misses served by L2).
    pub fn l2_hits(&self) -> u64 {
        self.l2_hits
    }

    /// Accesses that went all the way to DRAM.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// DRAM bytes fetched (misses × L2 line size).
    pub fn dram_bytes(&self) -> u64 {
        self.l2.dram_bytes()
    }

    /// Average memory access time in cycles given per-level latencies.
    pub fn amat(&self, l1_cycles: f64, l2_cycles: f64, dram_cycles: f64) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.dram_accesses;
        if total == 0 {
            return 0.0;
        }
        (self.l1_hits as f64 * l1_cycles
            + self.l2_hits as f64 * l2_cycles
            + self.dram_accesses as f64 * dram_cycles)
            / total as f64
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;

    #[test]
    fn small_working_set_lives_in_l1() {
        let mut h = Hierarchy::new(32, 8, 1024, 8, 64);
        // 16 KB working set, touched 10 times.
        for _ in 0..10 {
            let mut addr = 0u64;
            while addr < 16 * 1024 {
                h.access(addr);
                addr += 64;
            }
        }
        // After the first pass, everything hits in L1.
        assert_eq!(h.dram_accesses(), 256);
        assert!(h.l1_hits() >= 9 * 256);
    }

    #[test]
    fn medium_working_set_lives_in_l2() {
        let mut h = Hierarchy::new(4, 4, 512, 8, 64);
        // 128 KB working set: too big for the 4 KB L1, fits the 512 KB L2.
        let lines = (128 * 1024) / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        assert_eq!(h.dram_accesses(), lines); // compulsory only
        assert!(
            h.l2_hits() >= 3 * lines - lines / 10,
            "l2 hits {}",
            h.l2_hits()
        );
    }

    #[test]
    fn huge_stream_goes_to_dram() {
        let mut h = Hierarchy::new(32, 8, 256, 8, 64);
        // 8 MB stream, each line once — no reuse at all.
        let lines = (8 * 1024 * 1024) / 64;
        for i in 0..lines {
            h.access(i * 64);
        }
        assert_eq!(h.dram_accesses(), lines);
        assert_eq!(h.l1_hits(), 0);
        assert_eq!(h.l2_hits(), 0);
    }

    #[test]
    fn amat_weights_levels() {
        let mut h = Hierarchy::new(32, 8, 1024, 8, 64);
        h.access(0); // DRAM
        h.access(0); // L1
        h.access(0); // L1
        h.access(0); // L1
        let amat = h.amat(1.0, 10.0, 100.0);
        assert!((amat - (3.0 * 1.0 + 100.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "L2 must be at least as large")]
    fn inverted_hierarchy_rejected() {
        let _ = Hierarchy::new(1024, 8, 32, 8, 64);
    }
}
