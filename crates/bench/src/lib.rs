//! Shared helpers for the Criterion benchmark harness.
//!
//! One bench target exists per paper artifact (see DESIGN.md's experiment
//! index): `convert` (Table II / Figure 2), `threshold` (Figure 3),
//! `gaussian` (Figure 4), `sobel` (Figure 5), `edge` (Figure 6), `table3`
//! (Table III), plus `ops_per_pixel` (Section V), `ablations` (A1/A2) and
//! `parallel_scaling` (A3).

use pixelimage::{synthetic_image, Image, Resolution};
use simdbench_core::Engine;

/// Engines measured by the wall-clock benches. The simulated-ISA engines
/// are interpreters — they are benchmarked separately (and on small images)
/// by the `ablations` target.
pub const TIMED_ENGINES: [Engine; 3] = [Engine::Scalar, Engine::Autovec, Engine::Native];

/// The image sizes the figure benches sweep. VGA and 5 Mpx bracket the
/// paper's range while keeping `cargo bench` wall time reasonable; pass
/// `--features` nothing — edit here for the full four-point sweep.
pub fn bench_resolutions() -> Vec<Resolution> {
    vec![Resolution::Vga, Resolution::Mp5]
}

/// Deterministic grayscale input for a resolution.
pub fn bench_image(res: Resolution) -> Image<u8> {
    let (w, h) = res.dims();
    synthetic_image(w, h, 0xBE7C4)
}

/// Deterministic float input covering the full i16 range (exercises the
/// saturation paths the paper's benchmark 1 is about).
pub fn bench_image_f32(res: Resolution) -> Image<f32> {
    let gray = bench_image(res);
    pixelimage::convert::u8_to_f32(&gray, 257.0, -32768.0)
}

/// Throughput label in megapixels for a resolution.
pub fn mpx(res: Resolution) -> f64 {
    res.megapixels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_inputs_are_deterministic() {
        let a = bench_image(Resolution::Vga);
        let b = bench_image(Resolution::Vga);
        assert!(a.pixels_eq(&b));
    }

    #[test]
    fn float_input_spans_i16_range() {
        let f = bench_image_f32(Resolution::Vga);
        let max = f.iter_pixels().fold(f32::MIN, f32::max);
        let min = f.iter_pixels().fold(f32::MAX, f32::min);
        assert!(max > 10000.0);
        assert!(min < -10000.0);
    }
}
