//! The five OpenCV-derived benchmark kernels of the paper, each implemented
//! in multiple backends selected at run time (the `cv::setUseOptimized`
//! mechanism the paper toggles between its AUTO and HAND measurements):
//!
//! | Benchmark | Paper section | Module |
//! |---|---|---|
//! | 1. Float→short saturating conversion | III-A.1 | [`convert`] |
//! | 2. Binary image threshold | III-A.2 | [`threshold`] |
//! | 3. Gaussian blur (σ=1, separable) | III-A.3 | [`gaussian`] |
//! | 4. Sobel filter (separable 1-D pair) | III-A.4 | [`sobel`] |
//! | 5. Edge detection (Sobel + threshold) | III-A.5 | [`edge`] |
//!
//! Backends per kernel (see [`Engine`]):
//!
//! * `Scalar` — the original OpenCV-style element loop (the AUTO source).
//! * `Autovec` — the same computation restructured for compiler
//!   auto-vectorization (slice/chunk iteration, no per-element calls).
//! * `Sse2Sim` / `NeonSim` — the paper's hand-written intrinsic loops,
//!   executed through the simulated `sse-sim` / `neon-sim` surfaces
//!   (bit-exact, traceable with `op_trace`).
//! * `Native` — the same intrinsic loops compiled to real `core::arch`
//!   instructions where the host supports them (SSE2 on x86_64, NEON on
//!   aarch64); this is the backend the wall-clock benchmarks measure as
//!   HAND.
//!
//! All backends of a kernel produce bit-identical output; the integration
//! suite and property tests enforce this.

#![warn(missing_docs)]
// Kernel loops index pixels positionally (`dst[x] = f(src[x-1..x+1])`):
// the clamped-neighbourhood arithmetic reads clearer than iterator chains
// and matches the paper's listings.
#![allow(clippy::needless_range_loop)]

pub mod avx;
pub mod color;
pub mod convert;
pub mod dispatch;
pub mod edge;
pub mod error;
pub mod gaussian;
pub mod gaussian_f32;
pub mod kernelgen;
pub mod median;
pub mod parallel;
pub mod pipeline;
pub mod resize;
pub mod scratch;
pub mod sobel;
pub mod stream;
pub mod threshold;

pub use dispatch::{set_use_optimized, use_optimized, with_use_optimized, Engine};
pub use error::{KernelError, KernelResult};
pub use threshold::ThresholdType;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::convert::convert_f32_to_i16;
    pub use crate::dispatch::{set_use_optimized, use_optimized, with_use_optimized, Engine};
    pub use crate::edge::edge_detect;
    pub use crate::error::{KernelError, KernelResult};
    pub use crate::gaussian::gaussian_blur;
    pub use crate::pipeline::{
        fused_edge_detect, fused_gaussian_blur, fused_sobel, par_fused_edge_detect,
        par_fused_gaussian_blur, par_fused_sobel, BandPlan,
    };
    pub use crate::scratch::Scratch;
    pub use crate::sobel::{sobel, SobelDirection};
    pub use crate::stream::{
        FrameOutcome, FrameStatus, StreamConfig, StreamEngine, StreamError, StreamKernel,
    };
    pub use crate::threshold::{threshold_u8, ThresholdType};
    pub use pixelimage::{Image, Resolution};
}
