//! Edge detection, benchmark-style: runs the paper's benchmark 5 pipeline
//! at a chosen resolution with every backend, times them with the paper's
//! 5-images×N-cycles protocol, and reports the AUTO:HAND speed-up this host
//! achieves (the modern-LLVM counterpart of the paper's gcc 4.6 numbers).
//!
//! Run: `cargo run --release --example edge_detect [-- 1mpx|5mpx|8mpx]`

use simd_repro::harness::timing::{measure, HostConfig, WorkSet};
use simd_repro::image::bmp;
use simd_repro::kernels::prelude::*;
use simd_repro::platform::Kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "vga".into());
    let res = match arg.as_str() {
        "1mpx" => Resolution::Mp1,
        "5mpx" => Resolution::Mp5,
        "8mpx" => Resolution::Mp8,
        _ => Resolution::Vga,
    };
    println!("edge detection at {}\n", res.label());

    let config = HostConfig {
        images: 5,
        cycles: 5,
        warmup: 1,
    };
    let work = WorkSet::new(res, config.images);

    println!("{:<10} {:>12} {:>10}", "engine", "seconds", "vs scalar");
    let scalar = measure(Kernel::Edge, Engine::Scalar, &work, &config);
    for engine in Engine::ALL {
        let m = measure(Kernel::Edge, engine, &work, &config);
        println!(
            "{:<10} {:>12.6} {:>9.2}x",
            engine.label(),
            m.seconds,
            scalar.seconds / m.seconds
        );
    }

    // The paper's AUTO vs HAND comparison on this host.
    let auto = measure(Kernel::Edge, Engine::Autovec, &work, &config);
    let hand = measure(Kernel::Edge, Engine::Native, &work, &config);
    println!(
        "\nAUTO (rustc/LLVM autovec) vs HAND (native intrinsics): {:.2}x",
        auto.seconds / hand.seconds
    );
    println!("(the paper measured 1.1-2.6x for edge detection with gcc 4.6)");

    // Write the detected edges of the first image.
    let (w, h) = res.dims();
    let mut edges = Image::new(w, h);
    edge_detect(&work.gray[0], &mut edges, 96, Engine::Native);
    let out = std::env::temp_dir().join("simd-repro");
    std::fs::create_dir_all(&out)?;
    let path = out.join(format!("edges_{}.bmp", res.label()));
    std::fs::write(&path, bmp::encode_gray(&edges))?;
    println!("wrote {}", path.display());
    Ok(())
}
