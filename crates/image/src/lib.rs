//! Image container, BMP codec, synthetic camera images and quality metrics.
//!
//! This crate replaces the parts of OpenCV's `core` module that the paper's
//! harness depends on (the `cv::Mat` container and image file I/O), plus the
//! paper's test data: uncompressed bitmap photographs at the four mobile
//! camera resolutions (0.3, 1, 5 and 8 megapixels). Since the original five
//! photos per resolution are not published, [`synth`] generates
//! deterministic photo-like images (smooth illumination gradients, occluding
//! shapes, sensor noise) with the same sizes and the same
//! cycle-five-images-to-defeat-caching role.

#![warn(missing_docs)]

pub mod bmp;
pub mod convert;
pub mod image;
pub mod metrics;
pub mod synth;

pub use image::{Image, Resolution};
pub use synth::{synthetic_image, synthetic_image_f32, synthetic_suite};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resolutions() {
        assert_eq!(Resolution::Vga.dims(), (640, 480));
        assert_eq!(Resolution::Mp1.dims(), (1280, 960));
        assert_eq!(Resolution::Mp5.dims(), (2592, 1920));
        assert_eq!(Resolution::Mp8.dims(), (3264, 2448));
    }

    #[test]
    fn megapixel_counts_match_paper() {
        assert!((Resolution::Vga.megapixels() - 0.3).abs() < 0.02);
        assert!((Resolution::Mp1.megapixels() - 1.2).abs() < 0.05);
        assert!((Resolution::Mp5.megapixels() - 5.0).abs() < 0.05);
        assert!((Resolution::Mp8.megapixels() - 8.0).abs() < 0.05);
    }
}
