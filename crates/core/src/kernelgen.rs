//! Separable filter kernel generation (the `cv::getGaussianKernel`
//! equivalent), in Q8 fixed point for the 8-bit image paths.

/// A symmetric 1-D fixed-point filter kernel.
///
/// `weights` has `2*radius + 1` entries in Q8 (so a normalised kernel sums
/// to exactly 256); applying it twice (rows then columns) gives a total
/// scale of 2^16, removed by the filter epilogue's rounding shift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedKernel {
    /// Q8 weights, length `2*radius + 1`, each in `0..=256`.
    pub weights: Vec<i32>,
    /// Taps on each side of the centre.
    pub radius: usize,
}

impl FixedKernel {
    /// Number of taps.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True for an empty kernel (never produced by the constructors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sum of the weights (256 for normalised kernels).
    pub fn sum(&self) -> i32 {
        self.weights.iter().sum()
    }

    /// True when every weight fits in a `u8` — the precondition for the
    /// byte-widening SIMD multiply-accumulate paths.
    pub fn fits_u8(&self) -> bool {
        self.weights.iter().all(|&w| (0..=255).contains(&w))
    }
}

/// Builds a sampled, normalised Gaussian in Q8 fixed point.
///
/// `ksize` must be odd. Weights are rounded to Q8 and the residual
/// (from rounding) is folded into the centre tap so the sum is exactly 256 —
/// guaranteeing that blurring a constant image is the identity.
pub fn gaussian_kernel_q8(sigma: f64, ksize: usize) -> FixedKernel {
    let float = gaussian_kernel_f64(sigma, ksize);
    let radius = ksize / 2;
    let mut weights: Vec<i32> = float.iter().map(|w| (w * 256.0).round() as i32).collect();
    let correction = 256 - weights.iter().sum::<i32>();
    weights[radius] += correction;
    assert!(
        weights[radius] > 0,
        "kernel too flat for Q8 quantisation (sigma {sigma}, ksize {ksize})"
    );
    FixedKernel { weights, radius }
}

/// Sampled, normalised Gaussian as `f64` (the float-path kernel).
pub fn gaussian_kernel_f64(sigma: f64, ksize: usize) -> Vec<f64> {
    assert!(ksize % 2 == 1, "kernel size must be odd, got {ksize}");
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (ksize / 2) as isize;
    let inv2s2 = 1.0 / (2.0 * sigma * sigma);
    let raw: Vec<f64> = (-radius..=radius)
        .map(|x| (-((x * x) as f64) * inv2s2).exp())
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// The paper's Gaussian configuration: σ = 1. OpenCV derives the aperture
/// from sigma as `2*ceil(3σ)+1 = 7` for 8-bit images.
pub fn paper_gaussian_kernel() -> FixedKernel {
    gaussian_kernel_q8(1.0, 7)
}

/// The Sobel smoothing kernel `[1, 2, 1]` (already integer; not Q8).
pub const SOBEL_SMOOTH: [i16; 3] = [1, 2, 1];

/// The Sobel derivative kernel `[-1, 0, 1]`.
pub const SOBEL_DIFF: [i16; 3] = [-1, 0, 1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_kernel_is_normalised_and_symmetric() {
        for (sigma, ksize) in [(1.0, 7), (0.5, 3), (2.0, 13), (1.0, 5)] {
            let k = gaussian_kernel_f64(sigma, ksize);
            assert_eq!(k.len(), ksize);
            let sum: f64 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
            for i in 0..ksize / 2 {
                assert!((k[i] - k[ksize - 1 - i]).abs() < 1e-15);
            }
            // Centre is the max.
            let centre = k[ksize / 2];
            assert!(k.iter().all(|&w| w <= centre));
        }
    }

    #[test]
    fn q8_kernel_sums_to_256_exactly() {
        for (sigma, ksize) in [(1.0, 7), (0.8, 5), (1.5, 9), (2.0, 13)] {
            let k = gaussian_kernel_q8(sigma, ksize);
            assert_eq!(k.sum(), 256, "sigma {sigma} ksize {ksize}");
            assert_eq!(k.len(), ksize);
            assert_eq!(k.radius, ksize / 2);
        }
    }

    #[test]
    fn paper_kernel_shape() {
        let k = paper_gaussian_kernel();
        assert_eq!(k.len(), 7);
        assert_eq!(k.sum(), 256);
        assert!(k.fits_u8());
        // σ=1 7-tap Gaussian in Q8: symmetric, strongly peaked.
        assert_eq!(k.weights[0], k.weights[6]);
        assert_eq!(k.weights[1], k.weights[5]);
        assert_eq!(k.weights[2], k.weights[4]);
        assert!(
            k.weights[3] > 90 && k.weights[3] < 115,
            "centre {}",
            k.weights[3]
        );
        assert!(k.weights[0] >= 1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_ksize_rejected() {
        let _ = gaussian_kernel_f64(1.0, 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_sigma_rejected() {
        let _ = gaussian_kernel_f64(0.0, 7);
    }
}
