//! Pool self-healing under deterministic fault injection: worker death
//! and respawn, task-panic propagation feeding the circuit breaker,
//! degraded serial runs, the half-open probe, and the job watchdog's
//! inline help-drain.
//!
//! This is one test function (not several) because faultline, the
//! breaker, the watchdog and `obs` are all process-global and the
//! integration binary shares one worker pool.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One parallel sum over `0..n`; returns whether the job panicked and
/// the accumulated total (correct iff every index ran exactly once).
fn par_sum(pool: &rayon::ThreadPool, n: usize) -> (bool, usize) {
    let sum = AtomicUsize::new(0);
    let panicked = pool.install(|| {
        catch_unwind(AssertUnwindSafe(|| {
            (0..n).into_par_iter().for_each(|i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
        }))
        .is_err()
    });
    (panicked, sum.load(Ordering::Relaxed))
}

fn expected_sum(n: usize) -> usize {
    n * (n + 1) / 2
}

#[test]
fn pool_self_heals_under_injected_faults() {
    faultline::disarm_all();
    rayon::reset_circuit_breaker();
    rayon::set_job_watchdog(None);
    obs::set_enabled(true);
    obs::reset();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");

    // Warm-up: spawn the workers and establish the healthy complement.
    let (panicked, sum) = par_sum(&pool, 503);
    assert!(!panicked);
    assert_eq!(sum, expected_sum(503));
    let complement = rayon::pool_live_workers();
    assert!(complement >= 4, "complement = {complement}");

    // --- Phase 1: worker death and respawn -----------------------------
    // Every executed task kills its worker *after* settling the latch:
    // jobs must still complete with correct results, and the respawn
    // guard must restore the full complement once disarmed.
    faultline::arm("pool.worker", faultline::Action::Panic, 1.0, 0xD1E);
    for _ in 0..3 {
        let (panicked, sum) = par_sum(&pool, 257);
        assert!(!panicked, "worker death must not surface as a job panic");
        assert_eq!(sum, expected_sum(257), "worker death lost work");
    }
    faultline::disarm("pool.worker");
    let deadline = Instant::now() + Duration::from_secs(10);
    while rayon::pool_live_workers() < complement {
        assert!(
            Instant::now() < deadline,
            "pool stuck at {}/{} workers after respawn window",
            rayon::pool_live_workers(),
            complement
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = obs::snapshot();
    assert!(
        snap.counter(obs::Counter::PoolRespawns) >= 1,
        "worker deaths must be counted as respawns"
    );
    assert!(
        !rayon::circuit_breaker_open(),
        "clean jobs must not trip the breaker"
    );

    // --- Phase 2: task panics open the breaker; degraded serial runs ---
    faultline::arm("pool.task", faultline::Action::Panic, 1.0, 0xBAD);
    for round in 0..3 {
        let (panicked, _) = par_sum(&pool, 257);
        assert!(panicked, "round {round}: injected task panic must surface");
    }
    faultline::disarm("pool.task");
    assert!(
        rayon::circuit_breaker_open(),
        "three consecutive job failures must open the breaker"
    );
    // Open breaker: the cooldown window serves serial in-caller runs
    // that are degraded but correct.
    let degraded_before = obs::snapshot().counter(obs::Counter::PoolDegradedRuns);
    let (panicked, sum) = par_sum(&pool, 257);
    assert!(!panicked);
    assert_eq!(
        sum,
        expected_sum(257),
        "degraded serial run must be correct"
    );
    let degraded_after = obs::snapshot().counter(obs::Counter::PoolDegradedRuns);
    assert_eq!(
        degraded_after,
        degraded_before + 1,
        "open breaker must route the job through the degraded serial path"
    );
    // Exhaust the cooldown; the next job is the half-open parallel
    // probe, and its success closes the breaker.
    for _ in 0..16 {
        let (panicked, sum) = par_sum(&pool, 101);
        assert!(!panicked);
        assert_eq!(sum, expected_sum(101));
        if !rayon::circuit_breaker_open() {
            break;
        }
    }
    assert!(
        !rayon::circuit_breaker_open(),
        "successful half-open probe must close the breaker"
    );

    // --- Phase 3: watchdog help-drain under injected task delays -------
    // Every executed pool task stalls 30 ms; the submitter's 5 ms
    // watchdog trips and drains the still-queued tasks inline (without
    // evaluating pool.task), so the job both finishes and finishes
    // correctly.
    faultline::arm("pool.task", faultline::Action::Delay(30), 1.0, 0x51_0e);
    rayon::set_job_watchdog(Some(Duration::from_millis(5)));
    let (panicked, sum) = par_sum(&pool, 256);
    assert!(!panicked);
    assert_eq!(
        sum,
        expected_sum(256),
        "watchdog drain lost or repeated work"
    );
    rayon::set_job_watchdog(None);
    faultline::disarm_all();
    let snap = obs::snapshot();
    assert!(
        snap.counter(obs::Counter::PoolWatchdogTrips) >= 1,
        "a 5 ms deadline against 30 ms tasks must trip the watchdog"
    );

    // Leave the process-global state clean for any later telemetry use.
    rayon::reset_circuit_breaker();
    obs::reset();
    obs::set_enabled(false);
}
