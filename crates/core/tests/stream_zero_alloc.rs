//! Allocator-level proof of the stream engine's steady-state
//! zero-allocation contract: once the slot ring is warm, streaming
//! frames performs **no** heap allocations on any pool worker thread.
//! Frame workspaces come from the warmed per-slot arenas, outcome
//! capacity is reserved by the submitting thread, and the slot/queue
//! rings reuse their capacity.
//!
//! Only *worker-side* allocations are counted (the same carve-out as
//! `fused_zero_alloc.rs`): the submitting thread reserves outcome
//! capacity and the dispatcher thread boxes one closure per dispatched
//! frame — both are bounded dispatch bookkeeping, not per-pixel work.
//! Workers are identified with a `broadcast` that sets a
//! const-initialised thread-local flag.
//!
//! The whole file is a single `#[test]` because the counter is global
//! and the libtest harness runs sibling tests on other threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn should_count() -> bool {
    COUNTING.load(Ordering::Relaxed)
        // `try_with` so a (de)allocation during TLS teardown cannot panic.
        && IS_WORKER.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if should_count() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if should_count() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_stream_does_not_allocate_on_workers() {
    use pixelimage::synthetic_image;
    use simdbench_core::dispatch::Engine;
    use simdbench_core::stream::{summarize, StreamConfig, StreamEngine, StreamError};

    let (w, h) = (257, 53); // odd width: scalar tails + SIMD interior
    let src = Arc::new(synthetic_image(w, h, 163));
    let mut cfg = StreamConfig::new(w, h);
    cfg.engine = Engine::Native;
    cfg.slots = 2;
    cfg.queue_cap = 4;
    let engine = StreamEngine::new(cfg).expect("engine");

    // Mark every pool worker so the allocator can attribute allocations.
    // The broadcast also forces the pool up to the same complement the
    // engine's dispatcher will target, before any counting starts.
    rayon::broadcast(|_| IS_WORKER.with(|c| c.set(true)));

    let submit_closed_loop = |id: u64| loop {
        match engine.submit(id, Arc::clone(&src)) {
            Ok(()) => return,
            Err(StreamError::Saturated { .. }) => engine.wait_idle(),
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    };

    // Warm passes: every slot arena fills, every worker touches the
    // frame path once, deques reach steady capacity.
    for id in 0..8u64 {
        submit_closed_loop(id);
    }
    engine.wait_idle();
    let warm_allocs = engine.slot_fresh_allocs();

    // Steady state: zero worker-side allocations, enforced at the
    // global allocator, across a batch larger than the slot ring.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for id in 8..40u64 {
        submit_closed_loop(id);
    }
    engine.wait_idle();
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state streaming allocated {n} times on pool workers"
    );

    // The arena ledger agrees with the allocator.
    assert_eq!(engine.slot_fresh_allocs(), warm_allocs);
    assert_eq!(engine.outstanding_scratch_bytes(), 0);
    let outcomes = engine.finish();
    assert_eq!(summarize(&outcomes).completed, 40);
}
