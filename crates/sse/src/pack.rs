//! Pack, unpack and shuffle intrinsics (category *e*).

use crate::types::{__m128, __m128i, ps_to_bits};
use op_trace::{count, OpClass};
use simd_vector::{F32x4, I16x8, I32x4, U8x16};

/// `packssdw` — packs two `epi32` registers into one `epi16` register with
/// signed saturation. The final narrowing step of the paper's benchmark-1
/// SSE2 loop; identical to NEON's `vqmovn_s32` + `vcombine_s16`.
///
/// ```
/// use sse_sim::{_mm_packs_epi32, _mm_setr_epi32};
/// let lo = _mm_setr_epi32(70_000, -70_000, 5, -5);
/// let hi = _mm_setr_epi32(0, 1, 2, 3);
/// let packed = _mm_packs_epi32(lo, hi);
/// assert_eq!(
///     packed.as_i16().to_array(),
///     [32767, -32768, 5, -5, 0, 1, 2, 3]
/// );
/// ```
#[inline]
pub fn _mm_packs_epi32(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdConvert);
    __m128i::from_i16(I32x4::narrow_saturate_i16(a.as_i32(), b.as_i32()))
}

/// `packsswb` — packs two `epi16` registers into one `epi8` register with
/// signed saturation.
#[inline]
pub fn _mm_packs_epi16(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdConvert);
    __m128i::from_i8(I16x8::narrow_saturate_i8(a.as_i16(), b.as_i16()))
}

/// `packuswb` — packs two signed `epi16` registers into one unsigned `epu8`
/// register with unsigned saturation.
#[inline]
pub fn _mm_packus_epi16(a: __m128i, b: __m128i) -> __m128i {
    count(OpClass::SimdConvert);
    __m128i::from_u8(I16x8::narrow_saturate_u8(a.as_i16(), b.as_i16()))
}

macro_rules! unpack {
    ($(#[$meta:meta])* $name:ident, $t:ty, $view:ident, $from:ident, $n:expr, lo) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128i, b: __m128i) -> __m128i {
            count(OpClass::SimdAlu);
            let av = a.$view().to_array();
            let bv = b.$view().to_array();
            let mut out = [<$t>::default(); $n];
            for i in 0..$n / 2 {
                out[2 * i] = av[i];
                out[2 * i + 1] = bv[i];
            }
            __m128i::$from(out.into())
        }
    };
    ($(#[$meta:meta])* $name:ident, $t:ty, $view:ident, $from:ident, $n:expr, hi) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: __m128i, b: __m128i) -> __m128i {
            count(OpClass::SimdAlu);
            let av = a.$view().to_array();
            let bv = b.$view().to_array();
            let mut out = [<$t>::default(); $n];
            for i in 0..$n / 2 {
                out[2 * i] = av[$n / 2 + i];
                out[2 * i + 1] = bv[$n / 2 + i];
            }
            __m128i::$from(out.into())
        }
    };
}

unpack!(
    /// `punpcklbw` — interleaves the low eight byte lanes of `a` and `b`.
    _mm_unpacklo_epi8, u8, as_u8, from_u8, 16, lo
);
unpack!(
    /// `punpckhbw` — interleaves the high eight byte lanes.
    _mm_unpackhi_epi8, u8, as_u8, from_u8, 16, hi
);
unpack!(
    /// `punpcklwd` — interleaves the low four 16-bit lanes.
    _mm_unpacklo_epi16, i16, as_i16, from_i16, 8, lo
);
unpack!(
    /// `punpckhwd` — interleaves the high four 16-bit lanes.
    _mm_unpackhi_epi16, i16, as_i16, from_i16, 8, hi
);
unpack!(
    /// `punpckldq` — interleaves the low two 32-bit lanes.
    _mm_unpacklo_epi32, i32, as_i32, from_i32, 4, lo
);
unpack!(
    /// `punpckhdq` — interleaves the high two 32-bit lanes.
    _mm_unpackhi_epi32, i32, as_i32, from_i32, 4, hi
);
unpack!(
    /// `punpcklqdq` — interleaves the low 64-bit lanes.
    _mm_unpacklo_epi64, i64, as_i64, from_i64, 2, lo
);
unpack!(
    /// `punpckhqdq` — interleaves the high 64-bit lanes.
    _mm_unpackhi_epi64, i64, as_i64, from_i64, 2, hi
);

/// `unpcklps` — interleaves the low float lanes of `a` and `b`.
#[inline]
pub fn _mm_unpacklo_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::new([a.lane(0), b.lane(0), a.lane(1), b.lane(1)])
}

/// `unpckhps` — interleaves the high float lanes of `a` and `b`.
#[inline]
pub fn _mm_unpackhi_ps(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    F32x4::new([a.lane(2), b.lane(2), a.lane(3), b.lane(3)])
}

/// `pshufd` — permutes 32-bit lanes by the immediate control mask.
#[inline]
pub fn _mm_shuffle_epi32<const IMM8: i32>(a: __m128i) -> __m128i {
    count(OpClass::SimdAlu);
    let v = a.as_i32().to_array();
    let sel = |n: i32| v[((IMM8 >> (2 * n)) & 0b11) as usize];
    __m128i::from_i32(I32x4::new([sel(0), sel(1), sel(2), sel(3)]))
}

/// `shufps` — selects two lanes from `a` (low result lanes) and two from `b`
/// (high result lanes) by the immediate control mask.
#[inline]
pub fn _mm_shuffle_ps<const IMM8: i32>(a: __m128, b: __m128) -> __m128 {
    count(OpClass::SimdAlu);
    let sel = |src: __m128, n: i32| src.lane(((IMM8 >> (2 * n)) & 0b11) as usize);
    F32x4::new([sel(a, 0), sel(a, 1), sel(b, 2), sel(b, 3)])
}

/// `pmovmskb` — gathers the sign bit of every byte lane into a 16-bit mask.
#[inline]
pub fn _mm_movemask_epi8(a: __m128i) -> i32 {
    count(OpClass::SimdAlu);
    let bytes = a.as_u8().to_array();
    let mut mask = 0i32;
    for (i, b) in bytes.iter().enumerate() {
        if b & 0x80 != 0 {
            mask |= 1 << i;
        }
    }
    mask
}

/// `movmskps` — gathers the sign bit of every float lane into a 4-bit mask.
#[inline]
pub fn _mm_movemask_ps(a: __m128) -> i32 {
    count(OpClass::SimdAlu);
    let bits = ps_to_bits(a).to_array();
    let mut mask = 0i32;
    for (i, b) in bits.iter().enumerate() {
        if b & 0x8000_0000 != 0 {
            mask |= 1 << i;
        }
    }
    mask
}

/// `pextrw` — extracts one 16-bit lane as a zero-extended integer.
#[inline]
pub fn _mm_extract_epi16<const IMM8: i32>(a: __m128i) -> i32 {
    count(OpClass::SimdAlu);
    a.as_u16().lane(IMM8 as usize) as i32
}

/// `pinsrw` — replaces one 16-bit lane.
#[inline]
pub fn _mm_insert_epi16<const IMM8: i32>(a: __m128i, v: i32) -> __m128i {
    count(OpClass::SimdAlu);
    __m128i::from_i16(a.as_i16().with_lane(IMM8 as usize, v as i16))
}

/// Builds a `U8x16` interleave helper used by kernels converting packed RGB.
#[inline]
pub fn interleave_lo_u8(a: U8x16, b: U8x16) -> U8x16 {
    _mm_unpacklo_epi8(__m128i::from_u8(a), __m128i::from_u8(b)).as_u8()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn packs_epi32_saturates() {
        let a = _mm_setr_epi32(70000, -70000, 5, -5);
        let b = _mm_setr_epi32(0, 1, i32::MAX, i32::MIN);
        let r = _mm_packs_epi32(a, b).as_i16().to_array();
        assert_eq!(r, [32767, -32768, 5, -5, 0, 1, 32767, -32768]);
    }

    #[test]
    fn packus_epi16_clamps_to_u8() {
        let a = _mm_set_epi16(300, 256, 255, 128, 127, 1, 0, -5);
        let r = _mm_packus_epi16(a, a).as_u8().to_array();
        assert_eq!(&r[..8], &[0, 0, 1, 127, 128, 255, 255, 255]);
    }

    #[test]
    fn unpack_lo_hi_epi8() {
        let a = _mm_loadu_si128(&(0u8..16).collect::<Vec<_>>());
        let b = _mm_loadu_si128(&(100u8..116).collect::<Vec<_>>());
        let lo = _mm_unpacklo_epi8(a, b).as_u8().to_array();
        assert_eq!(
            lo,
            [0, 100, 1, 101, 2, 102, 3, 103, 4, 104, 5, 105, 6, 106, 7, 107]
        );
        let hi = _mm_unpackhi_epi8(a, b).as_u8().to_array();
        assert_eq!(
            hi,
            [8, 108, 9, 109, 10, 110, 11, 111, 12, 112, 13, 113, 14, 114, 15, 115]
        );
    }

    #[test]
    fn unpack_epi16_and_epi32() {
        let a = _mm_set_epi16(7, 6, 5, 4, 3, 2, 1, 0);
        let b = _mm_set_epi16(17, 16, 15, 14, 13, 12, 11, 10);
        assert_eq!(
            _mm_unpacklo_epi16(a, b).as_i16().to_array(),
            [0, 10, 1, 11, 2, 12, 3, 13]
        );
        let c = _mm_setr_epi32(0, 1, 2, 3);
        let d = _mm_setr_epi32(10, 11, 12, 13);
        assert_eq!(_mm_unpackhi_epi32(c, d).as_i32().to_array(), [2, 12, 3, 13]);
        assert_eq!(_mm_unpacklo_epi64(c, d).as_i32().to_array(), [0, 1, 10, 11]);
    }

    #[test]
    fn shuffle_epi32_permutes() {
        let v = _mm_setr_epi32(10, 11, 12, 13);
        // 0b00_01_10_11 -> lanes [3,2,1,0]
        let r = _mm_shuffle_epi32::<0b00_01_10_11>(v);
        assert_eq!(r.as_i32().to_array(), [13, 12, 11, 10]);
        // Broadcast lane 2: imm 0b10_10_10_10
        let bcast = _mm_shuffle_epi32::<0b10_10_10_10>(v);
        assert_eq!(bcast.as_i32().to_array(), [12; 4]);
    }

    #[test]
    fn shuffle_ps_mixes_sources() {
        let a = _mm_setr_ps(0.0, 1.0, 2.0, 3.0);
        let b = _mm_setr_ps(10.0, 11.0, 12.0, 13.0);
        // low two from a lanes 3,2; high two from b lanes 1,0.
        let r = _mm_shuffle_ps::<0b00_01_10_11>(a, b);
        assert_eq!(r.to_array(), [3.0, 2.0, 11.0, 10.0]);
    }

    #[test]
    fn movemask() {
        let mut lanes = [0u8; 16];
        lanes[0] = 0x80;
        lanes[15] = 0xFF;
        let v = _mm_loadu_si128(&lanes);
        assert_eq!(_mm_movemask_epi8(v), 1 | (1 << 15));
        let f = _mm_setr_ps(-1.0, 1.0, -0.0, 0.0);
        assert_eq!(_mm_movemask_ps(f), 0b0101);
    }

    #[test]
    fn extract_insert_epi16() {
        let v = _mm_set_epi16(7, 6, 5, 4, 3, 2, 1, 0);
        assert_eq!(_mm_extract_epi16::<3>(v), 3);
        let w = _mm_insert_epi16::<3>(v, -9);
        assert_eq!(w.as_i16().lane(3), -9);
        // Extract zero-extends.
        let neg = _mm_set1_epi16(-1);
        assert_eq!(_mm_extract_epi16::<0>(neg), 0xFFFF);
    }

    #[test]
    fn pack_path_equals_neon_narrow() {
        // The cross-ISA identity the DESIGN doc promises.
        let lo = _mm_setr_epi32(40000, -40000, 7, -7);
        let hi = _mm_setr_epi32(1, 2, 3, 4);
        let sse = _mm_packs_epi32(lo, hi).as_i16();
        let neon_style = simd_vector::I16x8::combine(
            lo.as_i32().narrow_saturate_i16_half(),
            hi.as_i32().narrow_saturate_i16_half(),
        );
        assert_eq!(sse, neon_style);
    }
}
