//! Scoped spans assembling a nested wall-time tree.
//!
//! A [`span`] guard opens a named region on the calling thread; guards
//! nest lexically (strict LIFO — they are stack values), and when a
//! root-level guard closes, its finished subtree merges into the
//! thread's sink. Because closing happens in `Drop`, the tree unwinds
//! correctly through panics: every frame entered before the panic is
//! closed, in order, with its true elapsed time.
//!
//! Merging is by name path: two spans with the same name under the same
//! parent accumulate (`count += 1`, `total_ns += elapsed`) rather than
//! duplicating nodes, so a 125-pass measurement loop produces one node
//! with `count = 125`, not 125 siblings.

use std::cell::RefCell;
use std::time::Instant;

/// One node of the aggregated span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (static: span names label code regions, not data).
    pub name: &'static str,
    /// Times a span with this name path closed.
    pub count: u64,
    /// Total wall nanoseconds across all closes.
    pub total_ns: u64,
    /// Child spans, in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Mean wall nanoseconds per close.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Merges `node` into `dst`, accumulating by name and recursing into
/// children.
pub(crate) fn merge_node(dst: &mut Vec<SpanNode>, node: SpanNode) {
    match dst.iter_mut().find(|n| n.name == node.name) {
        Some(existing) => {
            existing.count += node.count;
            existing.total_ns += node.total_ns;
            for child in node.children {
                merge_node(&mut existing.children, child);
            }
        }
        None => dst.push(node),
    }
}

/// An open span on the thread-local stack.
struct Frame {
    name: &'static str,
    start: Instant,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; closes the span on drop.
///
/// Guards must be bound (`let _guard = obs::span(...)`) — a bare
/// `obs::span(...)` expression drops immediately and records a
/// zero-length span.
#[must_use = "binding the guard is what scopes the span"]
pub struct SpanGuard {
    armed: bool,
}

/// Opens a span named `name` on the current thread. When telemetry is
/// disabled this is one flag branch and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { armed: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            name,
            start: Instant::now(),
            children: Vec::new(),
        });
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Armed guards are strict LIFO stack values, so the top frame
            // is this guard's — including during panic unwinding.
            let frame = stack.pop().expect("span stack underflow");
            let node = SpanNode {
                name: frame.name,
                count: 1,
                total_ns: frame.start.elapsed().as_nanos() as u64,
                children: frame.children,
            };
            match stack.last_mut() {
                Some(parent) => merge_node(&mut parent.children, node),
                None => merge_node(&mut crate::lock_spans(crate::sink()), node),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::guard;
    use crate::{reset, set_enabled, snapshot};

    fn find<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
        nodes.iter().find(|n| n.name == name)
    }

    #[test]
    fn nested_spans_build_a_tree_and_siblings_accumulate() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
                let _leaf = span("leaf");
            }
            let _other = span("other");
        }
        let snap = snapshot();
        let outer = find(&snap.spans, "outer").expect("outer missing");
        assert_eq!(outer.count, 1);
        let inner = find(&outer.children, "inner").expect("inner missing");
        assert_eq!(inner.count, 3, "repeats merge, not duplicate");
        let leaf = find(&inner.children, "leaf").expect("leaf missing");
        assert_eq!(leaf.count, 3);
        assert!(find(&outer.children, "other").is_some());
        assert!(
            find(&snap.spans, "inner").is_none(),
            "inner must nest under outer, not float to the root"
        );
        // A parent's total covers its children's.
        assert!(outer.total_ns >= inner.total_ns);
        set_enabled(false);
    }

    #[test]
    fn span_tree_unwinds_on_panic() {
        let _g = guard();
        set_enabled(true);
        reset();
        let result = std::panic::catch_unwind(|| {
            let _outer = span("panicking_outer");
            let _inner = span("panicking_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        // Both spans closed during unwinding, correctly nested.
        let snap = snapshot();
        let outer = find(&snap.spans, "panicking_outer").expect("outer not closed");
        assert_eq!(outer.count, 1);
        let inner = find(&outer.children, "panicking_inner").expect("inner not closed");
        assert_eq!(inner.count, 1);
        // The stack is balanced: a fresh span lands at the root again.
        {
            let _after = span("after_panic");
        }
        let snap = snapshot();
        assert!(find(&snap.spans, "after_panic").is_some());
        set_enabled(false);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = span("ghost");
        }
        assert!(snapshot().spans.iter().all(|n| n.name != "ghost"));
    }

    #[test]
    fn merge_node_accumulates_recursively() {
        let mut dst = Vec::new();
        let child = |n| SpanNode {
            name: "c",
            count: 1,
            total_ns: n,
            children: Vec::new(),
        };
        merge_node(
            &mut dst,
            SpanNode {
                name: "p",
                count: 1,
                total_ns: 10,
                children: vec![child(4)],
            },
        );
        merge_node(
            &mut dst,
            SpanNode {
                name: "p",
                count: 1,
                total_ns: 20,
                children: vec![child(6)],
            },
        );
        assert_eq!(dst.len(), 1);
        assert_eq!(dst[0].count, 2);
        assert_eq!(dst[0].total_ns, 30);
        assert_eq!(dst[0].children.len(), 1);
        assert_eq!(dst[0].children[0].total_ns, 10);
        assert_eq!(dst[0].mean_ns(), 15.0);
    }
}
