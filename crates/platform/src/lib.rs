//! Trace-driven, cycle-approximate models of the paper's ten evaluation
//! platforms (Table I).
//!
//! The reproduction cannot run on an Intel Atom D510 or a Samsung Exynos
//! 3110; this crate is the documented substitution. Each platform is
//! described by microarchitectural parameters (clock, in-order vs
//! out-of-order, scalar IPC, SIMD issue cost, library-call latency, cache
//! geometry, sustainable DRAM streaming bandwidth), and each (kernel,
//! strategy) pair is described by a per-pixel instruction mix:
//!
//! * **HAND** mixes are *measured* — the actual intrinsic kernels from
//!   `simdbench-core` are executed through the simulated `sse-sim`/
//!   `neon-sim` surfaces under an `op_trace` recorder.
//! * **AUTO** mixes are *modelled* from the paper's own Section V
//!   disassembly of gcc 4.6 output (e.g. the per-pixel `lrint` library call
//!   in the ARM float→short loop), with each stream documented in
//!   [`workload`].
//!
//! [`predict`] combines mix, pipeline and memory models into estimated
//! runtimes; the `repro-harness` crate renders those into the paper's
//! Table II / Table III and Figures 2–6. Absolute seconds are *estimates* —
//! the claims tested are the paper's *shapes*: who wins, by what factor,
//! and where the outliers (Atom, Tegra T30) sit.

#![warn(missing_docs)]

pub mod autovec;
pub mod cache;
pub mod energy;
pub mod memory;
pub mod pipeline;
pub mod platforms;
pub mod predict;
pub mod spec;
pub mod workload;

pub use platforms::{all_platforms, platform_by_name};
pub use predict::{predict_seconds, speedup, Prediction};
pub use spec::{Isa, Microarch, PlatformSpec};
pub use workload::{Kernel, Strategy};
