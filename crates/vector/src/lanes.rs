//! Definition of the Q (128-bit) and D (64-bit) lane types.

use std::fmt;

macro_rules! define_lane_type {
    (
        $(#[$meta:meta])*
        $name:ident, $elem:ty, $n:expr, $align:literal
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Default)]
        #[repr(C, align($align))]
        pub struct $name(pub [$elem; $n]);

        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $n;

            /// Builds a vector from an array (lane 0 = first element).
            #[inline]
            pub const fn new(lanes: [$elem; $n]) -> Self {
                $name(lanes)
            }

            /// Broadcasts one value to all lanes.
            #[inline]
            pub fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            /// Returns the lanes as an array.
            #[inline]
            pub const fn to_array(self) -> [$elem; $n] {
                self.0
            }

            /// Reads one lane (panics if `i >= LANES`).
            #[inline]
            pub fn lane(self, i: usize) -> $elem {
                self.0[i]
            }

            /// Returns a copy with lane `i` replaced by `v`.
            #[inline]
            pub fn with_lane(mut self, i: usize, v: $elem) -> Self {
                self.0[i] = v;
                self
            }

            /// Loads `LANES` elements from the front of `src`.
            ///
            /// This models an *unaligned* vector load: only the slice length
            /// is checked, not its address.
            #[inline]
            #[track_caller]
            pub fn load(src: &[$elem]) -> Self {
                let mut lanes = [<$elem>::default(); $n];
                lanes.copy_from_slice(&src[..$n]);
                $name(lanes)
            }

            /// Stores all lanes to the front of `dst` (unaligned semantics).
            #[inline]
            #[track_caller]
            pub fn store(self, dst: &mut [$elem]) {
                dst[..$n].copy_from_slice(&self.0);
            }

            /// Applies `f` to every lane.
            #[inline]
            pub fn map(self, f: impl Fn($elem) -> $elem) -> Self {
                let mut out = self.0;
                for lane in out.iter_mut() {
                    *lane = f(*lane);
                }
                $name(out)
            }

            /// Applies `f` lane-wise to `self` and `rhs`.
            #[inline]
            pub fn zip(self, rhs: Self, f: impl Fn($elem, $elem) -> $elem) -> Self {
                let mut out = self.0;
                for (lane, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *lane = f(*lane, *r);
                }
                $name(out)
            }

            /// Folds all lanes with `f`, starting from `init`.
            #[inline]
            pub fn fold<A>(self, init: A, mut f: impl FnMut(A, $elem) -> A) -> A {
                let mut acc = init;
                for lane in self.0.iter() {
                    acc = f(acc, *lane);
                }
                acc
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.0)
            }
        }

        impl From<[$elem; $n]> for $name {
            fn from(lanes: [$elem; $n]) -> Self {
                $name(lanes)
            }
        }

        impl From<$name> for [$elem; $n] {
            fn from(v: $name) -> Self {
                v.0
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Q (128-bit) types — the XMM / NEON quad-word register view.
// ---------------------------------------------------------------------------

define_lane_type!(
    /// Four packed `f32` lanes (`__m128` / `float32x4_t`).
    F32x4, f32, 4, 16
);
define_lane_type!(
    /// Two packed `f64` lanes (`__m128d`).
    F64x2, f64, 2, 16
);
define_lane_type!(
    /// Sixteen packed `i8` lanes (`__m128i` / `int8x16_t`).
    I8x16, i8, 16, 16
);
define_lane_type!(
    /// Sixteen packed `u8` lanes (`__m128i` / `uint8x16_t`).
    U8x16, u8, 16, 16
);
define_lane_type!(
    /// Eight packed `i16` lanes (`__m128i` / `int16x8_t`).
    I16x8, i16, 8, 16
);
define_lane_type!(
    /// Eight packed `u16` lanes (`__m128i` / `uint16x8_t`).
    U16x8, u16, 8, 16
);
define_lane_type!(
    /// Four packed `i32` lanes (`__m128i` / `int32x4_t`).
    I32x4, i32, 4, 16
);
define_lane_type!(
    /// Four packed `u32` lanes (`__m128i` / `uint32x4_t`).
    U32x4, u32, 4, 16
);
define_lane_type!(
    /// Two packed `i64` lanes (`__m128i` / `int64x2_t`).
    I64x2, i64, 2, 16
);
define_lane_type!(
    /// Two packed `u64` lanes (`__m128i` / `uint64x2_t`).
    U64x2, u64, 2, 16
);

// ---------------------------------------------------------------------------
// D (64-bit) types — the NEON double-word register view (and MMX).
// ---------------------------------------------------------------------------

define_lane_type!(
    /// Two packed `f32` lanes (`float32x2_t`).
    F32x2, f32, 2, 8
);
define_lane_type!(
    /// Eight packed `i8` lanes (`int8x8_t`).
    I8x8, i8, 8, 8
);
define_lane_type!(
    /// Eight packed `u8` lanes (`uint8x8_t`).
    U8x8, u8, 8, 8
);
define_lane_type!(
    /// Four packed `i16` lanes (`int16x4_t`).
    I16x4, i16, 4, 8
);
define_lane_type!(
    /// Four packed `u16` lanes (`uint16x4_t`).
    U16x4, u16, 4, 8
);
define_lane_type!(
    /// Two packed `i32` lanes (`int32x2_t`).
    I32x2, i32, 2, 8
);
define_lane_type!(
    /// Two packed `u32` lanes (`uint32x2_t`).
    U32x2, u32, 2, 8
);
define_lane_type!(
    /// One `i64` lane (`int64x1_t`).
    I64x1, i64, 1, 8
);
define_lane_type!(
    /// One `u64` lane (`uint64x1_t`).
    U64x1, u64, 1, 8
);

/// Splits a Q vector of 8 `i16` lanes into low/high D halves.
impl I16x8 {
    /// Low four lanes as a D register.
    #[inline]
    pub fn low(self) -> I16x4 {
        I16x4([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// High four lanes as a D register.
    #[inline]
    pub fn high(self) -> I16x4 {
        I16x4([self.0[4], self.0[5], self.0[6], self.0[7]])
    }

    /// Combines two D halves into a Q register (`vcombine_s16`).
    #[inline]
    pub fn combine(low: I16x4, high: I16x4) -> Self {
        I16x8([
            low.0[0], low.0[1], low.0[2], low.0[3], high.0[0], high.0[1], high.0[2], high.0[3],
        ])
    }
}

impl U16x8 {
    /// Low four lanes as a D register.
    #[inline]
    pub fn low(self) -> U16x4 {
        U16x4([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// High four lanes as a D register.
    #[inline]
    pub fn high(self) -> U16x4 {
        U16x4([self.0[4], self.0[5], self.0[6], self.0[7]])
    }

    /// Combines two D halves into a Q register (`vcombine_u16`).
    #[inline]
    pub fn combine(low: U16x4, high: U16x4) -> Self {
        U16x8([
            low.0[0], low.0[1], low.0[2], low.0[3], high.0[0], high.0[1], high.0[2], high.0[3],
        ])
    }
}

impl U8x16 {
    /// Low eight lanes as a D register.
    #[inline]
    pub fn low(self) -> U8x8 {
        let mut out = [0u8; 8];
        out.copy_from_slice(&self.0[..8]);
        U8x8(out)
    }

    /// High eight lanes as a D register.
    #[inline]
    pub fn high(self) -> U8x8 {
        let mut out = [0u8; 8];
        out.copy_from_slice(&self.0[8..]);
        U8x8(out)
    }

    /// Combines two D halves into a Q register (`vcombine_u8`).
    #[inline]
    pub fn combine(low: U8x8, high: U8x8) -> Self {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&low.0);
        out[8..].copy_from_slice(&high.0);
        U8x16(out)
    }
}

impl I8x16 {
    /// Low eight lanes as a D register.
    #[inline]
    pub fn low(self) -> I8x8 {
        let mut out = [0i8; 8];
        out.copy_from_slice(&self.0[..8]);
        I8x8(out)
    }

    /// High eight lanes as a D register.
    #[inline]
    pub fn high(self) -> I8x8 {
        let mut out = [0i8; 8];
        out.copy_from_slice(&self.0[8..]);
        I8x8(out)
    }

    /// Combines two D halves into a Q register (`vcombine_s8`).
    #[inline]
    pub fn combine(low: I8x8, high: I8x8) -> Self {
        let mut out = [0i8; 16];
        out[..8].copy_from_slice(&low.0);
        out[8..].copy_from_slice(&high.0);
        I8x16(out)
    }
}

impl I32x4 {
    /// Low two lanes as a D register.
    #[inline]
    pub fn low(self) -> I32x2 {
        I32x2([self.0[0], self.0[1]])
    }

    /// High two lanes as a D register.
    #[inline]
    pub fn high(self) -> I32x2 {
        I32x2([self.0[2], self.0[3]])
    }

    /// Combines two D halves into a Q register (`vcombine_s32`).
    #[inline]
    pub fn combine(low: I32x2, high: I32x2) -> Self {
        I32x4([low.0[0], low.0[1], high.0[0], high.0[1]])
    }
}

impl U32x4 {
    /// Low two lanes as a D register.
    #[inline]
    pub fn low(self) -> U32x2 {
        U32x2([self.0[0], self.0[1]])
    }

    /// High two lanes as a D register.
    #[inline]
    pub fn high(self) -> U32x2 {
        U32x2([self.0[2], self.0[3]])
    }

    /// Combines two D halves into a Q register (`vcombine_u32`).
    #[inline]
    pub fn combine(low: U32x2, high: U32x2) -> Self {
        U32x4([low.0[0], low.0[1], high.0[0], high.0[1]])
    }
}

impl F32x4 {
    /// Low two lanes as a D register.
    #[inline]
    pub fn low(self) -> F32x2 {
        F32x2([self.0[0], self.0[1]])
    }

    /// High two lanes as a D register.
    #[inline]
    pub fn high(self) -> F32x2 {
        F32x2([self.0[2], self.0[3]])
    }

    /// Combines two D halves into a Q register (`vcombine_f32`).
    #[inline]
    pub fn combine(low: F32x2, high: F32x2) -> Self {
        F32x4([low.0[0], low.0[1], high.0[0], high.0[1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let v = I32x4::new([1, 2, 3, 4]);
        assert_eq!(v.lane(0), 1);
        assert_eq!(v.lane(3), 4);
        assert_eq!(v.to_array(), [1, 2, 3, 4]);
        let w = v.with_lane(2, 99);
        assert_eq!(w.to_array(), [1, 2, 99, 4]);
        assert_eq!(v.to_array(), [1, 2, 3, 4]); // original untouched
    }

    #[test]
    fn splat_fills_all_lanes() {
        assert_eq!(U8x16::splat(7).to_array(), [7u8; 16]);
        assert_eq!(F32x4::splat(1.5).to_array(), [1.5f32; 4]);
    }

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<i16> = (0..12).collect();
        let v = I16x8::load(&src[2..]);
        assert_eq!(v.to_array(), [2, 3, 4, 5, 6, 7, 8, 9]);
        let mut dst = [0i16; 10];
        v.store(&mut dst[1..]);
        assert_eq!(&dst[1..9], &[2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(dst[0], 0);
        assert_eq!(dst[9], 0);
    }

    #[test]
    #[should_panic]
    fn load_panics_on_short_slice() {
        let src = [0f32; 3];
        let _ = F32x4::load(&src);
    }

    #[test]
    fn map_zip_fold() {
        let a = I32x4::new([1, 2, 3, 4]);
        let b = I32x4::new([10, 20, 30, 40]);
        assert_eq!(a.map(|x| x * 2).to_array(), [2, 4, 6, 8]);
        assert_eq!(a.zip(b, |x, y| x + y).to_array(), [11, 22, 33, 44]);
        assert_eq!(a.fold(0, |acc, x| acc + x), 10);
    }

    #[test]
    fn low_high_combine_roundtrip_i16() {
        let v = I16x8::new([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(v.low().to_array(), [1, 2, 3, 4]);
        assert_eq!(v.high().to_array(), [5, 6, 7, 8]);
        assert_eq!(I16x8::combine(v.low(), v.high()), v);
    }

    #[test]
    fn low_high_combine_roundtrip_u8() {
        let v = U8x16::new([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(v.low().to_array(), [0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(v.high().to_array(), [8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(U8x16::combine(v.low(), v.high()), v);
    }

    #[test]
    fn low_high_combine_roundtrip_f32() {
        let v = F32x4::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(F32x4::combine(v.low(), v.high()), v);
    }

    #[test]
    fn debug_format_names_type() {
        let v = I32x2::new([5, 6]);
        assert_eq!(format!("{v:?}"), "I32x2([5, 6])");
    }
}
