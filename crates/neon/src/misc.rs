//! Miscellaneous intrinsics (category *h*): reinterpret casts, vector
//! extract, reversal, transpose/zip/unzip and table lookup.

use crate::types::*;
use op_trace::{count, OpClass};
use simd_vector::cast::reinterpret128;

// ---------------------------------------------------------------------------
// Reinterpret casts (free on hardware — counted as zero-cost, not traced).
// ---------------------------------------------------------------------------

macro_rules! vreinterpret {
    ($(#[$meta:meta])* $name:ident, $src:ty, $dst:ty) => {
        $(#[$meta])*
        #[inline]
        pub fn $name(a: $src) -> $dst {
            reinterpret128(a)
        }
    };
}

vreinterpret!(
    /// Reinterprets unsigned halfword lanes as signed.
    vreinterpretq_s16_u16, uint16x8_t, int16x8_t
);
vreinterpret!(
    /// Reinterprets signed halfword lanes as unsigned.
    vreinterpretq_u16_s16, int16x8_t, uint16x8_t
);
vreinterpret!(
    /// Reinterprets unsigned byte lanes as signed.
    vreinterpretq_s8_u8, uint8x16_t, int8x16_t
);
vreinterpret!(
    /// Reinterprets signed byte lanes as unsigned.
    vreinterpretq_u8_s8, int8x16_t, uint8x16_t
);
vreinterpret!(
    /// Reinterprets float lanes as unsigned words.
    vreinterpretq_u32_f32, float32x4_t, uint32x4_t
);
vreinterpret!(
    /// Reinterprets unsigned words as float lanes.
    vreinterpretq_f32_u32, uint32x4_t, float32x4_t
);
vreinterpret!(
    /// Reinterprets signed words as float lanes.
    vreinterpretq_f32_s32, int32x4_t, float32x4_t
);
vreinterpret!(
    /// Reinterprets float lanes as signed words.
    vreinterpretq_s32_f32, float32x4_t, int32x4_t
);
vreinterpret!(
    /// Reinterprets halfword lanes as bytes.
    vreinterpretq_u8_u16, uint16x8_t, uint8x16_t
);
vreinterpret!(
    /// Reinterprets byte lanes as halfwords.
    vreinterpretq_u16_u8, uint8x16_t, uint16x8_t
);
vreinterpret!(
    /// Reinterprets signed halfwords as bytes.
    vreinterpretq_u8_s16, int16x8_t, uint8x16_t
);
vreinterpret!(
    /// Reinterprets bytes as signed halfwords.
    vreinterpretq_s16_u8, uint8x16_t, int16x8_t
);

// ---------------------------------------------------------------------------
// Extract / reverse / transpose.
// ---------------------------------------------------------------------------

/// `vext.8 q` — extracts a 16-byte window starting `n` bytes into the pair
/// `(a, b)` — the unaligned-access building block.
#[inline]
pub fn vextq_u8(a: uint8x16_t, b: uint8x16_t, n: usize) -> uint8x16_t {
    count(OpClass::SimdAlu);
    assert!(n < 16, "vext immediate must be 0..=15");
    let av = a.to_array();
    let bv = b.to_array();
    let mut out = [0u8; 16];
    for (i, slot) in out.iter_mut().enumerate() {
        let idx = i + n;
        *slot = if idx < 16 { av[idx] } else { bv[idx - 16] };
    }
    uint8x16_t::new(out)
}

/// `vext.16 q` — halfword window extract over a register pair.
#[inline]
pub fn vextq_s16(a: int16x8_t, b: int16x8_t, n: usize) -> int16x8_t {
    count(OpClass::SimdAlu);
    assert!(n < 8, "vext immediate must be 0..=7");
    let av = a.to_array();
    let bv = b.to_array();
    let mut out = [0i16; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        let idx = i + n;
        *slot = if idx < 8 { av[idx] } else { bv[idx - 8] };
    }
    int16x8_t::new(out)
}

/// `vext.32 q` — float window extract over a register pair.
#[inline]
pub fn vextq_f32(a: float32x4_t, b: float32x4_t, n: usize) -> float32x4_t {
    count(OpClass::SimdAlu);
    assert!(n < 4, "vext immediate must be 0..=3");
    let av = a.to_array();
    let bv = b.to_array();
    let mut out = [0f32; 4];
    for (i, slot) in out.iter_mut().enumerate() {
        let idx = i + n;
        *slot = if idx < 4 { av[idx] } else { bv[idx - 4] };
    }
    float32x4_t::new(out)
}

/// `vrev64.8 q` — reverses the bytes within each 64-bit half (the
/// endianness-swap helper the paper mentions).
#[inline]
pub fn vrev64q_u8(a: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    let v = a.to_array();
    let mut out = [0u8; 16];
    for i in 0..8 {
        out[i] = v[7 - i];
        out[8 + i] = v[15 - i];
    }
    uint8x16_t::new(out)
}

/// `vrev64.16 q` — reverses halfwords within each 64-bit half.
#[inline]
pub fn vrev64q_u16(a: uint16x8_t) -> uint16x8_t {
    count(OpClass::SimdAlu);
    let v = a.to_array();
    uint16x8_t::new([v[3], v[2], v[1], v[0], v[7], v[6], v[5], v[4]])
}

/// `vtrn.32 q` — transposes pairs of 32-bit lanes across two registers
/// (the 2×2 blocks of a matrix transpose).
#[inline]
pub fn vtrnq_u32(a: uint32x4_t, b: uint32x4_t) -> uint32x4x2_t {
    count(OpClass::SimdAlu);
    uint32x4x2_t {
        val: [
            uint32x4_t::new([a.lane(0), b.lane(0), a.lane(2), b.lane(2)]),
            uint32x4_t::new([a.lane(1), b.lane(1), a.lane(3), b.lane(3)]),
        ],
    }
}

/// `vzip.16 q` — interleaves the lanes of two registers.
#[inline]
pub fn vzipq_s16(a: int16x8_t, b: int16x8_t) -> int16x8x2_t {
    count(OpClass::SimdAlu);
    let av = a.to_array();
    let bv = b.to_array();
    let mut lo = [0i16; 8];
    let mut hi = [0i16; 8];
    for i in 0..4 {
        lo[2 * i] = av[i];
        lo[2 * i + 1] = bv[i];
        hi[2 * i] = av[4 + i];
        hi[2 * i + 1] = bv[4 + i];
    }
    int16x8x2_t {
        val: [int16x8_t::new(lo), int16x8_t::new(hi)],
    }
}

/// `vuzp.16 q` — de-interleaves two registers into even/odd lane streams.
#[inline]
pub fn vuzpq_s16(a: int16x8_t, b: int16x8_t) -> int16x8x2_t {
    count(OpClass::SimdAlu);
    let all: Vec<i16> = a
        .to_array()
        .iter()
        .chain(b.to_array().iter())
        .copied()
        .collect();
    let mut even = [0i16; 8];
    let mut odd = [0i16; 8];
    for i in 0..8 {
        even[i] = all[2 * i];
        odd[i] = all[2 * i + 1];
    }
    int16x8x2_t {
        val: [int16x8_t::new(even), int16x8_t::new(odd)],
    }
}

/// `vtbl1.8` — table lookup: each lane of `idx` selects a byte of `table`
/// (out-of-range indices produce 0).
#[inline]
pub fn vtbl1_u8(table: uint8x8_t, idx: uint8x8_t) -> uint8x8_t {
    count(OpClass::SimdAlu);
    let t = table.to_array();
    idx.map(|i| if (i as usize) < 8 { t[i as usize] } else { 0 })
}

/// `vcnt.8 q` — per-byte population count.
#[inline]
pub fn vcntq_u8(a: uint8x16_t) -> uint8x16_t {
    count(OpClass::SimdAlu);
    a.map(|v| v.count_ones() as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn reinterpret_is_bit_preserving() {
        let mask = uint16x8_t::splat(0xFFFF);
        assert_eq!(vreinterpretq_s16_u16(mask).lane(0), -1);
        let f = vdupq_n_f32(1.0);
        assert_eq!(vreinterpretq_u32_f32(f).lane(0), 0x3F80_0000);
        let round = vreinterpretq_f32_u32(vreinterpretq_u32_f32(f));
        assert_eq!(round, f);
    }

    #[test]
    fn ext_concatenates_windows() {
        let a = uint8x16_t::new([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let b = vdupq_n_u8(99);
        let r = vextq_u8(a, b, 3);
        assert_eq!(&r.to_array()[..13], &(3u8..16).collect::<Vec<_>>()[..]);
        assert_eq!(&r.to_array()[13..], &[99, 99, 99]);
        let zero_ext = vextq_u8(a, b, 0);
        assert_eq!(zero_ext, a);
        let s = vextq_s16(int16x8_t::new([0, 1, 2, 3, 4, 5, 6, 7]), vdupq_n_s16(-1), 6);
        assert_eq!(s.to_array(), [6, 7, -1, -1, -1, -1, -1, -1]);
        let f = vextq_f32(float32x4_t::new([0.0, 1.0, 2.0, 3.0]), vdupq_n_f32(9.0), 1);
        assert_eq!(f.to_array(), [1.0, 2.0, 3.0, 9.0]);
    }

    #[test]
    fn rev64_swaps_within_halves() {
        let a = uint8x16_t::new([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let r = vrev64q_u8(a);
        assert_eq!(
            r.to_array(),
            [7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8]
        );
        let h = vrev64q_u16(uint16x8_t::new([0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(h.to_array(), [3, 2, 1, 0, 7, 6, 5, 4]);
    }

    #[test]
    fn trn_zip_uzp() {
        let a = uint32x4_t::new([0, 1, 2, 3]);
        let b = uint32x4_t::new([10, 11, 12, 13]);
        let t = vtrnq_u32(a, b);
        assert_eq!(t.val[0].to_array(), [0, 10, 2, 12]);
        assert_eq!(t.val[1].to_array(), [1, 11, 3, 13]);

        let x = int16x8_t::new([0, 1, 2, 3, 4, 5, 6, 7]);
        let y = int16x8_t::new([10, 11, 12, 13, 14, 15, 16, 17]);
        let z = vzipq_s16(x, y);
        assert_eq!(z.val[0].to_array(), [0, 10, 1, 11, 2, 12, 3, 13]);
        assert_eq!(z.val[1].to_array(), [4, 14, 5, 15, 6, 16, 7, 17]);

        // uzp inverts zip.
        let u = vuzpq_s16(z.val[0], z.val[1]);
        assert_eq!(u.val[0], x);
        assert_eq!(u.val[1], y);
    }

    #[test]
    fn table_lookup() {
        let table = uint8x8_t::new([10, 20, 30, 40, 50, 60, 70, 80]);
        let idx = uint8x8_t::new([7, 0, 3, 200, 1, 1, 6, 8]);
        assert_eq!(
            vtbl1_u8(table, idx).to_array(),
            [80, 10, 40, 0, 20, 20, 70, 0]
        );
    }

    #[test]
    fn popcount() {
        let v = uint8x16_t::new([
            0, 1, 3, 7, 15, 31, 63, 127, 255, 0x80, 0xAA, 0x55, 2, 4, 8, 16,
        ]);
        assert_eq!(
            vcntq_u8(v).to_array(),
            [0, 1, 2, 3, 4, 5, 6, 7, 8, 1, 4, 4, 1, 1, 1, 1]
        );
    }
}
