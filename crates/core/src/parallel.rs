//! Multi-core row-parallel kernel variants (experiment A3).
//!
//! The paper compiles OpenCV "for single thread execution" and leaves
//! multi-core to future work; these wrappers provide that extension. Each
//! splits the image into horizontal bands processed by rayon's work-stealing
//! pool, running the chosen [`Engine`] inside each band — SIMD and
//! multi-threading compose.
//!
//! The stencil kernels (Gaussian, Sobel, edge) delegate to the band-tiled
//! fused pipeline in [`crate::pipeline`], which parallelises over bands
//! without materialising full-image intermediates and without allocating
//! inside worker closures. The pointwise kernels (convert, threshold)
//! parallelise over rows directly — they have no intermediates to fuse.

use crate::convert::convert_row;
use crate::dispatch::Engine;
use crate::kernelgen::{paper_gaussian_kernel, FixedKernel};
use crate::pipeline::{
    par_fused_edge_detect_with, par_fused_gaussian_blur_with, par_fused_sobel_with, BandPlan,
};
use crate::sobel::SobelDirection;
use crate::threshold::{threshold_row, ThresholdType};
use pixelimage::Image;
use rayon::prelude::*;

/// Splits an image's backing buffer into per-row mutable slices
/// (`width` elements each, padding skipped).
fn rows_mut<T: simd_vector::align::Pod + Send>(img: &mut Image<T>) -> Vec<&mut [T]> {
    let stride = img.stride();
    let width = img.width();
    let height = img.height();
    img.as_mut_slice()
        .chunks_mut(stride)
        .take(height)
        .map(|chunk| &mut chunk[..width])
        .collect()
}

/// Row-parallel float→short conversion.
pub fn par_convert_f32_to_i16(src: &Image<f32>, dst: &mut Image<i16>, engine: Engine) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    rows_mut(dst)
        .into_par_iter()
        .enumerate()
        .for_each(|(y, drow)| convert_row(src.row(y), drow, engine));
}

/// Row-parallel threshold.
pub fn par_threshold_u8(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    thresh: u8,
    maxval: u8,
    ty: ThresholdType,
    engine: Engine,
) {
    assert_eq!(src.width(), dst.width(), "width mismatch");
    assert_eq!(src.height(), dst.height(), "height mismatch");
    rows_mut(dst)
        .into_par_iter()
        .enumerate()
        .for_each(|(y, drow)| threshold_row(src.row(y), drow, thresh, maxval, ty, engine));
}

/// Row-parallel Gaussian blur (σ=1, 7 taps — the paper configuration).
pub fn par_gaussian_blur(src: &Image<u8>, dst: &mut Image<u8>, engine: Engine) {
    par_gaussian_blur_kernel(src, dst, &paper_gaussian_kernel(), engine);
}

/// Band-parallel Gaussian blur with an explicit kernel, via the fused
/// pipeline: no intermediate image; band workspaces come from the pool
/// workers' thread-local arenas.
pub fn par_gaussian_blur_kernel(
    src: &Image<u8>,
    dst: &mut Image<u8>,
    kernel: &FixedKernel,
    engine: Engine,
) {
    let plan = BandPlan::for_width(src.width());
    par_fused_gaussian_blur_with(src, dst, kernel, engine, &plan);
}

/// Band-parallel Sobel gradient via the fused pipeline.
pub fn par_sobel(src: &Image<u8>, dst: &mut Image<i16>, dir: SobelDirection, engine: Engine) {
    let plan = BandPlan::for_width(src.width());
    par_fused_sobel_with(src, dst, dir, engine, &plan);
}

/// Band-parallel edge detection via the fused pipeline: the former
/// implementation ran two full `par_sobel` passes into gradient images and
/// allocated a magnitude row per output row; this runs the whole
/// Sobel×2 → magnitude → threshold chain per band with pooled buffers.
pub fn par_edge_detect(src: &Image<u8>, dst: &mut Image<u8>, thresh: u8, engine: Engine) {
    let plan = BandPlan::for_width(src.width());
    par_fused_edge_detect_with(src, dst, thresh, engine, &plan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_f32_to_i16;
    use crate::edge::edge_detect;
    use crate::gaussian::gaussian_blur;
    use crate::sobel::sobel;
    use crate::threshold::threshold_u8;
    use pixelimage::{synthetic_image, synthetic_image_f32};

    #[test]
    fn par_convert_matches_sequential() {
        let src = synthetic_image_f32(131, 61, 41).map(|v| (v - 100.0) * 500.0);
        let mut seq = Image::new(131, 61);
        convert_f32_to_i16(&src, &mut seq, Engine::Native);
        let mut par = Image::new(131, 61);
        par_convert_f32_to_i16(&src, &mut par, Engine::Native);
        assert!(par.pixels_eq(&seq));
    }

    #[test]
    fn par_threshold_matches_sequential() {
        let src = synthetic_image(131, 61, 43);
        let mut seq = Image::new(131, 61);
        threshold_u8(
            &src,
            &mut seq,
            128,
            255,
            ThresholdType::Binary,
            Engine::Native,
        );
        let mut par = Image::new(131, 61);
        par_threshold_u8(
            &src,
            &mut par,
            128,
            255,
            ThresholdType::Binary,
            Engine::Native,
        );
        assert!(par.pixels_eq(&seq));
    }

    #[test]
    fn par_gaussian_matches_sequential() {
        let src = synthetic_image(131, 61, 47);
        let mut seq = Image::new(131, 61);
        gaussian_blur(&src, &mut seq, Engine::Native);
        let mut par = Image::new(131, 61);
        par_gaussian_blur(&src, &mut par, Engine::Native);
        assert!(par.pixels_eq(&seq));
    }

    #[test]
    fn par_sobel_matches_sequential() {
        let src = synthetic_image(131, 61, 53);
        for dir in [SobelDirection::X, SobelDirection::Y] {
            let mut seq = Image::new(131, 61);
            sobel(&src, &mut seq, dir, Engine::Native);
            let mut par = Image::new(131, 61);
            par_sobel(&src, &mut par, dir, Engine::Native);
            assert!(par.pixels_eq(&seq), "{dir:?}");
        }
    }

    #[test]
    fn par_edge_matches_sequential() {
        let src = synthetic_image(131, 61, 59);
        let mut seq = Image::new(131, 61);
        edge_detect(&src, &mut seq, 96, Engine::Native);
        let mut par = Image::new(131, 61);
        par_edge_detect(&src, &mut par, 96, Engine::Native);
        assert!(par.pixels_eq(&seq));
    }

    #[test]
    fn parallel_works_with_sim_engines_too() {
        let src = synthetic_image(64, 32, 61);
        let mut seq = Image::new(64, 32);
        gaussian_blur(&src, &mut seq, Engine::Scalar);
        for engine in [Engine::Sse2Sim, Engine::NeonSim] {
            let mut par = Image::new(64, 32);
            par_gaussian_blur(&src, &mut par, engine);
            assert!(par.pixels_eq(&seq), "{engine:?}");
        }
    }
}
