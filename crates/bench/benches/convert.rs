//! Table II / Figure 2 — float→short conversion, AUTO vs HAND per size.

use bench::{bench_image_f32, bench_resolutions, TIMED_ENGINES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pixelimage::Image;
use simdbench_core::convert::convert_f32_to_i16;

fn bench_convert(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert_f32_to_i16");
    group.sample_size(20);
    for res in bench_resolutions() {
        let src = bench_image_f32(res);
        let mut dst = Image::<i16>::new(src.width(), src.height());
        group.throughput(Throughput::Elements(res.pixels() as u64));
        for engine in TIMED_ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.label(), res.label()),
                &engine,
                |b, &engine| b.iter(|| convert_f32_to_i16(&src, &mut dst, engine)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
