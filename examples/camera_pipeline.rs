//! A realistic downstream scenario from the paper's motivation: a mobile
//! camera pipeline processing a stream of frames (blur → edge map → binary
//! mask), measuring sustained frames/second per backend, single-thread and
//! rayon row-parallel (the paper's future-work extension).
//!
//! Run: `cargo run --release --example camera_pipeline`

use simd_repro::image::{synthetic_suite, Image, Resolution};
use simd_repro::kernels::parallel::{par_edge_detect, par_gaussian_blur};
use simd_repro::kernels::prelude::*;
use std::time::Instant;

const FRAMES: usize = 12;

fn pipeline_frame(frame: &Image<u8>, engine: Engine, parallel: bool) -> Image<u8> {
    let (w, h) = (frame.width(), frame.height());
    let mut denoised = Image::new(w, h);
    let mut edges = Image::new(w, h);
    if parallel {
        par_gaussian_blur(frame, &mut denoised, engine);
        par_edge_detect(&denoised, &mut edges, 72, engine);
    } else {
        gaussian_blur(frame, &mut denoised, engine);
        edge_detect(&denoised, &mut edges, 72, engine);
    }
    edges
}

fn run(frames: &[Image<u8>], engine: Engine, parallel: bool) -> (f64, u64) {
    // Checksum guards against dead-code elimination and proves all
    // configurations compute the same result.
    let mut checksum = 0u64;
    let start = Instant::now();
    for i in 0..FRAMES {
        let out = pipeline_frame(&frames[i % frames.len()], engine, parallel);
        checksum = checksum.wrapping_add(out.iter_pixels().map(|p| p as u64).sum::<u64>());
    }
    (FRAMES as f64 / start.elapsed().as_secs_f64(), checksum)
}

fn main() {
    let res = Resolution::Mp1; // 1.2 Mpx camera preview stream
    println!(
        "camera pipeline (blur + edge map) on a {} frame stream\n",
        res.label()
    );
    let frames = synthetic_suite(res, 5);

    println!(
        "{:<10} {:>12} {:>14}",
        "engine", "fps (1 core)", "fps (parallel)"
    );
    let mut checksums = Vec::new();
    for engine in [Engine::Scalar, Engine::Autovec, Engine::Native] {
        let (fps_seq, sum_seq) = run(&frames, engine, false);
        let (fps_par, sum_par) = run(&frames, engine, true);
        assert_eq!(sum_seq, sum_par, "parallel result diverged");
        checksums.push(sum_seq);
        println!("{:<10} {:>12.1} {:>14.1}", engine.label(), fps_seq, fps_par);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "engines disagreed"
    );
    println!(
        "\nall engines produced identical frame checksums ({} cores available)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!(
        "note: the paper benchmarks single-thread OpenCV; the parallel column is the\n\
         future-work extension (experiment A3 in DESIGN.md)."
    );
}
