//! Bit-shift intrinsics (category *g*): immediate shifts, rounding shifts,
//! narrowing shifts and the saturating-narrowing shift used by fixed-point
//! filters.

use crate::types::*;
use op_trace::{count, OpClass};

/// `vshl.i16 q, #n` — left shift halfwords by an immediate.
#[inline]
pub fn vshlq_n_s16(a: int16x8_t, n: u32) -> int16x8_t {
    count(OpClass::SimdAlu);
    a.shl(n)
}

/// `vshl.i32 q, #n` — left shift words by an immediate.
#[inline]
pub fn vshlq_n_s32(a: int32x4_t, n: u32) -> int32x4_t {
    count(OpClass::SimdAlu);
    a.shl(n)
}

/// `vshr.s16 q, #n` — arithmetic right shift of halfwords.
#[inline]
pub fn vshrq_n_s16(a: int16x8_t, n: u32) -> int16x8_t {
    count(OpClass::SimdAlu);
    a.shr_arithmetic(n)
}

/// `vshr.u16 q, #n` — logical right shift of unsigned halfwords.
#[inline]
pub fn vshrq_n_u16(a: uint16x8_t, n: u32) -> uint16x8_t {
    count(OpClass::SimdAlu);
    a.shr_logical(n)
}

/// `vshr.s32 q, #n` — arithmetic right shift of words.
#[inline]
pub fn vshrq_n_s32(a: int32x4_t, n: u32) -> int32x4_t {
    count(OpClass::SimdAlu);
    a.shr_arithmetic(n)
}

/// `vshr.u8 q, #n` — logical right shift of bytes.
#[inline]
pub fn vshrq_n_u8(a: uint8x16_t, n: u32) -> uint8x16_t {
    count(OpClass::SimdAlu);
    a.shr_logical(n)
}

/// `vrshr.s16 q, #n` — *rounding* arithmetic right shift:
/// `(a + (1 << (n-1))) >> n` with intermediate widening.
#[inline]
pub fn vrshrq_n_s16(a: int16x8_t, n: u32) -> int16x8_t {
    count(OpClass::SimdAlu);
    assert!((1..=16).contains(&n), "vrshr immediate must be 1..=16");
    a.map(|v| (((v as i32) + (1 << (n - 1))) >> n) as i16)
}

/// `vrshr.u16 q, #n` — rounding logical right shift.
#[inline]
pub fn vrshrq_n_u16(a: uint16x8_t, n: u32) -> uint16x8_t {
    count(OpClass::SimdAlu);
    assert!((1..=16).contains(&n), "vrshr immediate must be 1..=16");
    a.map(|v| (((v as u32) + (1 << (n - 1))) >> n) as u16)
}

/// `vrshr.s32 q, #n` — rounding arithmetic right shift of words.
#[inline]
pub fn vrshrq_n_s32(a: int32x4_t, n: u32) -> int32x4_t {
    count(OpClass::SimdAlu);
    assert!((1..=32).contains(&n), "vrshr immediate must be 1..=32");
    a.map(|v| (((v as i64) + (1i64 << (n - 1))) >> n) as i32)
}

/// `vshrn.i32 q, #n` — right shift words by an immediate and narrow to
/// halfwords (truncating).
#[inline]
pub fn vshrn_n_s32(a: int32x4_t, n: u32) -> int16x4_t {
    count(OpClass::SimdConvert);
    int16x4_t::new([
        (a.lane(0) >> n) as i16,
        (a.lane(1) >> n) as i16,
        (a.lane(2) >> n) as i16,
        (a.lane(3) >> n) as i16,
    ])
}

/// `vrshrn.i16 q, #n` — rounding shift right and narrow halfwords to bytes.
#[inline]
pub fn vrshrn_n_u16(a: uint16x8_t, n: u32) -> uint8x8_t {
    count(OpClass::SimdConvert);
    assert!((1..=8).contains(&n), "vrshrn immediate must be 1..=8");
    let mut out = [0u8; 8];
    for i in 0..8 {
        out[i] = ((((a.lane(i) as u32) + (1 << (n - 1))) >> n) & 0xFF) as u8;
    }
    uint8x8_t::new(out)
}

/// `vqrshrun.s16 q, #n` — saturating rounding shift right, unsigned
/// narrowing: the canonical fixed-point 8-bit filter epilogue.
#[inline]
pub fn vqrshrun_n_s16(a: int16x8_t, n: u32) -> uint8x8_t {
    count(OpClass::SimdConvert);
    assert!((1..=8).contains(&n), "vqrshrun immediate must be 1..=8");
    let mut out = [0u8; 8];
    for i in 0..8 {
        let rounded = ((a.lane(i) as i32) + (1 << (n - 1))) >> n;
        out[i] = rounded.clamp(0, 255) as u8;
    }
    uint8x8_t::new(out)
}

/// `vqrshrn.s32 q, #n` — saturating rounding shift right, signed narrowing
/// of words to halfwords.
#[inline]
pub fn vqrshrn_n_s32(a: int32x4_t, n: u32) -> int16x4_t {
    count(OpClass::SimdConvert);
    assert!((1..=16).contains(&n), "vqrshrn immediate must be 1..=16");
    let mut out = [0i16; 4];
    for i in 0..4 {
        let rounded = ((a.lane(i) as i64) + (1i64 << (n - 1))) >> n;
        out[i] = rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
    }
    int16x4_t::new(out)
}

/// `vsli.8 q, #n` — shift left and insert: shifts `b` left by `n` and
/// merges the shifted-out low bits from `a`.
#[inline]
pub fn vsliq_n_u8(a: uint8x16_t, b: uint8x16_t, n: u32) -> uint8x16_t {
    count(OpClass::SimdAlu);
    assert!(n < 8, "vsli immediate must be 0..=7");
    let mask = (1u8 << n) - 1;
    a.zip(b, |av, bv| (bv << n) | (av & mask))
}

/// `vshr.u32 q, #n` — logical right shift of unsigned words.
#[inline]
pub fn vshrq_n_u32(a: uint32x4_t, n: u32) -> uint32x4_t {
    count(OpClass::SimdAlu);
    a.shr_logical(n)
}

/// `vrshr.u32 q, #n` — rounding logical right shift of unsigned words.
#[inline]
pub fn vrshrq_n_u32(a: uint32x4_t, n: u32) -> uint32x4_t {
    count(OpClass::SimdAlu);
    assert!((1..=32).contains(&n), "vrshr immediate must be 1..=32");
    a.map(|v| (((v as u64) + (1u64 << (n - 1))) >> n) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_store::*;

    #[test]
    fn plain_shifts() {
        assert_eq!(vshlq_n_s16(vdupq_n_s16(3), 4).lane(0), 48);
        assert_eq!(vshrq_n_s16(vdupq_n_s16(-16), 2).lane(0), -4);
        assert_eq!(vshrq_n_u16(uint16x8_t::splat(0x8000), 15).lane(0), 1);
        assert_eq!(vshrq_n_u8(vdupq_n_u8(0xFF), 4).lane(0), 0x0F);
        assert_eq!(vshlq_n_s32(vdupq_n_s32(1), 20).lane(0), 1 << 20);
        assert_eq!(vshrq_n_s32(vdupq_n_s32(-64), 3).lane(0), -8);
    }

    #[test]
    fn rounding_shifts_round_half_up() {
        // 5 >> 1 = 2 truncating, 3 rounding.
        assert_eq!(vshrq_n_s16(vdupq_n_s16(5), 1).lane(0), 2);
        assert_eq!(vrshrq_n_s16(vdupq_n_s16(5), 1).lane(0), 3);
        // -5: rounding shift adds then shifts: (-5+1)>>1 = -2.
        assert_eq!(vrshrq_n_s16(vdupq_n_s16(-5), 1).lane(0), -2);
        assert_eq!(vrshrq_n_u16(uint16x8_t::splat(5), 1).lane(0), 3);
        assert_eq!(vrshrq_n_s32(vdupq_n_s32(255), 4).lane(0), 16);
    }

    #[test]
    fn narrowing_shifts() {
        // 0x12345678 >> 8 = 0x00123456, narrow -> 0x3456.
        let v = int32x4_t::new([0x1234_5678, -256, 512, 0]);
        assert_eq!(vshrn_n_s32(v, 8).to_array(), [0x3456, -1, 2, 0]);
    }

    #[test]
    fn qrshrun_is_the_fixed_point_epilogue() {
        // Values in Q7 fixed point (128 = 1.0).
        let v = int16x8_t::new([
            200 * 128,      // 200.0 -> 200
            -300,           // negative clamps to 0
            100 * 128 + 64, // 100.5 rounds (half up) to 101
            0,
            127, // 0.99 -> rounds to 1
            128, // 1.0 -> 1
            255 * 128,
            1,
        ]);
        let out = vqrshrun_n_s16(v, 7);
        assert_eq!(out.lane(0), 200);
        assert_eq!(out.lane(1), 0);
        assert_eq!(out.lane(2), 101);
        assert_eq!(out.lane(4), 1);
        assert_eq!(out.lane(5), 1);
        assert_eq!(out.lane(6), 255);
    }

    #[test]
    fn qrshrn_s32_saturates() {
        let v = int32x4_t::new([1 << 20, -(1 << 20), 256, -256]);
        let out = vqrshrn_n_s32(v, 4);
        assert_eq!(out.to_array(), [i16::MAX, i16::MIN, 16, -16]);
    }

    #[test]
    fn sli_inserts_low_bits() {
        let a = vdupq_n_u8(0b0000_0011);
        let b = vdupq_n_u8(0b0000_1111);
        assert_eq!(vsliq_n_u8(a, b, 2).lane(0), 0b0011_1111);
    }
}
