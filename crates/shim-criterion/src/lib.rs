//! Offline stand-in for the `criterion` crate.
//!
//! A real wall-clock benchmark runner with the API subset this
//! workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `BenchmarkId::new`, `Throughput::Elements`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Differences from upstream: no statistical outlier analysis, no HTML
//! reports, no `target/criterion` state between runs. Each benchmark is
//! warmed up, iteration count is calibrated so one sample takes a fixed
//! wall-clock slice, then `sample_size` samples are collected and the
//! median / mean / min are printed together with element throughput when
//! a `Throughput` was set. Command-line arguments (e.g. a filter passed
//! by `cargo bench -- <filter>`) select benchmarks by substring match.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement normalisation declared for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (for this workspace: pixels) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function / parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter label.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`, consuming each return value
    /// through [`black_box`] so the work is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free argument (not a flag, not the binary name) acts as a
        // substring filter, matching `cargo bench -- <filter>` usage.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            header_printed: false,
        }
    }

    fn matches(&self, full_label: &str) -> bool {
        match &self.filter {
            Some(f) => full_label.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    header_printed: bool,
}

/// Wall-clock budget for one measured sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
/// Wall-clock budget for the warmup phase of each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

impl BenchmarkGroup<'_> {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by a plain string.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, &mut f);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; the shim prints
    /// incrementally, so this is a terminator for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_label = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_label) {
            return;
        }
        if !self.header_printed {
            println!("\nbenchmark group: {}", self.name);
            self.header_printed = true;
        }

        // Warmup + calibration: grow the iteration count until one batch
        // costs at least SAMPLE_BUDGET, warming caches and branch
        // predictors along the way.
        let mut iters: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= SAMPLE_BUDGET || warmup_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
            // Aim directly for the budget, with headroom for timer noise.
            let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            let target = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as u64;
            iters = target.clamp(iters + 1, iters.saturating_mul(16));
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];

        let mut line = format!(
            "  {full_label:<44} median {} | mean {} | min {}",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "Melem/s"),
                Throughput::Bytes(n) => (n, "MB/s"),
            };
            let rate = count as f64 / median * 1e9 / 1e6;
            let _ = write!(line, " | {rate:.1} {unit}");
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a runner (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $($group_name();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_real_work() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_and_respects_ids() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim_selftest");
        let mut runs = 0usize;
        group.sample_size(2);
        group.throughput(Throughput::Elements(64));
        group.bench_function("inline", |b| {
            b.iter(|| black_box(2u32 + 2));
        });
        group.bench_with_input(BenchmarkId::new("with_input", "x"), &21u64, |b, &v| {
            runs += 1;
            b.iter(|| black_box(v * 2));
        });
        group.finish();
        assert!(runs >= 1, "bench_with_input closure never ran");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
        };
        let mut group = c.benchmark_group("other");
        let mut ran = false;
        group.bench_function("skipped", |_b| {
            ran = true;
        });
        group.finish();
        assert!(!ran, "filtered benchmark should not run");
    }

    #[test]
    fn format_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with(" s"));
    }
}
