//! Quickstart: generate a synthetic photograph, run every benchmark kernel
//! through the public API, verify the backends agree, and write the results
//! as BMP files.
//!
//! Run: `cargo run --release --example quickstart`

use simd_repro::image::{bmp, metrics, synthetic_image};
use simd_repro::kernels::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}\n", simd_repro::ABOUT);

    // One of the harness's deterministic "camera" images at 0.3 Mpx.
    let photo = synthetic_image(640, 480, 7);
    println!(
        "input: 640x480 synthetic photo, mean luma {:.1}",
        metrics::mean_u8(&photo)
    );

    // --- Benchmark 3: Gaussian blur (sigma = 1) -------------------------
    let mut blurred = Image::new(640, 480);
    gaussian_blur(&photo, &mut blurred, Engine::Native);
    println!(
        "gaussian blur: PSNR vs input {:.1} dB (smoothing removed detail)",
        metrics::psnr_u8(&photo, &blurred)
    );

    // --- Benchmark 2: binary threshold ----------------------------------
    let mut mask = Image::new(640, 480);
    threshold_u8(
        &photo,
        &mut mask,
        128,
        255,
        ThresholdType::Binary,
        Engine::Native,
    );
    let above = mask.iter_pixels().filter(|&p| p == 255).count();
    println!(
        "threshold @128: {:.1}% of pixels above",
        100.0 * above as f64 / mask.pixels() as f64
    );

    // --- Benchmark 4: Sobel gradient -------------------------------------
    let mut gx = Image::new(640, 480);
    sobel(&photo, &mut gx, SobelDirection::X, Engine::Native);
    let max_grad = gx.iter_pixels().map(|v| v.unsigned_abs()).max().unwrap();
    println!("sobel d/dx: max |gradient| = {max_grad}");

    // --- Benchmark 5: edge detection --------------------------------------
    let mut edges = Image::new(640, 480);
    edge_detect(&photo, &mut edges, 96, Engine::Native);
    let edge_px = edges.iter_pixels().filter(|&p| p == 255).count();
    println!("edge detection @96: {edge_px} edge pixels");

    // --- Benchmark 1: float -> short conversion ---------------------------
    let float = simd_repro::image::convert::u8_to_f32(&photo, 100.0, -12800.0);
    let mut shorts = Image::new(640, 480);
    convert_f32_to_i16(&float, &mut shorts, Engine::Native);
    println!("convert f32->i16: pixel(0,0) = {}", shorts.get(0, 0));

    // --- All backends agree bit-for-bit ----------------------------------
    for engine in [
        Engine::Scalar,
        Engine::Autovec,
        Engine::Sse2Sim,
        Engine::NeonSim,
    ] {
        let mut check = Image::new(640, 480);
        gaussian_blur(&photo, &mut check, engine);
        assert!(check.pixels_eq(&blurred), "{engine:?} diverged");
    }
    println!("\nall five backends produce identical output ✓");

    // --- Write artifacts ---------------------------------------------------
    let out = std::env::temp_dir().join("simd-repro");
    std::fs::create_dir_all(&out)?;
    std::fs::write(out.join("photo.bmp"), bmp::encode_gray(&photo))?;
    std::fs::write(out.join("blurred.bmp"), bmp::encode_gray(&blurred))?;
    std::fs::write(out.join("edges.bmp"), bmp::encode_gray(&edges))?;
    println!(
        "wrote photo.bmp / blurred.bmp / edges.bmp to {}",
        out.display()
    );
    Ok(())
}
