//! Section V style instruction-stream analysis.
//!
//! The paper disassembles the float→short conversion kernel and counts how
//! many operations each strategy needs per block of output pixels: the NEON
//! intrinsic loop retires 8 SIMD instructions plus 6 loop-overhead
//! instructions per 8 pixels (14 total), while gcc's "auto-vectorized" loop
//! issues a per-pixel sequence that includes a `lrint` library call. This
//! module renders the same comparison for any pair of measured or modelled
//! [`OpMix`]es.

use crate::{OpClass, OpMix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One side of a HAND-vs-AUTO comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Label shown in the report (e.g. `"HAND (NEON intrinsics)"`).
    pub label: String,
    /// The instruction mix for the whole workload.
    pub mix: OpMix,
    /// Number of output pixels the mix covers.
    pub pixels: u64,
}

impl StreamProfile {
    /// Creates a profile.
    pub fn new(label: impl Into<String>, mix: OpMix, pixels: u64) -> Self {
        StreamProfile {
            label: label.into(),
            mix,
            pixels,
        }
    }

    /// Ops per output pixel.
    pub fn ops_per_pixel(&self) -> f64 {
        self.mix.per_pixel(self.pixels)
    }

    /// Ops per block of `block` output pixels (the paper uses blocks of 8).
    pub fn ops_per_block(&self, block: u64) -> f64 {
        self.ops_per_pixel() * block as f64
    }
}

/// A HAND-vs-AUTO comparison for one kernel, as in the paper's Section V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamComparison {
    /// Kernel name (e.g. `"convert f32->i16"`).
    pub kernel: String,
    /// The hand-tuned intrinsic stream.
    pub hand: StreamProfile,
    /// The compiler auto-vectorized stream.
    pub auto: StreamProfile,
}

impl StreamComparison {
    /// Creates a comparison.
    pub fn new(kernel: impl Into<String>, hand: StreamProfile, auto: StreamProfile) -> Self {
        StreamComparison {
            kernel: kernel.into(),
            hand,
            auto,
        }
    }

    /// The instruction-count ratio AUTO/HAND — an architecture-independent
    /// predictor of the HAND speed-up (ignoring latency differences).
    pub fn instruction_ratio(&self) -> f64 {
        let hand = self.hand.ops_per_pixel();
        if hand == 0.0 {
            0.0
        } else {
            self.auto.ops_per_pixel() / hand
        }
    }

    /// Renders the Section V style text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        writeln!(out, "kernel: {}", self.kernel).unwrap();
        for profile in [&self.hand, &self.auto] {
            writeln!(
                out,
                "  {:<28} {:>8.2} ops/pixel ({:>6.1} ops / 8 pixels)",
                profile.label,
                profile.ops_per_pixel(),
                profile.ops_per_block(8)
            )
            .unwrap();
            for (class, n) in profile.mix.iter_nonzero() {
                writeln!(
                    out,
                    "      {:<9} {:>12}  ({:.3}/px)",
                    class.mnemonic(),
                    n,
                    n as f64 / profile.pixels.max(1) as f64
                )
                .unwrap();
            }
        }
        writeln!(
            out,
            "  instruction ratio AUTO:HAND = {:.2}x",
            self.instruction_ratio()
        )
        .unwrap();
        out
    }
}

/// Summary statistics over several kernels' comparisons.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// (kernel name, AUTO:HAND instruction ratio) pairs.
    pub ratios: Vec<(String, f64)>,
}

impl AnalysisSummary {
    /// Builds the summary from comparisons.
    pub fn from_comparisons(cmps: &[StreamComparison]) -> Self {
        AnalysisSummary {
            ratios: cmps
                .iter()
                .map(|c| (c.kernel.clone(), c.instruction_ratio()))
                .collect(),
        }
    }

    /// Smallest ratio across kernels.
    pub fn min_ratio(&self) -> Option<f64> {
        self.ratios
            .iter()
            .map(|&(_, r)| r)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Largest ratio across kernels.
    pub fn max_ratio(&self) -> Option<f64> {
        self.ratios
            .iter()
            .map(|&(_, r)| r)
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// Classifies the dominant cost of a mix — a coarse bottleneck indicator used
/// in reports ("why did the Tegra T30 not benefit as much?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Most ops are SIMD compute.
    SimdCompute,
    /// Most ops are scalar compute.
    ScalarCompute,
    /// Most ops touch memory.
    Memory,
    /// Loop overhead / branches / libcalls dominate.
    Overhead,
}

/// Picks the dominant [`Bottleneck`] of a mix.
pub fn classify_bottleneck(mix: &OpMix) -> Bottleneck {
    let mem = mix.memory_total();
    let simd_compute = mix.get(OpClass::SimdAlu) + mix.get(OpClass::SimdConvert);
    let scalar_compute = mix.get(OpClass::ScalarAlu) + mix.get(OpClass::ScalarConvert);
    let overhead = mix.overhead_total();
    let max = mem.max(simd_compute).max(scalar_compute).max(overhead);
    if max == mem {
        Bottleneck::Memory
    } else if max == simd_compute {
        Bottleneck::SimdCompute
    } else if max == scalar_compute {
        Bottleneck::ScalarCompute
    } else {
        Bottleneck::Overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_convert_hand_mix() -> OpMix {
        // Section V: per 8 pixels the NEON intrinsic loop retires
        // 2 vector loads, 2 converts, 2 narrows, 1 combine (vorr), 1 store,
        // plus 6 address/loop-control ops.
        OpMix::from_pairs(&[
            (OpClass::SimdLoad, 2),
            (OpClass::SimdConvert, 4),
            (OpClass::SimdAlu, 1),
            (OpClass::SimdStore, 1),
            (OpClass::AddrArith, 5),
            (OpClass::Branch, 1),
        ])
    }

    fn paper_convert_auto_mix() -> OpMix {
        // Section V listing: per *single* pixel gcc emits a load, an f32->f64
        // widen, a register copy, a libcall to lrint, then ~5 scalar
        // saturation ops, a store and loop control. Scaled to 8 pixels.
        OpMix::from_pairs(&[
            (OpClass::ScalarLoad, 8),
            (OpClass::ScalarConvert, 8),
            (OpClass::LibCall, 8),
            (OpClass::ScalarAlu, 8 * 5),
            (OpClass::ScalarStore, 8),
            (OpClass::AddrArith, 8 * 2),
            (OpClass::Branch, 8),
        ])
    }

    #[test]
    fn hand_stream_matches_papers_14_ops_per_8_pixels() {
        let profile = StreamProfile::new("HAND", paper_convert_hand_mix(), 8);
        assert_eq!(profile.ops_per_block(8).round() as u64, 14);
    }

    #[test]
    fn instruction_ratio_predicts_large_arm_speedup() {
        let cmp = StreamComparison::new(
            "convert",
            StreamProfile::new("HAND", paper_convert_hand_mix(), 8),
            StreamProfile::new("AUTO", paper_convert_auto_mix(), 8),
        );
        let ratio = cmp.instruction_ratio();
        // 96 ops / 14 ops ~ 6.9x before accounting for libcall latency;
        // the paper measures up to 13x once lrint cost is included.
        assert!(ratio > 5.0 && ratio < 10.0, "ratio = {ratio}");
    }

    #[test]
    fn report_contains_both_labels() {
        let cmp = StreamComparison::new(
            "convert",
            StreamProfile::new("HAND (NEON)", paper_convert_hand_mix(), 8),
            StreamProfile::new("AUTO (gcc)", paper_convert_auto_mix(), 8),
        );
        let text = cmp.report();
        assert!(text.contains("HAND (NEON)"));
        assert!(text.contains("AUTO (gcc)"));
        assert!(text.contains("instruction ratio"));
    }

    #[test]
    fn bottleneck_classification() {
        assert_eq!(
            classify_bottleneck(&OpMix::from_pairs(&[(OpClass::SimdAlu, 10)])),
            Bottleneck::SimdCompute
        );
        assert_eq!(
            classify_bottleneck(&OpMix::from_pairs(&[
                (OpClass::SimdLoad, 10),
                (OpClass::SimdAlu, 2)
            ])),
            Bottleneck::Memory
        );
        assert_eq!(
            classify_bottleneck(&OpMix::from_pairs(&[
                (OpClass::Branch, 5),
                (OpClass::AddrArith, 6)
            ])),
            Bottleneck::Overhead
        );
        assert_eq!(
            classify_bottleneck(&OpMix::from_pairs(&[(OpClass::ScalarAlu, 10)])),
            Bottleneck::ScalarCompute
        );
    }

    #[test]
    fn summary_min_max() {
        let cmps = vec![
            StreamComparison::new(
                "a",
                StreamProfile::new("h", OpMix::from_pairs(&[(OpClass::SimdAlu, 10)]), 10),
                StreamProfile::new("a", OpMix::from_pairs(&[(OpClass::ScalarAlu, 40)]), 10),
            ),
            StreamComparison::new(
                "b",
                StreamProfile::new("h", OpMix::from_pairs(&[(OpClass::SimdAlu, 10)]), 10),
                StreamProfile::new("a", OpMix::from_pairs(&[(OpClass::ScalarAlu, 20)]), 10),
            ),
        ];
        let summary = AnalysisSummary::from_comparisons(&cmps);
        assert_eq!(summary.min_ratio(), Some(2.0));
        assert_eq!(summary.max_ratio(), Some(4.0));
    }
}
