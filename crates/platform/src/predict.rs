//! Runtime prediction: (platform, kernel, strategy, resolution) → seconds.

use crate::memory::dram_cycles_per_pixel;
use crate::pipeline::{compute_cycles_per_pixel, total_cycles_per_pixel, Bound};
use crate::spec::PlatformSpec;
use crate::workload::{dram_bytes_per_pixel, mix_for, Kernel, Strategy};
use pixelimage::Resolution;
use serde::{Deserialize, Serialize};

/// A single predicted measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Platform short label.
    pub platform: String,
    /// Kernel.
    pub kernel: Kernel,
    /// Strategy (AUTO/HAND).
    pub strategy: Strategy,
    /// Image label (e.g. "3264x2448").
    pub image: String,
    /// Predicted wall-clock seconds for one pass over the image.
    pub seconds: f64,
    /// Compute cycles per pixel the pipeline model charged.
    pub compute_cpp: f64,
    /// DRAM cycles per pixel the memory model charged.
    pub dram_cpp: f64,
    /// True when the memory system dominates.
    pub memory_bound: bool,
}

/// Predicts the runtime of one benchmark configuration.
pub fn predict(
    p: &PlatformSpec,
    kernel: Kernel,
    strategy: Strategy,
    res: Resolution,
) -> Prediction {
    let (width, _) = res.dims();
    let mix = mix_for(kernel, strategy, p.isa);
    let mut compute_cpp = compute_cycles_per_pixel(&mix, p);
    if strategy == Strategy::Auto {
        compute_cpp *= p.auto_quality;
    }
    let bytes_pp = dram_bytes_per_pixel(kernel, width, p.last_level_cache_kb());
    let dram_cpp = dram_cycles_per_pixel(bytes_pp, p);
    let (total_cpp, bound) = total_cycles_per_pixel(compute_cpp, dram_cpp, p);
    let seconds = res.pixels() as f64 * total_cpp / (p.ghz * 1e9);
    Prediction {
        platform: p.short.to_string(),
        kernel,
        strategy,
        image: res.label().to_string(),
        seconds,
        compute_cpp,
        dram_cpp,
        memory_bound: bound == Bound::Memory,
    }
}

/// Predicted seconds only.
pub fn predict_seconds(
    p: &PlatformSpec,
    kernel: Kernel,
    strategy: Strategy,
    res: Resolution,
) -> f64 {
    predict(p, kernel, strategy, res).seconds
}

/// The paper's headline metric: AUTO time / HAND time.
pub fn speedup(p: &PlatformSpec, kernel: Kernel, res: Resolution) -> f64 {
    predict_seconds(p, kernel, Strategy::Auto, res)
        / predict_seconds(p, kernel, Strategy::Hand, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::*;

    #[test]
    fn times_scale_roughly_linearly_with_pixels() {
        let p = core_i5_3360m();
        let small = predict_seconds(&p, Kernel::Convert, Strategy::Hand, Resolution::Vga);
        let large = predict_seconds(&p, Kernel::Convert, Strategy::Hand, Resolution::Mp8);
        let ratio = large / small;
        let pixel_ratio = Resolution::Mp8.pixels() as f64 / Resolution::Vga.pixels() as f64;
        assert!(
            (ratio / pixel_ratio - 1.0).abs() < 0.1,
            "ratio {ratio} vs pixels {pixel_ratio}"
        );
    }

    #[test]
    fn hand_is_always_at_least_as_fast_as_auto() {
        for p in all_platforms() {
            for kernel in Kernel::ALL {
                for res in Resolution::ALL {
                    let s = speedup(&p, kernel, res);
                    assert!(s >= 1.0, "{} {:?} {:?}: {s}", p.short, kernel, res);
                }
            }
        }
    }

    #[test]
    fn predictions_have_positive_times() {
        for p in all_platforms() {
            for kernel in Kernel::ALL {
                let pred = predict(&p, kernel, Strategy::Hand, Resolution::Mp8);
                assert!(pred.seconds > 0.0);
                assert!(pred.compute_cpp > 0.0);
                assert!(pred.dram_cpp > 0.0);
            }
        }
    }
}
