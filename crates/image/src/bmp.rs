//! Minimal BMP codec for 8-bit grayscale (palettised) and 24-bit BGR
//! uncompressed bitmaps — the format the paper's test images use
//! ("Uncompressed bitmap images ... were used for all experiments").

use crate::image::Image;
use bytes::{Buf, BufMut, BytesMut};

/// Errors from BMP decoding.
#[derive(Debug, PartialEq, Eq)]
pub enum BmpError {
    /// Too few bytes for the declared structures.
    Truncated,
    /// Not a BMP file (bad magic).
    BadMagic,
    /// A feature this codec does not implement (compression, other depths).
    Unsupported(&'static str),
    /// Header fields are internally inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for BmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BmpError::Truncated => write!(f, "truncated BMP data"),
            BmpError::BadMagic => write!(f, "missing 'BM' magic"),
            BmpError::Unsupported(what) => write!(f, "unsupported BMP feature: {what}"),
            BmpError::Malformed(what) => write!(f, "malformed BMP: {what}"),
        }
    }
}

impl std::error::Error for BmpError {}

const FILE_HEADER_LEN: usize = 14;
const INFO_HEADER_LEN: usize = 40;

fn row_size_bytes(width: usize, bits: usize) -> usize {
    (width * bits).div_ceil(32) * 4
}

/// Encodes a grayscale image as an 8-bit palettised BMP.
pub fn encode_gray(img: &Image<u8>) -> Vec<u8> {
    let (w, h) = (img.width(), img.height());
    let row = row_size_bytes(w, 8);
    let palette_len = 256 * 4;
    let data_offset = FILE_HEADER_LEN + INFO_HEADER_LEN + palette_len;
    let file_len = data_offset + row * h;

    let mut out = BytesMut::with_capacity(file_len);
    // File header.
    out.put_slice(b"BM");
    out.put_u32_le(file_len as u32);
    out.put_u32_le(0);
    out.put_u32_le(data_offset as u32);
    // Info header (BITMAPINFOHEADER).
    out.put_u32_le(INFO_HEADER_LEN as u32);
    out.put_i32_le(w as i32);
    out.put_i32_le(h as i32); // positive: bottom-up
    out.put_u16_le(1); // planes
    out.put_u16_le(8); // bpp
    out.put_u32_le(0); // BI_RGB
    out.put_u32_le((row * h) as u32);
    out.put_i32_le(2835); // 72 dpi
    out.put_i32_le(2835);
    out.put_u32_le(256); // palette entries
    out.put_u32_le(0);
    // Grayscale palette.
    for i in 0..256u32 {
        out.put_u8(i as u8);
        out.put_u8(i as u8);
        out.put_u8(i as u8);
        out.put_u8(0);
    }
    // Pixel rows, bottom-up, padded to 4 bytes.
    let pad = row - w;
    for y in (0..h).rev() {
        out.put_slice(img.row(y));
        out.put_bytes(0, pad);
    }
    out.to_vec()
}

/// Encodes three channel planes (B, G, R order per BMP convention) as a
/// 24-bit BMP. All planes must share dimensions.
pub fn encode_bgr(b: &Image<u8>, g: &Image<u8>, r: &Image<u8>) -> Vec<u8> {
    assert_eq!(b.width(), g.width());
    assert_eq!(b.width(), r.width());
    assert_eq!(b.height(), g.height());
    assert_eq!(b.height(), r.height());
    let (w, h) = (b.width(), b.height());
    let row = row_size_bytes(w, 24);
    let data_offset = FILE_HEADER_LEN + INFO_HEADER_LEN;
    let file_len = data_offset + row * h;

    let mut out = BytesMut::with_capacity(file_len);
    out.put_slice(b"BM");
    out.put_u32_le(file_len as u32);
    out.put_u32_le(0);
    out.put_u32_le(data_offset as u32);
    out.put_u32_le(INFO_HEADER_LEN as u32);
    out.put_i32_le(w as i32);
    out.put_i32_le(h as i32);
    out.put_u16_le(1);
    out.put_u16_le(24);
    out.put_u32_le(0);
    out.put_u32_le((row * h) as u32);
    out.put_i32_le(2835);
    out.put_i32_le(2835);
    out.put_u32_le(0);
    out.put_u32_le(0);
    let pad = row - 3 * w;
    for y in (0..h).rev() {
        let (rb, rg, rr) = (b.row(y), g.row(y), r.row(y));
        for x in 0..w {
            out.put_u8(rb[x]);
            out.put_u8(rg[x]);
            out.put_u8(rr[x]);
        }
        out.put_bytes(0, pad);
    }
    out.to_vec()
}

/// Decoded BMP content.
#[derive(Debug)]
pub enum Decoded {
    /// 8-bit palettised image mapped through its palette to grayscale
    /// (luma of palette entries).
    Gray(Image<u8>),
    /// 24-bit image split into (b, g, r) planes.
    Bgr(Image<u8>, Image<u8>, Image<u8>),
}

/// Decodes an 8-bit palettised or 24-bit uncompressed BMP.
pub fn decode(data: &[u8]) -> Result<Decoded, BmpError> {
    if data.len() < FILE_HEADER_LEN + INFO_HEADER_LEN {
        return Err(BmpError::Truncated);
    }
    if &data[0..2] != b"BM" {
        return Err(BmpError::BadMagic);
    }
    let mut hdr = data;
    hdr.advance(10);
    let data_offset = hdr.get_u32_le() as usize;
    let info_len = hdr.get_u32_le() as usize;
    if info_len < INFO_HEADER_LEN {
        return Err(BmpError::Unsupported("pre-BITMAPINFOHEADER format"));
    }
    let width_raw = hdr.get_i32_le();
    let height_raw = hdr.get_i32_le();
    let _planes = hdr.get_u16_le();
    let bpp = hdr.get_u16_le();
    let compression = hdr.get_u32_le();
    if compression != 0 {
        return Err(BmpError::Unsupported("compressed BMP"));
    }
    if width_raw <= 0 {
        return Err(BmpError::Malformed("non-positive width"));
    }
    let width = width_raw as usize;
    let (height, bottom_up) = if height_raw >= 0 {
        (height_raw as usize, true)
    } else {
        ((-height_raw) as usize, false)
    };
    hdr.advance(12);
    let palette_count = {
        let declared = hdr.get_u32_le() as usize;
        if bpp == 8 && declared == 0 {
            256
        } else {
            declared
        }
    };

    match bpp {
        8 => {
            let palette_off = FILE_HEADER_LEN + info_len;
            let palette_end = palette_off + palette_count * 4;
            if data.len() < palette_end {
                return Err(BmpError::Truncated);
            }
            // Map palette entries to luma.
            let mut luma = [0u8; 256];
            for (i, l) in luma.iter_mut().enumerate().take(palette_count) {
                let e = &data[palette_off + 4 * i..palette_off + 4 * i + 4];
                let (b, g, r) = (e[0] as u32, e[1] as u32, e[2] as u32);
                *l = ((299 * r + 587 * g + 114 * b) / 1000) as u8;
            }
            let row = row_size_bytes(width, 8);
            if data.len() < data_offset + row * height {
                return Err(BmpError::Truncated);
            }
            let mut img = Image::new(width, height);
            for y in 0..height {
                let src_y = if bottom_up { height - 1 - y } else { y };
                let src = &data[data_offset + src_y * row..][..width];
                let dst = img.row_mut(y);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = luma[s as usize];
                }
            }
            Ok(Decoded::Gray(img))
        }
        24 => {
            let row = row_size_bytes(width, 24);
            if data.len() < data_offset + row * height {
                return Err(BmpError::Truncated);
            }
            let mut b = Image::new(width, height);
            let mut g = Image::new(width, height);
            let mut r = Image::new(width, height);
            for y in 0..height {
                let src_y = if bottom_up { height - 1 - y } else { y };
                let src = &data[data_offset + src_y * row..][..3 * width];
                for x in 0..width {
                    b.row_mut(y)[x] = src[3 * x];
                    g.row_mut(y)[x] = src[3 * x + 1];
                    r.row_mut(y)[x] = src[3 * x + 2];
                }
            }
            Ok(Decoded::Bgr(b, g, r))
        }
        other => {
            let _ = other;
            Err(BmpError::Unsupported("bit depth (only 8 and 24 supported)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_roundtrip() {
        let img = Image::from_fn(13, 7, |x, y| (x * 17 + y * 31) as u8);
        let bytes = encode_gray(&img);
        match decode(&bytes).unwrap() {
            Decoded::Gray(out) => assert!(out.pixels_eq(&img)),
            _ => panic!("expected gray"),
        }
    }

    #[test]
    fn gray_roundtrip_width_multiple_of_4() {
        let img = Image::from_fn(16, 3, |x, _| x as u8);
        let bytes = encode_gray(&img);
        match decode(&bytes).unwrap() {
            Decoded::Gray(out) => assert!(out.pixels_eq(&img)),
            _ => panic!("expected gray"),
        }
    }

    #[test]
    fn bgr_roundtrip() {
        let b = Image::from_fn(5, 4, |x, _| x as u8);
        let g = Image::from_fn(5, 4, |_, y| y as u8);
        let r = Image::from_fn(5, 4, |x, y| (x * y) as u8);
        let bytes = encode_bgr(&b, &g, &r);
        match decode(&bytes).unwrap() {
            Decoded::Bgr(ob, og, or) => {
                assert!(ob.pixels_eq(&b));
                assert!(og.pixels_eq(&g));
                assert!(or.pixels_eq(&r));
            }
            _ => panic!("expected bgr"),
        }
    }

    #[test]
    fn file_size_matches_paper_for_8mpx() {
        // The paper quotes ~23MB for a 3264x2448 bitmap — that matches a
        // 24-bit file: 3264*3 bytes per row (already 4-byte aligned) * 2448.
        let row = row_size_bytes(3264, 24);
        let total = FILE_HEADER_LEN + INFO_HEADER_LEN + row * 2448;
        let mb = total as f64 / (1024.0 * 1024.0);
        assert!((22.0..24.0).contains(&mb), "size {mb} MB");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode(b"hello"), Err(BmpError::Truncated)));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_gray(&Image::from_fn(4, 4, |_, _| 0));
        bytes[0] = b'X';
        match decode(&bytes) {
            Err(BmpError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_pixels() {
        let bytes = encode_gray(&Image::from_fn(8, 8, |x, _| x as u8));
        match decode(&bytes[..bytes.len() - 10]) {
            Err(BmpError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        assert!(BmpError::Unsupported("compressed BMP")
            .to_string()
            .contains("compressed"));
    }
}
