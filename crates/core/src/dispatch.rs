//! Run-time backend selection — the `cv::setUseOptimized(bool)` mechanism.
//!
//! The paper switches its NEON/SSE2 optimizations ON and OFF "using the
//! OpenCV function `cv::setUseOptimized(bool onOff)` with the benchmarks
//! labelled accordingly". [`set_use_optimized`] reproduces that global
//! toggle; [`Engine`] is the finer-grained per-call selector the harness
//! uses to measure each backend independently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Which implementation of a kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Original OpenCV-style element loop (the AUTO-compiled source).
    Scalar,
    /// Restructured for compiler auto-vectorization (slice iteration).
    Autovec,
    /// Hand-written SSE2 intrinsics through the `sse-sim` surface.
    Sse2Sim,
    /// Hand-written NEON intrinsics through the `neon-sim` surface.
    NeonSim,
    /// Hand-written intrinsics compiled to the host's real SIMD unit
    /// (SSE2 on x86_64, NEON on aarch64; falls back to `Autovec`
    /// elsewhere).
    Native,
}

impl Engine {
    /// All engines, in report order.
    pub const ALL: [Engine; 5] = [
        Engine::Scalar,
        Engine::Autovec,
        Engine::Sse2Sim,
        Engine::NeonSim,
        Engine::Native,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Autovec => "autovec",
            Engine::Sse2Sim => "sse2-sim",
            Engine::NeonSim => "neon-sim",
            Engine::Native => "native",
        }
    }

    /// True for the hand-written-intrinsics engines (the paper's HAND).
    pub fn is_hand(self) -> bool {
        matches!(self, Engine::Sse2Sim | Engine::NeonSim | Engine::Native)
    }

    /// The engine `set_use_optimized(true)` selects on this host.
    pub fn best_available() -> Engine {
        if cfg!(any(target_arch = "x86_64", target_arch = "aarch64")) {
            Engine::Native
        } else {
            Engine::Autovec
        }
    }
}

static USE_OPTIMIZED: AtomicBool = AtomicBool::new(true);

/// Serialises scoped flag flips so concurrent [`with_use_optimized`]
/// sections (e.g. parallel `#[test]`s) never interleave their
/// set/observe/restore windows.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Globally enables (HAND) or disables (AUTO) the optimized intrinsic
/// kernels, like `cv::setUseOptimized`.
pub fn set_use_optimized(on: bool) {
    USE_OPTIMIZED.store(on, Ordering::Relaxed);
}

/// Runs `f` with the global flag set to `on`, then restores the previous
/// value — even if `f` panics.
///
/// Sections are mutually exclusive across threads, so code observing
/// [`default_engine`] inside one can never see a value leaked from a
/// half-finished flip elsewhere. Tests toggling the flag must use this
/// instead of raw [`set_use_optimized`] pairs, which are not
/// exception-safe and race under the parallel test runner.
pub fn with_use_optimized<R>(on: bool, f: impl FnOnce() -> R) -> R {
    // A panic inside a previous section poisons the mutex *after* its
    // Restore drop ran, so the flag is already consistent: keep going.
    let _serial = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_use_optimized(self.0);
        }
    }
    let _restore = Restore(use_optimized());

    set_use_optimized(on);
    f()
}

/// Current global optimization flag.
pub fn use_optimized() -> bool {
    USE_OPTIMIZED.load(Ordering::Relaxed)
}

/// The engine implied by the global flag: `Native` (or the best available)
/// when optimized, `Scalar` otherwise.
pub fn default_engine() -> Engine {
    if use_optimized() {
        Engine::best_available()
    } else {
        Engine::Scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = Engine::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), Engine::ALL.len());
    }

    #[test]
    fn hand_classification() {
        assert!(!Engine::Scalar.is_hand());
        assert!(!Engine::Autovec.is_hand());
        assert!(Engine::Sse2Sim.is_hand());
        assert!(Engine::NeonSim.is_hand());
        assert!(Engine::Native.is_hand());
    }

    #[test]
    fn global_toggle_switches_default_engine() {
        with_use_optimized(false, || {
            assert_eq!(default_engine(), Engine::Scalar);
        });
        with_use_optimized(true, || {
            assert!(default_engine().is_hand() || default_engine() == Engine::Autovec);
        });
    }

    #[test]
    fn with_use_optimized_restores_on_panic() {
        let initial = use_optimized();
        let result = std::panic::catch_unwind(|| {
            with_use_optimized(!initial, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(use_optimized(), initial, "flag leaked after panic");
    }

    #[test]
    fn with_use_optimized_sections_are_serialised() {
        // Hammer the flag from many threads; each section must only ever
        // observe its own value, and the initial value must survive.
        let initial = use_optimized();
        std::thread::scope(|s| {
            for i in 0..8 {
                s.spawn(move || {
                    for _ in 0..100 {
                        let on = i % 2 == 0;
                        with_use_optimized(on, || {
                            assert_eq!(use_optimized(), on);
                            let want = if on {
                                Engine::best_available()
                            } else {
                                Engine::Scalar
                            };
                            assert_eq!(default_engine(), want);
                        });
                    }
                });
            }
        });
        assert_eq!(use_optimized(), initial);
    }

    #[test]
    fn best_available_on_x86_64_is_native() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(Engine::best_available(), Engine::Native);
    }
}
