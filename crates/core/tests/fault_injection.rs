//! Injected-fault behaviour of the fallible kernel and pipeline entry
//! points: armed failpoints surface as `KernelError::FaultInjected`
//! (never as unwinds through the `try_*` APIs), scratch workspaces are
//! returned even when a band dies mid-flight, and the whole decision
//! sequence replays bit-identically for a given seed.
//!
//! This is one test function (not several) because faultline state is
//! process-global and the parallel phases share one worker pool.

use pixelimage::{synthetic_image, Image};
use simdbench_core::dispatch::Engine;
use simdbench_core::error::KernelError;
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::pipeline::{
    try_fused_gaussian_blur_with, try_par_fused_edge_detect_with, BandPlan,
};
use simdbench_core::scratch::{self, Scratch};
use simdbench_core::sobel::SobelDirection;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn injected_faults_surface_cleanly_and_leak_nothing() {
    faultline::disarm_all();
    rayon::reset_circuit_breaker();

    let src = synthetic_image(96, 64, 21);
    let kernel = paper_gaussian_kernel();

    // --- Forced errors at the kernel entry -----------------------------
    faultline::arm("kernel.entry", faultline::Action::Error, 1.0, 7);
    let mut gi16 = Image::<i16>::new(96, 64);
    assert_eq!(
        simdbench_core::sobel::try_sobel(&src, &mut gi16, SobelDirection::X, Engine::Native),
        Err(KernelError::FaultInjected {
            failpoint: "kernel.entry".into()
        })
    );
    // The same forced error propagates out of the composite kernel
    // (edge = sobel + sobel + threshold) as an error, not a panic.
    let mut du8 = Image::<u8>::new(96, 64);
    assert_eq!(
        simdbench_core::edge::try_edge_detect(&src, &mut du8, 96, Engine::Native),
        Err(KernelError::FaultInjected {
            failpoint: "kernel.entry".into()
        })
    );
    faultline::disarm("kernel.entry");

    // --- Deterministic replay per seed ---------------------------------
    let decisions = |seed: u64| -> Vec<bool> {
        faultline::arm("kernel.entry", faultline::Action::Error, 0.5, seed);
        let mut out = Image::<i16>::new(96, 64);
        let hits = (0..32)
            .map(|_| {
                simdbench_core::sobel::try_sobel(&src, &mut out, SobelDirection::X, Engine::Native)
                    .is_err()
            })
            .collect();
        faultline::disarm("kernel.entry");
        hits
    };
    let a = decisions(1234);
    let b = decisions(1234);
    assert_eq!(a, b, "same seed must replay the same fault sequence");
    assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e), "rate 0.5");

    // --- Injected band panic: sequential pipeline ----------------------
    // The band dies mid-flight *after* its workspace checkout; the
    // try_* wrapper must convert the recognised injected panic into an
    // error and the drop guard must return the workspace.
    faultline::arm("pipeline.band", faultline::Action::Panic, 1.0, 99);
    let mut scratch = Scratch::new();
    let mut dst = Image::<u8>::new(96, 64);
    assert_eq!(
        try_fused_gaussian_blur_with(&src, &mut dst, &kernel, Engine::Native, &mut scratch),
        Err(KernelError::FaultInjected {
            failpoint: "pipeline.band".into()
        })
    );
    assert_eq!(scratch.outstanding(), 0, "faulted band leaked a workspace");
    assert_eq!(scratch.outstanding_bytes(), 0);
    faultline::disarm("pipeline.band");
    // The identical call now succeeds, reusing the recovered workspace.
    let mut expect = Image::<u8>::new(96, 64);
    simdbench_core::gaussian::gaussian_blur_kernel(&src, &mut expect, &kernel, Engine::Native);
    assert_eq!(
        try_fused_gaussian_blur_with(&src, &mut dst, &kernel, Engine::Native, &mut scratch),
        Ok(())
    );
    assert!(dst.pixels_eq(&expect), "recovery run must be bit-exact");

    // --- Injected band panic: parallel pipeline ------------------------
    // Worker-side panics cross the pool latch as the original payload,
    // so the try_* wrapper still classifies them; every worker's
    // thread-local arena must end with nothing outstanding.
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool build");
    wide.install(|| {
        faultline::arm("pipeline.band", faultline::Action::Panic, 1.0, 4242);
        let plan = BandPlan { band_rows: 8 };
        let mut par_dst = Image::<u8>::new(96, 64);
        assert_eq!(
            try_par_fused_edge_detect_with(&src, &mut par_dst, 96, Engine::Native, &plan),
            Err(KernelError::FaultInjected {
                failpoint: "pipeline.band".into()
            })
        );
        faultline::disarm("pipeline.band");
        // Sweep every pool worker's arena ledger.
        let leaked = AtomicUsize::new(0);
        rayon::broadcast(|_| {
            leaked.fetch_add(scratch::worker_arena_outstanding_bytes(), Ordering::Relaxed);
        });
        assert_eq!(
            leaked.load(Ordering::Relaxed),
            0,
            "a worker arena leaked workspace bytes after injected band panics"
        );
        // Disarmed, the parallel pipeline recovers to bit-exactness.
        let mut expect = Image::<u8>::new(96, 64);
        simdbench_core::edge::edge_detect(&src, &mut expect, 96, Engine::Native);
        assert_eq!(
            try_par_fused_edge_detect_with(&src, &mut par_dst, 96, Engine::Native, &plan),
            Ok(())
        );
        assert!(par_dst.pixels_eq(&expect));
    });

    // A genuine (non-injected) panic is NOT converted to an error: the
    // try_* contract only absorbs faults it can attribute to faultline.
    let err = std::panic::catch_unwind(|| {
        let mut d = Image::<u8>::new(95, 64);
        // Panicking shim, real validation failure.
        simdbench_core::edge::edge_detect(&src, &mut d, 96, Engine::Native);
    })
    .expect_err("width mismatch through the shim must still panic");
    assert!(!faultline::is_injected_panic(err.as_ref()));

    faultline::disarm_all();
    rayon::reset_circuit_breaker();
}
